//! Write-rationing garbage collection for hybrid memories — umbrella crate.
//!
//! This crate re-exports the workspace's public surface so that examples and
//! downstream users can depend on a single crate:
//!
//! * [`kingsguard`] — the write-rationing collectors (GenImmix, KG-N, KG-W),
//! * [`kingsguard_heap`] — the heap substrate (object model, spaces),
//! * [`hybrid_mem`] — the hybrid DRAM/PCM memory simulator,
//! * [`oswp`] — the OS Write Partitioning baseline,
//! * [`workloads`] — synthetic models of the paper's Java benchmarks,
//! * [`experiments`] — the harness that regenerates every table and figure.
//!
//! See `README.md` for a tour and `EXPERIMENTS.md` for the paper-vs-measured
//! comparison.

pub use experiments;
pub use hybrid_mem;
pub use kingsguard;
pub use kingsguard_heap;
pub use oswp;
pub use workloads;
