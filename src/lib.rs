//! Write-rationing garbage collection for hybrid memories — umbrella crate.
//!
//! This crate re-exports the workspace's public surface so that examples and
//! downstream users can depend on a single crate:
//!
//! * [`kingsguard`] — the write-rationing collectors (GenImmix, KG-N, KG-W
//!   and the profile-guided KG-A),
//! * [`advice`] — profile-guided placement: site profiles, the on-disk
//!   profile format and advice tables,
//! * [`kingsguard_heap`] — the heap substrate (object model, spaces),
//! * [`hybrid_mem`] — the hybrid DRAM/PCM memory simulator,
//! * [`oswp`] — the OS Write Partitioning baseline,
//! * [`workloads`] — synthetic models of the paper's Java benchmarks,
//! * [`telemetry`] — low-overhead metrics: counters, histograms, GC-phase
//!   spans and the `.kgmetrics` JSON-lines run reports,
//! * [`fleet`] — the multi-tenant heap fleet: sharded driver, cross-heap
//!   wear levelling and the shared KG-D advice store,
//! * [`experiments`] — the harness that regenerates every table and figure
//!   and runs the two-phase profile→advise pipeline.
//!
//! See `README.md` for a tour.

#![forbid(unsafe_code)]

pub use advice;
pub use experiments;
pub use fleet;
pub use hybrid_mem;
pub use kingsguard;
pub use kingsguard_heap;
pub use oswp;
pub use telemetry;
pub use workloads;
