//! OS Write Partitioning (WP) baseline.
//!
//! Reproduces the state-of-the-art OS technique the paper compares against
//! (Section 2 and Section 6.1.3, after Zhang & Li and Ramos et al.): DRAM is
//! treated as a partition for highly mutated pages, identified with a
//! variation of the Multi-Queue algorithm for second-level buffer caches.
//!
//! * The OS places every new page in PCM first.
//! * The memory controller counts writes to each physical page; at `2^n`
//!   cumulative writes a page is promoted to the queue with rank `n`.
//! * Every OS quantum (10 ms) the OS migrates the pages in the four
//!   highest-ranked queues (of eight) from PCM to DRAM.
//! * Every 50 ms all DRAM-resident pages are demoted one queue; pages that
//!   fall out of the top queues are migrated back to PCM, optimising for
//!   phase behaviour.
//!
//! The policy operates purely on the [`hybrid_mem::MemorySystem`]'s per-page
//! write counters and page-migration primitive, so it can be layered under
//! any collector; the paper (and our reproduction) runs it under the
//! unmodified generational Immix collector with a PCM-only heap layout.

#![forbid(unsafe_code)]

pub mod multi_queue;
pub mod wp;

pub use multi_queue::{MultiQueue, MultiQueueConfig};
pub use wp::{WritePartitioning, WritePartitioningConfig, WritePartitioningStats};
