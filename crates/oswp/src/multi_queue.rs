//! Multi-Queue page ranking.
//!
//! A variation of the Multi-Queue algorithm of Zhou, Philbin and Li (USENIX
//! ATC 2001) used by OS Write Partitioning to rank pages by write intensity:
//! a page with `2^n` cumulative writes belongs to queue `n` (capped at the
//! highest queue). Demotion lowers a page one queue at a time, letting the
//! ranking forget stale phase behaviour.

use std::collections::HashMap;

use hybrid_mem::PageId;

/// Configuration of the Multi-Queue ranking.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MultiQueueConfig {
    /// Number of queues (the paper's recommended value is 8).
    pub queues: u8,
}

impl Default for MultiQueueConfig {
    fn default() -> Self {
        MultiQueueConfig { queues: 8 }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct PageRank {
    writes: u64,
    level: u8,
}

/// Ranks pages into queues by cumulative write count.
#[derive(Debug)]
pub struct MultiQueue {
    config: MultiQueueConfig,
    pages: HashMap<u64, PageRank>,
}

impl MultiQueue {
    /// Creates an empty ranking.
    pub fn new(config: MultiQueueConfig) -> Self {
        MultiQueue {
            config,
            pages: HashMap::new(),
        }
    }

    /// Number of queues.
    pub fn queue_count(&self) -> u8 {
        self.config.queues
    }

    /// Records `writes` additional writes to `page` and returns its new
    /// queue level.
    pub fn record_writes(&mut self, page: PageId, writes: u64) -> u8 {
        let max_level = self.config.queues - 1;
        let entry = self.pages.entry(page.0).or_default();
        entry.writes += writes;
        // Queue n holds pages with at least 2^n writes.
        let mut level = 0u8;
        while level < max_level && entry.writes >= 1u64 << (level + 1) {
            level += 1;
        }
        entry.level = entry.level.max(level);
        entry.level
    }

    /// Current queue level of `page` (0 if never written).
    pub fn level(&self, page: PageId) -> u8 {
        self.pages.get(&page.0).map(|p| p.level).unwrap_or(0)
    }

    /// Cumulative write count of `page`.
    pub fn writes(&self, page: PageId) -> u64 {
        self.pages.get(&page.0).map(|p| p.writes).unwrap_or(0)
    }

    /// Demotes `page` by one queue level (used on the periodic demotion
    /// pass). The cumulative write count is halved so that a page must keep
    /// being written to regain its rank.
    pub fn demote(&mut self, page: PageId) -> u8 {
        if let Some(entry) = self.pages.get_mut(&page.0) {
            entry.level = entry.level.saturating_sub(1);
            entry.writes /= 2;
            entry.level
        } else {
            0
        }
    }

    /// Pages whose queue level is at least `min_level`, in ascending page
    /// order (deterministic regardless of hash-map iteration order).
    pub fn pages_at_or_above(&self, min_level: u8) -> Vec<PageId> {
        let mut pages: Vec<PageId> = self
            .pages
            .iter()
            .filter(|(_, rank)| rank.level >= min_level)
            .map(|(&page, _)| PageId(page))
            .collect();
        pages.sort_unstable();
        pages
    }

    /// Number of pages ever ranked.
    pub fn tracked_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_grows_with_powers_of_two() {
        let mut mq = MultiQueue::new(MultiQueueConfig::default());
        let page = PageId(7);
        assert_eq!(mq.record_writes(page, 1), 0);
        assert_eq!(mq.record_writes(page, 1), 1); // 2 writes -> queue 1
        assert_eq!(mq.record_writes(page, 2), 2); // 4 writes -> queue 2
        assert_eq!(mq.record_writes(page, 4), 3); // 8 writes -> queue 3
        assert_eq!(mq.writes(page), 8);
    }

    #[test]
    fn level_saturates_at_top_queue() {
        let mut mq = MultiQueue::new(MultiQueueConfig { queues: 8 });
        let page = PageId(1);
        let level = mq.record_writes(page, 1 << 20);
        assert_eq!(level, 7);
    }

    #[test]
    fn demote_lowers_level_and_halves_count() {
        let mut mq = MultiQueue::new(MultiQueueConfig::default());
        let page = PageId(3);
        mq.record_writes(page, 64);
        let before = mq.level(page);
        let after = mq.demote(page);
        assert_eq!(after, before - 1);
        assert_eq!(mq.writes(page), 32);
        // Demoting an unknown page is a no-op at level 0.
        assert_eq!(mq.demote(PageId(999)), 0);
    }

    #[test]
    fn pages_at_or_above_selects_hot_pages() {
        let mut mq = MultiQueue::new(MultiQueueConfig::default());
        mq.record_writes(PageId(1), 100); // hot
        mq.record_writes(PageId(2), 2); // warm
        mq.record_writes(PageId(3), 1); // cold
        let hot = mq.pages_at_or_above(4);
        assert_eq!(hot, vec![PageId(1)]);
        assert_eq!(mq.tracked_pages(), 3);
    }

    #[test]
    fn unknown_page_is_level_zero() {
        let mq = MultiQueue::new(MultiQueueConfig::default());
        assert_eq!(mq.level(PageId(42)), 0);
        assert_eq!(mq.writes(PageId(42)), 0);
    }
}
