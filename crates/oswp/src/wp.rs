//! The Write Partitioning migration policy.

use std::collections::HashSet;

use hybrid_mem::{MemoryKind, MemorySystem, PageId, PAGE_SIZE};

use crate::multi_queue::{MultiQueue, MultiQueueConfig};

/// Configuration of OS Write Partitioning (the paper's recommended values).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WritePartitioningConfig {
    /// Multi-Queue configuration (8 queues).
    pub multi_queue: MultiQueueConfig,
    /// OS mapping quantum in milliseconds (10 ms): how often page write
    /// counts are folded into the ranking and hot pages are migrated.
    pub quantum_ms: u64,
    /// Pages in the `migrate_queues` highest-ranked queues migrate to DRAM
    /// (4 of the 8 queues).
    pub migrate_queues: u8,
    /// Demotion interval in milliseconds (50 ms): all DRAM pages drop one
    /// queue; pages falling out of the migration set return to PCM.
    pub demote_interval_ms: u64,
    /// Maximum number of pages the DRAM partition may hold.
    pub dram_capacity_pages: usize,
}

impl Default for WritePartitioningConfig {
    fn default() -> Self {
        WritePartitioningConfig {
            multi_queue: MultiQueueConfig::default(),
            quantum_ms: 10,
            migrate_queues: 4,
            demote_interval_ms: 50,
            dram_capacity_pages: (64 << 20) / PAGE_SIZE,
        }
    }
}

/// Statistics of the Write Partitioning policy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WritePartitioningStats {
    /// Pages migrated from PCM to DRAM.
    pub promotions: u64,
    /// Pages migrated from DRAM back to PCM.
    pub demotions: u64,
    /// OS quanta processed.
    pub quanta: u64,
    /// Peak number of pages resident in the DRAM partition.
    pub peak_dram_pages: usize,
}

/// The OS Write Partitioning policy driver.
///
/// Call [`WritePartitioning::advance`] with a monotonically increasing
/// simulated time; the driver consumes the memory controller's per-page
/// write counters at every OS quantum and performs migrations through
/// [`MemorySystem::migrate_page`], which also accounts the migration write
/// traffic (Figure 7's "Migrations" component).
#[derive(Debug)]
pub struct WritePartitioning {
    config: WritePartitioningConfig,
    ranking: MultiQueue,
    dram_pages: HashSet<u64>,
    last_quantum_ms: u64,
    last_demotion_ms: u64,
    stats: WritePartitioningStats,
}

impl WritePartitioning {
    /// Creates a policy driver with `config`.
    pub fn new(config: WritePartitioningConfig) -> Self {
        WritePartitioning {
            ranking: MultiQueue::new(config.multi_queue),
            config,
            dram_pages: HashSet::new(),
            last_quantum_ms: 0,
            last_demotion_ms: 0,
            stats: WritePartitioningStats::default(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &WritePartitioningConfig {
        &self.config
    }

    /// Policy statistics so far.
    pub fn stats(&self) -> WritePartitioningStats {
        self.stats
    }

    /// Number of pages currently held in the DRAM partition.
    pub fn dram_resident_pages(&self) -> usize {
        self.dram_pages.len()
    }

    /// Bytes currently held in the DRAM partition.
    pub fn dram_resident_bytes(&self) -> u64 {
        (self.dram_pages.len() * PAGE_SIZE) as u64
    }

    /// The rank threshold above which pages live in DRAM.
    fn migration_threshold(&self) -> u8 {
        self.config.multi_queue.queues - self.config.migrate_queues
    }

    /// Advances simulated time to `now_ms`, running any OS quanta and
    /// demotion passes that have elapsed.
    pub fn advance(&mut self, mem: &mut MemorySystem, now_ms: u64) {
        while now_ms.saturating_sub(self.last_quantum_ms) >= self.config.quantum_ms {
            self.last_quantum_ms += self.config.quantum_ms;
            self.run_quantum(mem);
            if self.last_quantum_ms.saturating_sub(self.last_demotion_ms) >= self.config.demote_interval_ms {
                self.last_demotion_ms = self.last_quantum_ms;
                self.run_demotion(mem);
            }
        }
    }

    /// One OS quantum: fold new write counts into the ranking and migrate
    /// hot PCM pages to DRAM.
    fn run_quantum(&mut self, mem: &mut MemorySystem) {
        self.stats.quanta += 1;
        let page_writes = mem.controller_mut().take_page_writes();
        for (page, writes) in page_writes {
            self.ranking.record_writes(PageId(page), writes);
        }
        let threshold = self.migration_threshold();
        for page in self.ranking.pages_at_or_above(threshold) {
            if self.dram_pages.len() >= self.config.dram_capacity_pages {
                break;
            }
            if self.dram_pages.contains(&page.0) {
                continue;
            }
            if mem.page_map().kind_of_page(page) != Some(MemoryKind::Pcm) {
                continue;
            }
            mem.migrate_page(page, MemoryKind::Dram);
            self.dram_pages.insert(page.0);
            self.stats.promotions += 1;
        }
        self.stats.peak_dram_pages = self.stats.peak_dram_pages.max(self.dram_pages.len());
    }

    /// One demotion pass: every DRAM page drops one queue; pages that fall
    /// below the migration threshold move back to PCM.
    fn run_demotion(&mut self, mem: &mut MemorySystem) {
        let threshold = self.migration_threshold();
        let mut resident: Vec<u64> = self.dram_pages.iter().copied().collect();
        resident.sort_unstable();
        for raw in resident {
            let page = PageId(raw);
            let level = self.ranking.demote(page);
            if level < threshold {
                // The page no longer earns its DRAM slot: migrate it back.
                if mem.page_map().kind_of_page(page) == Some(MemoryKind::Dram) {
                    mem.migrate_page(page, MemoryKind::Pcm);
                }
                self.dram_pages.remove(&raw);
                self.stats.demotions += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_mem::{Address, MemoryConfig, Phase};

    fn memory_with_pcm_pages(pages: usize) -> (MemorySystem, Address) {
        let mut mem = MemorySystem::new(MemoryConfig::architecture_independent());
        let base = mem.reserve_extent("wp-test", pages * PAGE_SIZE);
        mem.map_pages(base, pages, MemoryKind::Pcm, 0);
        (mem, base)
    }

    fn hammer(mem: &mut MemorySystem, addr: Address, writes: usize) {
        for i in 0..writes {
            mem.write_u64(addr.add((i % 32) * 64), i as u64, Phase::Mutator);
        }
    }

    #[test]
    fn hot_pcm_pages_are_promoted_to_dram() {
        let (mut mem, base) = memory_with_pcm_pages(8);
        let mut wp = WritePartitioning::new(WritePartitioningConfig::default());
        hammer(&mut mem, base, 100); // page 0 becomes hot
        mem.write_u64(base.add(PAGE_SIZE), 1, Phase::Mutator); // page 1 cold
        wp.advance(&mut mem, 10);
        assert_eq!(
            mem.kind_of(base),
            MemoryKind::Dram,
            "hot page must migrate to DRAM"
        );
        assert_eq!(
            mem.kind_of(base.add(PAGE_SIZE)),
            MemoryKind::Pcm,
            "cold page stays in PCM"
        );
        assert_eq!(wp.stats().promotions, 1);
        assert_eq!(wp.dram_resident_pages(), 1);
        assert_eq!(wp.dram_resident_bytes(), PAGE_SIZE as u64);
    }

    #[test]
    fn idle_dram_pages_are_demoted_back_to_pcm() {
        let (mut mem, base) = memory_with_pcm_pages(4);
        let mut wp = WritePartitioning::new(WritePartitioningConfig::default());
        hammer(&mut mem, base, 40);
        wp.advance(&mut mem, 10);
        assert_eq!(mem.kind_of(base), MemoryKind::Dram);
        // No further writes: repeated demotion passes push it back to PCM.
        wp.advance(&mut mem, 500);
        assert_eq!(mem.kind_of(base), MemoryKind::Pcm, "idle page must return to PCM");
        assert!(wp.stats().demotions >= 1);
        assert_eq!(wp.dram_resident_pages(), 0);
    }

    #[test]
    fn migrations_are_accounted_as_pcm_and_dram_traffic() {
        let (mut mem, base) = memory_with_pcm_pages(2);
        let mut wp = WritePartitioning::new(WritePartitioningConfig::default());
        hammer(&mut mem, base, 64);
        wp.advance(&mut mem, 10);
        wp.advance(&mut mem, 600); // demote back to PCM
        let stats = mem.stats();
        assert!(
            stats.migration_writes(MemoryKind::Dram) > 0,
            "promotion writes the page into DRAM"
        );
        assert!(
            stats.migration_writes(MemoryKind::Pcm) > 0,
            "demotion writes the page back into PCM"
        );
    }

    #[test]
    fn dram_capacity_is_respected() {
        let (mut mem, base) = memory_with_pcm_pages(8);
        let config = WritePartitioningConfig {
            dram_capacity_pages: 2,
            ..Default::default()
        };
        let mut wp = WritePartitioning::new(config);
        for p in 0..8 {
            hammer(&mut mem, base.add(p * PAGE_SIZE), 64);
        }
        wp.advance(&mut mem, 10);
        assert!(wp.dram_resident_pages() <= 2);
        assert!(wp.stats().peak_dram_pages <= 2);
    }

    #[test]
    fn quanta_fire_per_interval() {
        let (mut mem, _) = memory_with_pcm_pages(1);
        let mut wp = WritePartitioning::new(WritePartitioningConfig::default());
        wp.advance(&mut mem, 9);
        assert_eq!(wp.stats().quanta, 0);
        wp.advance(&mut mem, 35);
        assert_eq!(wp.stats().quanta, 3);
        wp.advance(&mut mem, 35);
        assert_eq!(wp.stats().quanta, 3, "time must advance for more quanta");
    }
}
