//! Simulated virtual addresses and memory-geometry constants.
//!
//! The heap lives in a simulated 64-bit virtual address space. [`Address`] is
//! a thin newtype over `u64` providing the arithmetic and alignment helpers
//! used throughout the workspace. The geometry constants mirror the values
//! used by the paper (Section 3 and Table 2): 4 KB OS pages, 256 B Immix/PCM
//! lines, 32 KB Immix blocks and 64 B processor cache lines.

use std::fmt;

/// Size of an OS page in bytes. Requests to the simulated OS for DRAM or PCM
/// memory are made at this granularity (Section 4.1 of the paper).
pub const PAGE_SIZE: usize = 4096;

/// Size of an Immix line in bytes. The paper matches the Immix line size to
/// the PCM line size (256 bytes).
pub const LINE_SIZE: usize = 256;

/// Size of an Immix block in bytes (32 KB, a multiple of the page size).
pub const BLOCK_SIZE: usize = 32 * 1024;

/// Size of a processor cache line in bytes.
pub const CACHE_LINE_SIZE: usize = 64;

/// Number of Immix lines per block.
pub const LINES_PER_BLOCK: usize = BLOCK_SIZE / LINE_SIZE;

/// Number of OS pages per Immix block.
pub const PAGES_PER_BLOCK: usize = BLOCK_SIZE / PAGE_SIZE;

/// A simulated virtual address.
///
/// Addresses are plain 64-bit values; `Address(0)` is the null address and is
/// never mapped. All arithmetic helpers are wrapping-free and panic on
/// overflow in debug builds, like ordinary integer arithmetic.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Address(pub u64);

impl Address {
    /// The null address. Never mapped; used as the "no object" sentinel.
    pub const ZERO: Address = Address(0);

    /// Creates an address from a raw 64-bit value.
    pub const fn new(raw: u64) -> Self {
        Address(raw)
    }

    /// Returns the raw 64-bit value of this address.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns `true` if this is the null address.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Returns this address advanced by `offset` bytes.
    pub const fn add(self, offset: usize) -> Self {
        Address(self.0 + offset as u64)
    }

    /// Returns this address moved back by `offset` bytes.
    pub const fn sub(self, offset: usize) -> Self {
        Address(self.0 - offset as u64)
    }

    /// Byte distance from `other` to `self`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `other > self`.
    pub fn diff(self, other: Address) -> usize {
        debug_assert!(self.0 >= other.0, "address underflow: {self:?} - {other:?}");
        (self.0 - other.0) as usize
    }

    /// Rounds this address down to a multiple of `align` (a power of two).
    pub const fn align_down(self, align: usize) -> Self {
        Address(self.0 & !(align as u64 - 1))
    }

    /// Rounds this address up to a multiple of `align` (a power of two).
    pub const fn align_up(self, align: usize) -> Self {
        Address((self.0 + align as u64 - 1) & !(align as u64 - 1))
    }

    /// Returns `true` if this address is a multiple of `align`.
    pub const fn is_aligned(self, align: usize) -> bool {
        self.0.is_multiple_of(align as u64)
    }

    /// The page containing this address.
    pub const fn page(self) -> PageId {
        PageId(self.0 / PAGE_SIZE as u64)
    }

    /// The cache line index containing this address.
    pub const fn cache_line(self) -> u64 {
        self.0 / CACHE_LINE_SIZE as u64
    }

    /// The Immix/PCM line index containing this address.
    pub const fn line(self) -> u64 {
        self.0 / LINE_SIZE as u64
    }

    /// The Immix block index containing this address.
    pub const fn block(self) -> u64 {
        self.0 / BLOCK_SIZE as u64
    }
}

impl fmt::Debug for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Address({:#x})", self.0)
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Address {
    fn from(raw: u64) -> Self {
        Address(raw)
    }
}

impl From<Address> for u64 {
    fn from(addr: Address) -> Self {
        addr.0
    }
}

/// Identifier of a 4 KB page in the simulated address space.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct PageId(pub u64);

impl PageId {
    /// The first address of this page.
    pub const fn start(self) -> Address {
        Address(self.0 * PAGE_SIZE as u64)
    }

    /// The page immediately following this one.
    pub const fn next(self) -> PageId {
        PageId(self.0 + 1)
    }
}

/// Rounds `bytes` up to a whole number of pages.
pub const fn pages_for(bytes: usize) -> usize {
    bytes.div_ceil(PAGE_SIZE)
}

/// Rounds `bytes` up to the next multiple of `align` (a power of two).
pub const fn align_up_usize(bytes: usize, align: usize) -> usize {
    (bytes + align - 1) & !(align - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_round_trips() {
        let a = Address::new(0x1_0037);
        assert_eq!(a.align_down(16), Address::new(0x1_0030));
        assert_eq!(a.align_up(16), Address::new(0x1_0040));
        assert!(a.align_up(16).is_aligned(16));
        assert!(!a.is_aligned(16));
    }

    #[test]
    fn align_on_boundary_is_identity() {
        let a = Address::new(0x4000);
        assert_eq!(a.align_down(PAGE_SIZE), a);
        assert_eq!(a.align_up(PAGE_SIZE), a);
    }

    #[test]
    fn arithmetic_and_diff() {
        let a = Address::new(0x1000);
        let b = a.add(24);
        assert_eq!(b.diff(a), 24);
        assert_eq!(b.sub(24), a);
    }

    #[test]
    fn page_line_block_indices() {
        let a = Address::new(BLOCK_SIZE as u64 * 3 + 777);
        assert_eq!(a.block(), 3);
        assert_eq!(a.page().0, (BLOCK_SIZE as u64 * 3 + 777) / PAGE_SIZE as u64);
        assert_eq!(a.line(), (BLOCK_SIZE as u64 * 3 + 777) / LINE_SIZE as u64);
    }

    #[test]
    fn geometry_constants_are_consistent() {
        assert_eq!(LINES_PER_BLOCK, 128);
        assert_eq!(PAGES_PER_BLOCK, 8);
        assert_eq!(BLOCK_SIZE % PAGE_SIZE, 0);
        assert_eq!(PAGE_SIZE % LINE_SIZE, 0);
        assert_eq!(LINE_SIZE % CACHE_LINE_SIZE, 0);
    }

    #[test]
    fn pages_for_rounds_up() {
        assert_eq!(pages_for(1), 1);
        assert_eq!(pages_for(PAGE_SIZE), 1);
        assert_eq!(pages_for(PAGE_SIZE + 1), 2);
        assert_eq!(pages_for(0), 0);
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(format!("{}", Address::new(0xff)), "0xff");
    }
}
