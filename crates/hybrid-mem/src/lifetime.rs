//! PCM lifetime model.
//!
//! Reproduces Equation 1 of the paper:
//!
//! ```text
//!         S × E
//! Y  =  ─────────
//!        B × 2^25
//! ```
//!
//! where `S` is the PCM capacity in bytes, `E` the cell endurance in writes,
//! `B` the application write rate in bytes per second, and `2^25` ≈ the
//! number of seconds in a year. The model is optimistic: it assumes ideal
//! wear-leveling spreads writes uniformly over the full capacity, which is
//! exactly the assumption the paper makes (Section 5.2.2).

/// Seconds-per-year constant used by the paper (2^25 ≈ 3.36 × 10^7).
pub const SECONDS_PER_YEAR: f64 = (1u64 << 25) as f64;

/// PCM endurance levels (writes per cell) explored in Figure 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Endurance {
    /// Pessimistic prototype endurance: 10 million writes per cell.
    Low10M,
    /// The paper's default endurance: 30 million writes per cell.
    Mid30M,
    /// Optimistic endurance: 100 million writes per cell.
    High100M,
}

impl Endurance {
    /// All endurance levels in Figure 1 order.
    pub const ALL: [Endurance; 3] = [Endurance::Low10M, Endurance::Mid30M, Endurance::High100M];

    /// Writes per cell for this endurance level.
    pub fn writes_per_cell(self) -> u64 {
        match self {
            Endurance::Low10M => 10_000_000,
            Endurance::Mid30M => 30_000_000,
            Endurance::High100M => 100_000_000,
        }
    }

    /// Label used in reports ("10 M", "30 M", "100 M").
    pub fn label(self) -> &'static str {
        match self {
            Endurance::Low10M => "10 M",
            Endurance::Mid30M => "30 M",
            Endurance::High100M => "100 M",
        }
    }
}

/// Computes the PCM lifetime in years for a memory of `capacity_bytes`, cell
/// endurance `endurance_writes` and a sustained write rate of
/// `write_rate_bytes_per_s`.
///
/// Returns `f64::INFINITY` when the write rate is zero.
pub fn lifetime_years(capacity_bytes: u64, endurance_writes: u64, write_rate_bytes_per_s: f64) -> f64 {
    if write_rate_bytes_per_s <= 0.0 {
        return f64::INFINITY;
    }
    (capacity_bytes as f64 * endurance_writes as f64) / (write_rate_bytes_per_s * SECONDS_PER_YEAR)
}

/// Convenience wrapper bundling the capacity and endurance of a PCM device.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LifetimeModel {
    /// PCM capacity in bytes (32 GB in the paper).
    pub capacity_bytes: u64,
    /// Cell endurance in writes.
    pub endurance_writes: u64,
}

impl LifetimeModel {
    /// The paper's default: 32 GB PCM with 30 M writes-per-cell endurance.
    pub fn paper_default() -> Self {
        LifetimeModel {
            capacity_bytes: 32 << 30,
            endurance_writes: Endurance::Mid30M.writes_per_cell(),
        }
    }

    /// Same capacity with a different endurance level.
    pub fn with_endurance(self, endurance: Endurance) -> Self {
        LifetimeModel {
            endurance_writes: endurance.writes_per_cell(),
            ..self
        }
    }

    /// Lifetime in years at `write_rate_bytes_per_s`.
    pub fn years(&self, write_rate_bytes_per_s: f64) -> f64 {
        lifetime_years(self.capacity_bytes, self.endurance_writes, write_rate_bytes_per_s)
    }

    /// Lifetime in years given total bytes written over `elapsed_s` seconds.
    pub fn years_from_traffic(&self, bytes_written: u64, elapsed_s: f64) -> f64 {
        if elapsed_s <= 0.0 {
            return f64::INFINITY;
        }
        self.years(bytes_written as f64 / elapsed_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_figure1_sanity() {
        // Figure 1: a 32 GB PCM-only system with 30 M endurance and the
        // paper's average write rate lasts ~4 years; ~13 years at 100 M.
        // The paper's average estimated write rate (Table 3) is ~11 GB/s.
        let avg_rate = 8.0e9;
        let model = LifetimeModel::paper_default();
        let y30 = model.years(avg_rate);
        assert!((2.0..7.0).contains(&y30), "expected ~4 years, got {y30}");
        let y100 = model.with_endurance(Endurance::High100M).years(avg_rate);
        assert!((9.0..16.0).contains(&y100), "expected ~13 years, got {y100}");
        assert!(model.with_endurance(Endurance::Low10M).years(avg_rate) < y30);
    }

    #[test]
    fn lifetime_is_linear_in_write_rate() {
        let model = LifetimeModel::paper_default();
        let y1 = model.years(1e9);
        let y2 = model.years(2e9);
        assert!((y1 / y2 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn zero_rate_is_infinite() {
        assert!(lifetime_years(32 << 30, 30_000_000, 0.0).is_infinite());
        assert!(LifetimeModel::paper_default()
            .years_from_traffic(100, 0.0)
            .is_infinite());
    }

    #[test]
    fn endurance_levels_order() {
        assert!(Endurance::Low10M.writes_per_cell() < Endurance::Mid30M.writes_per_cell());
        assert!(Endurance::Mid30M.writes_per_cell() < Endurance::High100M.writes_per_cell());
        assert_eq!(Endurance::ALL.len(), 3);
        assert_eq!(Endurance::Mid30M.label(), "30 M");
    }

    #[test]
    fn traffic_helper_matches_rate_form() {
        let model = LifetimeModel::paper_default();
        let via_rate = model.years(5e9);
        let via_traffic = model.years_from_traffic(10_000_000_000, 2.0);
        assert!((via_rate - via_traffic).abs() / via_rate < 1e-12);
    }
}
