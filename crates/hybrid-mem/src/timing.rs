//! Analytic execution-time model.
//!
//! The paper evaluates performance with the cycle-level Sniper simulator. We
//! substitute a mechanistic first-order model: execution time is the sum of a
//! compute component (application work plus collector and write-barrier work,
//! expressed in abstract "operations" charged at a fixed CPI) and a memory
//! component (LLC misses serviced at device latency). This preserves the
//! relative effects the paper reports — PCM latency inflating execution time,
//! KG-W's extra copying and monitoring overheads — without claiming absolute
//! cycle accuracy.

use crate::devices::{self, CPU_FREQ_GHZ};
use crate::stats::MemoryStats;
use crate::system::MemoryKind;

/// Abstract work performed outside the memory system, in "operations".
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WorkCounts {
    /// Application operations (allocations, field accesses, compute).
    pub mutator_ops: u64,
    /// Generational write-barrier executions (remembered-set part).
    pub barrier_remset_ops: u64,
    /// Object-monitoring barrier executions (KG-W write-bit part).
    pub barrier_monitor_ops: u64,
    /// Collector operations (tracing, copying) excluding memory traffic.
    pub gc_ops: u64,
}

impl WorkCounts {
    /// Sum of all operation classes.
    pub fn total(&self) -> u64 {
        self.mutator_ops + self.barrier_remset_ops + self.barrier_monitor_ops + self.gc_ops
    }
}

/// Wall-clock breakdown of a run, in seconds.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TimeBreakdown {
    /// Time executing application operations.
    pub mutator_s: f64,
    /// Time executing the remembered-set half of the write barrier.
    pub remset_s: f64,
    /// Time executing the object-write-monitoring half of the write barrier.
    pub monitoring_s: f64,
    /// Time executing collector work (excluding its memory stalls).
    pub gc_s: f64,
    /// Memory stall time attributable to DRAM accesses.
    pub dram_s: f64,
    /// Memory stall time attributable to PCM accesses.
    pub pcm_s: f64,
}

impl TimeBreakdown {
    /// Total execution time in seconds.
    pub fn total_s(&self) -> f64 {
        self.mutator_s + self.remset_s + self.monitoring_s + self.gc_s + self.dram_s + self.pcm_s
    }

    /// Memory stall time in seconds.
    pub fn memory_s(&self) -> f64 {
        self.dram_s + self.pcm_s
    }
}

/// First-order mechanistic execution-time model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExecutionModel {
    /// Cycles charged per abstract operation.
    pub cycles_per_op: f64,
    /// Fraction of LLC-miss latency that is not hidden by out-of-order
    /// execution (memory-level parallelism factor).
    pub exposed_miss_fraction: f64,
    /// Processor frequency in GHz.
    pub freq_ghz: f64,
}

impl Default for ExecutionModel {
    fn default() -> Self {
        ExecutionModel {
            cycles_per_op: 16.0,
            // A 128-entry ROB with up to 10 outstanding L1-D misses and
            // line-interleaved FR-FCFS scheduling hides most of each miss's
            // latency; only a small fraction remains exposed. The value is
            // calibrated so that the PCM-only system adds ~70 % to the
            // DRAM-only execution time, as the paper reports (Section 6.1.5).
            exposed_miss_fraction: 0.04,
            freq_ghz: CPU_FREQ_GHZ,
        }
    }
}

impl ExecutionModel {
    /// Computes the execution-time breakdown from abstract work counts and
    /// the memory statistics of a run.
    pub fn breakdown(&self, work: &WorkCounts, mem: &MemoryStats) -> TimeBreakdown {
        let cycle_s = 1e-9 / self.freq_ghz;
        let op_s = |ops: u64| ops as f64 * self.cycles_per_op * cycle_s;
        let stall = |kind: MemoryKind| {
            let p = devices::params_for(kind);
            let reads = mem.reads(kind) as f64;
            let writes = mem.writes(kind) as f64;
            // Reads stall the pipeline; writes mostly stall through write-queue
            // back-pressure, which grows with the write latency. Weight writes
            // at half their device latency.
            self.exposed_miss_fraction
                * (reads * p.read_latency_ns + 0.5 * writes * p.write_latency_ns)
                * 1e-9
        };
        TimeBreakdown {
            mutator_s: op_s(work.mutator_ops),
            remset_s: op_s(work.barrier_remset_ops),
            monitoring_s: op_s(work.barrier_monitor_ops),
            gc_s: op_s(work.gc_ops),
            dram_s: stall(MemoryKind::Dram),
            pcm_s: stall(MemoryKind::Pcm),
        }
    }

    /// Total execution time in seconds.
    pub fn execution_time_s(&self, work: &WorkCounts, mem: &MemoryStats) -> f64 {
        self.breakdown(work, mem).total_s()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_with(pcm_reads: u64, pcm_writes: u64, dram_reads: u64, dram_writes: u64) -> MemoryStats {
        let mut s = MemoryStats::default();
        s.reads[MemoryKind::Pcm as usize] = pcm_reads;
        s.writes[MemoryKind::Pcm as usize] = pcm_writes;
        s.reads[MemoryKind::Dram as usize] = dram_reads;
        s.writes[MemoryKind::Dram as usize] = dram_writes;
        s
    }

    #[test]
    fn pcm_traffic_is_slower_than_dram_traffic() {
        let model = ExecutionModel::default();
        let work = WorkCounts {
            mutator_ops: 1000,
            ..Default::default()
        };
        let on_dram = model.execution_time_s(&work, &stats_with(0, 0, 10_000, 10_000));
        let on_pcm = model.execution_time_s(&work, &stats_with(10_000, 10_000, 0, 0));
        assert!(
            on_pcm > on_dram * 2.0,
            "PCM run must be much slower: {on_pcm} vs {on_dram}"
        );
    }

    #[test]
    fn breakdown_sums_to_total() {
        let model = ExecutionModel::default();
        let work = WorkCounts {
            mutator_ops: 500,
            barrier_remset_ops: 50,
            barrier_monitor_ops: 25,
            gc_ops: 100,
        };
        let stats = stats_with(100, 200, 300, 400);
        let b = model.breakdown(&work, &stats);
        let sum = b.mutator_s + b.remset_s + b.monitoring_s + b.gc_s + b.dram_s + b.pcm_s;
        assert!((sum - b.total_s()).abs() < 1e-15);
        assert!(b.memory_s() > 0.0);
    }

    #[test]
    fn more_work_takes_longer() {
        let model = ExecutionModel::default();
        let stats = MemoryStats::default();
        let small = WorkCounts {
            mutator_ops: 10,
            ..Default::default()
        };
        let large = WorkCounts {
            mutator_ops: 10_000,
            ..Default::default()
        };
        assert!(model.execution_time_s(&large, &stats) > model.execution_time_s(&small, &stats));
    }

    #[test]
    fn work_counts_total() {
        let w = WorkCounts {
            mutator_ops: 1,
            barrier_remset_ops: 2,
            barrier_monitor_ops: 3,
            gc_ops: 4,
        };
        assert_eq!(w.total(), 10);
    }
}
