//! Byte-level backing store for the simulated address space.
//!
//! The simulated virtual address space is sparse: spaces reserve large
//! extents but only touch a few megabytes. [`ChunkedMemory`] materialises
//! fixed-size chunks lazily on first write so that reserving a 32 GB PCM
//! extent costs nothing until the heap actually uses it.

use std::collections::HashMap;

use crate::address::Address;

/// Size of a lazily-allocated backing chunk in bytes (64 KB).
pub const CHUNK_SIZE: usize = 64 * 1024;

/// Sparse, chunked byte store indexed by simulated virtual address.
///
/// Reads from never-written memory return zero, matching the zero-initialised
/// pages a real OS hands to the JVM.
#[derive(Debug, Default)]
pub struct ChunkedMemory {
    chunks: HashMap<u64, Box<[u8]>>,
}

impl ChunkedMemory {
    /// Creates an empty backing store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of chunks that have been materialised.
    pub fn resident_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Bytes of host memory used by materialised chunks.
    pub fn resident_bytes(&self) -> usize {
        self.chunks.len() * CHUNK_SIZE
    }

    fn chunk_index(addr: Address) -> (u64, usize) {
        (
            addr.raw() / CHUNK_SIZE as u64,
            (addr.raw() % CHUNK_SIZE as u64) as usize,
        )
    }

    fn chunk_mut(&mut self, index: u64) -> &mut [u8] {
        self.chunks
            .entry(index)
            .or_insert_with(|| vec![0u8; CHUNK_SIZE].into_boxed_slice())
    }

    /// Reads a little-endian `u64` at `addr`.
    pub fn read_u64(&self, addr: Address) -> u64 {
        let mut buf = [0u8; 8];
        self.read_bytes(addr, &mut buf);
        u64::from_le_bytes(buf)
    }

    /// Writes a little-endian `u64` at `addr`.
    pub fn write_u64(&mut self, addr: Address, value: u64) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Reads `buf.len()` bytes starting at `addr` into `buf`.
    pub fn read_bytes(&self, addr: Address, buf: &mut [u8]) {
        let mut copied = 0;
        while copied < buf.len() {
            let (index, offset) = Self::chunk_index(addr.add(copied));
            let take = (CHUNK_SIZE - offset).min(buf.len() - copied);
            match self.chunks.get(&index) {
                Some(chunk) => buf[copied..copied + take].copy_from_slice(&chunk[offset..offset + take]),
                None => buf[copied..copied + take].fill(0),
            }
            copied += take;
        }
    }

    /// Writes `buf` starting at `addr`.
    pub fn write_bytes(&mut self, addr: Address, buf: &[u8]) {
        let mut copied = 0;
        while copied < buf.len() {
            let (index, offset) = Self::chunk_index(addr.add(copied));
            let take = (CHUNK_SIZE - offset).min(buf.len() - copied);
            let chunk = self.chunk_mut(index);
            chunk[offset..offset + take].copy_from_slice(&buf[copied..copied + take]);
            copied += take;
        }
    }

    /// Copies `len` bytes from `src` to `dst` (the ranges may not overlap in
    /// practice because copies always target a fresh allocation).
    pub fn copy(&mut self, src: Address, dst: Address, len: usize) {
        let mut buf = vec![0u8; len];
        self.read_bytes(src, &mut buf);
        self.write_bytes(dst, &buf);
    }

    /// Fills `len` bytes starting at `addr` with `value`.
    pub fn fill(&mut self, addr: Address, len: usize, value: u8) {
        let buf = vec![value; len];
        self.write_bytes(addr, &buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_memory_reads_zero() {
        let mem = ChunkedMemory::new();
        assert_eq!(mem.read_u64(Address::new(0x1234_5678)), 0);
        let mut buf = [1u8; 32];
        mem.read_bytes(Address::new(0x9999), &mut buf);
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn u64_round_trip() {
        let mut mem = ChunkedMemory::new();
        let addr = Address::new(0xAB_CDE0);
        mem.write_u64(addr, 0x0123_4567_89AB_CDEF);
        assert_eq!(mem.read_u64(addr), 0x0123_4567_89AB_CDEF);
    }

    #[test]
    fn writes_spanning_chunk_boundary() {
        let mut mem = ChunkedMemory::new();
        let addr = Address::new(CHUNK_SIZE as u64 - 4);
        let data: Vec<u8> = (0..16u8).collect();
        mem.write_bytes(addr, &data);
        let mut out = [0u8; 16];
        mem.read_bytes(addr, &mut out);
        assert_eq!(&out[..], &data[..]);
        assert_eq!(mem.resident_chunks(), 2);
    }

    #[test]
    fn copy_moves_bytes() {
        let mut mem = ChunkedMemory::new();
        let src = Address::new(0x1000);
        let dst = Address::new(0x8000);
        let data: Vec<u8> = (0..255u8).collect();
        mem.write_bytes(src, &data);
        mem.copy(src, dst, data.len());
        let mut out = vec![0u8; data.len()];
        mem.read_bytes(dst, &mut out);
        assert_eq!(out, data);
    }

    #[test]
    fn fill_sets_every_byte() {
        let mut mem = ChunkedMemory::new();
        mem.fill(Address::new(0x2000), 100, 0xAA);
        let mut out = [0u8; 100];
        mem.read_bytes(Address::new(0x2000), &mut out);
        assert!(out.iter().all(|&b| b == 0xAA));
    }

    #[test]
    fn resident_bytes_tracks_chunks() {
        let mut mem = ChunkedMemory::new();
        assert_eq!(mem.resident_bytes(), 0);
        mem.write_u64(Address::new(8), 1);
        assert_eq!(mem.resident_bytes(), CHUNK_SIZE);
    }
}
