//! Set-associative write-back cache hierarchy.
//!
//! The paper stresses that modelling the cache hierarchy matters because
//! caches absorb writes and are "the first line of defense in protecting PCM
//! from writes" (Section 6.1). This module implements a configurable
//! multi-level, set-associative, write-allocate, write-back hierarchy with
//! LRU replacement. Each cache line remembers the *phase* (mutator, nursery
//! GC, observer GC, major GC, runtime) that last wrote it so that when a
//! dirty line is finally evicted to memory the resulting device write can be
//! attributed to the phase that produced it — the mechanism behind Figure 10
//! of the paper.

use crate::address::CACHE_LINE_SIZE;
use crate::system::Phase;

/// Configuration of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheLevelConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
}

impl CacheLevelConfig {
    /// Number of sets implied by the capacity, associativity and line size.
    pub fn sets(&self) -> usize {
        (self.capacity_bytes / CACHE_LINE_SIZE / self.ways).max(1)
    }
}

/// Configuration of the whole hierarchy (closest level first).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Cache levels ordered from L1 to LLC.
    pub levels: Vec<CacheLevelConfig>,
}

impl CacheConfig {
    /// The paper's simulated hierarchy (Table 2): 32 KB 8-way L1-D, 256 KB
    /// 8-way L2 and a shared 4 MB 16-way L3.
    pub fn paper_default() -> Self {
        CacheConfig {
            levels: vec![
                CacheLevelConfig {
                    capacity_bytes: 32 * 1024,
                    ways: 8,
                },
                CacheLevelConfig {
                    capacity_bytes: 256 * 1024,
                    ways: 8,
                },
                CacheLevelConfig {
                    capacity_bytes: 4 * 1024 * 1024,
                    ways: 16,
                },
            ],
        }
    }

    /// A small hierarchy useful for unit tests and scaled-down workloads: the
    /// capacities are divided by `divisor` (at least one set per level).
    pub fn scaled(divisor: usize) -> Self {
        let mut cfg = Self::paper_default();
        for level in &mut cfg.levels {
            level.capacity_bytes = (level.capacity_bytes / divisor).max(level.ways * CACHE_LINE_SIZE);
        }
        cfg
    }
}

/// A memory-side event produced by the hierarchy: a device read (miss fill)
/// or a device write (dirty eviction / flush).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemEvent {
    /// Cache-line index (address / 64).
    pub line: u64,
    /// `true` for a device write (write-back), `false` for a device read.
    pub write: bool,
    /// Phase responsible for the event: the requester for reads, the last
    /// writer of the line for write-backs.
    pub phase: Phase,
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    tag: u64,
    valid: bool,
    dirty: bool,
    last_writer: Phase,
    lru: u64,
}

impl Entry {
    const fn empty() -> Self {
        Entry {
            tag: 0,
            valid: false,
            dirty: false,
            last_writer: Phase::Mutator,
            lru: 0,
        }
    }
}

#[derive(Debug)]
struct CacheLevel {
    sets: Vec<Vec<Entry>>,
    ways: usize,
    tick: u64,
    hits: u64,
    misses: u64,
}

/// Outcome of looking a line up in one level.
struct Victim {
    tag: u64,
    dirty: bool,
    last_writer: Phase,
}

impl CacheLevel {
    fn new(config: CacheLevelConfig) -> Self {
        let sets = config.sets();
        CacheLevel {
            sets: vec![vec![Entry::empty(); config.ways]; sets],
            ways: config.ways,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    fn set_index(&self, line: u64) -> usize {
        (line % self.sets.len() as u64) as usize
    }

    /// Probes for `line`; on hit updates LRU/dirty state and returns `true`.
    fn probe(&mut self, line: u64, write: bool, phase: Phase) -> bool {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_index(line);
        for entry in &mut self.sets[set] {
            if entry.valid && entry.tag == line {
                entry.lru = tick;
                if write {
                    entry.dirty = true;
                    entry.last_writer = phase;
                }
                self.hits += 1;
                return true;
            }
        }
        self.misses += 1;
        false
    }

    /// Installs `line`, returning the evicted victim (if any valid line had to
    /// be replaced).
    fn install(&mut self, line: u64, dirty: bool, last_writer: Phase) -> Option<Victim> {
        self.tick += 1;
        let tick = self.tick;
        let ways = self.ways;
        let set = self.set_index(line);
        let entries = &mut self.sets[set];
        // Prefer an invalid way.
        if let Some(entry) = entries.iter_mut().find(|e| !e.valid) {
            *entry = Entry {
                tag: line,
                valid: true,
                dirty,
                last_writer,
                lru: tick,
            };
            return None;
        }
        // Evict the least recently used way.
        let victim_idx = (0..ways)
            .min_by_key(|&i| entries[i].lru)
            .expect("cache set is never empty");
        let victim = entries[victim_idx];
        entries[victim_idx] = Entry {
            tag: line,
            valid: true,
            dirty,
            last_writer,
            lru: tick,
        };
        Some(Victim {
            tag: victim.tag,
            dirty: victim.dirty,
            last_writer: victim.last_writer,
        })
    }

    /// Removes `line` from this level, returning its state if present.
    fn extract(&mut self, line: u64) -> Option<Victim> {
        let set = self.set_index(line);
        for entry in &mut self.sets[set] {
            if entry.valid && entry.tag == line {
                entry.valid = false;
                return Some(Victim {
                    tag: entry.tag,
                    dirty: entry.dirty,
                    last_writer: entry.last_writer,
                });
            }
        }
        None
    }

    fn drain_dirty(&mut self) -> Vec<Victim> {
        let mut out = Vec::new();
        for set in &mut self.sets {
            for entry in set {
                if entry.valid && entry.dirty {
                    out.push(Victim {
                        tag: entry.tag,
                        dirty: true,
                        last_writer: entry.last_writer,
                    });
                }
                entry.valid = false;
                entry.dirty = false;
            }
        }
        out
    }
}

/// A multi-level write-back cache hierarchy.
///
/// Accesses are performed at cache-line (64 B) granularity; the caller is
/// responsible for splitting wider accesses into lines (the
/// [`crate::MemorySystem`] does this automatically).
#[derive(Debug)]
pub struct CacheHierarchy {
    levels: Vec<CacheLevel>,
    enabled: bool,
    /// Per-shard tallies of accesses that hit in some level / missed all the
    /// way to memory (index = shard). Sharded alongside the controller's
    /// counters so multi-mutator runs get per-mutator locality for free.
    shard_hits: Vec<u64>,
    shard_misses: Vec<u64>,
    active_shard: usize,
}

impl CacheHierarchy {
    /// Builds a hierarchy from `config`.
    pub fn new(config: &CacheConfig) -> Self {
        CacheHierarchy {
            levels: config.levels.iter().map(|&c| CacheLevel::new(c)).collect(),
            enabled: !config.levels.is_empty(),
            shard_hits: vec![0],
            shard_misses: vec![0],
            active_shard: 0,
        }
    }

    /// Builds a pass-through "hierarchy" with no caching at all, used for the
    /// architecture-independent measurement mode.
    pub fn disabled() -> Self {
        CacheHierarchy {
            levels: Vec::new(),
            enabled: false,
            shard_hits: vec![0],
            shard_misses: vec![0],
            active_shard: 0,
        }
    }

    /// Returns `true` if caching is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Ensures per-shard tallies exist for shard indices `0..=shard`.
    pub fn ensure_shard(&mut self, shard: usize) {
        if shard >= self.shard_hits.len() {
            self.shard_hits.resize(shard + 1, 0);
            self.shard_misses.resize(shard + 1, 0);
        }
    }

    /// Selects the shard whose hit/miss tallies subsequent accesses update.
    pub fn set_active_shard(&mut self, shard: usize) {
        self.ensure_shard(shard);
        self.active_shard = shard;
    }

    /// Accesses of `shard` that hit in some cache level (0 with caching
    /// disabled).
    pub fn shard_hits(&self, shard: usize) -> u64 {
        self.shard_hits.get(shard).copied().unwrap_or(0)
    }

    /// Accesses of `shard` that missed every level and reached memory (0
    /// with caching disabled).
    pub fn shard_misses(&self, shard: usize) -> u64 {
        self.shard_misses.get(shard).copied().unwrap_or(0)
    }

    /// Accesses cache line `line`. Returns the memory-side events caused by
    /// the access (miss fills and dirty write-backs).
    pub fn access(&mut self, line: u64, write: bool, phase: Phase, events: &mut Vec<MemEvent>) {
        if !self.enabled {
            events.push(MemEvent { line, write, phase });
            return;
        }
        // Probe levels closest-first.
        let mut hit_level = None;
        for (i, level) in self.levels.iter_mut().enumerate() {
            if level.probe(line, write && i == 0, phase) {
                hit_level = Some(i);
                break;
            }
        }
        if hit_level.is_some() {
            self.shard_hits[self.active_shard] += 1;
        } else {
            self.shard_misses[self.active_shard] += 1;
        }
        match hit_level {
            Some(0) => {}
            Some(level_idx) => {
                // Move the line up into the levels above (inclusive-style fill),
                // preserving its dirty state from the level where it was found.
                let state = self.levels[level_idx]
                    .extract(line)
                    .map(|v| (v.dirty, v.last_writer))
                    .unwrap_or((false, phase));
                let (dirty, last_writer) = if write { (true, phase) } else { state };
                self.fill(0, level_idx, line, dirty, last_writer, events);
            }
            None => {
                // Full miss: fetch the line from memory...
                events.push(MemEvent {
                    line,
                    write: false,
                    phase,
                });
                // ...and install it in every level up to L1.
                let levels = self.levels.len();
                self.fill(0, levels, line, write, phase, events);
            }
        }
    }

    /// Installs `line` into levels `[from, to)`, pushing victims downwards.
    fn fill(
        &mut self,
        from: usize,
        to: usize,
        line: u64,
        dirty: bool,
        last_writer: Phase,
        events: &mut Vec<MemEvent>,
    ) {
        for level_idx in from..to {
            if let Some(victim) =
                self.levels[level_idx].install(line, dirty && level_idx == from, last_writer)
            {
                if victim.dirty {
                    self.spill(level_idx + 1, victim, events);
                }
            }
        }
    }

    /// Writes a dirty victim into level `level_idx`, or to memory if the
    /// victim fell out of the last level.
    fn spill(&mut self, level_idx: usize, victim: Victim, events: &mut Vec<MemEvent>) {
        if level_idx >= self.levels.len() {
            events.push(MemEvent {
                line: victim.tag,
                write: true,
                phase: victim.last_writer,
            });
            return;
        }
        // If the line is already present below, just mark it dirty there.
        if self.levels[level_idx].probe(victim.tag, true, victim.last_writer) {
            return;
        }
        if let Some(next_victim) = self.levels[level_idx].install(victim.tag, true, victim.last_writer) {
            if next_victim.dirty {
                self.spill(level_idx + 1, next_victim, events);
            }
        }
    }

    /// Flushes every dirty line to memory, returning the write-back events.
    /// Called at the end of a run so that pending writes are accounted.
    pub fn flush_all(&mut self, events: &mut Vec<MemEvent>) {
        if !self.enabled {
            return;
        }
        // Drain from L1 downwards; lower levels may hold additional dirty
        // copies which are also drained. Duplicate write-backs of the same
        // line across levels are collapsed.
        let mut seen = std::collections::HashSet::new();
        for level in &mut self.levels {
            for victim in level.drain_dirty() {
                if seen.insert(victim.tag) {
                    events.push(MemEvent {
                        line: victim.tag,
                        write: true,
                        phase: victim.last_writer,
                    });
                }
            }
        }
    }

    /// Total hits across all levels.
    pub fn hits(&self) -> u64 {
        self.levels.iter().map(|l| l.hits).sum()
    }

    /// Total misses at the last level (i.e. accesses that reached memory).
    pub fn llc_misses(&self) -> u64 {
        self.levels.last().map(|l| l.misses).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> CacheConfig {
        CacheConfig {
            levels: vec![
                CacheLevelConfig {
                    capacity_bytes: 4 * CACHE_LINE_SIZE,
                    ways: 2,
                },
                CacheLevelConfig {
                    capacity_bytes: 8 * CACHE_LINE_SIZE,
                    ways: 2,
                },
            ],
        }
    }

    #[test]
    fn repeated_writes_to_one_line_produce_one_writeback() {
        let mut cache = CacheHierarchy::new(&tiny_config());
        let mut events = Vec::new();
        for _ in 0..100 {
            cache.access(42, true, Phase::Mutator, &mut events);
        }
        // One miss fill, no write-backs yet.
        assert_eq!(events.iter().filter(|e| e.write).count(), 0);
        assert_eq!(events.iter().filter(|e| !e.write).count(), 1);
        cache.flush_all(&mut events);
        assert_eq!(events.iter().filter(|e| e.write).count(), 1);
    }

    #[test]
    fn disabled_cache_passes_every_access_through() {
        let mut cache = CacheHierarchy::disabled();
        let mut events = Vec::new();
        for i in 0..10 {
            cache.access(i, i % 2 == 0, Phase::Mutator, &mut events);
        }
        assert_eq!(events.len(), 10);
        assert_eq!(events.iter().filter(|e| e.write).count(), 5);
    }

    #[test]
    fn dirty_eviction_attributes_last_writer() {
        let mut cache = CacheHierarchy::new(&CacheConfig {
            levels: vec![CacheLevelConfig {
                capacity_bytes: 2 * CACHE_LINE_SIZE,
                ways: 1,
            }],
        });
        let mut events = Vec::new();
        // Write line 0 as the nursery GC, then touch enough conflicting lines
        // (same set, different tags) to force it out.
        cache.access(0, true, Phase::NurseryGc, &mut events);
        cache.access(2, false, Phase::Mutator, &mut events);
        cache.access(4, false, Phase::Mutator, &mut events);
        let wb: Vec<_> = events.iter().filter(|e| e.write).collect();
        assert_eq!(wb.len(), 1);
        assert_eq!(wb[0].line, 0);
        assert_eq!(wb[0].phase, Phase::NurseryGc);
    }

    #[test]
    fn hit_in_lower_level_promotes_without_memory_traffic() {
        let mut cache = CacheHierarchy::new(&tiny_config());
        let mut events = Vec::new();
        cache.access(7, false, Phase::Mutator, &mut events);
        let before = events.len();
        // Evict line 7 from L1 by filling its set, then access it again: it
        // should be found in L2 without a new memory read.
        cache.access(7 + 2, false, Phase::Mutator, &mut events);
        cache.access(7 + 4, false, Phase::Mutator, &mut events);
        cache.access(7 + 6, false, Phase::Mutator, &mut events);
        let mid = events.iter().filter(|e| !e.write).count();
        cache.access(7, false, Phase::Mutator, &mut events);
        let after = events.iter().filter(|e| !e.write).count();
        assert!(before >= 1);
        assert_eq!(after, mid, "L2 hit must not produce another memory read");
    }

    #[test]
    fn flush_is_idempotent() {
        let mut cache = CacheHierarchy::new(&tiny_config());
        let mut events = Vec::new();
        cache.access(11, true, Phase::MajorGc, &mut events);
        cache.flush_all(&mut events);
        let n = events.len();
        cache.flush_all(&mut events);
        assert_eq!(events.len(), n);
    }

    #[test]
    fn shard_tallies_follow_the_active_shard() {
        let mut cache = CacheHierarchy::new(&tiny_config());
        let mut events = Vec::new();
        cache.access(1, false, Phase::Mutator, &mut events); // miss, shard 0
        cache.set_active_shard(2);
        cache.access(1, false, Phase::Mutator, &mut events); // hit, shard 2
        cache.access(9, false, Phase::Mutator, &mut events); // miss, shard 2
        assert_eq!(cache.shard_misses(0), 1);
        assert_eq!(cache.shard_hits(0), 0);
        assert_eq!(cache.shard_hits(2), 1);
        assert_eq!(cache.shard_misses(2), 1);
        assert_eq!(cache.shard_hits(7), 0, "unknown shards read as zero");
    }

    #[test]
    fn paper_default_geometry() {
        let cfg = CacheConfig::paper_default();
        assert_eq!(cfg.levels.len(), 3);
        assert_eq!(cfg.levels[2].capacity_bytes, 4 * 1024 * 1024);
        assert_eq!(cfg.levels[2].sets(), 4 * 1024 * 1024 / 64 / 16);
        let scaled = CacheConfig::scaled(16);
        assert!(scaled.levels[0].capacity_bytes < cfg.levels[0].capacity_bytes);
    }
}
