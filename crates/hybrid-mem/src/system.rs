//! The top-level simulated memory system.
//!
//! [`MemorySystem`] glues together the address-space reservation, the page
//! map, the byte-level backing store, the cache hierarchy and the memory
//! controller. Heap code issues *tagged* accesses (each access carries the
//! [`Phase`] that performed it); the system looks up the backing technology
//! of the touched page, runs the access through the cache hierarchy and
//! accounts the resulting device traffic.

use std::time::Instant;

use telemetry::{Stage, StageTotals, TouchMode, TouchProfile, TouchProfiler};

use crate::address::{align_up_usize, Address, PageId, CACHE_LINE_SIZE, LINE_SIZE, PAGE_SIZE};
use crate::backing::ChunkedMemory;
use crate::cache::{CacheConfig, CacheHierarchy, MemEvent};
use crate::controller::{MemoryController, ShardId};
use crate::fault::{FaultConfig, FaultEvent, FaultModel};
use crate::page_map::{PageInfo, PageMap};
use crate::stats::{MemoryStats, ShardStats};

/// Memory technology backing a page.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MemoryKind {
    /// Volatile DRAM: fast, write-unlimited, energy-hungry at rest.
    Dram = 0,
    /// Phase-change memory: dense and non-volatile but slow to write and
    /// write-endurance-limited.
    Pcm = 1,
}

impl MemoryKind {
    /// Both memory kinds, DRAM first.
    pub const ALL: [MemoryKind; 2] = [MemoryKind::Dram, MemoryKind::Pcm];
}

impl std::fmt::Display for MemoryKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemoryKind::Dram => write!(f, "DRAM"),
            MemoryKind::Pcm => write!(f, "PCM"),
        }
    }
}

/// The execution phase that performed a memory access. Used to attribute
/// device writes to their origin (Figure 10 of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Phase {
    /// Application (mutator) code, including write-barrier book-keeping.
    Mutator = 0,
    /// Nursery (minor) collection.
    NurseryGc = 1,
    /// Observer-space collection (KG-W only).
    ObserverGc = 2,
    /// Full-heap (major) collection.
    MajorGc = 3,
    /// Runtime and collector metadata (mark tables, remsets, treadmills).
    Runtime = 4,
}

impl Phase {
    /// Number of phases.
    pub const COUNT: usize = 5;
    /// All phases in index order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::Mutator,
        Phase::NurseryGc,
        Phase::ObserverGc,
        Phase::MajorGc,
        Phase::Runtime,
    ];

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Mutator => "application",
            Phase::NurseryGc => "nursery-GC",
            Phase::ObserverGc => "observer-GC",
            Phase::MajorGc => "major-GC",
            Phase::Runtime => "runtime",
        }
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Kind of a single access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

/// Configuration of the simulated memory system.
#[derive(Clone, Debug)]
pub struct MemoryConfig {
    /// Cache hierarchy configuration; `None` disables caching entirely
    /// (architecture-independent measurement mode).
    pub cache: Option<CacheConfig>,
    /// Track per-cache-line write counts (wear statistics).
    pub track_line_writes: bool,
    /// Nominal PCM capacity used by the lifetime model, in bytes.
    pub pcm_capacity_bytes: u64,
    /// Nominal DRAM capacity, in bytes (1 GB in the paper's hybrid system).
    pub dram_capacity_bytes: u64,
    /// Deterministic PCM fault injection; `None` (the default everywhere)
    /// disables the fault model entirely.
    pub fault: Option<FaultConfig>,
}

impl MemoryConfig {
    /// The paper's hybrid memory system: 1 GB DRAM + 32 GB PCM with the
    /// Table 2 cache hierarchy.
    pub fn hybrid() -> Self {
        MemoryConfig {
            cache: Some(CacheConfig::paper_default()),
            track_line_writes: false,
            pcm_capacity_bytes: 32 << 30,
            dram_capacity_bytes: 1 << 30,
            fault: None,
        }
    }

    /// Hybrid system with a cache hierarchy scaled down by `divisor`, for the
    /// scaled-down workloads used in tests and quick experiments.
    pub fn hybrid_scaled(divisor: usize) -> Self {
        MemoryConfig {
            cache: Some(CacheConfig::scaled(divisor)),
            ..Self::hybrid()
        }
    }

    /// Architecture-independent mode: no caches, every heap write reaches the
    /// device counters (Section 6.2: "these results are architecture-
    /// independent since they do not consider cache effects").
    pub fn architecture_independent() -> Self {
        MemoryConfig {
            cache: None,
            ..Self::hybrid()
        }
    }

    /// Enables deterministic PCM fault injection with `fault`'s schedule.
    pub fn with_faults(mut self, fault: FaultConfig) -> Self {
        self.fault = Some(fault);
        self
    }
}

impl Default for MemoryConfig {
    fn default() -> Self {
        Self::hybrid()
    }
}

/// The simulated memory system.
///
/// See the crate-level documentation for an example.
#[derive(Debug)]
pub struct MemorySystem {
    config: MemoryConfig,
    backing: ChunkedMemory,
    page_map: PageMap,
    cache: CacheHierarchy,
    controller: MemoryController,
    fault: Option<FaultModel>,
    profiler: TouchProfiler,
    next_extent: u64,
    extents: Vec<(String, Address, usize)>,
    event_buf: Vec<MemEvent>,
}

/// Alignment of reserved extents (256 MB) so that space membership can be
/// decided by address comparison alone.
const EXTENT_ALIGN: u64 = 256 << 20;
/// First reserved extent starts at 1 GB to keep low addresses obviously
/// invalid.
const EXTENT_BASE: u64 = 1 << 30;

impl MemorySystem {
    /// Creates a memory system from `config`.
    pub fn new(config: MemoryConfig) -> Self {
        let cache = match &config.cache {
            Some(c) => CacheHierarchy::new(c),
            None => CacheHierarchy::disabled(),
        };
        MemorySystem {
            // The fault model consumes per-line write counts, so it forces
            // line tracking on even when wear statistics were not requested.
            controller: MemoryController::new(config.track_line_writes || config.fault.is_some()),
            cache,
            fault: config.fault.map(FaultModel::new),
            profiler: TouchProfiler::disabled(),
            config,
            backing: ChunkedMemory::new(),
            page_map: PageMap::new(),
            next_extent: EXTENT_BASE,
            extents: Vec::new(),
            event_buf: Vec::new(),
        }
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &MemoryConfig {
        &self.config
    }

    /// Reserves a named virtual extent of at least `bytes` bytes and returns
    /// its base address. Reservation does not map any pages.
    pub fn reserve_extent(&mut self, name: &str, bytes: usize) -> Address {
        let base = Address::new(self.next_extent);
        let size = align_up_usize(bytes.max(PAGE_SIZE), EXTENT_ALIGN as usize);
        self.next_extent += size as u64;
        self.extents.push((name.to_string(), base, size));
        base
    }

    /// Returns the reserved extents as `(name, base, size)` tuples.
    pub fn extents(&self) -> &[(String, Address, usize)] {
        &self.extents
    }

    /// Maps `count` pages starting at `start` onto `kind` for space `space`.
    pub fn map_pages(&mut self, start: Address, count: usize, kind: MemoryKind, space: u8) {
        self.page_map.map_pages(start, count, kind, space);
    }

    /// Unmaps `count` pages starting at `start`.
    pub fn unmap_pages(&mut self, start: Address, count: usize) {
        self.page_map.unmap_pages(start, count);
    }

    /// Migrates one page to `to`, accounting the copy traffic, and returns
    /// the previous kind (used by the OS Write Partitioning baseline).
    pub fn migrate_page(&mut self, page: PageId, to: MemoryKind) -> Option<MemoryKind> {
        let prev = self.page_map.migrate_page(page, to)?;
        if prev != to {
            self.controller.record_page_migration(prev, to);
        }
        Some(prev)
    }

    /// Returns placement information for the page containing `addr`.
    pub fn page_info(&self, addr: Address) -> Option<PageInfo> {
        self.page_map.info(addr)
    }

    /// Returns the memory technology backing `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the page is unmapped.
    pub fn kind_of(&self, addr: Address) -> MemoryKind {
        self.page_map.kind_of(addr)
    }

    /// Returns `true` if the page containing `addr` is mapped.
    pub fn is_mapped(&self, addr: Address) -> bool {
        self.page_map.is_mapped(addr)
    }

    /// Immutable access to the page map.
    pub fn page_map(&self) -> &PageMap {
        &self.page_map
    }

    /// Immutable access to the memory controller counters.
    pub fn controller(&self) -> &MemoryController {
        &self.controller
    }

    /// Summarises the write distribution over the *mapped* lines of `kind`,
    /// or `None` when per-line write tracking is disabled. Call at a
    /// safepoint (after shard merges) so the counts are complete.
    pub fn wear_summary(&self, kind: MemoryKind) -> Option<crate::wear::WearSummary> {
        if !self.config.track_line_writes {
            return None;
        }
        let counts: Vec<u64> = self
            .controller
            .line_writes()
            .filter(|&(line, _)| {
                let addr = Address::new(line * crate::address::CACHE_LINE_SIZE as u64);
                self.is_mapped(addr) && self.kind_of(addr) == kind
            })
            .map(|(_, writes)| writes)
            .collect();
        Some(crate::wear::WearTracker::from_counts(counts).summary())
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    /// The fault model's state, when fault injection is enabled.
    pub fn fault_model(&self) -> Option<&FaultModel> {
        self.fault.as_ref()
    }

    /// Device write counts per *mapped PCM line* (256 B granularity), sorted
    /// by line id. Aggregates the controller's per-cache-line counts; call at
    /// a safepoint so shard folds are complete. Empty when line tracking is
    /// off.
    pub fn pcm_line_writes(&self) -> Vec<(u64, u64)> {
        let per_cache_line = CACHE_LINE_SIZE as u64;
        let cache_lines_per_line = (LINE_SIZE / CACHE_LINE_SIZE) as u64;
        let mut lines: Vec<(u64, u64)> = Vec::new();
        for (cache_line, writes) in self.controller.line_writes() {
            let addr = Address::new(cache_line * per_cache_line);
            if self.is_mapped(addr) && self.kind_of(addr) == MemoryKind::Pcm {
                lines.push((cache_line / cache_lines_per_line, writes));
            }
        }
        lines.sort_unstable();
        let mut folded: Vec<(u64, u64)> = Vec::with_capacity(lines.len());
        for (line, writes) in lines {
            match folded.last_mut() {
                Some((last, total)) if *last == line => *total += writes,
                _ => folded.push((line, writes)),
            }
        }
        folded
    }

    /// Advances the fault schedule against the current PCM line-write counts
    /// and returns the newly fired events. Pages reported
    /// [`FaultEvent::PageUncorrectable`] must be retired by the caller (after
    /// evacuating live data) via [`Self::retire_page`]. No-op without fault
    /// injection. Call at a safepoint.
    pub fn pump_faults(&mut self) -> Vec<FaultEvent> {
        if self.fault.is_none() {
            return Vec::new();
        }
        let line_writes = self.pcm_line_writes();
        self.fault
            .as_mut()
            .expect("fault model present")
            .pump(&line_writes)
    }

    /// Retires an uncorrectable PCM page: marks it retired in the fault
    /// model and, when the page is still mapped on PCM, remaps it to DRAM
    /// spare capacity (accounting the full-page copy like any migration).
    /// Returns the page's previous kind when a remap happened.
    pub fn retire_page(&mut self, page: PageId) -> Option<MemoryKind> {
        let model = self.fault.as_mut()?;
        model.mark_page_retired(page.0);
        if self.page_map.info(page.start())?.kind != MemoryKind::Pcm {
            return None;
        }
        self.migrate_page(page, MemoryKind::Dram)
    }

    /// Mutable access to the memory controller (used by the OS baseline to
    /// consume per-page write counters).
    pub fn controller_mut(&mut self) -> &mut MemoryController {
        &mut self.controller
    }

    // ------------------------------------------------------------------
    // Counter shards (multi-mutator accounting)
    // ------------------------------------------------------------------

    /// Registers a per-mutator counter shard: subsequent accesses recorded
    /// while the shard is active ([`Self::set_active_shard`]) accumulate into
    /// its block instead of the base counters. Aggregate statistics fold
    /// across shards on read, so no event is ever lost; [`Self::merge_shard`]
    /// compacts a shard at mutator drain points.
    pub fn register_mutator_shard(&mut self) -> ShardId {
        let shard = self.controller.register_shard();
        self.cache.ensure_shard(shard.index());
        shard
    }

    /// Selects the counter shard subsequent accesses are attributed to.
    /// Collector and runtime phases run on [`ShardId::BASE`].
    pub fn set_active_shard(&mut self, shard: ShardId) {
        self.controller.set_active_shard(shard);
        self.cache.set_active_shard(shard.index());
    }

    /// The shard currently receiving accesses.
    pub fn active_shard(&self) -> ShardId {
        self.controller.active_shard()
    }

    /// Folds `shard`'s device counters into the base shard (exactness does
    /// not depend on this — aggregates fold on read — but merging bounds
    /// per-shard map growth; the heap calls it from the mutator drain path).
    pub fn merge_shard(&mut self, shard: ShardId) {
        self.controller.merge_shard(shard);
    }

    /// Per-shard traffic attribution: device reads/writes recorded into
    /// `shard` since its last merge, plus its cache hit/miss tallies (which
    /// survive merges).
    pub fn shard_stats(&self, shard: ShardId) -> ShardStats {
        ShardStats {
            reads: [
                self.controller.shard_reads(shard, MemoryKind::Dram),
                self.controller.shard_reads(shard, MemoryKind::Pcm),
            ],
            writes: [
                self.controller.shard_writes(shard, MemoryKind::Dram),
                self.controller.shard_writes(shard, MemoryKind::Pcm),
            ],
            cache_hits: self.cache.shard_hits(shard.index()),
            cache_misses: self.cache.shard_misses(shard.index()),
        }
    }

    // ------------------------------------------------------------------
    // Hot-path profiling
    // ------------------------------------------------------------------

    /// Enables the sampled hot-path profiler: every touch is counted per
    /// stage and every `sample_every`-th touch is timed stage by stage
    /// (see [`telemetry::TouchProfiler`]). The profiler only observes host
    /// time — simulated traffic, wear and statistics are bit-identical
    /// with it on or off.
    pub fn enable_touch_profiler(&mut self, sample_every: u64) {
        self.profiler = TouchProfiler::enabled(sample_every, Phase::COUNT);
    }

    /// `true` when the hot-path profiler is recording.
    pub fn touch_profiler_enabled(&self) -> bool {
        self.profiler.is_enabled()
    }

    /// Snapshots the hot-path profile; `None` when the profiler is off.
    pub fn touch_profile(&self) -> Option<TouchProfile> {
        self.profiler.profile()
    }

    /// Runs one backing-store operation, counting (and, after a sampled
    /// touch, timing) it as the [`Stage::BackingStore`] stage.
    #[inline]
    fn run_backing<R>(&mut self, sampled: bool, op: impl FnOnce(&mut ChunkedMemory) -> R) -> R {
        if self.profiler.is_enabled() {
            let start = sampled.then(Instant::now);
            let result = op(&mut self.backing);
            self.profiler
                .backing_op(1, start.map(|t| t.elapsed().as_nanos() as u64));
            result
        } else {
            op(&mut self.backing)
        }
    }

    /// Accounts one tagged access of `len` bytes: cache simulation per
    /// touched line, then device accounting per memory-side event. Returns
    /// `true` when the hot-path profiler sampled (timed) this touch, so
    /// the access wrappers know to time the subsequent backing-store work.
    ///
    /// The three arms run the *same* simulation — the counting arm adds
    /// per-stage event tallies (batched into one profiler call), the
    /// sampled arm additionally brackets each stage with `Instant::now()`.
    /// Only the `Off` arm is ever taken when the profiler is disabled, so
    /// unprofiled runs pay exactly one branch.
    fn touch(&mut self, addr: Address, len: usize, kind: AccessKind, phase: Phase) -> bool {
        debug_assert!(len > 0);
        let first = addr.cache_line();
        let last = addr.add(len - 1).cache_line();
        match self.profiler.begin_touch(phase as usize) {
            TouchMode::Off => {
                for line in first..=last {
                    self.event_buf.clear();
                    self.cache
                        .access(line, kind == AccessKind::Write, phase, &mut self.event_buf);
                    for event in self.event_buf.drain(..) {
                        let line_addr = Address::new(event.line * CACHE_LINE_SIZE as u64);
                        // A flushed line may belong to a page that has since been
                        // unmapped (space released); attribute it to PCM-free DRAM? No:
                        // charge it to the kind it had when mapped, falling back to the
                        // page map; unmapped pages are charged to DRAM-free... They are
                        // simply skipped because the space no longer exists.
                        let Some(info) = self.page_map.info(line_addr) else {
                            continue;
                        };
                        if event.write {
                            self.controller.record_write(info.kind, event.phase, event.line);
                        } else {
                            self.controller.record_read(info.kind, event.phase);
                        }
                    }
                }
                false
            }
            TouchMode::Counting => {
                let mut totals = StageTotals::default();
                for line in first..=last {
                    self.event_buf.clear();
                    self.cache
                        .access(line, kind == AccessKind::Write, phase, &mut self.event_buf);
                    totals.add(Stage::CacheModel, 1);
                    for event in self.event_buf.drain(..) {
                        let line_addr = Address::new(event.line * CACHE_LINE_SIZE as u64);
                        totals.add(Stage::PageMap, 1);
                        let Some(info) = self.page_map.info(line_addr) else {
                            continue;
                        };
                        totals.add(Stage::LineBookkeeping, 1);
                        if event.write {
                            self.controller
                                .record_write_counters(info.kind, event.phase, event.line);
                            if self.controller.tracks_lines() {
                                totals.add(Stage::WearTracking, 1);
                                self.controller.record_line_wear(event.line);
                            }
                        } else {
                            self.controller.record_read(info.kind, event.phase);
                        }
                    }
                }
                self.profiler.finish_touch(&totals, false);
                false
            }
            TouchMode::Sampled => {
                let mut totals = StageTotals::default();
                for line in first..=last {
                    self.event_buf.clear();
                    let cache_start = Instant::now();
                    self.cache
                        .access(line, kind == AccessKind::Write, phase, &mut self.event_buf);
                    totals.add_timed(Stage::CacheModel, 1, cache_start.elapsed().as_nanos() as u64);
                    for event in self.event_buf.drain(..) {
                        let line_addr = Address::new(event.line * CACHE_LINE_SIZE as u64);
                        let map_start = Instant::now();
                        let info = self.page_map.info(line_addr);
                        totals.add_timed(Stage::PageMap, 1, map_start.elapsed().as_nanos() as u64);
                        let Some(info) = info else {
                            continue;
                        };
                        let book_start = Instant::now();
                        if event.write {
                            self.controller
                                .record_write_counters(info.kind, event.phase, event.line);
                        } else {
                            self.controller.record_read(info.kind, event.phase);
                        }
                        totals.add_timed(Stage::LineBookkeeping, 1, book_start.elapsed().as_nanos() as u64);
                        if event.write && self.controller.tracks_lines() {
                            let wear_start = Instant::now();
                            self.controller.record_line_wear(event.line);
                            totals.add_timed(Stage::WearTracking, 1, wear_start.elapsed().as_nanos() as u64);
                        }
                    }
                }
                self.profiler.finish_touch(&totals, true);
                true
            }
        }
    }

    /// Reads a `u64` at `addr` on behalf of `phase`.
    ///
    /// # Panics
    ///
    /// Panics if the page containing `addr` is not mapped.
    pub fn read_u64(&mut self, addr: Address, phase: Phase) -> u64 {
        assert!(self.page_map.is_mapped(addr), "read of unmapped address {addr}");
        let sampled = self.touch(addr, 8, AccessKind::Read, phase);
        self.run_backing(sampled, |backing| backing.read_u64(addr))
    }

    /// Writes a `u64` at `addr` on behalf of `phase`.
    ///
    /// # Panics
    ///
    /// Panics if the page containing `addr` is not mapped.
    pub fn write_u64(&mut self, addr: Address, value: u64, phase: Phase) {
        assert!(self.page_map.is_mapped(addr), "write of unmapped address {addr}");
        let sampled = self.touch(addr, 8, AccessKind::Write, phase);
        self.run_backing(sampled, |backing| backing.write_u64(addr, value));
    }

    /// Reads a `u64` at `addr` **without** simulating the access: no cache
    /// lookup, no device traffic, no wear, no counters. Returns `None` if
    /// the page containing `addr` is not mapped.
    ///
    /// Every simulated write is written through to the backing store
    /// ([`MemorySystem::write_u64`] and friends), so a peek always observes
    /// the current architectural value. This is the inspection primitive the
    /// heap sanitizer (`kingsguard-check`) uses to walk live objects without
    /// perturbing the statistics it is validating.
    pub fn peek_u64(&self, addr: Address) -> Option<u64> {
        if !self.page_map.is_mapped(addr) {
            return None;
        }
        Some(self.backing.read_u64(addr))
    }

    /// Writes a `u64` directly into the backing store, bypassing the cache
    /// model, traffic accounting and wear tracking.
    ///
    /// This deliberately violates the simulation's bookkeeping — it exists
    /// only so broken-fixture tests can corrupt heap memory behind the
    /// write barrier's back and prove the sanitizer notices.
    ///
    /// # Panics
    ///
    /// Panics if the page containing `addr` is not mapped.
    #[doc(hidden)]
    pub fn debug_poke_u64_for_test(&mut self, addr: Address, value: u64) {
        assert!(self.page_map.is_mapped(addr), "poke of unmapped address {addr}");
        self.backing.write_u64(addr, value);
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    pub fn read_bytes(&mut self, addr: Address, buf: &mut [u8], phase: Phase) {
        if buf.is_empty() {
            return;
        }
        let sampled = self.touch(addr, buf.len(), AccessKind::Read, phase);
        self.run_backing(sampled, |backing| backing.read_bytes(addr, buf));
    }

    /// Writes `buf` starting at `addr`.
    pub fn write_bytes(&mut self, addr: Address, buf: &[u8], phase: Phase) {
        if buf.is_empty() {
            return;
        }
        let sampled = self.touch(addr, buf.len(), AccessKind::Write, phase);
        self.run_backing(sampled, |backing| backing.write_bytes(addr, buf));
    }

    /// Copies `len` bytes from `src` to `dst` on behalf of `phase`,
    /// accounting both the reads and the writes.
    pub fn copy(&mut self, src: Address, dst: Address, len: usize, phase: Phase) {
        if len == 0 {
            return;
        }
        let sampled_src = self.touch(src, len, AccessKind::Read, phase);
        let sampled_dst = self.touch(dst, len, AccessKind::Write, phase);
        self.run_backing(sampled_src || sampled_dst, |backing| {
            backing.copy(src, dst, len);
        });
    }

    /// Zeroes `len` bytes starting at `addr` (nursery zeroing, block reset).
    pub fn zero(&mut self, addr: Address, len: usize, phase: Phase) {
        if len == 0 {
            return;
        }
        let sampled = self.touch(addr, len, AccessKind::Write, phase);
        self.run_backing(sampled, |backing| backing.fill(addr, len, 0));
    }

    /// Writes a single conceptual store without touching backing bytes.
    ///
    /// Used for runtime book-keeping structures (remembered-set buffers,
    /// treadmill pointers) whose values live in host data structures but
    /// whose memory traffic must still be accounted.
    pub fn account_write(&mut self, addr: Address, phase: Phase) {
        self.touch(addr, 8, AccessKind::Write, phase);
    }

    /// Accounts a single conceptual load, analogous to [`Self::account_write`].
    pub fn account_read(&mut self, addr: Address, phase: Phase) {
        self.touch(addr, 8, AccessKind::Read, phase);
    }

    /// Flushes all dirty cache lines to the device counters. Call once at the
    /// end of a run before reading statistics.
    pub fn flush_caches(&mut self) {
        let mut events = Vec::new();
        self.cache.flush_all(&mut events);
        for event in events {
            let line_addr = Address::new(event.line * CACHE_LINE_SIZE as u64);
            let Some(info) = self.page_map.info(line_addr) else {
                continue;
            };
            if event.write {
                self.controller.record_write(info.kind, event.phase, event.line);
            } else {
                self.controller.record_read(info.kind, event.phase);
            }
        }
    }

    /// Takes a statistics snapshot (does not flush caches; call
    /// [`Self::flush_caches`] first for end-of-run numbers).
    pub fn stats(&self) -> MemoryStats {
        MemoryStats {
            reads: [
                self.controller.reads(MemoryKind::Dram),
                self.controller.reads(MemoryKind::Pcm),
            ],
            writes: [
                self.controller.writes(MemoryKind::Dram),
                self.controller.writes(MemoryKind::Pcm),
            ],
            migration_writes: [
                self.controller.migration_writes(MemoryKind::Dram),
                self.controller.migration_writes(MemoryKind::Pcm),
            ],
            phase_writes: [
                self.controller.phase_writes(MemoryKind::Dram),
                self.controller.phase_writes(MemoryKind::Pcm),
            ],
            phase_reads: [
                self.controller.phase_reads(MemoryKind::Dram),
                self.controller.phase_reads(MemoryKind::Pcm),
            ],
            mapped_bytes: [
                self.page_map.mapped_bytes(MemoryKind::Dram),
                self.page_map.mapped_bytes(MemoryKind::Pcm),
            ],
            llc_misses: self.cache.llc_misses(),
            cache_hits: self.cache.hits(),
            failed_pcm_lines: self.fault.as_ref().map_or(0, FaultModel::failed_line_count),
            retired_pcm_pages: self.fault.as_ref().map_or(0, FaultModel::retired_page_count),
            transient_pcm_faults: self.fault.as_ref().map_or(0, FaultModel::transient_fault_count),
            degraded_pcm_bytes: self.fault.as_ref().map_or(0, FaultModel::degraded_bytes),
        }
    }

    /// Bytes of host memory resident in the backing store (diagnostic).
    pub fn resident_bytes(&self) -> usize {
        self.backing.resident_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_system() -> MemorySystem {
        MemorySystem::new(MemoryConfig::architecture_independent())
    }

    #[test]
    fn reserve_map_read_write() {
        let mut mem = small_system();
        let base = mem.reserve_extent("test", 1 << 20);
        mem.map_pages(base, 4, MemoryKind::Pcm, 1);
        mem.write_u64(base.add(16), 99, Phase::Mutator);
        assert_eq!(mem.read_u64(base.add(16), Phase::Mutator), 99);
        let stats = mem.stats();
        assert_eq!(stats.writes(MemoryKind::Pcm), 1);
        assert_eq!(stats.phase_writes(MemoryKind::Pcm).get(Phase::Mutator), 1);
    }

    #[test]
    fn extents_do_not_overlap() {
        let mut mem = small_system();
        let a = mem.reserve_extent("a", 10 << 20);
        let b = mem.reserve_extent("b", 10 << 20);
        assert!(b.raw() >= a.raw() + (10 << 20));
        assert_eq!(mem.extents().len(), 2);
    }

    #[test]
    #[should_panic(expected = "unmapped")]
    fn unmapped_write_panics() {
        let mut mem = small_system();
        let base = mem.reserve_extent("x", 1 << 20);
        mem.write_u64(base, 1, Phase::Mutator);
    }

    #[test]
    fn copy_accounts_reads_and_writes() {
        let mut mem = small_system();
        let base = mem.reserve_extent("copy", 1 << 20);
        mem.map_pages(base, 2, MemoryKind::Dram, 0);
        mem.map_pages(base.add(PAGE_SIZE), 2, MemoryKind::Pcm, 0);
        mem.write_bytes(base, &[7u8; 128], Phase::Mutator);
        mem.copy(base, base.add(PAGE_SIZE), 128, Phase::NurseryGc);
        let mut out = [0u8; 128];
        mem.read_bytes(base.add(PAGE_SIZE), &mut out, Phase::Mutator);
        assert!(out.iter().all(|&b| b == 7));
        let stats = mem.stats();
        assert_eq!(stats.phase_writes(MemoryKind::Pcm).get(Phase::NurseryGc), 2);
        assert!(stats.reads(MemoryKind::Dram) >= 2);
    }

    #[test]
    fn cached_mode_filters_repeated_writes() {
        let mut mem = MemorySystem::new(MemoryConfig::hybrid());
        let base = mem.reserve_extent("hot", 1 << 20);
        mem.map_pages(base, 1, MemoryKind::Pcm, 0);
        for _ in 0..1000 {
            mem.write_u64(base, 1, Phase::Mutator);
        }
        mem.flush_caches();
        let stats = mem.stats();
        assert_eq!(
            stats.writes(MemoryKind::Pcm),
            1,
            "cache must coalesce repeated writes to one line"
        );
    }

    #[test]
    fn uncached_mode_counts_every_write() {
        let mut mem = small_system();
        let base = mem.reserve_extent("hot", 1 << 20);
        mem.map_pages(base, 1, MemoryKind::Pcm, 0);
        for _ in 0..10 {
            mem.write_u64(base, 1, Phase::Mutator);
        }
        assert_eq!(mem.stats().writes(MemoryKind::Pcm), 10);
    }

    #[test]
    fn migration_updates_kind_and_traffic() {
        let mut mem = small_system();
        let base = mem.reserve_extent("mig", 1 << 20);
        mem.map_pages(base, 1, MemoryKind::Pcm, 0);
        mem.migrate_page(base.page(), MemoryKind::Dram);
        assert_eq!(mem.kind_of(base), MemoryKind::Dram);
        let stats = mem.stats();
        assert!(stats.writes(MemoryKind::Dram) > 0);
        assert_eq!(
            stats.migration_writes(MemoryKind::Dram),
            stats.writes(MemoryKind::Dram)
        );
    }

    #[test]
    fn zero_initialisation_writes_are_charged() {
        let mut mem = small_system();
        let base = mem.reserve_extent("zero", 1 << 20);
        mem.map_pages(base, 1, MemoryKind::Dram, 0);
        mem.zero(base, 512, Phase::NurseryGc);
        assert_eq!(mem.stats().writes(MemoryKind::Dram), 512 / 64);
    }

    #[test]
    fn shard_attribution_folds_into_aggregate_stats() {
        let mut mem = small_system();
        let base = mem.reserve_extent("sharded", 1 << 20);
        mem.map_pages(base, 4, MemoryKind::Pcm, 0);
        let shard = mem.register_mutator_shard();
        mem.write_u64(base, 1, Phase::Mutator);
        mem.set_active_shard(shard);
        mem.write_u64(base.add(64), 2, Phase::Mutator);
        mem.set_active_shard(ShardId::BASE);
        assert_eq!(mem.stats().writes(MemoryKind::Pcm), 2, "aggregates fold shards");
        assert_eq!(mem.shard_stats(shard).writes(MemoryKind::Pcm), 1);
        mem.merge_shard(shard);
        assert_eq!(mem.shard_stats(shard).writes(MemoryKind::Pcm), 0);
        assert_eq!(mem.stats().writes(MemoryKind::Pcm), 2);
    }

    #[test]
    fn fault_pump_fails_lines_and_retirement_remaps_to_dram() {
        let fault = FaultConfig::accelerated(11, crate::lifetime::Endurance::Low10M)
            .with_wear_multiplier(u64::MAX / 4)
            .with_ecc_correctable_lines(0);
        let mut mem = MemorySystem::new(MemoryConfig::architecture_independent().with_faults(fault));
        let base = mem.reserve_extent("faulty", 1 << 20);
        mem.map_pages(base, 2, MemoryKind::Pcm, 3);
        mem.write_u64(base, 1, Phase::Mutator);
        let events = mem.pump_faults();
        assert!(
            events.iter().any(|e| matches!(e, FaultEvent::LineFailed { .. })),
            "extreme acceleration must fail the written line: {events:?}"
        );
        assert!(events
            .iter()
            .any(|e| matches!(e, FaultEvent::PageUncorrectable { .. })));
        assert_eq!(mem.retire_page(base.page()), Some(MemoryKind::Pcm));
        assert_eq!(mem.kind_of(base), MemoryKind::Dram, "retired page remapped");
        let stats = mem.stats();
        assert_eq!(stats.retired_pcm_pages, 1);
        assert!(stats.failed_pcm_lines >= 1);
        assert_eq!(stats.degraded_pcm_bytes, PAGE_SIZE as u64);
        // Re-pumping after retirement is quiescent: the page is DRAM now.
        assert!(mem.pump_faults().is_empty());
        // Retiring an already-DRAM page does not migrate again.
        assert_eq!(mem.retire_page(base.page()), None);
        assert_eq!(mem.stats().retired_pcm_pages, 1);
    }

    #[test]
    fn fault_free_system_reports_no_faults() {
        let mut mem = small_system();
        let base = mem.reserve_extent("clean", 1 << 20);
        mem.map_pages(base, 1, MemoryKind::Pcm, 0);
        mem.write_u64(base, 1, Phase::Mutator);
        assert!(mem.pump_faults().is_empty());
        assert!(mem.fault_model().is_none());
        assert_eq!(mem.retire_page(base.page()), None);
        let stats = mem.stats();
        assert_eq!(stats.failed_pcm_lines, 0);
        assert_eq!(stats.degraded_pcm_bytes, 0);
        assert_eq!(stats.pcm_degradation(32 << 30), 0.0);
    }

    #[test]
    fn account_write_has_no_data_effect() {
        let mut mem = small_system();
        let base = mem.reserve_extent("acct", 1 << 20);
        mem.map_pages(base, 1, MemoryKind::Dram, 0);
        mem.write_u64(base, 42, Phase::Mutator);
        mem.account_write(base, Phase::Runtime);
        assert_eq!(mem.read_u64(base, Phase::Mutator), 42);
        assert_eq!(mem.stats().phase_writes(MemoryKind::Dram).get(Phase::Runtime), 1);
    }

    /// Mixed read/write/copy/zero workload spanning DRAM and PCM pages,
    /// used to compare profiled against unprofiled runs.
    fn drive_mixed_workload(mem: &mut MemorySystem) {
        let base = mem.reserve_extent("work", 1 << 20);
        mem.map_pages(base, 2, MemoryKind::Dram, 0);
        mem.map_pages(base.add(2 * PAGE_SIZE), 2, MemoryKind::Pcm, 0);
        for i in 0..200u64 {
            let slot = base.add((i as usize % 64) * 8);
            mem.write_u64(slot, i, Phase::Mutator);
            let _ = mem.read_u64(slot, Phase::Mutator);
        }
        mem.write_bytes(base, &[3u8; 256], Phase::NurseryGc);
        mem.copy(base, base.add(2 * PAGE_SIZE), 256, Phase::NurseryGc);
        mem.zero(base.add(PAGE_SIZE), 512, Phase::MajorGc);
        mem.account_read(base, Phase::Runtime);
        mem.account_write(base, Phase::Runtime);
        mem.flush_caches();
    }

    #[test]
    fn touch_profiler_does_not_perturb_simulation() {
        let mut config = MemoryConfig::hybrid();
        config.track_line_writes = true;
        let mut plain = MemorySystem::new(config.clone());
        drive_mixed_workload(&mut plain);
        let mut profiled = MemorySystem::new(config);
        profiled.enable_touch_profiler(3);
        drive_mixed_workload(&mut profiled);
        assert_eq!(
            format!("{:?}", plain.stats()),
            format!("{:?}", profiled.stats()),
            "simulation must be bit-identical with the profiler on"
        );
        assert_eq!(plain.pcm_line_writes(), profiled.pcm_line_writes());
        assert!(plain.touch_profile().is_none());
        assert!(profiled.touch_profile().is_some());
    }

    #[test]
    fn touch_profiler_counts_stage_events() {
        let mut mem = small_system();
        // Huge cadence: every touch takes the counting arm, none are timed.
        mem.enable_touch_profiler(1 << 40);
        let base = mem.reserve_extent("count", 1 << 20);
        mem.map_pages(base, 1, MemoryKind::Pcm, 0);
        for i in 0..10u64 {
            mem.write_u64(base.add(i as usize * 8), i, Phase::Mutator);
        }
        let profile = mem.touch_profile().expect("profiler enabled");
        assert_eq!(profile.touches, 10);
        assert_eq!(profile.sampled_touches, 0);
        let events = |stage: Stage| profile.stages.iter().find(|s| s.stage == stage).unwrap().events;
        // Uncached mode: one cache-model pass, one page-map lookup and one
        // bookkeeping record per touched line; no line tracking configured.
        assert_eq!(events(Stage::CacheModel), 10);
        assert_eq!(events(Stage::PageMap), 10);
        assert_eq!(events(Stage::LineBookkeeping), 10);
        assert_eq!(events(Stage::WearTracking), 0);
        assert_eq!(events(Stage::BackingStore), 10);
        assert_eq!(profile.phases[Phase::Mutator as usize].touches, 10);
    }

    #[test]
    fn sampled_touches_cover_every_event_at_cadence_one() {
        let mut config = MemoryConfig::architecture_independent();
        config.track_line_writes = true;
        let mut mem = MemorySystem::new(config);
        mem.enable_touch_profiler(1);
        let base = mem.reserve_extent("sampled", 1 << 20);
        mem.map_pages(base, 1, MemoryKind::Pcm, 0);
        for i in 0..20u64 {
            mem.write_u64(base.add(i as usize * 8), i, Phase::ObserverGc);
        }
        let profile = mem.touch_profile().expect("profiler enabled");
        assert_eq!(profile.touches, 20);
        assert_eq!(profile.sampled_touches, 20);
        for stage in profile.stages {
            assert_eq!(
                stage.events, stage.sampled_events,
                "cadence 1 must time every {} event",
                stage.stage
            );
        }
        assert_eq!(profile.phases[Phase::ObserverGc as usize].sampled_touches, 20);
    }
}
