//! Memory controller: device-side access accounting.
//!
//! Every memory-side event (cache miss fill or dirty write-back) lands here.
//! The controller keeps the counters the paper's evaluation needs:
//!
//! * reads and writes per memory technology (DRAM vs PCM),
//! * writes per technology broken down by the phase that produced them
//!   (Figure 10),
//! * per-page write counts (consumed by the OS Write Partitioning baseline
//!   and by the wear statistics),
//! * writes per cache line (wear-distribution statistics, optional),
//! * migration writes performed by the OS (Figure 7).
//!
//! # Counter shards
//!
//! The hot counters are *sharded*: every counter lives in one
//! `CounterShard`-shaped block per registered shard, and each device event
//! is recorded into the currently active shard ([`ShardId::BASE`] unless a
//! mutator context is executing). Shards exist so that multi-mutator
//! workloads can account their traffic without contending on one global
//! block; they never lose events because every aggregate accessor folds
//! across all shards on read, and [`MemoryController::merge_shard`] compacts
//! a shard into the base block at mutator drain points. The per-shard
//! accessors double as per-mutator traffic attribution.

use std::collections::HashMap;

use crate::address::{PageId, CACHE_LINE_SIZE, PAGE_SIZE};
use crate::stats::PhaseWrites;
use crate::system::{MemoryKind, Phase};

/// Identifier of one counter shard. Shard 0 ([`ShardId::BASE`]) always
/// exists and receives collector/runtime traffic; further shards are
/// registered per mutator context.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ShardId(pub(crate) usize);

impl ShardId {
    /// The always-present base shard (collector, runtime and any traffic not
    /// attributed to a mutator context).
    pub const BASE: ShardId = ShardId(0);

    /// Raw shard index (diagnostic only).
    pub fn index(self) -> usize {
        self.0
    }
}

/// One block of device counters. Every counter of the controller exists once
/// per shard; aggregates fold across shards.
#[derive(Clone, Debug, Default)]
struct CounterShard {
    reads: [u64; 2],
    writes: [u64; 2],
    phase_writes: [PhaseWrites; 2],
    phase_reads: [PhaseWrites; 2],
    page_writes: HashMap<u64, u64>,
    line_writes: HashMap<u64, u64>,
    migration_writes: [u64; 2],
}

impl CounterShard {
    fn absorb(&mut self, other: &mut CounterShard) {
        for kind in 0..2 {
            self.reads[kind] += other.reads[kind];
            self.writes[kind] += other.writes[kind];
            self.migration_writes[kind] += other.migration_writes[kind];
            for (phase, n) in other.phase_writes[kind].iter() {
                self.phase_writes[kind].add(phase, n);
            }
            for (phase, n) in other.phase_reads[kind].iter() {
                self.phase_reads[kind].add(phase, n);
            }
        }
        for (page, n) in other.page_writes.drain() {
            *self.page_writes.entry(page).or_insert(0) += n;
        }
        for (line, n) in other.line_writes.drain() {
            *self.line_writes.entry(line).or_insert(0) += n;
        }
        other.reads = [0; 2];
        other.writes = [0; 2];
        other.migration_writes = [0; 2];
        other.phase_writes = [PhaseWrites::default(); 2];
        other.phase_reads = [PhaseWrites::default(); 2];
    }
}

/// Device-side access counters (sharded; see the module docs).
#[derive(Debug)]
pub struct MemoryController {
    shards: Vec<CounterShard>,
    active: usize,
    track_lines: bool,
}

impl Default for MemoryController {
    fn default() -> Self {
        Self::new(false)
    }
}

impl MemoryController {
    /// Creates a controller. `track_lines` enables per-cache-line write
    /// tracking (needed only for wear-distribution statistics; per-page
    /// tracking is always on because the WP baseline requires it).
    pub fn new(track_lines: bool) -> Self {
        MemoryController {
            shards: vec![CounterShard::default()],
            active: 0,
            track_lines,
        }
    }

    /// Registers a new counter shard (one per mutator context) and returns
    /// its id.
    pub fn register_shard(&mut self) -> ShardId {
        self.shards.push(CounterShard::default());
        ShardId(self.shards.len() - 1)
    }

    /// Number of shards, including the base shard.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Selects the shard subsequent events are recorded into.
    ///
    /// # Panics
    ///
    /// Panics if the shard was never registered.
    pub fn set_active_shard(&mut self, shard: ShardId) {
        assert!(shard.0 < self.shards.len(), "unregistered shard {shard:?}");
        self.active = shard.0;
    }

    /// The shard currently receiving events.
    pub fn active_shard(&self) -> ShardId {
        ShardId(self.active)
    }

    /// Folds `shard`'s counters into the base shard and clears it. Aggregate
    /// accessors are exact whether or not shards have been merged (they fold
    /// on read); merging bounds per-shard map growth and is called from the
    /// mutator drain path.
    pub fn merge_shard(&mut self, shard: ShardId) {
        if shard.0 == 0 || shard.0 >= self.shards.len() {
            return;
        }
        let mut detached = std::mem::take(&mut self.shards[shard.0]);
        self.shards[0].absorb(&mut detached);
        self.shards[shard.0] = detached;
    }

    /// Records a device read of one cache line.
    pub fn record_read(&mut self, kind: MemoryKind, phase: Phase) {
        let shard = &mut self.shards[self.active];
        shard.reads[kind as usize] += 1;
        shard.phase_reads[kind as usize].add(phase, 1);
    }

    /// Records a device write of one cache line belonging to `page`.
    pub fn record_write(&mut self, kind: MemoryKind, phase: Phase, line: u64) {
        self.record_write_counters(kind, phase, line);
        if self.track_lines {
            self.record_line_wear(line);
        }
    }

    /// The counter half of [`Self::record_write`]: per-kind/phase tallies
    /// and the per-page write count, without the per-line wear update. The
    /// instrumented hot path calls the halves separately so the profiler
    /// can attribute wear tracking as its own stage; composed they are
    /// exactly `record_write`.
    pub fn record_write_counters(&mut self, kind: MemoryKind, phase: Phase, line: u64) {
        let shard = &mut self.shards[self.active];
        shard.writes[kind as usize] += 1;
        shard.phase_writes[kind as usize].add(phase, 1);
        let page = line * CACHE_LINE_SIZE as u64 / PAGE_SIZE as u64;
        *shard.page_writes.entry(page).or_insert(0) += 1;
    }

    /// The wear half of [`Self::record_write`]: bumps `line`'s write count.
    /// Callers must gate on [`Self::tracks_lines`].
    pub fn record_line_wear(&mut self, line: u64) {
        let shard = &mut self.shards[self.active];
        *shard.line_writes.entry(line).or_insert(0) += 1;
    }

    /// `true` when per-cache-line write tracking is enabled.
    pub fn tracks_lines(&self) -> bool {
        self.track_lines
    }

    /// Records the device traffic of the OS migrating one page from `from`
    /// to `to`: a full page of reads from the source and a full page of
    /// writes to the destination. The writes are counted separately so that
    /// Figure 7 can distinguish write-backs from migrations.
    pub fn record_page_migration(&mut self, from: MemoryKind, to: MemoryKind) {
        let lines = (PAGE_SIZE / CACHE_LINE_SIZE) as u64;
        let shard = &mut self.shards[self.active];
        shard.reads[from as usize] += lines;
        shard.writes[to as usize] += lines;
        shard.migration_writes[to as usize] += lines;
        shard.phase_writes[to as usize].add(Phase::Runtime, lines);
    }

    /// Total device reads to `kind` (in cache lines), folded across shards.
    pub fn reads(&self, kind: MemoryKind) -> u64 {
        self.shards.iter().map(|s| s.reads[kind as usize]).sum()
    }

    /// Total device writes to `kind` (in cache lines), including migrations,
    /// folded across shards.
    pub fn writes(&self, kind: MemoryKind) -> u64 {
        self.shards.iter().map(|s| s.writes[kind as usize]).sum()
    }

    /// Device writes to `kind` caused by OS page migration.
    pub fn migration_writes(&self, kind: MemoryKind) -> u64 {
        self.shards
            .iter()
            .map(|s| s.migration_writes[kind as usize])
            .sum()
    }

    /// Device writes to `kind` excluding migration traffic ("write-backs" in
    /// Figure 7).
    pub fn writeback_writes(&self, kind: MemoryKind) -> u64 {
        self.writes(kind) - self.migration_writes(kind)
    }

    /// Per-phase write breakdown for `kind`, folded across shards.
    pub fn phase_writes(&self, kind: MemoryKind) -> PhaseWrites {
        let mut total = PhaseWrites::default();
        for shard in &self.shards {
            for (phase, n) in shard.phase_writes[kind as usize].iter() {
                total.add(phase, n);
            }
        }
        total
    }

    /// Per-phase read breakdown for `kind`, folded across shards.
    pub fn phase_reads(&self, kind: MemoryKind) -> PhaseWrites {
        let mut total = PhaseWrites::default();
        for shard in &self.shards {
            for (phase, n) in shard.phase_reads[kind as usize].iter() {
                total.add(phase, n);
            }
        }
        total
    }

    /// Device reads to `kind` recorded into `shard` and not yet merged (the
    /// per-mutator attribution view).
    pub fn shard_reads(&self, shard: ShardId, kind: MemoryKind) -> u64 {
        self.shards.get(shard.0).map_or(0, |s| s.reads[kind as usize])
    }

    /// Device writes to `kind` recorded into `shard` and not yet merged.
    pub fn shard_writes(&self, shard: ShardId, kind: MemoryKind) -> u64 {
        self.shards.get(shard.0).map_or(0, |s| s.writes[kind as usize])
    }

    /// Write count of a specific page (0 if never written), folded across
    /// shards.
    pub fn page_write_count(&self, page: PageId) -> u64 {
        self.shards
            .iter()
            .map(|s| s.page_writes.get(&page.0).copied().unwrap_or(0))
            .sum()
    }

    /// Iterates over `(page, writes)` pairs for all written pages, folded
    /// across shards.
    pub fn page_writes(&self) -> impl Iterator<Item = (PageId, u64)> + '_ {
        let mut merged: HashMap<u64, u64> = HashMap::new();
        for shard in &self.shards {
            for (&p, &w) in &shard.page_writes {
                *merged.entry(p).or_insert(0) += w;
            }
        }
        merged.into_iter().map(|(p, w)| (PageId(p), w))
    }

    /// Iterates over `(cache line, writes)` pairs if line tracking is on,
    /// folded across shards.
    pub fn line_writes(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        let mut merged: HashMap<u64, u64> = HashMap::new();
        for shard in &self.shards {
            for (&l, &w) in &shard.line_writes {
                *merged.entry(l).or_insert(0) += w;
            }
        }
        merged.into_iter()
    }

    /// Resets the per-page write counters across every shard (the WP
    /// baseline consumes and clears them each OS quantum), returning the
    /// folded counts.
    pub fn take_page_writes(&mut self) -> HashMap<u64, u64> {
        let mut merged: HashMap<u64, u64> = HashMap::new();
        for shard in &mut self.shards {
            for (p, w) in shard.page_writes.drain() {
                *merged.entry(p).or_insert(0) += w;
            }
        }
        merged
    }

    /// Total bytes written to `kind` (cache-line granularity).
    pub fn bytes_written(&self, kind: MemoryKind) -> u64 {
        self.writes(kind) * CACHE_LINE_SIZE as u64
    }

    /// Total bytes read from `kind` (cache-line granularity).
    pub fn bytes_read(&self, kind: MemoryKind) -> u64 {
        self.reads(kind) * CACHE_LINE_SIZE as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_counters_are_per_kind() {
        let mut mc = MemoryController::new(false);
        mc.record_read(MemoryKind::Dram, Phase::Mutator);
        mc.record_write(MemoryKind::Pcm, Phase::Mutator, 100);
        mc.record_write(MemoryKind::Pcm, Phase::MajorGc, 101);
        assert_eq!(mc.reads(MemoryKind::Dram), 1);
        assert_eq!(mc.reads(MemoryKind::Pcm), 0);
        assert_eq!(mc.writes(MemoryKind::Pcm), 2);
        assert_eq!(mc.writes(MemoryKind::Dram), 0);
        assert_eq!(mc.phase_writes(MemoryKind::Pcm).get(Phase::MajorGc), 1);
        assert_eq!(mc.bytes_written(MemoryKind::Pcm), 2 * CACHE_LINE_SIZE as u64);
    }

    #[test]
    fn page_write_counts_aggregate_lines() {
        let mut mc = MemoryController::new(false);
        let lines_per_page = (PAGE_SIZE / CACHE_LINE_SIZE) as u64;
        for line in 0..lines_per_page {
            mc.record_write(MemoryKind::Pcm, Phase::Mutator, line);
        }
        mc.record_write(MemoryKind::Pcm, Phase::Mutator, lines_per_page); // next page
        assert_eq!(mc.page_write_count(PageId(0)), lines_per_page);
        assert_eq!(mc.page_write_count(PageId(1)), 1);
        assert_eq!(mc.page_write_count(PageId(2)), 0);
    }

    #[test]
    fn migrations_are_separated_from_writebacks() {
        let mut mc = MemoryController::new(false);
        mc.record_write(MemoryKind::Pcm, Phase::Mutator, 7);
        mc.record_page_migration(MemoryKind::Dram, MemoryKind::Pcm);
        let lines = (PAGE_SIZE / CACHE_LINE_SIZE) as u64;
        assert_eq!(mc.writes(MemoryKind::Pcm), 1 + lines);
        assert_eq!(mc.migration_writes(MemoryKind::Pcm), lines);
        assert_eq!(mc.writeback_writes(MemoryKind::Pcm), 1);
        assert_eq!(mc.reads(MemoryKind::Dram), lines);
    }

    #[test]
    fn line_tracking_is_optional() {
        let mut off = MemoryController::new(false);
        off.record_write(MemoryKind::Pcm, Phase::Mutator, 9);
        assert_eq!(off.line_writes().count(), 0);
        let mut on = MemoryController::new(true);
        on.record_write(MemoryKind::Pcm, Phase::Mutator, 9);
        on.record_write(MemoryKind::Pcm, Phase::Mutator, 9);
        assert_eq!(on.line_writes().collect::<Vec<_>>(), vec![(9, 2)]);
    }

    #[test]
    fn take_page_writes_clears() {
        let mut mc = MemoryController::new(false);
        mc.record_write(MemoryKind::Dram, Phase::Mutator, 3);
        let taken = mc.take_page_writes();
        assert_eq!(taken.len(), 1);
        assert_eq!(mc.page_write_count(PageId(0)), 0);
    }

    #[test]
    fn sharded_events_fold_into_every_aggregate_accessor() {
        let mut mc = MemoryController::new(true);
        let shard = mc.register_shard();
        mc.record_write(MemoryKind::Pcm, Phase::Mutator, 1);
        mc.set_active_shard(shard);
        mc.record_write(MemoryKind::Pcm, Phase::Mutator, 1);
        mc.record_write(MemoryKind::Pcm, Phase::Runtime, 2);
        mc.record_read(MemoryKind::Dram, Phase::Mutator);
        mc.set_active_shard(ShardId::BASE);
        // Aggregates fold across shards without a merge.
        assert_eq!(mc.writes(MemoryKind::Pcm), 3);
        assert_eq!(mc.reads(MemoryKind::Dram), 1);
        assert_eq!(mc.phase_writes(MemoryKind::Pcm).get(Phase::Mutator), 2);
        assert_eq!(mc.page_write_count(PageId(0)), 3);
        assert_eq!(mc.line_writes().count(), 2);
        // Per-shard attribution before the merge.
        assert_eq!(mc.shard_writes(shard, MemoryKind::Pcm), 2);
        assert_eq!(mc.shard_writes(ShardId::BASE, MemoryKind::Pcm), 1);
        // Merging moves the shard's counts into the base without changing
        // any aggregate.
        mc.merge_shard(shard);
        assert_eq!(mc.shard_writes(shard, MemoryKind::Pcm), 0);
        assert_eq!(mc.shard_writes(ShardId::BASE, MemoryKind::Pcm), 3);
        assert_eq!(mc.writes(MemoryKind::Pcm), 3);
        assert_eq!(mc.page_write_count(PageId(0)), 3);
        assert_eq!(mc.line_writes().collect::<HashMap<_, _>>().get(&1), Some(&2));
    }

    #[test]
    fn take_page_writes_drains_unmerged_shards() {
        let mut mc = MemoryController::new(false);
        let shard = mc.register_shard();
        mc.record_write(MemoryKind::Pcm, Phase::Mutator, 0);
        mc.set_active_shard(shard);
        mc.record_write(MemoryKind::Pcm, Phase::Mutator, 0);
        let taken = mc.take_page_writes();
        assert_eq!(taken.get(&0), Some(&2), "sharded page counts must not be lost");
        assert_eq!(mc.page_write_count(PageId(0)), 0);
    }

    #[test]
    #[should_panic(expected = "unregistered shard")]
    fn activating_an_unregistered_shard_panics() {
        let mut mc = MemoryController::new(false);
        mc.set_active_shard(ShardId(3));
    }

    #[test]
    fn record_write_split_composes_to_record_write() {
        // The profiled touch path calls the two halves separately so wear
        // tracking is attributable as its own stage; together they must
        // equal the combined entry point exactly.
        let mut whole = MemoryController::new(true);
        let mut split = MemoryController::new(true);
        for line in [0u64, 1, 1, 7, 512] {
            whole.record_write(MemoryKind::Pcm, Phase::Mutator, line);
            split.record_write_counters(MemoryKind::Pcm, Phase::Mutator, line);
            assert!(split.tracks_lines());
            split.record_line_wear(line);
        }
        assert_eq!(whole.writes(MemoryKind::Pcm), split.writes(MemoryKind::Pcm));
        assert_eq!(
            whole.line_writes().collect::<HashMap<_, _>>(),
            split.line_writes().collect::<HashMap<_, _>>()
        );
        assert_eq!(
            whole.page_write_count(PageId(0)),
            split.page_write_count(PageId(0))
        );
    }
}
