//! Memory controller: device-side access accounting.
//!
//! Every memory-side event (cache miss fill or dirty write-back) lands here.
//! The controller keeps the counters the paper's evaluation needs:
//!
//! * reads and writes per memory technology (DRAM vs PCM),
//! * writes per technology broken down by the phase that produced them
//!   (Figure 10),
//! * per-page write counts (consumed by the OS Write Partitioning baseline
//!   and by the wear statistics),
//! * migration writes performed by the OS (Figure 7).

use std::collections::HashMap;

use crate::address::{PageId, CACHE_LINE_SIZE, PAGE_SIZE};
use crate::stats::PhaseWrites;
use crate::system::{MemoryKind, Phase};

/// Device-side access counters.
#[derive(Debug, Default)]
pub struct MemoryController {
    reads: [u64; 2],
    writes: [u64; 2],
    phase_writes: [PhaseWrites; 2],
    phase_reads: [PhaseWrites; 2],
    page_writes: HashMap<u64, u64>,
    line_writes: HashMap<u64, u64>,
    migration_writes: [u64; 2],
    track_lines: bool,
}

impl MemoryController {
    /// Creates a controller. `track_lines` enables per-cache-line write
    /// tracking (needed only for wear-distribution statistics; per-page
    /// tracking is always on because the WP baseline requires it).
    pub fn new(track_lines: bool) -> Self {
        MemoryController {
            track_lines,
            ..Default::default()
        }
    }

    /// Records a device read of one cache line.
    pub fn record_read(&mut self, kind: MemoryKind, phase: Phase) {
        self.reads[kind as usize] += 1;
        self.phase_reads[kind as usize].add(phase, 1);
    }

    /// Records a device write of one cache line belonging to `page`.
    pub fn record_write(&mut self, kind: MemoryKind, phase: Phase, line: u64) {
        self.writes[kind as usize] += 1;
        self.phase_writes[kind as usize].add(phase, 1);
        let page = line * CACHE_LINE_SIZE as u64 / PAGE_SIZE as u64;
        *self.page_writes.entry(page).or_insert(0) += 1;
        if self.track_lines {
            *self.line_writes.entry(line).or_insert(0) += 1;
        }
    }

    /// Records the device traffic of the OS migrating one page from `from`
    /// to `to`: a full page of reads from the source and a full page of
    /// writes to the destination. The writes are counted separately so that
    /// Figure 7 can distinguish write-backs from migrations.
    pub fn record_page_migration(&mut self, from: MemoryKind, to: MemoryKind) {
        let lines = (PAGE_SIZE / CACHE_LINE_SIZE) as u64;
        self.reads[from as usize] += lines;
        self.writes[to as usize] += lines;
        self.migration_writes[to as usize] += lines;
        self.phase_writes[to as usize].add(Phase::Runtime, lines);
    }

    /// Total device reads to `kind` (in cache lines).
    pub fn reads(&self, kind: MemoryKind) -> u64 {
        self.reads[kind as usize]
    }

    /// Total device writes to `kind` (in cache lines), including migrations.
    pub fn writes(&self, kind: MemoryKind) -> u64 {
        self.writes[kind as usize]
    }

    /// Device writes to `kind` caused by OS page migration.
    pub fn migration_writes(&self, kind: MemoryKind) -> u64 {
        self.migration_writes[kind as usize]
    }

    /// Device writes to `kind` excluding migration traffic ("write-backs" in
    /// Figure 7).
    pub fn writeback_writes(&self, kind: MemoryKind) -> u64 {
        self.writes[kind as usize] - self.migration_writes[kind as usize]
    }

    /// Per-phase write breakdown for `kind`.
    pub fn phase_writes(&self, kind: MemoryKind) -> PhaseWrites {
        self.phase_writes[kind as usize]
    }

    /// Per-phase read breakdown for `kind`.
    pub fn phase_reads(&self, kind: MemoryKind) -> PhaseWrites {
        self.phase_reads[kind as usize]
    }

    /// Write count of a specific page (0 if never written).
    pub fn page_write_count(&self, page: PageId) -> u64 {
        self.page_writes.get(&page.0).copied().unwrap_or(0)
    }

    /// Iterates over `(page, writes)` pairs for all written pages.
    pub fn page_writes(&self) -> impl Iterator<Item = (PageId, u64)> + '_ {
        self.page_writes.iter().map(|(&p, &w)| (PageId(p), w))
    }

    /// Iterates over `(cache line, writes)` pairs if line tracking is on.
    pub fn line_writes(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.line_writes.iter().map(|(&l, &w)| (l, w))
    }

    /// Resets the per-page write counters (the WP baseline consumes and
    /// clears them each OS quantum).
    pub fn take_page_writes(&mut self) -> HashMap<u64, u64> {
        std::mem::take(&mut self.page_writes)
    }

    /// Total bytes written to `kind` (cache-line granularity).
    pub fn bytes_written(&self, kind: MemoryKind) -> u64 {
        self.writes(kind) * CACHE_LINE_SIZE as u64
    }

    /// Total bytes read from `kind` (cache-line granularity).
    pub fn bytes_read(&self, kind: MemoryKind) -> u64 {
        self.reads(kind) * CACHE_LINE_SIZE as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_counters_are_per_kind() {
        let mut mc = MemoryController::new(false);
        mc.record_read(MemoryKind::Dram, Phase::Mutator);
        mc.record_write(MemoryKind::Pcm, Phase::Mutator, 100);
        mc.record_write(MemoryKind::Pcm, Phase::MajorGc, 101);
        assert_eq!(mc.reads(MemoryKind::Dram), 1);
        assert_eq!(mc.reads(MemoryKind::Pcm), 0);
        assert_eq!(mc.writes(MemoryKind::Pcm), 2);
        assert_eq!(mc.writes(MemoryKind::Dram), 0);
        assert_eq!(mc.phase_writes(MemoryKind::Pcm).get(Phase::MajorGc), 1);
        assert_eq!(mc.bytes_written(MemoryKind::Pcm), 2 * CACHE_LINE_SIZE as u64);
    }

    #[test]
    fn page_write_counts_aggregate_lines() {
        let mut mc = MemoryController::new(false);
        let lines_per_page = (PAGE_SIZE / CACHE_LINE_SIZE) as u64;
        for line in 0..lines_per_page {
            mc.record_write(MemoryKind::Pcm, Phase::Mutator, line);
        }
        mc.record_write(MemoryKind::Pcm, Phase::Mutator, lines_per_page); // next page
        assert_eq!(mc.page_write_count(PageId(0)), lines_per_page);
        assert_eq!(mc.page_write_count(PageId(1)), 1);
        assert_eq!(mc.page_write_count(PageId(2)), 0);
    }

    #[test]
    fn migrations_are_separated_from_writebacks() {
        let mut mc = MemoryController::new(false);
        mc.record_write(MemoryKind::Pcm, Phase::Mutator, 7);
        mc.record_page_migration(MemoryKind::Dram, MemoryKind::Pcm);
        let lines = (PAGE_SIZE / CACHE_LINE_SIZE) as u64;
        assert_eq!(mc.writes(MemoryKind::Pcm), 1 + lines);
        assert_eq!(mc.migration_writes(MemoryKind::Pcm), lines);
        assert_eq!(mc.writeback_writes(MemoryKind::Pcm), 1);
        assert_eq!(mc.reads(MemoryKind::Dram), lines);
    }

    #[test]
    fn line_tracking_is_optional() {
        let mut off = MemoryController::new(false);
        off.record_write(MemoryKind::Pcm, Phase::Mutator, 9);
        assert_eq!(off.line_writes().count(), 0);
        let mut on = MemoryController::new(true);
        on.record_write(MemoryKind::Pcm, Phase::Mutator, 9);
        on.record_write(MemoryKind::Pcm, Phase::Mutator, 9);
        assert_eq!(on.line_writes().collect::<Vec<_>>(), vec![(9, 2)]);
    }

    #[test]
    fn take_page_writes_clears() {
        let mut mc = MemoryController::new(false);
        mc.record_write(MemoryKind::Dram, Phase::Mutator, 3);
        let taken = mc.take_page_writes();
        assert_eq!(taken.len(), 1);
        assert_eq!(mc.page_write_count(PageId(0)), 0);
    }
}
