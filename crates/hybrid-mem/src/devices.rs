//! DRAM and PCM device models.
//!
//! The constants reproduce Table 2 of the paper: DRAM has a 45 ns read and
//! write latency and dissipates 0.678 W while reading and 0.825 W while
//! writing; PCM has a 180 ns read latency (4x DRAM), a 450 ns write latency
//! (12x DRAM when accounting for array write-back), 0.617 W read power,
//! 3.0 W write power and an endurance of 30 million writes per cell. Both
//! devices expose a 1 KB row buffer; only modified lines are written back to
//! the PCM array, and PCM reads are non-destructive so they need no
//! pre-charge.

use crate::system::MemoryKind;

/// Timing and power parameters of a single memory technology.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeviceParams {
    /// Latency of a read access, in nanoseconds.
    pub read_latency_ns: f64,
    /// Latency of a write access, in nanoseconds.
    pub write_latency_ns: f64,
    /// Average power drawn while servicing a read, in watts.
    pub read_power_w: f64,
    /// Average power drawn while servicing a write, in watts.
    pub write_power_w: f64,
    /// Background (static/refresh) power per 32 GB of capacity, in watts.
    pub static_power_w: f64,
    /// Cell endurance in writes, `None` for effectively unlimited (DRAM).
    pub endurance_writes: Option<u64>,
}

impl DeviceParams {
    /// Energy of a single read of one cache line, in joules.
    pub fn read_energy_j(&self) -> f64 {
        self.read_power_w * self.read_latency_ns * 1e-9
    }

    /// Energy of a single write of one cache line, in joules.
    pub fn write_energy_j(&self) -> f64 {
        self.write_power_w * self.write_latency_ns * 1e-9
    }
}

/// DRAM parameters (Micron DDR3, Table 2).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DramParams;

impl DramParams {
    /// The paper's DRAM device model.
    pub const fn params() -> DeviceParams {
        DeviceParams {
            read_latency_ns: 45.0,
            write_latency_ns: 45.0,
            read_power_w: 0.678,
            write_power_w: 0.825,
            // DDR3 refresh + background power for a fully provisioned 32 GB
            // DIMM population (~0.8 W per GB); the energy model scales this
            // with the fraction of the 32 GB that a configuration actually
            // provisions (1 GB for the hybrid systems).
            static_power_w: 26.0,
            endurance_writes: None,
        }
    }
}

/// PCM parameters (Table 2, derived from Lee et al. \[26\]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PcmParams;

impl PcmParams {
    /// The paper's PCM device model with 30 M writes-per-cell endurance.
    pub const fn params() -> DeviceParams {
        DeviceParams {
            read_latency_ns: 180.0,
            write_latency_ns: 450.0,
            read_power_w: 0.617,
            write_power_w: 3.0,
            // "The static power of PCM prototypes are negligible compared to
            // DRAM" (Section 5.2.2).
            static_power_w: 0.5,
            endurance_writes: Some(30_000_000),
        }
    }
}

/// Returns the paper's device parameters for `kind`.
pub fn params_for(kind: MemoryKind) -> DeviceParams {
    match kind {
        MemoryKind::Dram => DramParams::params(),
        MemoryKind::Pcm => PcmParams::params(),
    }
}

/// Main-memory bandwidth assumed by the simulated memory controller (Table 2).
pub const MEMORY_BANDWIDTH_GBPS: f64 = 12.0;

/// Simulated processor clock frequency in GHz (Table 2).
pub const CPU_FREQ_GHZ: f64 = 4.0;

/// Number of simulated cores (Table 2).
pub const SIMULATED_CORES: usize = 4;

/// Number of cores of the write-rate estimation platform (Section 5.2.2).
pub const ESTIMATION_CORES: usize = 32;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pcm_is_slower_and_hungrier_than_dram() {
        let dram = DramParams::params();
        let pcm = PcmParams::params();
        assert!(pcm.read_latency_ns / dram.read_latency_ns >= 4.0 - 1e-9);
        assert!(pcm.write_latency_ns / dram.write_latency_ns >= 10.0 - 1e-9);
        assert!(pcm.write_energy_j() > dram.write_energy_j());
        assert!(pcm.static_power_w < dram.static_power_w);
    }

    #[test]
    fn endurance_only_for_pcm() {
        assert!(DramParams::params().endurance_writes.is_none());
        assert_eq!(PcmParams::params().endurance_writes, Some(30_000_000));
    }

    #[test]
    fn params_for_matches_kind() {
        assert_eq!(params_for(MemoryKind::Dram), DramParams::params());
        assert_eq!(params_for(MemoryKind::Pcm), PcmParams::params());
    }

    #[test]
    fn energy_per_access_is_positive_and_tiny() {
        for kind in [MemoryKind::Dram, MemoryKind::Pcm] {
            let p = params_for(kind);
            assert!(p.read_energy_j() > 0.0 && p.read_energy_j() < 1e-5);
            assert!(p.write_energy_j() > 0.0 && p.write_energy_j() < 1e-5);
        }
    }
}
