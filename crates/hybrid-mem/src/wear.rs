//! Wear-leveling statistics.
//!
//! The paper assumes the fine-grained line wear-leveling hardware of Qureshi
//! et al. \[42\] and therefore models lifetime from the aggregate write rate
//! alone. This module provides the supporting analysis: given per-line write
//! counts it reports how uniform the write distribution actually is, what
//! lifetime ideal wear-leveling achieves, and what lifetime would result with
//! no wear-leveling at all (the most-written line wearing out first).

use crate::address::CACHE_LINE_SIZE;
use crate::lifetime::SECONDS_PER_YEAR;

/// Summary of the write distribution over PCM lines.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WearSummary {
    /// Number of distinct lines written at least once.
    pub lines_written: u64,
    /// Total line writes.
    pub total_writes: u64,
    /// Maximum writes to a single line.
    pub max_line_writes: u64,
    /// Mean writes per written line.
    pub mean_line_writes: f64,
    /// Coefficient of variation of the per-line write counts.
    pub coefficient_of_variation: f64,
}

/// Accumulates per-line write counts and derives wear statistics.
#[derive(Clone, Debug, Default)]
pub struct WearTracker {
    counts: Vec<u64>,
}

impl WearTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a tracker from an iterator of per-line write counts.
    pub fn from_counts<I: IntoIterator<Item = u64>>(counts: I) -> Self {
        WearTracker {
            counts: counts.into_iter().collect(),
        }
    }

    /// Builds a tracker from `(line, writes)` pairs as exported by
    /// [`crate::MemorySystem::pcm_line_writes`] — the line ids only carry
    /// ordering, the distribution statistics come from the counts. This is
    /// the device-region rollup used by fleet-level wear brokers: each
    /// region's cumulative pairs summarise to one [`WearSummary`] that can
    /// be ranked against the other regions.
    pub fn from_line_writes(pairs: &[(u64, u64)]) -> Self {
        Self::from_counts(pairs.iter().map(|&(_, writes)| writes))
    }

    /// Records the write count of one line.
    pub fn record(&mut self, writes: u64) {
        self.counts.push(writes);
    }

    /// Summarises the distribution. The moments are accumulated as integer
    /// sums, so the result is independent of the order counts were recorded
    /// in (the memory controller folds its shards through a `HashMap`, whose
    /// iteration order varies run to run — float accumulation in that order
    /// would make the coefficient of variation drift in its last bits).
    pub fn summary(&self) -> WearSummary {
        if self.counts.is_empty() {
            return WearSummary::default();
        }
        let total: u64 = self.counts.iter().sum();
        let sum_sq: u128 = self.counts.iter().map(|&c| (c as u128) * (c as u128)).sum();
        let n = self.counts.len() as f64;
        let mean = total as f64 / n;
        // E[c²] − mean², clamped: the two terms are equal for a uniform
        // distribution and rounding may leave a tiny negative residue.
        let var = (sum_sq as f64 / n - mean * mean).max(0.0);
        WearSummary {
            lines_written: self.counts.len() as u64,
            total_writes: total,
            max_line_writes: self.counts.iter().copied().max().unwrap_or(0),
            mean_line_writes: mean,
            coefficient_of_variation: if mean > 0.0 { var.sqrt() / mean } else { 0.0 },
        }
    }

    /// Lifetime in years with *ideal* wear-leveling: total write traffic is
    /// spread uniformly over `capacity_bytes` of PCM (the paper's model).
    pub fn ideal_wear_leveled_years(
        &self,
        capacity_bytes: u64,
        endurance_writes: u64,
        elapsed_s: f64,
    ) -> f64 {
        let bytes_written: u64 = self.counts.iter().sum::<u64>() * CACHE_LINE_SIZE as u64;
        if elapsed_s <= 0.0 || bytes_written == 0 {
            return f64::INFINITY;
        }
        crate::lifetime::lifetime_years(capacity_bytes, endurance_writes, bytes_written as f64 / elapsed_s)
    }

    /// Lifetime in years with *no* wear-leveling: the device fails when its
    /// most-written line reaches the endurance limit.
    pub fn unleveled_years(&self, endurance_writes: u64, elapsed_s: f64) -> f64 {
        let summary = self.summary();
        if elapsed_s <= 0.0 || summary.max_line_writes == 0 {
            return f64::INFINITY;
        }
        let writes_per_second = summary.max_line_writes as f64 / elapsed_s;
        endurance_writes as f64 / writes_per_second / SECONDS_PER_YEAR
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_uniform_distribution() {
        let tracker = WearTracker::from_counts(vec![10, 10, 10, 10]);
        let s = tracker.summary();
        assert_eq!(s.lines_written, 4);
        assert_eq!(s.total_writes, 40);
        assert_eq!(s.max_line_writes, 10);
        assert!((s.mean_line_writes - 10.0).abs() < 1e-12);
        assert!(s.coefficient_of_variation.abs() < 1e-12);
    }

    #[test]
    fn skewed_distribution_has_high_cv_and_short_unleveled_life() {
        let uniform = WearTracker::from_counts(vec![100; 64]);
        let mut skewed_counts = vec![1u64; 63];
        skewed_counts.push(100 * 64 - 63);
        let skewed = WearTracker::from_counts(skewed_counts);
        assert!(skewed.summary().coefficient_of_variation > uniform.summary().coefficient_of_variation);
        // Same total traffic => same ideal-wear-leveled lifetime, but far
        // shorter unleveled lifetime for the skewed distribution.
        let cap = 1 << 30;
        let ideal_u = uniform.ideal_wear_leveled_years(cap, 30_000_000, 1.0);
        let ideal_s = skewed.ideal_wear_leveled_years(cap, 30_000_000, 1.0);
        assert!((ideal_u - ideal_s).abs() / ideal_u < 1e-9);
        assert!(skewed.unleveled_years(30_000_000, 1.0) < uniform.unleveled_years(30_000_000, 1.0));
    }

    #[test]
    fn empty_tracker_is_infinite_lifetime() {
        let t = WearTracker::new();
        assert_eq!(t.summary(), WearSummary::default());
        assert!(t.ideal_wear_leveled_years(1 << 30, 30_000_000, 1.0).is_infinite());
        assert!(t.unleveled_years(30_000_000, 1.0).is_infinite());
    }

    #[test]
    fn record_accumulates() {
        let mut t = WearTracker::new();
        t.record(5);
        t.record(7);
        assert_eq!(t.summary().total_writes, 12);
        assert_eq!(t.summary().max_line_writes, 7);
    }
}
