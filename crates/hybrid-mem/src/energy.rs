//! Energy and energy-delay-product (EDP) model.
//!
//! Reproduces the paper's methodology (Section 5.2.2): per-access dynamic
//! energy from the device models, background (static) energy proportional to
//! execution time and provisioned capacity, and a fixed processor power
//! derived from McPAT-style constants. The headline metric is the
//! energy-delay product, which multiplies energy by execution time and thus
//! penalises PCM's longer latencies (Figure 8).

use crate::devices;
use crate::stats::MemoryStats;
use crate::system::MemoryKind;

/// Energy breakdown of a run, in joules.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Dynamic DRAM energy (reads + writes).
    pub dram_dynamic_j: f64,
    /// Dynamic PCM energy (reads + writes).
    pub pcm_dynamic_j: f64,
    /// Background/static memory energy.
    pub memory_static_j: f64,
    /// Processor energy.
    pub cpu_j: f64,
}

impl EnergyBreakdown {
    /// Total energy in joules.
    pub fn total_j(&self) -> f64 {
        self.dram_dynamic_j + self.pcm_dynamic_j + self.memory_static_j + self.cpu_j
    }

    /// Total memory energy (dynamic + static) in joules.
    pub fn memory_j(&self) -> f64 {
        self.dram_dynamic_j + self.pcm_dynamic_j + self.memory_static_j
    }
}

/// Energy model configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyModel {
    /// Average processor power in watts (McPAT, quad-core Haswell-class).
    pub cpu_power_w: f64,
    /// Fraction of each memory kind's provisioned static power that is
    /// charged (idle memory is assumed to be partially powered down).
    pub static_power_scale: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            cpu_power_w: 15.0,
            static_power_scale: 1.0,
        }
    }
}

impl EnergyModel {
    /// Computes the energy breakdown of a run.
    ///
    /// `dram_fraction` and `pcm_fraction` scale the static (background +
    /// refresh) power of each technology by the share of its nominal 32 GB
    /// capacity that the configuration provisions: 1.0 for a 32 GB
    /// DRAM-only system, 1/32 for the hybrid systems' 1 GB of DRAM, 0.0 when
    /// the technology is absent. This is what makes hybrid memory
    /// energy-efficient despite PCM's longer latencies (Figure 8).
    pub fn breakdown(
        &self,
        mem: &MemoryStats,
        execution_time_s: f64,
        dram_fraction: f64,
        pcm_fraction: f64,
    ) -> EnergyBreakdown {
        let dram = devices::params_for(MemoryKind::Dram);
        let pcm = devices::params_for(MemoryKind::Pcm);
        let dram_dynamic_j = mem.reads(MemoryKind::Dram) as f64 * dram.read_energy_j()
            + mem.writes(MemoryKind::Dram) as f64 * dram.write_energy_j();
        let pcm_dynamic_j = mem.reads(MemoryKind::Pcm) as f64 * pcm.read_energy_j()
            + mem.writes(MemoryKind::Pcm) as f64 * pcm.write_energy_j();
        let static_w = dram.static_power_w * dram_fraction.clamp(0.0, 1.0) * self.static_power_scale
            + pcm.static_power_w * pcm_fraction.clamp(0.0, 1.0) * self.static_power_scale;
        EnergyBreakdown {
            dram_dynamic_j,
            pcm_dynamic_j,
            memory_static_j: static_w * execution_time_s,
            cpu_j: self.cpu_power_w * execution_time_s,
        }
    }

    /// Energy-delay product in joule-seconds.
    pub fn edp(
        &self,
        mem: &MemoryStats,
        execution_time_s: f64,
        dram_fraction: f64,
        pcm_fraction: f64,
    ) -> f64 {
        self.breakdown(mem, execution_time_s, dram_fraction, pcm_fraction)
            .total_j()
            * execution_time_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(dram_w: u64, pcm_w: u64) -> MemoryStats {
        let mut s = MemoryStats::default();
        s.writes[MemoryKind::Dram as usize] = dram_w;
        s.reads[MemoryKind::Dram as usize] = dram_w;
        s.writes[MemoryKind::Pcm as usize] = pcm_w;
        s.reads[MemoryKind::Pcm as usize] = pcm_w;
        s
    }

    #[test]
    fn pcm_writes_cost_more_energy_than_dram_writes() {
        let model = EnergyModel::default();
        let d = model.breakdown(&stats(1_000_000, 0), 1.0, 1.0, 0.0);
        let p = model.breakdown(&stats(0, 1_000_000), 1.0, 0.0, 1.0);
        assert!(p.pcm_dynamic_j > d.dram_dynamic_j);
    }

    #[test]
    fn pcm_static_power_is_lower() {
        let model = EnergyModel::default();
        let d = model.breakdown(&MemoryStats::default(), 10.0, 1.0, 0.0);
        let p = model.breakdown(&MemoryStats::default(), 10.0, 0.0, 1.0);
        assert!(p.memory_static_j < d.memory_static_j);
    }

    #[test]
    fn hybrid_static_power_is_much_lower_than_dram_only() {
        // The hybrid system provisions only 1 GB of DRAM (1/32 of the
        // DRAM-only system), which is where the paper's energy advantage
        // comes from.
        let model = EnergyModel::default();
        let dram_only = model.breakdown(&MemoryStats::default(), 1.0, 1.0, 0.0);
        let hybrid = model.breakdown(&MemoryStats::default(), 1.0, 1.0 / 32.0, 1.0);
        assert!(hybrid.memory_static_j < dram_only.memory_static_j / 5.0);
    }

    #[test]
    fn edp_scales_quadratically_with_time_for_static_energy() {
        let model = EnergyModel::default();
        let s = MemoryStats::default();
        let e1 = model.edp(&s, 1.0, 1.0, 1.0);
        let e2 = model.edp(&s, 2.0, 1.0, 1.0);
        assert!((e2 / e1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn breakdown_total_is_sum_of_parts() {
        let model = EnergyModel::default();
        let b = model.breakdown(&stats(10, 20), 0.5, 1.0, 1.0);
        let sum = b.dram_dynamic_j + b.pcm_dynamic_j + b.memory_static_j + b.cpu_j;
        assert!((b.total_j() - sum).abs() < 1e-15);
        assert!(b.memory_j() < b.total_j());
    }
}
