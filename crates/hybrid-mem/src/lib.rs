//! Hybrid DRAM/PCM main-memory simulator.
//!
//! This crate is the memory-system substrate used by the write-rationing
//! garbage collectors in the `kingsguard` crate. It reproduces the
//! memory-system side of *Write-Rationing Garbage Collection for Hybrid
//! Memories* (Akram et al., PLDI 2018):
//!
//! * a simulated 64-bit virtual **address space** whose pages are mapped to
//!   either DRAM or PCM ([`PageMap`], [`MemoryKind`]),
//! * a lazily materialised **backing store** holding real bytes
//!   ([`backing::ChunkedMemory`]),
//! * a three-level set-associative write-back **cache hierarchy** that absorbs
//!   and coalesces writes and remembers the phase that last wrote each cache
//!   line ([`cache::CacheHierarchy`]),
//! * a **memory controller** that counts reads and writes per device, per
//!   page, per line and per GC phase ([`controller::MemoryController`]),
//! * DRAM/PCM **device models** with the latency and energy parameters of the
//!   paper's Table 2 ([`devices`]),
//! * an **energy / energy-delay-product model** ([`energy`]), an analytic
//!   **execution-time model** ([`timing`]), the paper's **PCM lifetime
//!   model** `Y = S·E / (B·2^25)` ([`lifetime`]) and ideal line
//!   **wear-leveling** statistics ([`wear`]).
//!
//! The central entry point is [`MemorySystem`]: heap code issues tagged reads
//! and writes through it and later extracts a [`stats::MemoryStats`] snapshot.
//!
//! # Example
//!
//! ```
//! use hybrid_mem::{MemoryConfig, MemorySystem, MemoryKind, Phase};
//!
//! let mut mem = MemorySystem::new(MemoryConfig::hybrid());
//! // Reserve a 1 MiB extent and map its first 16 pages onto PCM.
//! let base = mem.reserve_extent("demo", 1 << 20);
//! mem.map_pages(base, 16, MemoryKind::Pcm, 0);
//! mem.write_u64(base, 0xdead_beef, Phase::Mutator);
//! assert_eq!(mem.read_u64(base, Phase::Mutator), 0xdead_beef);
//! mem.flush_caches();
//! let stats = mem.stats();
//! assert!(stats.writes(MemoryKind::Pcm) >= 1);
//! ```

#![forbid(unsafe_code)]

pub mod address;
pub mod backing;
pub mod cache;
pub mod controller;
pub mod devices;
pub mod energy;
pub mod fault;
pub mod lifetime;
pub mod page_map;
pub mod stats;
pub mod system;
pub mod timing;
pub mod wear;

pub use address::{Address, PageId, BLOCK_SIZE, CACHE_LINE_SIZE, LINE_SIZE, PAGE_SIZE};
pub use cache::{CacheConfig, CacheHierarchy};
pub use controller::{MemoryController, ShardId};
pub use devices::{DeviceParams, DramParams, PcmParams};
pub use energy::{EnergyBreakdown, EnergyModel};
pub use fault::{years_to_first_uncorrectable, FaultConfig, FaultEvent, FaultModel};
pub use lifetime::{lifetime_years, Endurance, LifetimeModel};
pub use page_map::PageMap;
pub use stats::{MemoryStats, PhaseWrites, ShardStats};
pub use system::{AccessKind, MemoryConfig, MemoryKind, MemorySystem, Phase};
pub use timing::{ExecutionModel, TimeBreakdown};
pub use wear::{WearSummary, WearTracker};
