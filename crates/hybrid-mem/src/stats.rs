//! Aggregated memory-system statistics.

use crate::system::{MemoryKind, Phase};

/// A per-phase counter (used for both reads and writes).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseWrites {
    counts: [u64; Phase::COUNT],
}

impl PhaseWrites {
    /// Adds `n` events for `phase`.
    pub fn add(&mut self, phase: Phase, n: u64) {
        self.counts[phase as usize] += n;
    }

    /// Returns the count for `phase`.
    pub fn get(&self, phase: Phase) -> u64 {
        self.counts[phase as usize]
    }

    /// Sum over all phases.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Iterates over `(phase, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Phase, u64)> + '_ {
        Phase::ALL.iter().map(move |&p| (p, self.counts[p as usize]))
    }
}

/// Snapshot of the memory system at the end of a run.
#[derive(Clone, Debug, Default)]
pub struct MemoryStats {
    /// Device reads per kind (cache lines), indexed by `MemoryKind as usize`.
    pub reads: [u64; 2],
    /// Device writes per kind (cache lines).
    pub writes: [u64; 2],
    /// Device writes per kind caused by OS page migration.
    pub migration_writes: [u64; 2],
    /// Per-phase device writes per kind.
    pub phase_writes: [PhaseWrites; 2],
    /// Per-phase device reads per kind.
    pub phase_reads: [PhaseWrites; 2],
    /// Bytes currently mapped per kind.
    pub mapped_bytes: [u64; 2],
    /// LLC misses observed by the cache hierarchy.
    pub llc_misses: u64,
    /// Cache hits across all levels.
    pub cache_hits: u64,
    /// PCM lines permanently failed by the fault model (0 without fault
    /// injection).
    pub failed_pcm_lines: u64,
    /// PCM pages retired as uncorrectable and remapped to spare capacity.
    pub retired_pcm_pages: u64,
    /// Transient (ECC-corrected) PCM faults absorbed.
    pub transient_pcm_faults: u64,
    /// PCM capacity lost to retired pages, in bytes.
    pub degraded_pcm_bytes: u64,
}

impl MemoryStats {
    /// Device reads to `kind` in cache lines.
    pub fn reads(&self, kind: MemoryKind) -> u64 {
        self.reads[kind as usize]
    }

    /// Device writes to `kind` in cache lines.
    pub fn writes(&self, kind: MemoryKind) -> u64 {
        self.writes[kind as usize]
    }

    /// Device writes to `kind` caused by page migration.
    pub fn migration_writes(&self, kind: MemoryKind) -> u64 {
        self.migration_writes[kind as usize]
    }

    /// Device writes to `kind` excluding migration traffic.
    pub fn writeback_writes(&self, kind: MemoryKind) -> u64 {
        self.writes(kind) - self.migration_writes(kind)
    }

    /// Bytes written to `kind`.
    pub fn bytes_written(&self, kind: MemoryKind) -> u64 {
        self.writes(kind) * crate::address::CACHE_LINE_SIZE as u64
    }

    /// Bytes read from `kind`.
    pub fn bytes_read(&self, kind: MemoryKind) -> u64 {
        self.reads(kind) * crate::address::CACHE_LINE_SIZE as u64
    }

    /// Per-phase write breakdown for `kind`.
    pub fn phase_writes(&self, kind: MemoryKind) -> PhaseWrites {
        self.phase_writes[kind as usize]
    }

    /// Bytes currently mapped onto `kind`.
    pub fn mapped_bytes(&self, kind: MemoryKind) -> u64 {
        self.mapped_bytes[kind as usize]
    }

    /// Total writes across both kinds.
    pub fn total_writes(&self) -> u64 {
        self.writes.iter().sum()
    }

    /// Total reads across both kinds.
    pub fn total_reads(&self) -> u64 {
        self.reads.iter().sum()
    }

    /// Fraction of the nominal PCM capacity lost to retired pages, given
    /// that capacity in bytes (0 for a healthy device).
    pub fn pcm_degradation(&self, pcm_capacity_bytes: u64) -> f64 {
        if pcm_capacity_bytes == 0 {
            return 0.0;
        }
        self.degraded_pcm_bytes as f64 / pcm_capacity_bytes as f64
    }
}

/// Per-shard traffic attribution: what one mutator context's accesses did
/// to the devices and caches since the shard's last merge.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Device reads per kind (cache lines), indexed by `MemoryKind as usize`.
    pub reads: [u64; 2],
    /// Device writes per kind (cache lines).
    pub writes: [u64; 2],
    /// Accesses that hit in some cache level (0 with caching disabled).
    pub cache_hits: u64,
    /// Accesses that missed every cache level (0 with caching disabled).
    pub cache_misses: u64,
}

impl ShardStats {
    /// Device reads to `kind` in cache lines.
    pub fn reads(&self, kind: MemoryKind) -> u64 {
        self.reads[kind as usize]
    }

    /// Device writes to `kind` in cache lines.
    pub fn writes(&self, kind: MemoryKind) -> u64 {
        self.writes[kind as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_writes_accumulate_and_total() {
        let mut pw = PhaseWrites::default();
        pw.add(Phase::Mutator, 5);
        pw.add(Phase::MajorGc, 2);
        pw.add(Phase::Mutator, 1);
        assert_eq!(pw.get(Phase::Mutator), 6);
        assert_eq!(pw.get(Phase::MajorGc), 2);
        assert_eq!(pw.get(Phase::ObserverGc), 0);
        assert_eq!(pw.total(), 8);
        assert_eq!(pw.iter().count(), Phase::COUNT);
    }

    #[test]
    fn stats_accessors() {
        let mut stats = MemoryStats::default();
        stats.writes[MemoryKind::Pcm as usize] = 10;
        stats.migration_writes[MemoryKind::Pcm as usize] = 4;
        stats.reads[MemoryKind::Dram as usize] = 3;
        assert_eq!(stats.writes(MemoryKind::Pcm), 10);
        assert_eq!(stats.writeback_writes(MemoryKind::Pcm), 6);
        assert_eq!(stats.total_writes(), 10);
        assert_eq!(stats.total_reads(), 3);
        assert_eq!(stats.bytes_written(MemoryKind::Pcm), 640);
    }
}
