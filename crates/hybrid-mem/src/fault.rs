//! Deterministic PCM fault injection: line wear-out, transient flips and
//! page retirement.
//!
//! The lifetime model of [`crate::lifetime`] is optimistic by construction —
//! it assumes ideal wear-leveling and reduces endurance to one scalar "years
//! of lifetime", so nothing in the simulator ever actually *fails*. This
//! module makes failure a first-class, deterministic event:
//!
//! * every PCM line draws an **endurance budget** around the configured
//!   [`Endurance`] level (a pure hash of `(seed, line)`, so the schedule is
//!   independent of the order lines are examined in),
//! * a line whose device-level write count exceeds its budget is **failed**
//!   permanently,
//! * a page accumulating more failed lines than the ECC can correct becomes
//!   **uncorrectable** and must be retired (remapped to spare capacity —
//!   modeled as DRAM — after its live contents have been evacuated),
//! * optional **transient bit flips** fire at a deterministic per-line
//!   cadence; the ECC corrects them, so they are counted, not fatal.
//!
//! Everything is a pure function of the seed and the observed per-line write
//! counts: two runs with the same seed and the same write history produce a
//! bit-identical fault and retirement schedule, which is what keeps
//! record/replay traces and `repro metrics diff` drift-free under injected
//! faults.

use std::collections::{BTreeMap, BTreeSet};

use crate::address::{LINE_SIZE, PAGE_SIZE};
use crate::lifetime::{Endurance, SECONDS_PER_YEAR};

/// Number of PCM lines per OS page (4 KB / 256 B = 16).
pub const LINES_PER_PAGE: u64 = (PAGE_SIZE / LINE_SIZE) as u64;

/// Configuration of the deterministic fault model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultConfig {
    /// Seed of the fault schedule. Recorded in `.kgtrace` provenance so a
    /// replay reproduces the exact same failures.
    pub seed: u64,
    /// Endurance level the per-line budgets are drawn around.
    pub endurance: Endurance,
    /// Wear acceleration: every observed device write ages its line by this
    /// many physical writes. `1` is real time (no run ever lives long enough
    /// to wear a line out); large values compress decades of wear into a
    /// seconds-long run so retirement paths are exercised. Reported
    /// years-to-failure figures always divide the acceleration back out.
    pub wear_multiplier: u64,
    /// Failed lines per page the ECC can still correct; one more and the
    /// page is uncorrectable and must be retired.
    pub ecc_correctable_lines: u32,
    /// Base period (in line writes) between transient bit flips on one line;
    /// `0` disables transient faults. The per-line period is jittered by the
    /// seed like the endurance budgets.
    pub transient_period: u64,
}

impl FaultConfig {
    /// Real-time fault model: budgets around `endurance`, no acceleration,
    /// a typical ECC strength of 4 correctable lines, transients off.
    pub fn new(seed: u64, endurance: Endurance) -> Self {
        FaultConfig {
            seed,
            endurance,
            wear_multiplier: 1,
            ecc_correctable_lines: 4,
            transient_period: 0,
        }
    }

    /// Accelerated wear for in-run failure: one device write ages a line by
    /// `endurance / 2^14` physical writes, so lines written a few dozen
    /// times during a run reach their budget and the retirement machinery
    /// actually runs.
    pub fn accelerated(seed: u64, endurance: Endurance) -> Self {
        FaultConfig {
            wear_multiplier: (endurance.writes_per_cell() >> 14).max(1),
            ..FaultConfig::new(seed, endurance)
        }
    }

    /// Same schedule with a different wear acceleration.
    pub fn with_wear_multiplier(mut self, multiplier: u64) -> Self {
        self.wear_multiplier = multiplier.max(1);
        self
    }

    /// Same schedule with a different ECC strength.
    pub fn with_ecc_correctable_lines(mut self, lines: u32) -> Self {
        self.ecc_correctable_lines = lines;
        self
    }

    /// Same schedule with transient bit flips every ~`period` line writes.
    pub fn with_transient_period(mut self, period: u64) -> Self {
        self.transient_period = period;
        self
    }

    /// The wear-out budget of `line` in physical writes: a deterministic
    /// draw from `[E/2, 3E/2)` around the endurance level `E`. A pure
    /// function of `(seed, line)`, so budgets do not depend on the order in
    /// which lines are examined.
    pub fn line_budget(&self, line: u64) -> u64 {
        let wpc = self.endurance.writes_per_cell();
        wpc / 2 + mix(self.seed ^ line.wrapping_mul(0x9e37_79b9_7f4a_7c15)) % wpc
    }

    /// The jittered transient-flip period of `line` (`None` when transient
    /// faults are disabled).
    fn line_transient_period(&self, line: u64) -> Option<u64> {
        if self.transient_period == 0 {
            return None;
        }
        let base = self.transient_period;
        Some((base / 2 + mix(self.seed ^ !line.wrapping_mul(0xbf58_476d_1ce4_e5b9)) % base).max(1))
    }
}

/// One fault-model event produced by [`FaultModel::pump`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultEvent {
    /// A line's accumulated (accelerated) writes exceeded its endurance
    /// budget; the line is failed permanently.
    LineFailed {
        /// Global line index (address / 256).
        line: u64,
        /// Page containing the line.
        page: u64,
        /// Device write count observed when the line failed.
        writes: u64,
        /// The line's endurance budget in physical writes.
        budget: u64,
    },
    /// Transient (ECC-corrected) bit flips on a line since the last pump.
    TransientFlips {
        /// Global line index.
        line: u64,
        /// Page containing the line.
        page: u64,
        /// Number of flips newly credited.
        count: u64,
    },
    /// A page's failed-line count exceeded the ECC-correctable threshold:
    /// it is uncorrectable and must be retired (evacuated and remapped).
    PageUncorrectable {
        /// Page id (address / 4096).
        page: u64,
        /// Failed lines on the page when it crossed the threshold.
        failed_lines: u32,
    },
}

/// Deterministic fault state: which lines have failed, which pages have been
/// retired, and how many transient flips the ECC has absorbed.
#[derive(Clone, Debug)]
pub struct FaultModel {
    config: FaultConfig,
    failed_lines: BTreeSet<u64>,
    failed_per_page: BTreeMap<u64, u32>,
    retired_pages: BTreeSet<u64>,
    transient_credited: BTreeMap<u64, u64>,
    transient_faults: u64,
}

impl FaultModel {
    /// Creates an un-worn fault model.
    pub fn new(config: FaultConfig) -> Self {
        FaultModel {
            config,
            failed_lines: BTreeSet::new(),
            failed_per_page: BTreeMap::new(),
            retired_pages: BTreeSet::new(),
            transient_credited: BTreeMap::new(),
            transient_faults: 0,
        }
    }

    /// The configuration this model runs under.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Advances the fault schedule against the current per-line device write
    /// counts (`(line, writes)` pairs for *mapped PCM* lines; the caller
    /// sorts them by line id so event order is deterministic). Returns the
    /// newly fired events; pages reported [`FaultEvent::PageUncorrectable`]
    /// must be retired by the caller via [`FaultModel::mark_page_retired`]
    /// once their live contents are safe.
    pub fn pump(&mut self, line_writes: &[(u64, u64)]) -> Vec<FaultEvent> {
        let mut events = Vec::new();
        for &(line, writes) in line_writes {
            let page = line / LINES_PER_PAGE;
            if writes == 0 || self.retired_pages.contains(&page) {
                continue;
            }
            if let Some(period) = self.config.line_transient_period(line) {
                let credit = writes / period;
                let seen = self.transient_credited.entry(line).or_insert(0);
                if credit > *seen {
                    let count = credit - *seen;
                    *seen = credit;
                    self.transient_faults += count;
                    events.push(FaultEvent::TransientFlips { line, page, count });
                }
            }
            if self.failed_lines.contains(&line) {
                continue;
            }
            let budget = self.config.line_budget(line);
            let aged = writes.saturating_mul(self.config.wear_multiplier);
            if aged < budget {
                continue;
            }
            self.failed_lines.insert(line);
            events.push(FaultEvent::LineFailed {
                line,
                page,
                writes,
                budget,
            });
            let failed = self.failed_per_page.entry(page).or_insert(0);
            *failed += 1;
            if *failed == self.config.ecc_correctable_lines + 1 {
                events.push(FaultEvent::PageUncorrectable {
                    page,
                    failed_lines: *failed,
                });
            }
        }
        events
    }

    /// Marks `page` retired: its lines stop aging and it never reports
    /// uncorrectable again. The caller is responsible for evacuating and
    /// remapping the page.
    pub fn mark_page_retired(&mut self, page: u64) {
        self.retired_pages.insert(page);
    }

    /// Whether `line` has failed.
    pub fn is_line_failed(&self, line: u64) -> bool {
        self.failed_lines.contains(&line)
    }

    /// Whether `page` has been retired.
    pub fn is_page_retired(&self, page: u64) -> bool {
        self.retired_pages.contains(&page)
    }

    /// Number of permanently failed lines.
    pub fn failed_line_count(&self) -> u64 {
        self.failed_lines.len() as u64
    }

    /// Number of retired pages.
    pub fn retired_page_count(&self) -> u64 {
        self.retired_pages.len() as u64
    }

    /// PCM capacity lost to retired pages, in bytes.
    pub fn degraded_bytes(&self) -> u64 {
        self.retired_page_count() * PAGE_SIZE as u64
    }

    /// Transient (ECC-corrected) faults absorbed so far.
    pub fn transient_fault_count(&self) -> u64 {
        self.transient_faults
    }

    /// The retired pages in ascending order.
    pub fn retired_pages(&self) -> impl Iterator<Item = u64> + '_ {
        self.retired_pages.iter().copied()
    }
}

/// Analytic years until the first page becomes uncorrectable, assuming each
/// line keeps its observed write rate (`writes / elapsed_s`, *without* wear
/// acceleration — this is the real-time projection). A page fails when its
/// `ecc_correctable_lines + 1`-th line exceeds its budget; the system fails
/// with its first page. Returns `None` when no page would ever fail (too few
/// written lines per page, or no writes at all).
pub fn years_to_first_uncorrectable(
    config: &FaultConfig,
    line_writes: &[(u64, u64)],
    elapsed_s: f64,
) -> Option<f64> {
    if elapsed_s <= 0.0 {
        return None;
    }
    let mut per_page: BTreeMap<u64, Vec<f64>> = BTreeMap::new();
    for &(line, writes) in line_writes {
        if writes == 0 {
            continue;
        }
        let rate = writes as f64 / elapsed_s;
        let years = config.line_budget(line) as f64 / (rate * SECONDS_PER_YEAR);
        per_page.entry(line / LINES_PER_PAGE).or_default().push(years);
    }
    let fatal_rank = config.ecc_correctable_lines as usize; // 0-indexed (ecc+1)-th
    per_page
        .values_mut()
        .filter(|lines| lines.len() > fatal_rank)
        .map(|lines| {
            lines.sort_by(|a, b| a.partial_cmp(b).expect("finite years"));
            lines[fatal_rank]
        })
        .min_by(|a, b| a.partial_cmp(b).expect("finite years"))
}

/// splitmix64 finalizer: the workspace's standard bit mixer (see `sim-rng`).
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn accelerated() -> FaultConfig {
        FaultConfig::accelerated(42, Endurance::Mid30M)
    }

    #[test]
    fn budgets_are_seeded_and_bounded() {
        let config = FaultConfig::new(7, Endurance::Mid30M);
        let other = FaultConfig::new(8, Endurance::Mid30M);
        let wpc = Endurance::Mid30M.writes_per_cell();
        let mut differs = false;
        for line in 0..1000 {
            let budget = config.line_budget(line);
            assert!(budget >= wpc / 2 && budget < wpc / 2 + wpc);
            assert_eq!(budget, config.line_budget(line), "budget is pure");
            differs |= budget != other.line_budget(line);
        }
        assert!(differs, "different seeds draw different budgets");
    }

    #[test]
    fn pump_is_order_independent() {
        let lines: Vec<(u64, u64)> = (0..64).map(|l| (l, 1 + l * 37)).collect();
        let mut forward = FaultModel::new(accelerated());
        let mut forward_events = forward.pump(&lines);
        let mut reversed: Vec<_> = lines.iter().rev().copied().collect();
        reversed.reverse(); // back to sorted: the caller contract
        let mut backward = FaultModel::new(accelerated());
        let mut backward_events = backward.pump(&reversed);
        forward_events.sort_by_key(|e| format!("{e:?}"));
        backward_events.sort_by_key(|e| format!("{e:?}"));
        assert_eq!(forward_events, backward_events);
        assert_eq!(forward.failed_line_count(), backward.failed_line_count());
    }

    #[test]
    fn lines_fail_once_and_pages_retire_past_ecc() {
        let config = accelerated().with_ecc_correctable_lines(1);
        let mut model = FaultModel::new(config);
        // Write every line of page 0 far past any budget.
        let writes: Vec<(u64, u64)> = (0..LINES_PER_PAGE).map(|l| (l, u64::MAX / 2)).collect();
        let events = model.pump(&writes);
        let failed = events
            .iter()
            .filter(|e| matches!(e, FaultEvent::LineFailed { .. }))
            .count();
        assert_eq!(failed as u64, LINES_PER_PAGE);
        let uncorrectable: Vec<_> = events
            .iter()
            .filter(|e| matches!(e, FaultEvent::PageUncorrectable { .. }))
            .collect();
        assert_eq!(uncorrectable.len(), 1, "threshold crossing fires once");
        assert!(matches!(
            uncorrectable[0],
            FaultEvent::PageUncorrectable {
                page: 0,
                failed_lines: 2
            }
        ));
        // A second pump with the same counts is quiescent.
        assert!(model.pump(&writes).is_empty());
        // Retirement silences the page entirely.
        model.mark_page_retired(0);
        assert!(model.is_page_retired(0));
        assert_eq!(model.degraded_bytes(), PAGE_SIZE as u64);
    }

    #[test]
    fn transient_flips_are_counted_not_fatal() {
        let config = FaultConfig::new(3, Endurance::High100M).with_transient_period(100);
        let mut model = FaultModel::new(config);
        let events = model.pump(&[(5, 1_000)]);
        assert!(events
            .iter()
            .all(|e| matches!(e, FaultEvent::TransientFlips { .. })));
        let first = model.transient_fault_count();
        assert!(first > 0, "1000 writes at period ~100 must flip");
        // Re-pumping with the same count credits nothing new.
        assert!(model.pump(&[(5, 1_000)]).is_empty());
        assert_eq!(model.transient_fault_count(), first);
        // More writes credit more flips, and no line ever fails.
        model.pump(&[(5, 10_000)]);
        assert!(model.transient_fault_count() > first);
        assert_eq!(model.failed_line_count(), 0);
    }

    #[test]
    fn same_seed_same_schedule() {
        let lines: Vec<(u64, u64)> = (0..256).map(|l| (l * 3, (l % 40) * 1_000)).collect();
        let mut a = FaultModel::new(accelerated().with_transient_period(64));
        let mut b = FaultModel::new(accelerated().with_transient_period(64));
        assert_eq!(a.pump(&lines), b.pump(&lines));
        assert_eq!(a.failed_line_count(), b.failed_line_count());
        assert_eq!(a.transient_fault_count(), b.transient_fault_count());
    }

    #[test]
    fn years_projection_picks_first_fatal_page() {
        let config = FaultConfig::new(1, Endurance::Mid30M).with_ecc_correctable_lines(0);
        // Page 0: one hot line. Page 1: one far hotter line.
        let writes = vec![(0u64, 1_000u64), (LINES_PER_PAGE, 100_000)];
        let years = years_to_first_uncorrectable(&config, &writes, 10.0).expect("fails eventually");
        let hot_rate = 100_000.0 / 10.0;
        let expected = config.line_budget(LINES_PER_PAGE) as f64 / (hot_rate * SECONDS_PER_YEAR);
        assert!((years - expected).abs() / expected < 1e-12);
        // With ECC strength 1 no page has two written lines: never fails.
        let strong = config.with_ecc_correctable_lines(1);
        assert!(years_to_first_uncorrectable(&strong, &writes, 10.0).is_none());
        // No writes or no elapsed time: never fails.
        assert!(years_to_first_uncorrectable(&config, &[], 10.0).is_none());
        assert!(years_to_first_uncorrectable(&config, &writes, 0.0).is_none());
    }

    #[test]
    fn acceleration_divides_out_of_projection() {
        let real = FaultConfig::new(9, Endurance::Low10M).with_ecc_correctable_lines(0);
        let fast = real.with_wear_multiplier(1 << 20);
        let writes = vec![(7u64, 500u64)];
        let a = years_to_first_uncorrectable(&real, &writes, 2.0);
        let b = years_to_first_uncorrectable(&fast, &writes, 2.0);
        assert_eq!(a, b, "projection ignores the acceleration knob");
    }
}
