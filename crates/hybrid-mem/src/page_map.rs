//! Mapping from simulated virtual pages to memory technologies.
//!
//! The Kingsguard collectors direct the OS explicitly: each heap space
//! requests pages from either DRAM or PCM at 4 KB granularity (Section 4.1).
//! [`PageMap`] records that decision, and also supports *re-mapping* a page's
//! technology, which is how the OS Write Partitioning baseline migrates pages
//! between DRAM and PCM.

use std::collections::HashMap;

use crate::address::{Address, PageId, PAGE_SIZE};
use crate::system::MemoryKind;

/// Per-page placement information.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PageInfo {
    /// Memory technology currently backing this page.
    pub kind: MemoryKind,
    /// Identifier of the heap space that owns the page.
    pub space: u8,
}

/// Tracks which pages are mapped and onto which memory technology.
#[derive(Debug, Default)]
pub struct PageMap {
    pages: HashMap<u64, PageInfo>,
    mapped_bytes: [u64; 2],
}

impl PageMap {
    /// Creates an empty page map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Maps `count` pages starting at `start` (page-aligned) onto `kind`,
    /// owned by space `space`.
    ///
    /// Remapping an already-mapped page updates its kind and owner and keeps
    /// the byte accounting consistent.
    ///
    /// # Panics
    ///
    /// Panics if `start` is not page-aligned.
    pub fn map_pages(&mut self, start: Address, count: usize, kind: MemoryKind, space: u8) {
        assert!(
            start.is_aligned(PAGE_SIZE),
            "page map request not page-aligned: {start}"
        );
        let first = start.page().0;
        for p in first..first + count as u64 {
            if let Some(prev) = self.pages.insert(p, PageInfo { kind, space }) {
                self.mapped_bytes[prev.kind as usize] -= PAGE_SIZE as u64;
            }
            self.mapped_bytes[kind as usize] += PAGE_SIZE as u64;
        }
    }

    /// Unmaps `count` pages starting at `start`. Unmapped pages are ignored.
    pub fn unmap_pages(&mut self, start: Address, count: usize) {
        let first = start.page().0;
        for p in first..first + count as u64 {
            if let Some(prev) = self.pages.remove(&p) {
                self.mapped_bytes[prev.kind as usize] -= PAGE_SIZE as u64;
            }
        }
    }

    /// Changes the memory technology backing the page containing `page`
    /// (used by OS page migration). Returns the previous kind, or `None` if
    /// the page was not mapped.
    pub fn migrate_page(&mut self, page: PageId, to: MemoryKind) -> Option<MemoryKind> {
        let info = self.pages.get_mut(&page.0)?;
        let prev = info.kind;
        if prev != to {
            info.kind = to;
            self.mapped_bytes[prev as usize] -= PAGE_SIZE as u64;
            self.mapped_bytes[to as usize] += PAGE_SIZE as u64;
        }
        Some(prev)
    }

    /// Returns the placement information of the page containing `addr`.
    pub fn info(&self, addr: Address) -> Option<PageInfo> {
        self.pages.get(&addr.page().0).copied()
    }

    /// Returns the memory technology backing the page containing `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the page is not mapped; accessing unmapped memory is a
    /// simulator invariant violation.
    pub fn kind_of(&self, addr: Address) -> MemoryKind {
        self.info(addr)
            .unwrap_or_else(|| panic!("access to unmapped address {addr}"))
            .kind
    }

    /// Returns the kind of a page by id, if mapped.
    pub fn kind_of_page(&self, page: PageId) -> Option<MemoryKind> {
        self.pages.get(&page.0).map(|i| i.kind)
    }

    /// Returns `true` if the page containing `addr` is mapped.
    pub fn is_mapped(&self, addr: Address) -> bool {
        self.pages.contains_key(&addr.page().0)
    }

    /// Total bytes currently mapped onto `kind`.
    pub fn mapped_bytes(&self, kind: MemoryKind) -> u64 {
        self.mapped_bytes[kind as usize]
    }

    /// Number of mapped pages.
    pub fn mapped_pages(&self) -> usize {
        self.pages.len()
    }

    /// Iterates over all mapped pages and their placement information.
    pub fn iter(&self) -> impl Iterator<Item = (PageId, PageInfo)> + '_ {
        self.pages.iter().map(|(&p, &info)| (PageId(p), info))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_query() {
        let mut map = PageMap::new();
        map.map_pages(Address::new(0x1000), 4, MemoryKind::Pcm, 3);
        assert_eq!(map.kind_of(Address::new(0x1000)), MemoryKind::Pcm);
        assert_eq!(map.kind_of(Address::new(0x4fff)), MemoryKind::Pcm);
        assert!(!map.is_mapped(Address::new(0x5000)));
        assert_eq!(map.mapped_bytes(MemoryKind::Pcm), 4 * PAGE_SIZE as u64);
        assert_eq!(map.mapped_bytes(MemoryKind::Dram), 0);
        assert_eq!(map.info(Address::new(0x1008)).unwrap().space, 3);
    }

    #[test]
    #[should_panic(expected = "unmapped")]
    fn unmapped_access_panics() {
        let map = PageMap::new();
        map.kind_of(Address::new(0x1000));
    }

    #[test]
    #[should_panic(expected = "page-aligned")]
    fn unaligned_map_panics() {
        let mut map = PageMap::new();
        map.map_pages(Address::new(0x1001), 1, MemoryKind::Dram, 0);
    }

    #[test]
    fn migrate_flips_kind_and_accounting() {
        let mut map = PageMap::new();
        map.map_pages(Address::new(0x2000), 2, MemoryKind::Pcm, 1);
        let prev = map.migrate_page(Address::new(0x2000).page(), MemoryKind::Dram);
        assert_eq!(prev, Some(MemoryKind::Pcm));
        assert_eq!(map.kind_of(Address::new(0x2000)), MemoryKind::Dram);
        assert_eq!(map.mapped_bytes(MemoryKind::Dram), PAGE_SIZE as u64);
        assert_eq!(map.mapped_bytes(MemoryKind::Pcm), PAGE_SIZE as u64);
        // Migrating to the same kind is a no-op.
        assert_eq!(
            map.migrate_page(Address::new(0x2000).page(), MemoryKind::Dram),
            Some(MemoryKind::Dram)
        );
    }

    #[test]
    fn unmap_releases_bytes() {
        let mut map = PageMap::new();
        map.map_pages(Address::new(0x8000), 8, MemoryKind::Dram, 0);
        map.unmap_pages(Address::new(0x8000), 8);
        assert_eq!(map.mapped_bytes(MemoryKind::Dram), 0);
        assert_eq!(map.mapped_pages(), 0);
    }

    #[test]
    fn remapping_existing_page_adjusts_accounting() {
        let mut map = PageMap::new();
        map.map_pages(Address::new(0x3000), 1, MemoryKind::Pcm, 0);
        map.map_pages(Address::new(0x3000), 1, MemoryKind::Dram, 1);
        assert_eq!(map.mapped_bytes(MemoryKind::Pcm), 0);
        assert_eq!(map.mapped_bytes(MemoryKind::Dram), PAGE_SIZE as u64);
        assert_eq!(map.info(Address::new(0x3000)).unwrap().space, 1);
    }
}
