//! Allocation-site identifiers.

use std::fmt;

/// A stable identifier for an allocation site.
///
/// In a real VM this would be a (method, bytecode index) pair; the synthetic
/// workloads assign one id per logical allocation statement. Site ids are
/// carried alongside the type id through the allocation path and stored in a
/// side table keyed by the object's current address, so profiles collected in
/// one run can be replayed in another run of the same workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SiteId(pub u32);

impl SiteId {
    /// The id used for allocations whose site is unknown (e.g. the legacy
    /// `alloc` entry point). Advice tables fall back to their default
    /// placement for this id.
    pub const UNKNOWN: SiteId = SiteId(0);

    /// Returns `true` for the unknown site.
    pub fn is_unknown(self) -> bool {
        self.0 == 0
    }

    /// The raw numeric id.
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_unknown() {
            write!(f, "site:?")
        } else {
            write!(f, "site:{}", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_site() {
        assert!(SiteId::UNKNOWN.is_unknown());
        assert!(!SiteId(3).is_unknown());
        assert_eq!(SiteId(3).raw(), 3);
        assert_eq!(SiteId(3).to_string(), "site:3");
        assert_eq!(SiteId::UNKNOWN.to_string(), "site:?");
    }
}
