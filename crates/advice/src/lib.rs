//! Profile-guided placement for write-rationing garbage collection.
//!
//! The paper's Kingsguard-writers (KG-W) learns which objects are write-hot
//! *online*, by routing every nursery survivor through a DRAM observer space
//! and watching the write barrier — an observer-space tax paid on every run.
//! This crate moves that learning *offline*, in the spirit of the authors'
//! profile-driven follow-up work (Crystal Gazer): a **profiling run** records
//! per-allocation-site write behaviour, the profile is persisted to disk, and
//! later **production runs** replay it as an [`AdviceTable`] that pretenures
//! each site's objects straight into DRAM or PCM mature space, bypassing the
//! observer entirely.
//!
//! The pieces:
//!
//! * [`SiteId`] — a stable identifier for an allocation site, threaded
//!   through `KingsguardHeap::alloc_site` alongside the type id,
//! * [`SiteProfiler`] — aggregates per-site allocation counts, bytes,
//!   nursery survival and post-nursery write counts during a profiling run,
//! * [`SiteProfile`] / [`profile_to_string`] / [`parse_profile`] — the
//!   versioned on-disk profile format (round-trippable, forward-refusing),
//! * [`SiteClass`] / [`classify()`](classify::classify) — homogeneity
//!   classification of a site as write-hot, write-cold or mixed,
//! * [`AdviceTable`] — the per-site placement decisions consumed by the
//!   KG-A collector (`CollectorKind::KgAdvice` in the `kingsguard` crate).
//!
//! The crate is dependency-free and knows nothing about the heap; the
//! `kingsguard` runtime feeds it events and consumes its decisions.

#![forbid(unsafe_code)]

pub mod classify;
pub mod format;
pub mod profiler;
pub mod site;
pub mod table;

pub use classify::{classify, ClassifyParams, SiteClass};
pub use format::{
    load_profile, parse_profile, profile_to_string, save_profile, site_map_drift, ProfileError, SiteMapDrift,
    FORMAT_MAGIC, FORMAT_MIN_VERSION, FORMAT_VERSION,
};
pub use profiler::{SiteProfile, SiteProfiler, SiteRecord};
pub use site::SiteId;
pub use table::{AdviceTable, Placement};
