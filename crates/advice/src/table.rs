//! Advice tables: the placement decisions a production run replays.

use std::collections::HashMap;

use crate::classify::{classify, ClassifyParams, SiteClass};
use crate::profiler::SiteProfile;
use crate::site::SiteId;

/// Where a site's nursery survivors should be pretenured.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Placement {
    /// Straight into the DRAM mature (or DRAM large) space.
    DramMature,
    /// Straight into the PCM mature (or PCM large) space; the rescue
    /// fallback moves the object to DRAM if the prediction turns out wrong.
    PcmMature,
}

/// Per-site placement advice derived from a [`SiteProfile`], consumed by the
/// KG-A collector.
#[derive(Clone, Debug, PartialEq)]
pub struct AdviceTable {
    placements: HashMap<u32, Placement>,
    default: Placement,
    hot_sites: usize,
    cold_sites: usize,
    mixed_sites: usize,
}

impl AdviceTable {
    /// Builds an advice table from a profile: write-hot sites are pretenured
    /// into DRAM, write-cold sites into PCM, and mixed sites into PCM where
    /// the KG-W-style rescue can still save their written objects. Sites the
    /// profile never saw use the default placement (PCM — misprediction in
    /// that direction costs PCM writes until rescue, never DRAM capacity).
    pub fn from_profile(profile: &SiteProfile, params: &ClassifyParams) -> Self {
        let mut placements = HashMap::new();
        let mut hot_sites = 0;
        let mut cold_sites = 0;
        let mut mixed_sites = 0;
        for (&id, record) in &profile.sites {
            let placement = match classify(record, params) {
                SiteClass::WriteHot => {
                    hot_sites += 1;
                    Placement::DramMature
                }
                SiteClass::WriteCold => {
                    cold_sites += 1;
                    Placement::PcmMature
                }
                SiteClass::Mixed => {
                    mixed_sites += 1;
                    Placement::PcmMature
                }
            };
            placements.insert(id, placement);
        }
        AdviceTable {
            placements,
            default: Placement::PcmMature,
            hot_sites,
            cold_sites,
            mixed_sites,
        }
    }

    /// An advice table that sends every site to PCM (the degenerate
    /// "all-cold" table; equivalent to KG-N plus rescue).
    pub fn all_cold() -> Self {
        AdviceTable {
            placements: HashMap::new(),
            default: Placement::PcmMature,
            hot_sites: 0,
            cold_sites: 0,
            mixed_sites: 0,
        }
    }

    /// An advice table built from explicit `(site, placement)` pairs, with
    /// `default` for everything else (tests and hand-written experiments).
    pub fn from_entries(entries: impl IntoIterator<Item = (SiteId, Placement)>, default: Placement) -> Self {
        let placements: HashMap<u32, Placement> = entries
            .into_iter()
            .map(|(site, placement)| (site.raw(), placement))
            .collect();
        let hot_sites = placements
            .values()
            .filter(|p| **p == Placement::DramMature)
            .count();
        let cold_sites = placements.len() - hot_sites;
        AdviceTable {
            placements,
            default,
            hot_sites,
            cold_sites,
            mixed_sites: 0,
        }
    }

    /// The placement advice for `site`.
    pub fn placement(&self, site: SiteId) -> Placement {
        *self.placements.get(&site.raw()).unwrap_or(&self.default)
    }

    /// Returns `true` if `site` should be pretenured into DRAM.
    pub fn pretenure_to_dram(&self, site: SiteId) -> bool {
        self.placement(site) == Placement::DramMature
    }

    /// Number of sites advised into DRAM.
    pub fn hot_sites(&self) -> usize {
        self.hot_sites
    }

    /// Number of write-cold sites.
    pub fn cold_sites(&self) -> usize {
        self.cold_sites
    }

    /// Number of mixed sites (placed in PCM, relying on rescue).
    pub fn mixed_sites(&self) -> usize {
        self.mixed_sites
    }

    /// The default placement for sites without explicit advice.
    pub fn default_placement(&self) -> Placement {
        self.default
    }

    /// Iterates over the explicit `(site, placement)` entries (unordered).
    pub fn iter(&self) -> impl Iterator<Item = (SiteId, Placement)> + '_ {
        self.placements
            .iter()
            .map(|(&id, &placement)| (SiteId(id), placement))
    }

    /// Total sites with explicit advice.
    pub fn len(&self) -> usize {
        self.placements.len()
    }

    /// Returns `true` if no site has explicit advice.
    pub fn is_empty(&self) -> bool {
        self.placements.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::{SiteProfiler, SiteRecord};

    fn record(post_nursery_writes: u64) -> SiteRecord {
        SiteRecord {
            objects: 100,
            bytes: 6400,
            survived_objects: 80,
            survived_bytes: 5120,
            post_nursery_writes,
            large_objects: 0,
        }
    }

    fn profile() -> SiteProfile {
        let mut profile = SiteProfiler::new("demo", "KG-N").finish();
        profile.sites.insert(1, record(4000)); // hot
        profile.sites.insert(2, record(0)); // cold
        profile.sites.insert(3, record(20)); // mixed
        profile
    }

    #[test]
    fn table_from_profile_routes_by_class() {
        let table = AdviceTable::from_profile(&profile(), &ClassifyParams::default());
        assert_eq!(
            table.placement(SiteId(1)),
            Placement::DramMature,
            "hot site goes to DRAM"
        );
        assert_eq!(
            table.placement(SiteId(2)),
            Placement::PcmMature,
            "cold site goes to PCM"
        );
        assert_eq!(
            table.placement(SiteId(3)),
            Placement::PcmMature,
            "mixed site goes to PCM"
        );
        assert_eq!(
            table.placement(SiteId(99)),
            Placement::PcmMature,
            "unknown site defaults to PCM"
        );
        assert_eq!(table.placement(SiteId::UNKNOWN), Placement::PcmMature);
        assert!(table.pretenure_to_dram(SiteId(1)));
        assert!(!table.pretenure_to_dram(SiteId(2)));
        assert_eq!(
            (table.hot_sites(), table.cold_sites(), table.mixed_sites()),
            (1, 1, 1)
        );
        assert_eq!(table.len(), 3);
        assert!(!table.is_empty());
    }

    #[test]
    fn all_cold_table_never_chooses_dram() {
        let table = AdviceTable::all_cold();
        assert!(table.is_empty());
        for id in 0..1000 {
            assert_eq!(table.placement(SiteId(id)), Placement::PcmMature);
        }
    }

    #[test]
    fn explicit_entries_override_default() {
        let table = AdviceTable::from_entries([(SiteId(5), Placement::DramMature)], Placement::PcmMature);
        assert!(table.pretenure_to_dram(SiteId(5)));
        assert!(!table.pretenure_to_dram(SiteId(6)));
        assert_eq!(table.hot_sites(), 1);
    }
}
