//! Homogeneity classification: is a site write-hot, write-cold or mixed?
//!
//! A site is useful for pretenuring only when its objects behave *alike*: a
//! site whose survivors are written heavily belongs in DRAM, a site whose
//! survivors are never written belongs in PCM, and a site that produces both
//! kinds is "mixed" and cannot be pretenured aggressively. The thresholds
//! are expressed as post-nursery writes per KB of post-nursery bytes so they
//! are independent of the run's scale; because absolute write intensities
//! vary by orders of magnitude between workloads, production use derives
//! the thresholds from the profile itself with
//! [`ClassifyParams::for_profile`] — hot means "well above this workload's
//! average intensity", mirroring the paper's observation that the hottest
//! 2 % of mature objects capture ~81 % of mature writes.

use crate::profiler::{SiteProfile, SiteRecord};

/// The three homogeneity classes of a site.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SiteClass {
    /// Survivors are written often enough that PCM placement would cost
    /// writes: pretenure into DRAM mature space.
    WriteHot,
    /// Survivors are (almost) never written: pretenure into PCM.
    WriteCold,
    /// Write behaviour is heterogeneous or the evidence is too thin; place
    /// in PCM and rely on the rescue fallback.
    Mixed,
}

/// Classification thresholds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClassifyParams {
    /// At or above this many post-nursery writes per post-nursery KB the
    /// site is write-hot.
    pub hot_writes_per_kb: f64,
    /// At or below this many post-nursery writes per post-nursery KB the
    /// site is write-cold.
    pub cold_writes_per_kb: f64,
    /// Sites with fewer post-nursery objects than this are never classified
    /// hot (one noisy object must not steal DRAM for its whole site).
    pub min_survivors: u64,
}

impl ClassifyParams {
    /// Hot sites must be this many times more write-intense than the
    /// profile-wide average. Hot objects concentrate most mature writes in
    /// a small byte footprint, so their sites sit orders of magnitude above
    /// the mean; 8× separates them cleanly from lukewarm bulk sites.
    pub const HOT_REFERENCE_MULTIPLE: f64 = 8.0;

    /// Cold sites are at most this fraction of the profile-wide average
    /// intensity.
    pub const COLD_REFERENCE_MULTIPLE: f64 = 0.25;

    /// Derives thresholds from the profile's own aggregate write intensity,
    /// so classification adapts to how write-heavy the workload is. The
    /// absolute defaults act as floors for nearly write-free profiles.
    pub fn for_profile(profile: &SiteProfile) -> Self {
        let total_writes: u64 = profile.sites.values().map(|r| r.post_nursery_writes).sum();
        let total_kb: f64 = profile.sites.values().map(|r| r.post_nursery_kb()).sum();
        let floor = ClassifyParams::default();
        if total_kb == 0.0 || total_writes == 0 {
            return floor;
        }
        let reference = total_writes as f64 / total_kb;
        ClassifyParams {
            hot_writes_per_kb: (reference * Self::HOT_REFERENCE_MULTIPLE).max(floor.hot_writes_per_kb),
            cold_writes_per_kb: (reference * Self::COLD_REFERENCE_MULTIPLE).max(floor.cold_writes_per_kb),
            min_survivors: floor.min_survivors,
        }
    }
}

impl Default for ClassifyParams {
    fn default() -> Self {
        // A 64-byte object written once is ~16 writes/KB; the hot threshold
        // asks for roughly one write per object-sized chunk of survivors,
        // the cold threshold tolerates stray metadata-like writes.
        ClassifyParams {
            hot_writes_per_kb: 8.0,
            cold_writes_per_kb: 0.5,
            min_survivors: 4,
        }
    }
}

/// Classifies one site record.
///
/// Edge cases: a site with no allocations, or whose objects never live
/// outside the nursery, is write-cold (nothing of it ever reaches the mature
/// heap, so PCM placement is free); a site with fewer than `min_survivors`
/// post-nursery objects is at best mixed.
pub fn classify(record: &SiteRecord, params: &ClassifyParams) -> SiteClass {
    let post_nursery_objects = record.survived_objects.max(record.large_objects);
    if record.objects == 0 || post_nursery_objects == 0 {
        return SiteClass::WriteCold;
    }
    let intensity = record.write_intensity();
    if intensity <= params.cold_writes_per_kb {
        return SiteClass::WriteCold;
    }
    if post_nursery_objects < params.min_survivors {
        return SiteClass::Mixed;
    }
    if intensity >= params.hot_writes_per_kb {
        SiteClass::WriteHot
    } else {
        SiteClass::Mixed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(objects: u64, survived: u64, survived_bytes: u64, writes: u64) -> SiteRecord {
        SiteRecord {
            objects,
            bytes: objects * 64,
            survived_objects: survived,
            survived_bytes,
            post_nursery_writes: writes,
            large_objects: 0,
        }
    }

    #[test]
    fn empty_site_is_cold() {
        assert_eq!(
            classify(&SiteRecord::default(), &ClassifyParams::default()),
            SiteClass::WriteCold
        );
    }

    #[test]
    fn site_with_no_survivors_is_cold_regardless_of_writes() {
        // All its writes happened in the nursery; nothing matures.
        let record = record(1000, 0, 0, 0);
        assert_eq!(
            classify(&record, &ClassifyParams::default()),
            SiteClass::WriteCold
        );
    }

    #[test]
    fn single_object_site_is_never_hot() {
        // One surviving object, heavily written: too thin to pretenure the
        // whole site into DRAM, but too written to call cold.
        let record = record(1, 1, 64, 1000);
        assert_eq!(classify(&record, &ClassifyParams::default()), SiteClass::Mixed);
    }

    #[test]
    fn single_unwritten_object_site_is_cold() {
        let record = record(1, 1, 64, 0);
        assert_eq!(
            classify(&record, &ClassifyParams::default()),
            SiteClass::WriteCold
        );
    }

    #[test]
    fn heavily_written_site_is_hot() {
        // 100 survivors x 64 B = 6.4 KB, 640 writes = 100 writes/KB.
        let record = record(200, 100, 6400, 640);
        assert_eq!(classify(&record, &ClassifyParams::default()), SiteClass::WriteHot);
    }

    #[test]
    fn unwritten_site_is_cold() {
        let record = record(200, 100, 6400, 0);
        assert_eq!(
            classify(&record, &ClassifyParams::default()),
            SiteClass::WriteCold
        );
    }

    #[test]
    fn lukewarm_site_is_mixed() {
        // 6.4 KB of survivors, 20 writes = ~3 writes/KB: between thresholds.
        let record = record(200, 100, 6400, 20);
        assert_eq!(classify(&record, &ClassifyParams::default()), SiteClass::Mixed);
    }

    #[test]
    fn large_sites_classify_by_allocated_bytes() {
        // Large objects never pass through the nursery, so survived counts
        // stay zero; intensity falls back to allocated bytes.
        let hot_large = SiteRecord {
            objects: 8,
            bytes: 8 * 16 * 1024,
            survived_objects: 0,
            survived_bytes: 0,
            post_nursery_writes: 50_000,
            large_objects: 8,
        };
        assert!(hot_large.write_intensity() > 100.0);
        assert_eq!(
            classify(&hot_large, &ClassifyParams::default()),
            SiteClass::WriteHot
        );
        let cold_large = SiteRecord {
            post_nursery_writes: 0,
            ..hot_large
        };
        assert_eq!(
            classify(&cold_large, &ClassifyParams::default()),
            SiteClass::WriteCold
        );
    }

    #[test]
    fn profile_derived_thresholds_scale_with_workload_intensity() {
        use crate::profiler::SiteProfiler;
        // A write-heavy profile: bulk site at ~700 writes/KB, hot site at
        // ~100x that. Absolute defaults would call both hot; the derived
        // thresholds separate them.
        let mut profile = SiteProfiler::new("heavy", "KG-N").finish();
        profile.sites.insert(1, record(200, 100, 100 * 1024, 70_000)); // 700 w/kb over 100 KB
        profile.sites.insert(2, record(10, 10, 1024, 70_000)); // 68,000 w/kb over 1 KB
        let params = ClassifyParams::for_profile(&profile);
        assert!(
            params.hot_writes_per_kb > 1_000.0,
            "threshold {} too low",
            params.hot_writes_per_kb
        );
        assert_eq!(classify(&profile.sites[&1], &params), SiteClass::Mixed);
        assert_eq!(classify(&profile.sites[&2], &params), SiteClass::WriteHot);

        // A nearly write-free profile falls back to the absolute floors.
        let mut quiet = SiteProfiler::new("quiet", "KG-N").finish();
        quiet.sites.insert(1, record(100, 50, 50 * 1024, 0));
        assert_eq!(ClassifyParams::for_profile(&quiet), ClassifyParams::default());
        assert_eq!(
            ClassifyParams::for_profile(&SiteProfiler::new("empty", "KG-N").finish()),
            ClassifyParams::default()
        );
    }

    #[test]
    fn thresholds_are_inclusive() {
        let params = ClassifyParams {
            hot_writes_per_kb: 10.0,
            cold_writes_per_kb: 1.0,
            min_survivors: 1,
        };
        // Exactly at the hot threshold: 10 KB of survivors, 100 writes.
        let hot = record(20, 10, 10 * 1024, 100 * 10);
        assert_eq!(classify(&hot, &params), SiteClass::WriteHot);
        // Exactly at the cold threshold: 10 KB of survivors, 10 writes.
        let cold = record(20, 10, 10 * 1024, 10);
        assert_eq!(classify(&cold, &params), SiteClass::WriteCold);
    }
}
