//! Per-site profiling: aggregate what a profiling run observes.

use std::collections::BTreeMap;

use crate::site::SiteId;

/// Aggregated behaviour of one allocation site over a profiling run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SiteRecord {
    /// Objects allocated at this site.
    pub objects: u64,
    /// Bytes allocated at this site.
    pub bytes: u64,
    /// Objects from this site that survived a nursery collection (were
    /// copied out of the nursery).
    pub survived_objects: u64,
    /// Bytes from this site that survived a nursery collection.
    pub survived_bytes: u64,
    /// Barrier-observed application writes to this site's objects after they
    /// left the nursery (the signal KG-W pays an observer space to measure).
    pub post_nursery_writes: u64,
    /// Objects from this site allocated directly into a large object space.
    pub large_objects: u64,
}

impl SiteRecord {
    /// Nursery survival rate of this site in `[0, 1]` (objects).
    pub fn survival(&self) -> f64 {
        if self.objects == 0 {
            0.0
        } else {
            self.survived_objects as f64 / self.objects as f64
        }
    }

    /// Post-nursery writes per KB of surviving bytes — the write intensity
    /// that decides DRAM vs PCM placement.
    pub fn writes_per_surviving_kb(&self) -> f64 {
        if self.survived_bytes == 0 {
            0.0
        } else {
            self.post_nursery_writes as f64 / (self.survived_bytes as f64 / 1024.0)
        }
    }

    /// Bytes of this site that live outside the nursery: surviving bytes
    /// for ordinary sites, allocated bytes for large-object sites (large
    /// objects never pass through the nursery, so "survival" does not apply
    /// to them).
    pub fn post_nursery_kb(&self) -> f64 {
        if self.survived_bytes > 0 {
            self.survived_bytes as f64 / 1024.0
        } else if self.large_objects > 0 {
            self.bytes as f64 / 1024.0
        } else {
            0.0
        }
    }

    /// Post-nursery writes per KB of post-nursery bytes, defined for both
    /// ordinary and large-object sites. This is the intensity classification
    /// compares against the profile-wide reference.
    pub fn write_intensity(&self) -> f64 {
        let kb = self.post_nursery_kb();
        if kb == 0.0 {
            0.0
        } else {
            self.post_nursery_writes as f64 / kb
        }
    }
}

/// A complete site profile: what one profiling run learned about a workload.
///
/// Sites are kept in a `BTreeMap` so serialization and iteration order are
/// deterministic.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SiteProfile {
    /// Name of the profiled workload (e.g. "lusearch").
    pub workload: String,
    /// Label of the collector that drove the profiling run (e.g. "KG-N").
    pub collector: String,
    /// Hash of the workload's site map at profiling time, set by the
    /// profiling harness. A later run whose site map hashes differently has
    /// *drifted* (sites renumbered or re-ranged across program versions);
    /// consumers should log the drift and apply the advice per-site instead
    /// of rejecting the profile outright. `None` for profiles written
    /// before hashing existed (or by harnesses that do not know their site
    /// map).
    pub site_map_hash: Option<u64>,
    /// Per-site records keyed by raw site id.
    pub sites: BTreeMap<u32, SiteRecord>,
}

impl SiteProfile {
    /// Total objects allocated across all sites.
    pub fn total_objects(&self) -> u64 {
        self.sites.values().map(|r| r.objects).sum()
    }

    /// Total post-nursery writes across all sites.
    pub fn total_post_nursery_writes(&self) -> u64 {
        self.sites.values().map(|r| r.post_nursery_writes).sum()
    }

    /// Looks up one site's record.
    pub fn site(&self, site: SiteId) -> Option<&SiteRecord> {
        self.sites.get(&site.raw())
    }
}

/// Collects per-site events during a profiling run.
///
/// The `kingsguard` runtime owns one of these (when profiling is enabled)
/// and calls the `record_*` methods from the allocator, the write barrier
/// and the collectors; [`SiteProfiler::finish`] turns the accumulated counts
/// into a [`SiteProfile`].
#[derive(Clone, Debug, Default)]
pub struct SiteProfiler {
    workload: String,
    collector: String,
    sites: BTreeMap<u32, SiteRecord>,
}

impl SiteProfiler {
    /// Creates a profiler for one run.
    pub fn new(workload: &str, collector: &str) -> Self {
        SiteProfiler {
            workload: workload.to_string(),
            collector: collector.to_string(),
            sites: BTreeMap::new(),
        }
    }

    fn entry(&mut self, site: SiteId) -> &mut SiteRecord {
        self.sites.entry(site.raw()).or_default()
    }

    /// Records an allocation of `bytes` at `site`.
    pub fn record_alloc(&mut self, site: SiteId, bytes: u64, large: bool) {
        let record = self.entry(site);
        record.objects += 1;
        record.bytes += bytes;
        if large {
            record.large_objects += 1;
        }
    }

    /// Records that an object of `bytes` from `site` survived a nursery
    /// collection.
    pub fn record_nursery_survivor(&mut self, site: SiteId, bytes: u64) {
        let record = self.entry(site);
        record.survived_objects += 1;
        record.survived_bytes += bytes;
    }

    /// Records a barrier-observed application write to a post-nursery object
    /// from `site`.
    pub fn record_post_nursery_write(&mut self, site: SiteId) {
        self.entry(site).post_nursery_writes += 1;
    }

    /// Number of distinct sites observed so far.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// Finalises the profiler into an immutable profile. The harness that
    /// knows the workload's site map stamps
    /// [`SiteProfile::site_map_hash`] before persisting.
    pub fn finish(self) -> SiteProfile {
        SiteProfile {
            workload: self.workload,
            collector: self.collector,
            site_map_hash: None,
            sites: self.sites,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiler_aggregates_per_site() {
        let mut profiler = SiteProfiler::new("demo", "KG-N");
        profiler.record_alloc(SiteId(1), 64, false);
        profiler.record_alloc(SiteId(1), 64, false);
        profiler.record_alloc(SiteId(2), 16 * 1024, true);
        profiler.record_nursery_survivor(SiteId(1), 64);
        profiler.record_post_nursery_write(SiteId(1));
        profiler.record_post_nursery_write(SiteId(1));
        let profile = profiler.finish();
        assert_eq!(profile.workload, "demo");
        assert_eq!(profile.collector, "KG-N");
        assert_eq!(profile.total_objects(), 3);
        let site1 = profile.site(SiteId(1)).unwrap();
        assert_eq!(site1.objects, 2);
        assert_eq!(site1.bytes, 128);
        assert_eq!(site1.survived_objects, 1);
        assert_eq!(site1.post_nursery_writes, 2);
        assert_eq!(site1.large_objects, 0);
        assert!((site1.survival() - 0.5).abs() < 1e-12);
        let site2 = profile.site(SiteId(2)).unwrap();
        assert_eq!(site2.large_objects, 1);
        assert_eq!(site2.survival(), 0.0);
        assert!(profile.site(SiteId(9)).is_none());
    }

    #[test]
    fn write_intensity_is_per_surviving_kb() {
        let record = SiteRecord {
            objects: 4,
            bytes: 4096,
            survived_objects: 2,
            survived_bytes: 2048,
            post_nursery_writes: 100,
            large_objects: 0,
        };
        assert!((record.writes_per_surviving_kb() - 50.0).abs() < 1e-9);
        assert_eq!(SiteRecord::default().writes_per_surviving_kb(), 0.0);
        assert_eq!(SiteRecord::default().survival(), 0.0);
    }
}
