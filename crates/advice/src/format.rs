//! The versioned on-disk profile format.
//!
//! Profiles are stored as a line-oriented plain-text format so they are
//! diffable, greppable and stable across toolchains:
//!
//! ```text
//! kingsguard-site-profile 1
//! workload lusearch
//! collector KG-N
//! sites 3
//! site 1 objects 120 bytes 7680 survived-objects 30 survived-bytes 1920 post-writes 400 large 0
//! site 2 objects 8 bytes 131072 survived-objects 8 survived-bytes 131072 post-writes 0 large 8
//! site 7 objects 50 bytes 3200 survived-objects 0 survived-bytes 0 post-writes 0 large 0
//! ```
//!
//! The parser refuses unknown versions, truncated files and malformed
//! records; [`profile_to_string`] and [`parse_profile`] round-trip exactly.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use crate::profiler::{SiteProfile, SiteRecord};

/// First token of the header line.
pub const FORMAT_MAGIC: &str = "kingsguard-site-profile";

/// Current format version. Bump when the record layout changes; the parser
/// rejects any other version.
pub const FORMAT_VERSION: u32 = 1;

/// Everything that can go wrong reading a profile.
#[derive(Debug)]
pub enum ProfileError {
    /// The file could not be read or written.
    Io(io::Error),
    /// The header line is missing or malformed.
    BadHeader(String),
    /// The file declares a version this build does not understand.
    UnsupportedVersion(u32),
    /// A line could not be parsed.
    BadRecord { line: usize, reason: String },
    /// The `sites` count does not match the number of records.
    CountMismatch { declared: usize, found: usize },
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::Io(err) => write!(f, "profile I/O error: {err}"),
            ProfileError::BadHeader(line) => write!(f, "bad profile header: {line:?}"),
            ProfileError::UnsupportedVersion(version) => {
                write!(
                    f,
                    "unsupported profile version {version} (this build reads version {FORMAT_VERSION})"
                )
            }
            ProfileError::BadRecord { line, reason } => {
                write!(f, "bad profile record on line {line}: {reason}")
            }
            ProfileError::CountMismatch { declared, found } => {
                write!(f, "profile declares {declared} sites but contains {found}")
            }
        }
    }
}

impl std::error::Error for ProfileError {}

impl From<io::Error> for ProfileError {
    fn from(err: io::Error) -> Self {
        ProfileError::Io(err)
    }
}

/// Serializes a profile to the on-disk text format.
pub fn profile_to_string(profile: &SiteProfile) -> String {
    let mut out = String::new();
    out.push_str(&format!("{FORMAT_MAGIC} {FORMAT_VERSION}\n"));
    out.push_str(&format!("workload {}\n", sanitize(&profile.workload)));
    out.push_str(&format!("collector {}\n", sanitize(&profile.collector)));
    out.push_str(&format!("sites {}\n", profile.sites.len()));
    for (id, record) in &profile.sites {
        out.push_str(&format!(
            "site {id} objects {} bytes {} survived-objects {} survived-bytes {} post-writes {} large {}\n",
            record.objects,
            record.bytes,
            record.survived_objects,
            record.survived_bytes,
            record.post_nursery_writes,
            record.large_objects,
        ));
    }
    out
}

/// Parses a profile from the on-disk text format.
pub fn parse_profile(text: &str) -> Result<SiteProfile, ProfileError> {
    let mut lines = text.lines().enumerate();

    let (_, header) = lines
        .next()
        .ok_or_else(|| ProfileError::BadHeader(String::new()))?;
    let mut parts = header.split_whitespace();
    if parts.next() != Some(FORMAT_MAGIC) {
        return Err(ProfileError::BadHeader(header.to_string()));
    }
    let version: u32 = parts
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| ProfileError::BadHeader(header.to_string()))?;
    if version != FORMAT_VERSION {
        return Err(ProfileError::UnsupportedVersion(version));
    }

    let workload = parse_field(&mut lines, "workload")?;
    let collector = parse_field(&mut lines, "collector")?;
    let declared: usize = parse_field(&mut lines, "sites")?
        .parse()
        .map_err(|_| ProfileError::BadHeader("sites count is not a number".to_string()))?;

    let mut profile = SiteProfile {
        workload,
        collector,
        sites: Default::default(),
    };
    for (index, line) in lines {
        let line_no = index + 1;
        if line.trim().is_empty() {
            continue;
        }
        let (id, record) = parse_site_line(line).map_err(|reason| ProfileError::BadRecord {
            line: line_no,
            reason,
        })?;
        if profile.sites.insert(id, record).is_some() {
            return Err(ProfileError::BadRecord {
                line: line_no,
                reason: format!("duplicate site {id}"),
            });
        }
    }
    if profile.sites.len() != declared {
        return Err(ProfileError::CountMismatch {
            declared,
            found: profile.sites.len(),
        });
    }
    Ok(profile)
}

/// Writes a profile to `path`, creating parent directories as needed.
pub fn save_profile(profile: &SiteProfile, path: &Path) -> Result<(), ProfileError> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    fs::write(path, profile_to_string(profile))?;
    Ok(())
}

/// Reads a profile back from `path`.
pub fn load_profile(path: &Path) -> Result<SiteProfile, ProfileError> {
    let text = fs::read_to_string(path)?;
    parse_profile(&text)
}

fn sanitize(value: &str) -> String {
    // Field values live on one line; whitespace inside them becomes '-'.
    let cleaned: String = value
        .chars()
        .map(|c| if c.is_whitespace() { '-' } else { c })
        .collect();
    if cleaned.is_empty() {
        "-".to_string()
    } else {
        cleaned
    }
}

fn parse_field<'a>(
    lines: &mut impl Iterator<Item = (usize, &'a str)>,
    key: &str,
) -> Result<String, ProfileError> {
    let (_, line) = lines
        .next()
        .ok_or_else(|| ProfileError::BadHeader(format!("missing {key} line")))?;
    match line.split_once(' ') {
        Some((found, value)) if found == key => Ok(value.trim().to_string()),
        _ => Err(ProfileError::BadHeader(format!(
            "expected \"{key} ...\", found {line:?}"
        ))),
    }
}

fn parse_site_line(line: &str) -> Result<(u32, SiteRecord), String> {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    const KEYS: [&str; 7] = [
        "site",
        "objects",
        "bytes",
        "survived-objects",
        "survived-bytes",
        "post-writes",
        "large",
    ];
    if tokens.len() != KEYS.len() * 2 {
        return Err(format!(
            "expected {} tokens, found {}",
            KEYS.len() * 2,
            tokens.len()
        ));
    }
    let mut values = [0u64; 7];
    for (i, pair) in tokens.chunks(2).enumerate() {
        let (key, value) = (pair[0], pair[1]);
        if key != KEYS[i] {
            return Err(format!("expected key {:?}, found {key:?}", KEYS[i]));
        }
        values[i] = value
            .parse()
            .map_err(|_| format!("{key} value {value:?} is not a number"))?;
    }
    let id = u32::try_from(values[0]).map_err(|_| format!("site id {} out of range", values[0]))?;
    Ok((
        id,
        SiteRecord {
            objects: values[1],
            bytes: values[2],
            survived_objects: values[3],
            survived_bytes: values[4],
            post_nursery_writes: values[5],
            large_objects: values[6],
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::SiteProfiler;
    use crate::site::SiteId;

    fn sample_profile() -> SiteProfile {
        let mut profiler = SiteProfiler::new("lusearch", "KG-N");
        for _ in 0..120 {
            profiler.record_alloc(SiteId(1), 64, false);
        }
        for _ in 0..30 {
            profiler.record_nursery_survivor(SiteId(1), 64);
        }
        for _ in 0..400 {
            profiler.record_post_nursery_write(SiteId(1));
        }
        for _ in 0..8 {
            profiler.record_alloc(SiteId(2), 16 * 1024, true);
            profiler.record_nursery_survivor(SiteId(2), 16 * 1024);
        }
        for _ in 0..50 {
            profiler.record_alloc(SiteId(7), 64, false);
        }
        profiler.finish()
    }

    #[test]
    fn round_trip_preserves_every_field() {
        let profile = sample_profile();
        let text = profile_to_string(&profile);
        let parsed = parse_profile(&text).unwrap();
        assert_eq!(parsed, profile);
        // And a second round trip is byte-identical.
        assert_eq!(profile_to_string(&parsed), text);
    }

    #[test]
    fn round_trip_through_disk() {
        let profile = sample_profile();
        let dir = std::env::temp_dir().join("kingsguard-advice-test");
        let path = dir.join("lusearch.kgprof");
        save_profile(&profile, &path).unwrap();
        let loaded = load_profile(&path).unwrap();
        assert_eq!(loaded, profile);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_profile_round_trips() {
        let profile = SiteProfiler::new("empty", "KG-N").finish();
        let parsed = parse_profile(&profile_to_string(&profile)).unwrap();
        assert_eq!(parsed, profile);
        assert_eq!(parsed.sites.len(), 0);
    }

    #[test]
    fn unknown_version_is_rejected() {
        let text = "kingsguard-site-profile 99\nworkload x\ncollector y\nsites 0\n";
        match parse_profile(text) {
            Err(ProfileError::UnsupportedVersion(99)) => {}
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        assert!(matches!(parse_profile(""), Err(ProfileError::BadHeader(_))));
        assert!(matches!(
            parse_profile("not-a-profile 1\n"),
            Err(ProfileError::BadHeader(_))
        ));
        let missing_fields = "kingsguard-site-profile 1\nworkload x\n";
        assert!(matches!(
            parse_profile(missing_fields),
            Err(ProfileError::BadHeader(_))
        ));
        let bad_count = "kingsguard-site-profile 1\nworkload x\ncollector y\nsites 2\n\
                         site 1 objects 1 bytes 64 survived-objects 0 survived-bytes 0 post-writes 0 large 0\n";
        assert!(matches!(
            parse_profile(bad_count),
            Err(ProfileError::CountMismatch {
                declared: 2,
                found: 1
            })
        ));
        let bad_record = "kingsguard-site-profile 1\nworkload x\ncollector y\nsites 1\nsite 1 objects nan\n";
        assert!(matches!(
            parse_profile(bad_record),
            Err(ProfileError::BadRecord { .. })
        ));
        let dup = "kingsguard-site-profile 1\nworkload x\ncollector y\nsites 1\n\
                   site 1 objects 1 bytes 64 survived-objects 0 survived-bytes 0 post-writes 0 large 0\n\
                   site 1 objects 1 bytes 64 survived-objects 0 survived-bytes 0 post-writes 0 large 0\n";
        assert!(matches!(parse_profile(dup), Err(ProfileError::BadRecord { .. })));
    }

    #[test]
    fn workload_names_with_spaces_survive() {
        let mut profiler = SiteProfiler::new("my workload", "KG N");
        profiler.record_alloc(SiteId(1), 64, false);
        let profile = profiler.finish();
        let parsed = parse_profile(&profile_to_string(&profile)).unwrap();
        assert_eq!(parsed.workload, "my-workload");
        assert_eq!(parsed.collector, "KG-N");
    }

    #[test]
    fn error_messages_are_descriptive() {
        let err = parse_profile("kingsguard-site-profile 2\n").unwrap_err();
        assert!(err.to_string().contains("version 2"));
        let err = parse_profile("bogus\n").unwrap_err();
        assert!(err.to_string().contains("header"));
    }
}
