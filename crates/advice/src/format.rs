//! The versioned on-disk profile format.
//!
//! Profiles are stored as a line-oriented plain-text format so they are
//! diffable, greppable and stable across toolchains:
//!
//! ```text
//! kingsguard-site-profile 2
//! workload lusearch
//! collector KG-N
//! site-map-hash 00c3e1f29b04d877
//! sites 3
//! site 1 objects 120 bytes 7680 survived-objects 30 survived-bytes 1920 post-writes 400 large 0
//! site 2 objects 8 bytes 131072 survived-objects 8 survived-bytes 131072 post-writes 0 large 8
//! site 7 objects 50 bytes 3200 survived-objects 0 survived-bytes 0 post-writes 0 large 0
//! ```
//!
//! The optional `site-map-hash` line records a hash of the workload's site
//! map at profiling time; version-1 files (without it) still parse. When a
//! later run's site map hashes differently the profile has *drifted* across
//! program versions — [`site_map_drift`] reports it so consumers can log
//! and fall back per-site instead of rejecting the profile outright.
//!
//! The parser refuses unknown versions, truncated files and malformed
//! records; [`profile_to_string`] and [`parse_profile`] round-trip exactly.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use crate::profiler::{SiteProfile, SiteRecord};

/// First token of the header line.
pub const FORMAT_MAGIC: &str = "kingsguard-site-profile";

/// Current format version (adds the optional `site-map-hash` header line).
/// Bump when the record layout changes; the parser accepts every version
/// from [`FORMAT_MIN_VERSION`] up to this one and rejects the rest.
pub const FORMAT_VERSION: u32 = 2;

/// Oldest format version this build still reads (version 1 lacks the
/// `site-map-hash` line).
pub const FORMAT_MIN_VERSION: u32 = 1;

/// Everything that can go wrong reading a profile.
#[derive(Debug)]
pub enum ProfileError {
    /// The file could not be read or written.
    Io(io::Error),
    /// The header line is missing or malformed.
    BadHeader(String),
    /// The file declares a version this build does not understand.
    UnsupportedVersion(u32),
    /// A line could not be parsed.
    BadRecord { line: usize, reason: String },
    /// The `sites` count does not match the number of records.
    CountMismatch { declared: usize, found: usize },
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::Io(err) => write!(f, "profile I/O error: {err}"),
            ProfileError::BadHeader(line) => write!(f, "bad profile header: {line:?}"),
            ProfileError::UnsupportedVersion(version) => {
                write!(
                    f,
                    "unsupported profile version {version} (this build reads versions \
                     {FORMAT_MIN_VERSION}..={FORMAT_VERSION})"
                )
            }
            ProfileError::BadRecord { line, reason } => {
                write!(f, "bad profile record on line {line}: {reason}")
            }
            ProfileError::CountMismatch { declared, found } => {
                write!(f, "profile declares {declared} sites but contains {found}")
            }
        }
    }
}

impl std::error::Error for ProfileError {}

impl From<io::Error> for ProfileError {
    fn from(err: io::Error) -> Self {
        ProfileError::Io(err)
    }
}

/// Serializes a profile to the on-disk text format.
pub fn profile_to_string(profile: &SiteProfile) -> String {
    let mut out = String::new();
    out.push_str(&format!("{FORMAT_MAGIC} {FORMAT_VERSION}\n"));
    out.push_str(&format!("workload {}\n", sanitize(&profile.workload)));
    out.push_str(&format!("collector {}\n", sanitize(&profile.collector)));
    if let Some(hash) = profile.site_map_hash {
        out.push_str(&format!("site-map-hash {hash:016x}\n"));
    }
    out.push_str(&format!("sites {}\n", profile.sites.len()));
    for (id, record) in &profile.sites {
        out.push_str(&format!(
            "site {id} objects {} bytes {} survived-objects {} survived-bytes {} post-writes {} large {}\n",
            record.objects,
            record.bytes,
            record.survived_objects,
            record.survived_bytes,
            record.post_nursery_writes,
            record.large_objects,
        ));
    }
    out
}

/// Parses a profile from the on-disk text format.
pub fn parse_profile(text: &str) -> Result<SiteProfile, ProfileError> {
    let mut lines = text.lines().enumerate();

    let (_, header) = lines
        .next()
        .ok_or_else(|| ProfileError::BadHeader(String::new()))?;
    let mut parts = header.split_whitespace();
    if parts.next() != Some(FORMAT_MAGIC) {
        return Err(ProfileError::BadHeader(header.to_string()));
    }
    let version: u32 = parts
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| ProfileError::BadHeader(header.to_string()))?;
    if !(FORMAT_MIN_VERSION..=FORMAT_VERSION).contains(&version) {
        return Err(ProfileError::UnsupportedVersion(version));
    }

    let workload = parse_field(&mut lines, "workload")?;
    let collector = parse_field(&mut lines, "collector")?;
    // The site-map-hash line is optional (absent in version-1 files and in
    // profiles from harnesses that do not know their site map).
    let (_, line) = lines
        .next()
        .ok_or_else(|| ProfileError::BadHeader("missing sites line".to_string()))?;
    let (site_map_hash, sites_line) = match line.strip_prefix("site-map-hash ") {
        Some(value) => {
            let hash = u64::from_str_radix(value.trim(), 16).map_err(|_| {
                ProfileError::BadHeader(format!("site-map-hash value {value:?} is not hexadecimal"))
            })?;
            let (_, next) = lines
                .next()
                .ok_or_else(|| ProfileError::BadHeader("missing sites line".to_string()))?;
            (Some(hash), next)
        }
        None => (None, line),
    };
    let declared: usize = match sites_line.split_once(' ') {
        Some(("sites", value)) => value
            .trim()
            .parse()
            .map_err(|_| ProfileError::BadHeader("sites count is not a number".to_string()))?,
        _ => {
            return Err(ProfileError::BadHeader(format!(
                "expected \"sites ...\", found {sites_line:?}"
            )))
        }
    };

    let mut profile = SiteProfile {
        workload,
        collector,
        site_map_hash,
        sites: Default::default(),
    };
    for (index, line) in lines {
        let line_no = index + 1;
        if line.trim().is_empty() {
            continue;
        }
        let (id, record) = parse_site_line(line).map_err(|reason| ProfileError::BadRecord {
            line: line_no,
            reason,
        })?;
        if profile.sites.insert(id, record).is_some() {
            return Err(ProfileError::BadRecord {
                line: line_no,
                reason: format!("duplicate site {id}"),
            });
        }
    }
    if profile.sites.len() != declared {
        return Err(ProfileError::CountMismatch {
            declared,
            found: profile.sites.len(),
        });
    }
    Ok(profile)
}

/// Outcome of comparing a loaded profile's site-map hash against the site
/// map of the run about to consume it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SiteMapDrift {
    /// The profile was collected under the same site map.
    Match,
    /// The profile predates site-map hashing; nothing can be checked.
    Unhashed,
    /// The site map changed since the profile was collected. The advice is
    /// still applied per-site — sites that kept their ids keep their
    /// advice, everything else uses the table's default placement — but
    /// consumers should log the drift.
    Drifted {
        /// The hash stored in the profile.
        stored: u64,
        /// The consuming run's site-map hash.
        current: u64,
    },
}

impl SiteMapDrift {
    /// Returns `true` when the profile's site map no longer matches.
    pub fn is_drifted(self) -> bool {
        matches!(self, SiteMapDrift::Drifted { .. })
    }
}

/// Compares `profile`'s recorded site-map hash against `current`.
pub fn site_map_drift(profile: &SiteProfile, current: u64) -> SiteMapDrift {
    match profile.site_map_hash {
        None => SiteMapDrift::Unhashed,
        Some(stored) if stored == current => SiteMapDrift::Match,
        Some(stored) => SiteMapDrift::Drifted { stored, current },
    }
}

/// Writes a profile to `path`, creating parent directories as needed.
pub fn save_profile(profile: &SiteProfile, path: &Path) -> Result<(), ProfileError> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    fs::write(path, profile_to_string(profile))?;
    Ok(())
}

/// Reads a profile back from `path`.
pub fn load_profile(path: &Path) -> Result<SiteProfile, ProfileError> {
    let text = fs::read_to_string(path)?;
    parse_profile(&text)
}

fn sanitize(value: &str) -> String {
    // Field values live on one line; whitespace inside them becomes '-'.
    let cleaned: String = value
        .chars()
        .map(|c| if c.is_whitespace() { '-' } else { c })
        .collect();
    if cleaned.is_empty() {
        "-".to_string()
    } else {
        cleaned
    }
}

fn parse_field<'a>(
    lines: &mut impl Iterator<Item = (usize, &'a str)>,
    key: &str,
) -> Result<String, ProfileError> {
    let (_, line) = lines
        .next()
        .ok_or_else(|| ProfileError::BadHeader(format!("missing {key} line")))?;
    match line.split_once(' ') {
        Some((found, value)) if found == key => Ok(value.trim().to_string()),
        _ => Err(ProfileError::BadHeader(format!(
            "expected \"{key} ...\", found {line:?}"
        ))),
    }
}

fn parse_site_line(line: &str) -> Result<(u32, SiteRecord), String> {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    const KEYS: [&str; 7] = [
        "site",
        "objects",
        "bytes",
        "survived-objects",
        "survived-bytes",
        "post-writes",
        "large",
    ];
    if tokens.len() != KEYS.len() * 2 {
        return Err(format!(
            "expected {} tokens, found {}",
            KEYS.len() * 2,
            tokens.len()
        ));
    }
    let mut values = [0u64; 7];
    for (i, pair) in tokens.chunks(2).enumerate() {
        let (key, value) = (pair[0], pair[1]);
        if key != KEYS[i] {
            return Err(format!("expected key {:?}, found {key:?}", KEYS[i]));
        }
        values[i] = value
            .parse()
            .map_err(|_| format!("{key} value {value:?} is not a number"))?;
    }
    let id = u32::try_from(values[0]).map_err(|_| format!("site id {} out of range", values[0]))?;
    Ok((
        id,
        SiteRecord {
            objects: values[1],
            bytes: values[2],
            survived_objects: values[3],
            survived_bytes: values[4],
            post_nursery_writes: values[5],
            large_objects: values[6],
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::SiteProfiler;
    use crate::site::SiteId;

    fn sample_profile() -> SiteProfile {
        let mut profiler = SiteProfiler::new("lusearch", "KG-N");
        for _ in 0..120 {
            profiler.record_alloc(SiteId(1), 64, false);
        }
        for _ in 0..30 {
            profiler.record_nursery_survivor(SiteId(1), 64);
        }
        for _ in 0..400 {
            profiler.record_post_nursery_write(SiteId(1));
        }
        for _ in 0..8 {
            profiler.record_alloc(SiteId(2), 16 * 1024, true);
            profiler.record_nursery_survivor(SiteId(2), 16 * 1024);
        }
        for _ in 0..50 {
            profiler.record_alloc(SiteId(7), 64, false);
        }
        profiler.finish()
    }

    #[test]
    fn round_trip_preserves_every_field() {
        let profile = sample_profile();
        let text = profile_to_string(&profile);
        let parsed = parse_profile(&text).unwrap();
        assert_eq!(parsed, profile);
        // And a second round trip is byte-identical.
        assert_eq!(profile_to_string(&parsed), text);
    }

    #[test]
    fn hostile_inputs_error_without_panicking() {
        let text = profile_to_string(&sample_profile());
        let parse_survives = |input: String| {
            std::panic::catch_unwind(move || {
                let _ = parse_profile(&input);
            })
            .is_ok()
        };
        // Every prefix truncation parses without panicking; failures carry a
        // message. A cut that loses a whole record trips the declared-count
        // check; only a cut inside the final numeric token (a text format
        // has no checksum) can still parse, and then to fewer/altered sites
        // of a well-formed profile — never to garbage.
        let full = parse_profile(&text).unwrap();
        for cut in 0..text.len() {
            let prefix = text[..cut].to_string();
            assert!(parse_survives(prefix.clone()), "panic at truncation {cut}");
            match parse_profile(&prefix) {
                Err(err) => assert!(!err.to_string().is_empty(), "cut {cut}: empty error message"),
                Ok(parsed) => assert!(
                    parsed.sites.len() <= full.sites.len(),
                    "cut {cut}: truncation invented sites"
                ),
            }
            if prefix.find('\n').is_none() {
                // A truncated header can never be a valid profile.
                assert!(
                    parse_profile(&prefix).is_err(),
                    "cut {cut}: truncated header accepted"
                );
            }
        }
        // Every single-bit flip that stays valid UTF-8 parses without
        // panicking (a flip inside a numeric value may legitimately still
        // parse).
        let bytes = text.as_bytes();
        for pos in 0..bytes.len() {
            for bit in 0..8 {
                let mut flipped = bytes.to_vec();
                flipped[pos] ^= 1 << bit;
                if let Ok(corrupt) = String::from_utf8(flipped) {
                    assert!(parse_survives(corrupt), "panic at flip {pos}/{bit}");
                }
            }
        }
        // Missing files surface as descriptive I/O errors.
        let missing = load_profile(Path::new("/nonexistent/run.kgprof"));
        assert!(matches!(missing, Err(ProfileError::Io(_))));
    }

    #[test]
    fn round_trip_through_disk() {
        let profile = sample_profile();
        let dir = std::env::temp_dir().join("kingsguard-advice-test");
        let path = dir.join("lusearch.kgprof");
        save_profile(&profile, &path).unwrap();
        let loaded = load_profile(&path).unwrap();
        assert_eq!(loaded, profile);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_profile_round_trips() {
        let profile = SiteProfiler::new("empty", "KG-N").finish();
        let parsed = parse_profile(&profile_to_string(&profile)).unwrap();
        assert_eq!(parsed, profile);
        assert_eq!(parsed.sites.len(), 0);
    }

    #[test]
    fn site_map_hash_round_trips() {
        let mut profile = sample_profile();
        profile.site_map_hash = Some(0x00c3_e1f2_9b04_d877);
        let text = profile_to_string(&profile);
        assert!(text.contains("site-map-hash 00c3e1f29b04d877"));
        let parsed = parse_profile(&text).unwrap();
        assert_eq!(parsed, profile);
        assert_eq!(parsed.site_map_hash, Some(0x00c3_e1f2_9b04_d877));
        // And through disk.
        let dir = std::env::temp_dir().join(format!("kingsguard-advice-hash-{}", std::process::id()));
        let path = dir.join("hashed.kgprof");
        save_profile(&profile, &path).unwrap();
        assert_eq!(load_profile(&path).unwrap(), profile);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn version_1_files_without_a_hash_still_parse() {
        let text = "kingsguard-site-profile 1\nworkload old\ncollector KG-N\nsites 1\n\
                    site 1 objects 1 bytes 64 survived-objects 0 survived-bytes 0 post-writes 0 large 0\n";
        let parsed = parse_profile(text).unwrap();
        assert_eq!(parsed.site_map_hash, None);
        assert_eq!(parsed.sites.len(), 1);
        assert_eq!(site_map_drift(&parsed, 42), SiteMapDrift::Unhashed);
    }

    #[test]
    fn drift_is_reported_but_not_fatal() {
        let mut profile = sample_profile();
        profile.site_map_hash = Some(7);
        assert_eq!(site_map_drift(&profile, 7), SiteMapDrift::Match);
        let drift = site_map_drift(&profile, 8);
        assert_eq!(
            drift,
            SiteMapDrift::Drifted {
                stored: 7,
                current: 8
            }
        );
        assert!(drift.is_drifted());
        assert!(!SiteMapDrift::Match.is_drifted());
        // The drifted profile still parses and its sites remain usable.
        let reparsed = parse_profile(&profile_to_string(&profile)).unwrap();
        assert_eq!(reparsed.sites.len(), profile.sites.len());
    }

    #[test]
    fn malformed_site_map_hash_is_rejected() {
        let text = "kingsguard-site-profile 2\nworkload x\ncollector y\nsite-map-hash zz\nsites 0\n";
        assert!(matches!(parse_profile(text), Err(ProfileError::BadHeader(_))));
    }

    #[test]
    fn unknown_version_is_rejected() {
        let text = "kingsguard-site-profile 99\nworkload x\ncollector y\nsites 0\n";
        match parse_profile(text) {
            Err(ProfileError::UnsupportedVersion(99)) => {}
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        assert!(matches!(parse_profile(""), Err(ProfileError::BadHeader(_))));
        assert!(matches!(
            parse_profile("not-a-profile 1\n"),
            Err(ProfileError::BadHeader(_))
        ));
        let missing_fields = "kingsguard-site-profile 1\nworkload x\n";
        assert!(matches!(
            parse_profile(missing_fields),
            Err(ProfileError::BadHeader(_))
        ));
        let bad_count = "kingsguard-site-profile 1\nworkload x\ncollector y\nsites 2\n\
                         site 1 objects 1 bytes 64 survived-objects 0 survived-bytes 0 post-writes 0 large 0\n";
        assert!(matches!(
            parse_profile(bad_count),
            Err(ProfileError::CountMismatch {
                declared: 2,
                found: 1
            })
        ));
        let bad_record = "kingsguard-site-profile 1\nworkload x\ncollector y\nsites 1\nsite 1 objects nan\n";
        assert!(matches!(
            parse_profile(bad_record),
            Err(ProfileError::BadRecord { .. })
        ));
        let dup = "kingsguard-site-profile 1\nworkload x\ncollector y\nsites 1\n\
                   site 1 objects 1 bytes 64 survived-objects 0 survived-bytes 0 post-writes 0 large 0\n\
                   site 1 objects 1 bytes 64 survived-objects 0 survived-bytes 0 post-writes 0 large 0\n";
        assert!(matches!(parse_profile(dup), Err(ProfileError::BadRecord { .. })));
    }

    #[test]
    fn workload_names_with_spaces_survive() {
        let mut profiler = SiteProfiler::new("my workload", "KG N");
        profiler.record_alloc(SiteId(1), 64, false);
        let profile = profiler.finish();
        let parsed = parse_profile(&profile_to_string(&profile)).unwrap();
        assert_eq!(parsed.workload, "my-workload");
        assert_eq!(parsed.collector, "KG-N");
    }

    #[test]
    fn error_messages_are_descriptive() {
        let err = parse_profile("kingsguard-site-profile 99\n").unwrap_err();
        assert!(err.to_string().contains("version 99"));
        let err = parse_profile("bogus\n").unwrap_err();
        assert!(err.to_string().contains("header"));
    }
}
