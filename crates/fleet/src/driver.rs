//! The fleet driver: waves of tenant sessions over sharded worker threads.
//!
//! A *tenant* is one `KingsguardHeap` + placement policy running one
//! deterministic workload — a synthetic benchmark, the streaming-graph
//! workload, or the replay of a recorded `.kgtrace` session — for one
//! session lifetime, after which it is recycled: its PCM wear is absorbed
//! into the shared device, its learned advice deposited in the store, its
//! heap dropped. Tenants arrive in fixed *waves* (discretised arrival
//! rounds): every placement and warm-start decision for a wave is taken
//! from fleet state at wave start, the wave's sessions fan over up to
//! `jobs` worker threads, and their effects are absorbed back in
//! tenant-index order. That ordering discipline is what makes
//! [`run_fleet`] bit-identical for any `--jobs` value.
//!
//! Sessions are crash-isolated exactly like the experiment runner's cells:
//! each runs under `catch_unwind`, a panicking tenant becomes a
//! [`TenantFailure`] row (and a `died` outcome), and the fleet completes.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

use advice::AdviceTable;
use hybrid_mem::timing::ExecutionModel;
use hybrid_mem::{Endurance, FaultConfig, MemoryConfig, MemoryKind, WearSummary};
use kingsguard::{HeapConfig, KingsguardHeap};
use telemetry::{HistogramSummary, TelemetryEvent, TelemetryReport, Value};
use trace::{Trace, TraceReplayer};
use workloads::{
    benchmark, site_map_hash, StreamingConfig, StreamingWorkload, SyntheticMutator, WorkloadConfig,
};

use crate::advice_store::{AdviceLookup, AdviceStore};
use crate::broker::{PlacementStrategy, WearBroker};
use crate::device::FleetDevice;

/// The workload one tenant session runs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TenantWorkload {
    /// A synthetic benchmark session ([`workloads::SyntheticMutator`]).
    Synthetic {
        /// Benchmark name (see [`workloads::benchmark`]).
        benchmark: String,
    },
    /// A streaming-graph analytics session ([`workloads::StreamingWorkload`]).
    Streaming,
    /// Replay of a `.kgtrace` heap-event stream recorded once per
    /// `(benchmark, scale)` by the driver and replayed by every tenant of
    /// this kind — the same session, served again and again.
    Replay {
        /// Benchmark the recorded session ran.
        benchmark: String,
    },
}

impl TenantWorkload {
    /// The store/report key: the benchmark name, or `"streaming"`.
    pub fn benchmark_name(&self) -> &str {
        match self {
            TenantWorkload::Synthetic { benchmark } | TenantWorkload::Replay { benchmark } => benchmark,
            TenantWorkload::Streaming => "streaming",
        }
    }
}

/// The collector a tenant runs under.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TenantCollector {
    /// Kingsguard-nursery (static, all-PCM mature).
    KgN,
    /// Kingsguard-writers (online per-object observation).
    KgW,
    /// Kingsguard-dynamic (online-adaptive per-site advice; the only
    /// collector the advice store can warm-start).
    KgD,
}

impl TenantCollector {
    /// Stable collector label.
    pub fn label(self) -> &'static str {
        match self {
            TenantCollector::KgN => "KG-N",
            TenantCollector::KgW => "KG-W",
            TenantCollector::KgD => "KG-D",
        }
    }
}

/// One tenant's session plan, fixed before its wave runs.
#[derive(Clone, Debug)]
pub struct TenantSpec {
    /// Fleet-wide tenant index (arrival order).
    pub index: usize,
    /// The session's workload.
    pub workload: TenantWorkload,
    /// The session's collector.
    pub collector: TenantCollector,
    /// Workload scale divisor (larger = smaller session).
    pub scale: u64,
    /// Workload seed (derived from the fleet seed and tenant index).
    pub seed: u64,
}

/// How a tenant was started.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WarmStart {
    /// No usable advice: the tenant started from scratch.
    Cold,
    /// Warm-started from a same-site-map advice snapshot.
    Warm,
    /// Warm-started from a *stale* snapshot (site-map hash mismatch); the
    /// advice was applied per-site via the drift-fallback path.
    Drifted,
}

impl WarmStart {
    /// Stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            WarmStart::Cold => "cold",
            WarmStart::Warm => "warm",
            WarmStart::Drifted => "drifted",
        }
    }

    /// `true` for either warm variant.
    pub fn is_warm(self) -> bool {
        !matches!(self, WarmStart::Cold)
    }
}

/// Fleet run configuration.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Tenant sessions to run.
    pub tenants: usize,
    /// Fleet seed: tenant workload seeds, region fault schedules and the
    /// trace-recording seed all derive from it.
    pub seed: u64,
    /// Base session scale divisor; the spec cycle multiplies it per slot
    /// so the fleet mixes heavy and light tenants.
    pub scale: u64,
    /// Worker threads per wave (results are identical for any value).
    pub jobs: usize,
    /// PCM device regions the wear broker places tenants on.
    pub regions: usize,
    /// Tenants per scheduling wave (arrival round).
    pub wave: usize,
    /// Placement strategy of the wear broker.
    pub strategy: PlacementStrategy,
    /// Whether KG-D tenants warm-start from the fleet advice store.
    pub warm_start: bool,
    /// Fault schedule template for the device regions (each region
    /// re-seeds it; see [`FleetDevice::new`]).
    pub fault: FaultConfig,
}

/// The device fault schedule matched to the fleet size: accelerated wear
/// around mid-range endurance, boosted by `2^14 / tenants` so the whole
/// fleet's cumulative traffic compresses into the same fixed fraction of
/// device lifetime at any fleet size. Per-*line* churn is what ages a line,
/// and it is proportional to the sessions a region hosts (session *size* —
/// the workload scale — stretches a session's footprint, not its per-line
/// write counts), so the boost depends on tenant count alone. The
/// normalization keeps every fleet in the regime placement actually
/// governs: regions a naive placement keeps hammering cross their line
/// budgets, regions the broker levels stay below them. (As in the fault
/// sweep, reported years always divide the acceleration back out.)
pub fn default_fleet_fault(seed: u64, tenants: usize) -> FaultConfig {
    let accelerated = FaultConfig::accelerated(seed, Endurance::Mid30M);
    let boost = ((1u64 << 14) / tenants.max(1) as u64).max(1);
    accelerated.with_wear_multiplier(accelerated.wear_multiplier.saturating_mul(boost))
}

impl FleetConfig {
    /// A fleet of `tenants` sessions with the default geometry: 8 regions,
    /// waves of 16, wear-levelled placement, warm starts enabled, base
    /// session scale 2048 (sessions are short-lived; the interesting
    /// volume is their number).
    pub fn new(tenants: usize) -> Self {
        let seed = 0xF1EE7;
        let scale = 2048;
        FleetConfig {
            tenants,
            seed,
            scale,
            jobs: 1,
            regions: 8,
            wave: 16,
            strategy: PlacementStrategy::WearLevelled,
            warm_start: true,
            fault: default_fleet_fault(seed, tenants),
        }
    }

    /// Same fleet with a different seed (re-derives the fault schedule).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.fault = default_fleet_fault(seed, self.tenants);
        self
    }

    /// Same fleet with a different base session scale (the fault schedule
    /// is scale-independent; see [`default_fleet_fault`]).
    pub fn with_scale(mut self, scale: u64) -> Self {
        self.scale = scale.max(1);
        self
    }

    /// Same fleet with a different worker-thread count.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Same fleet with a different placement strategy.
    pub fn with_strategy(mut self, strategy: PlacementStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Same fleet with warm starts switched on or off.
    pub fn with_warm_start(mut self, warm_start: bool) -> Self {
        self.warm_start = warm_start;
        self
    }

    /// Same fleet with an explicit device fault schedule.
    pub fn with_fault(mut self, fault: FaultConfig) -> Self {
        self.fault = fault;
        self
    }

    /// The default tenant mix: a fixed 8-slot cycle of (workload,
    /// collector, scale multiplier) templates, so the fleet interleaves
    /// heavy and light writers, three workload kinds and three collectors
    /// — and, under round-robin placement with 8 regions, every slot pins
    /// to one region (the naive-placement failure mode the wear broker
    /// exists to fix). Each tenant draws its own workload seed from the
    /// fleet seed.
    pub fn tenant_specs(&self) -> Vec<TenantSpec> {
        const CYCLE: [(&str, TenantCollector, u64); 8] = [
            ("lusearch", TenantCollector::KgD, 1),
            ("lu.fix", TenantCollector::KgD, 4),
            ("streaming", TenantCollector::KgD, 1),
            ("xalan", TenantCollector::KgD, 2),
            ("lusearch", TenantCollector::KgD, 2),
            ("pmd.s", TenantCollector::KgN, 4),
            ("antlr", TenantCollector::KgD, 4),
            ("bloat", TenantCollector::KgW, 2),
        ];
        (0..self.tenants)
            .map(|index| {
                let (name, collector, mul) = CYCLE[index % CYCLE.len()];
                let workload = match (index % CYCLE.len(), name) {
                    (_, "streaming") => TenantWorkload::Streaming,
                    // Slot 4 replays a recorded lusearch session instead of
                    // re-running workload generation.
                    (4, _) => TenantWorkload::Replay {
                        benchmark: name.to_string(),
                    },
                    _ => TenantWorkload::Synthetic {
                        benchmark: name.to_string(),
                    },
                };
                TenantSpec {
                    index,
                    workload,
                    collector,
                    scale: self.scale.saturating_mul(mul).max(1),
                    seed: mix(self.seed ^ index as u64),
                }
            })
            .collect()
    }
}

/// One recycled tenant session, as reported by the fleet.
#[derive(Clone, Debug)]
pub struct TenantOutcome {
    /// Fleet-wide tenant index.
    pub index: usize,
    /// Workload name (`"streaming"` for streaming tenants).
    pub benchmark: String,
    /// Collector label.
    pub collector: String,
    /// Device region the broker placed the session on.
    pub region: usize,
    /// Session scale divisor.
    pub scale: u64,
    /// How the tenant was started.
    pub warm: WarmStart,
    /// Device line writes to PCM.
    pub pcm_writes: u64,
    /// Bytes written to PCM.
    pub pcm_bytes: u64,
    /// Modeled session execution time in seconds.
    pub elapsed_s: f64,
    /// Modeled PCM write rate in bytes/second.
    pub pcm_write_rate: f64,
    /// Heap events driven through the session (telemetry `touch.events`).
    pub touch_events: u64,
    /// GC pause histogram of the session.
    pub pauses: HistogramSummary,
    /// `None` when the session completed; `Some(panic message)` when it
    /// died (all counters zero in that case).
    pub died: Option<String>,
}

/// One tenant that panicked, for the fleet's failure summary.
#[derive(Clone, Debug)]
pub struct TenantFailure {
    /// Fleet-wide tenant index.
    pub index: usize,
    /// Workload name.
    pub benchmark: String,
    /// Rendered panic payload.
    pub message: String,
}

/// Per-(benchmark, scale) warm-vs-cold KG-D comparison row.
#[derive(Clone, Debug)]
pub struct WarmColdRow {
    /// Workload name.
    pub benchmark: String,
    /// Session scale divisor.
    pub scale: u64,
    /// Cold KG-D sessions in the group.
    pub cold_sessions: usize,
    /// Warm-started KG-D sessions in the group.
    pub warm_sessions: usize,
    /// Mean modeled PCM write rate of the cold sessions (bytes/s).
    pub cold_rate: f64,
    /// Mean modeled PCM write rate of the warm sessions (bytes/s).
    pub warm_rate: f64,
}

/// Deterministic aggregates of one arrival wave: how the fleet's load and
/// device damage grew round by round. Every field is a pure function of
/// the simulation (no wall-clock), so the series is bit-identical for any
/// `--jobs` fan-out and survives `repro metrics diff`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WaveSummary {
    /// Wave index (0-based arrival round).
    pub wave: usize,
    /// Sessions the wave ran (completed + died).
    pub sessions: usize,
    /// Sessions that died in this wave.
    pub died: usize,
    /// Heap events the wave's sessions drove.
    pub touch_events: u64,
    /// Bytes the wave's sessions wrote to PCM.
    pub pcm_bytes: u64,
    /// Device lines permanently failed by the end of the wave (cumulative).
    pub failed_lines: u64,
    /// Device pages retired by the end of the wave (cumulative).
    pub retired_pages: u64,
}

/// Everything a fleet run produced.
#[derive(Clone, Debug)]
pub struct FleetOutcome {
    /// Placement strategy the run used.
    pub strategy: PlacementStrategy,
    /// Whether warm starts were enabled.
    pub warm_start_enabled: bool,
    /// Fleet seed.
    pub seed: u64,
    /// Base session scale.
    pub scale: u64,
    /// Device regions.
    pub regions: usize,
    /// Per-tenant outcomes in arrival order (died rows included).
    pub outcomes: Vec<TenantOutcome>,
    /// Panicked tenants, in index order.
    pub failures: Vec<TenantFailure>,
    /// Device lines permanently failed across the fleet.
    pub failed_lines: u64,
    /// Device pages retired (ECC-uncorrectable) across the fleet.
    pub retired_pages: u64,
    /// PCM capacity lost to retired pages, in bytes.
    pub degraded_bytes: u64,
    /// Analytic real-time years until the device's first uncorrectable
    /// page at the fleet's cumulative write rates.
    pub years_to_first_ue: Option<f64>,
    /// Device-wide wear distribution.
    pub device_wear: WearSummary,
    /// GC pauses merged across every completed session.
    pub pauses: HistogramSummary,
    /// Heap events driven across the fleet.
    pub touch_events: u64,
    /// Total modeled execution seconds across sessions.
    pub modeled_s: f64,
    /// Total bytes written to PCM across sessions.
    pub pcm_bytes: u64,
    /// Advice snapshots deposited in the store.
    pub advice_deposits: u64,
    /// KG-D tenants warm-started from matching advice.
    pub warm_starts: u64,
    /// KG-D tenants warm-started from *stale* (drifted) advice.
    pub drifted_warm_starts: u64,
    /// KG-D tenants that cold-started.
    pub cold_starts: u64,
    /// Per-wave deterministic aggregates, in arrival order.
    pub wave_series: Vec<WaveSummary>,
}

impl FleetOutcome {
    /// Sessions that completed.
    pub fn completed(&self) -> usize {
        self.outcomes.iter().filter(|o| o.died.is_none()).count()
    }

    /// Aggregate modeled heap-event throughput: total events over total
    /// modeled session time (deterministic — no wall-clock involved).
    pub fn events_per_sec(&self) -> f64 {
        if self.modeled_s <= 0.0 {
            return 0.0;
        }
        self.touch_events as f64 / self.modeled_s
    }

    /// Like-for-like warm-vs-cold KG-D comparison: completed KG-D sessions
    /// grouped by `(benchmark, scale)`, restricted to groups that have both
    /// cohorts. Deterministic (BTreeMap grouping, index-order folds).
    pub fn warm_cold_comparison(&self) -> Vec<WarmColdRow> {
        let mut groups: BTreeMap<(String, u64), (Vec<f64>, Vec<f64>)> = BTreeMap::new();
        for outcome in &self.outcomes {
            if outcome.died.is_some() || outcome.collector != "KG-D" {
                continue;
            }
            let entry = groups
                .entry((outcome.benchmark.clone(), outcome.scale))
                .or_default();
            if outcome.warm.is_warm() {
                entry.1.push(outcome.pcm_write_rate);
            } else {
                entry.0.push(outcome.pcm_write_rate);
            }
        }
        groups
            .into_iter()
            .filter(|(_, (cold, warm))| !cold.is_empty() && !warm.is_empty())
            .map(|((benchmark, scale), (cold, warm))| WarmColdRow {
                benchmark,
                scale,
                cold_sessions: cold.len(),
                warm_sessions: warm.len(),
                cold_rate: mean(&cold),
                warm_rate: mean(&warm),
            })
            .collect()
    }

    /// The fleet-wide warm/cold PCM write-rate ratio: mean over the
    /// like-for-like groups of `warm_rate / cold_rate` (< 1 means warm
    /// starts saved PCM writes). `None` without comparable groups.
    pub fn warm_cold_ratio(&self) -> Option<f64> {
        let rows = self.warm_cold_comparison();
        let ratios: Vec<f64> = rows
            .iter()
            .filter(|row| row.cold_rate > 0.0)
            .map(|row| row.warm_rate / row.cold_rate)
            .collect();
        if ratios.is_empty() {
            None
        } else {
            Some(mean(&ratios))
        }
    }

    /// Synthesises the fleet-level telemetry report written to
    /// `.kgmetrics`: deterministic counters and gauges for everything the
    /// fleet measures, plus the merged GC pause histogram. `elapsed_ns` is
    /// the modeled fleet time.
    pub fn fleet_report(&self) -> TelemetryReport {
        let mut counters: Vec<(String, u64)> = vec![
            ("fleet.advice_deposits".into(), self.advice_deposits),
            ("fleet.cold_starts".into(), self.cold_starts),
            ("fleet.completed".into(), self.completed() as u64),
            ("fleet.degraded_bytes".into(), self.degraded_bytes),
            ("fleet.device_failed_lines".into(), self.failed_lines),
            ("fleet.device_retired_pages".into(), self.retired_pages),
            ("fleet.drifted_warm_starts".into(), self.drifted_warm_starts),
            ("fleet.failed".into(), self.failures.len() as u64),
            ("fleet.pcm_bytes".into(), self.pcm_bytes),
            ("fleet.regions".into(), self.regions as u64),
            ("fleet.tenants".into(), self.outcomes.len() as u64),
            ("fleet.touch_events".into(), self.touch_events),
            ("fleet.warm_starts".into(), self.warm_starts),
        ];
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        let mut gauges: Vec<(String, f64, bool)> = vec![
            ("fleet.events_per_sec".into(), self.events_per_sec(), true),
            (
                "fleet.wear_cov".into(),
                self.device_wear.coefficient_of_variation,
                true,
            ),
        ];
        if let Some(years) = self.years_to_first_ue {
            gauges.push(("fleet.years_to_first_ue".into(), years, true));
        }
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        // One deterministic event per arrival wave: the per-wave load plus
        // the device's cumulative damage, so a `.kgmetrics` reader can plot
        // fleet growth over rounds. No wall-clock fields — the series must
        // stay bit-identical across `--jobs` fan-outs.
        let events = self
            .wave_series
            .iter()
            .enumerate()
            .map(|(seq, wave)| TelemetryEvent {
                seq: seq as u64,
                name: "fleet.wave".to_string(),
                deterministic: true,
                fields: vec![
                    ("wave".to_string(), Value::U64(wave.wave as u64)),
                    ("sessions".to_string(), Value::U64(wave.sessions as u64)),
                    ("died".to_string(), Value::U64(wave.died as u64)),
                    ("touch_events".to_string(), Value::U64(wave.touch_events)),
                    ("pcm_bytes".to_string(), Value::U64(wave.pcm_bytes)),
                    ("failed_lines".to_string(), Value::U64(wave.failed_lines)),
                    ("retired_pages".to_string(), Value::U64(wave.retired_pages)),
                ],
            })
            .collect();
        TelemetryReport {
            elapsed_ns: (self.modeled_s * 1e9) as u64,
            counters,
            gauges,
            hists: vec![("gc.pause_ns".to_string(), self.pauses.clone())],
            spans: Vec::new(),
            events,
        }
    }
}

fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// One tenant's full wave-time plan.
#[derive(Clone, Debug)]
struct SessionPlan {
    spec: TenantSpec,
    region: usize,
    warm: WarmStart,
    advice: Option<AdviceTable>,
}

/// What a completed session hands back to the driver.
struct SessionResult {
    outcome: TenantOutcome,
    line_writes: Vec<(u64, u64)>,
    advice_snapshot: Option<AdviceTable>,
}

fn memory_config() -> MemoryConfig {
    // Architecture-independent mode (every heap store reaches the device
    // counters) with per-line write tracking on: the device absorption
    // needs `pcm_line_writes` exports.
    let mut config = MemoryConfig::architecture_independent();
    config.track_line_writes = true;
    config
}

fn heap_config_for(plan: &SessionPlan) -> HeapConfig {
    let base = match plan.spec.collector {
        TenantCollector::KgN => HeapConfig::kg_n(),
        TenantCollector::KgW => HeapConfig::kg_w(),
        TenantCollector::KgD => match &plan.advice {
            Some(table) => HeapConfig::kg_d_with(table.clone()),
            None => HeapConfig::kg_d(),
        },
    };
    let budget = match &plan.spec.workload {
        TenantWorkload::Synthetic { benchmark: name } | TenantWorkload::Replay { benchmark: name } => {
            let profile = benchmark(name).unwrap_or_else(|| panic!("unknown fleet benchmark {name:?}"));
            profile.scaled_heap_bytes(plan.spec.scale).max(2 << 20) as usize
        }
        // The streaming workload's working set is interval-bounded; the
        // budget matches the streaming experiment's.
        TenantWorkload::Streaming => 512 * 1024,
    };
    base.with_heap_budget(budget)
}

/// Runs one tenant session to completion and harvests everything the
/// fleet needs before the heap is recycled.
fn run_session(plan: &SessionPlan, traces: &BTreeMap<(String, u64), Trace>) -> SessionResult {
    let mut heap = KingsguardHeap::new(heap_config_for(plan), memory_config());
    heap.enable_telemetry();
    match &plan.spec.workload {
        TenantWorkload::Synthetic { benchmark: name } => {
            let profile = benchmark(name).unwrap_or_else(|| panic!("unknown fleet benchmark {name:?}"));
            SyntheticMutator::new(
                profile,
                WorkloadConfig {
                    scale: plan.spec.scale,
                    seed: plan.spec.seed,
                },
            )
            .run(&mut heap);
        }
        TenantWorkload::Streaming => {
            StreamingWorkload::new(StreamingConfig {
                scale: plan.spec.scale,
                seed: plan.spec.seed,
                mutators: 2,
                ..Default::default()
            })
            .run(&mut heap);
        }
        TenantWorkload::Replay { benchmark: name } => {
            let trace = traces
                .get(&(name.clone(), plan.spec.scale))
                .unwrap_or_else(|| panic!("no recorded trace for {name:?} at scale {}", plan.spec.scale));
            TraceReplayer::new(trace)
                .replay(&mut heap)
                .unwrap_or_else(|err| panic!("tenant replay failed: {err}"));
        }
    }
    // Harvest before `finish` consumes the heap: learned advice from the
    // policy, per-line device write counts for the wear broker.
    let advice_snapshot = heap.policy().advice_snapshot();
    let line_writes = heap.with_synced_memory(|mem| {
        mem.flush_caches();
        mem.pcm_line_writes()
    });
    let report = heap.finish();
    let elapsed_s = ExecutionModel::default()
        .breakdown(&report.gc.work, &report.memory)
        .total_s();
    let pcm_bytes = report.memory.bytes_written(MemoryKind::Pcm);
    let telemetry = report.telemetry.as_ref();
    SessionResult {
        outcome: TenantOutcome {
            index: plan.spec.index,
            benchmark: plan.spec.workload.benchmark_name().to_string(),
            collector: plan.spec.collector.label().to_string(),
            region: plan.region,
            scale: plan.spec.scale,
            warm: plan.warm,
            pcm_writes: report.memory.writes(MemoryKind::Pcm),
            pcm_bytes,
            elapsed_s,
            pcm_write_rate: if elapsed_s > 0.0 {
                pcm_bytes as f64 / elapsed_s
            } else {
                0.0
            },
            touch_events: telemetry.and_then(|t| t.counter("touch.events")).unwrap_or(0),
            pauses: telemetry
                .and_then(|t| t.hist("gc.pause_ns").cloned())
                .unwrap_or_default(),
            died: None,
        },
        line_writes,
        advice_snapshot,
    }
}

/// Records the `.kgtrace` session that replay tenants of `(name, scale)`
/// will be served. The recording seed derives from the fleet seed and the
/// key only — every replay tenant serves the *same* recorded session.
fn record_trace(name: &str, scale: u64, fleet_seed: u64) -> Trace {
    let profile = benchmark(name).unwrap_or_else(|| panic!("unknown fleet benchmark {name:?}"));
    let seed = name
        .bytes()
        .fold(mix(fleet_seed ^ scale), |hash, byte| mix(hash ^ byte as u64));
    let mut heap = KingsguardHeap::new(
        HeapConfig::kg_d().with_heap_budget(profile.scaled_heap_bytes(scale).max(2 << 20) as usize),
        memory_config(),
    );
    let recorded = SyntheticMutator::new(profile, WorkloadConfig { scale, seed }).record(&mut heap);
    heap.finish();
    recorded
}

/// Crash-isolated wave execution: the `run_jobs_reporting` pattern (atomic
/// work queue, `catch_unwind` per cell) local to the fleet, which cannot
/// depend on the experiments crate.
fn run_wave<R: Send>(
    plans: &[SessionPlan],
    jobs: usize,
    f: impl Fn(&SessionPlan) -> R + Sync,
) -> Vec<Result<R, String>> {
    let call = |plan: &SessionPlan| -> Result<R, String> {
        // Each session builds its own heap and memory system; a panic
        // cannot leave state any sibling observes, so unwind safety is by
        // construction.
        catch_unwind(AssertUnwindSafe(|| f(plan))).map_err(|payload| panic_message(payload.as_ref()))
    };
    if jobs <= 1 || plans.len() <= 1 {
        return plans.iter().map(call).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut slots: Vec<Option<Result<R, String>>> = Vec::new();
    slots.resize_with(plans.len(), || None);
    let shared = std::sync::Mutex::new(slots);
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(plans.len()) {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(plan) = plans.get(index) else {
                    break;
                };
                let result = call(plan);
                shared.lock().expect("worker poisoned the result set")[index] = Some(result);
            });
        }
    });
    shared
        .into_inner()
        .expect("worker poisoned the result set")
        .into_iter()
        .map(|slot| slot.expect("every index was claimed by exactly one worker"))
        .collect()
}

/// Renders a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(message) = payload.downcast_ref::<&str>() {
        (*message).to_string()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs the fleet described by `config` with its default tenant mix.
pub fn run_fleet(config: &FleetConfig) -> FleetOutcome {
    run_fleet_with_specs(config, config.tenant_specs())
}

/// Runs the fleet over an explicit tenant list (tests inject custom mixes
/// and poison tenants through this entry point). Tenants are processed in
/// waves of `config.wave`; see the module docs for the determinism
/// discipline.
pub fn run_fleet_with_specs(config: &FleetConfig, specs: Vec<TenantSpec>) -> FleetOutcome {
    let broker = WearBroker::new(config.strategy);
    let mut device = FleetDevice::new(config.seed, config.regions, config.fault);
    let mut store = AdviceStore::new();
    let mut traces: BTreeMap<(String, u64), Trace> = BTreeMap::new();
    let current_hash = site_map_hash();
    let mut outcomes: Vec<TenantOutcome> = Vec::with_capacity(specs.len());
    let mut failures: Vec<TenantFailure> = Vec::new();
    let mut pauses = HistogramSummary::default();
    let mut touch_events = 0u64;
    let mut modeled_s = 0.0f64;
    let mut pcm_bytes = 0u64;
    let (mut warm_starts, mut drifted_warm_starts, mut cold_starts) = (0u64, 0u64, 0u64);
    let mut wave_series: Vec<WaveSummary> = Vec::new();

    for (wave_index, wave) in specs.chunks(config.wave.max(1)).enumerate() {
        // Record any `.kgtrace` sessions this wave replays (inline, in the
        // driver thread, so recording order is deterministic).
        for spec in wave {
            if let TenantWorkload::Replay { benchmark: name } = &spec.workload {
                if let std::collections::btree_map::Entry::Vacant(slot) =
                    traces.entry((name.clone(), spec.scale))
                {
                    // A failing recording surfaces as per-tenant replay
                    // failures, not a dead fleet.
                    if let Ok(recorded) =
                        catch_unwind(AssertUnwindSafe(|| record_trace(name, spec.scale, config.seed)))
                    {
                        slot.insert(recorded);
                    }
                }
            }
        }
        // All placement and warm-start decisions for the wave come from
        // fleet state at wave start.
        let indices: Vec<usize> = wave.iter().map(|spec| spec.index).collect();
        let regions = broker.place_wave(&indices, &device);
        let plans: Vec<SessionPlan> = wave
            .iter()
            .zip(regions)
            .map(|(spec, region)| {
                let (warm, advice) = if config.warm_start && spec.collector == TenantCollector::KgD {
                    match store.lookup(spec.workload.benchmark_name(), current_hash) {
                        AdviceLookup::Cold => (WarmStart::Cold, None),
                        AdviceLookup::Warm { snapshot, drift } => {
                            let warm = if matches!(drift, advice::SiteMapDrift::Match) {
                                WarmStart::Warm
                            } else {
                                WarmStart::Drifted
                            };
                            (warm, Some(snapshot.table))
                        }
                    }
                } else {
                    (WarmStart::Cold, None)
                };
                if spec.collector == TenantCollector::KgD && config.warm_start {
                    match warm {
                        WarmStart::Cold => cold_starts += 1,
                        WarmStart::Warm => warm_starts += 1,
                        WarmStart::Drifted => drifted_warm_starts += 1,
                    }
                }
                SessionPlan {
                    spec: spec.clone(),
                    region,
                    warm,
                    advice,
                }
            })
            .collect();
        let results = run_wave(&plans, config.jobs, |plan| run_session(plan, &traces));
        let mut summary = WaveSummary {
            wave: wave_index,
            sessions: plans.len(),
            died: 0,
            touch_events: 0,
            pcm_bytes: 0,
            failed_lines: 0,
            retired_pages: 0,
        };
        // Absorb wave effects in tenant-index order.
        for (plan, slot) in plans.iter().zip(results) {
            match slot {
                Ok(session) => {
                    device.absorb(plan.region, &session.line_writes, session.outcome.elapsed_s);
                    if let Some(table) = session.advice_snapshot {
                        store.deposit(
                            plan.spec.workload.benchmark_name(),
                            current_hash,
                            table,
                            plan.spec.index,
                        );
                    }
                    pauses.merge(&session.outcome.pauses);
                    touch_events += session.outcome.touch_events;
                    modeled_s += session.outcome.elapsed_s;
                    pcm_bytes += session.outcome.pcm_bytes;
                    summary.touch_events += session.outcome.touch_events;
                    summary.pcm_bytes += session.outcome.pcm_bytes;
                    outcomes.push(session.outcome);
                }
                Err(message) => {
                    summary.died += 1;
                    failures.push(TenantFailure {
                        index: plan.spec.index,
                        benchmark: plan.spec.workload.benchmark_name().to_string(),
                        message: message.clone(),
                    });
                    outcomes.push(TenantOutcome {
                        index: plan.spec.index,
                        benchmark: plan.spec.workload.benchmark_name().to_string(),
                        collector: plan.spec.collector.label().to_string(),
                        region: plan.region,
                        scale: plan.spec.scale,
                        warm: plan.warm,
                        pcm_writes: 0,
                        pcm_bytes: 0,
                        elapsed_s: 0.0,
                        pcm_write_rate: 0.0,
                        touch_events: 0,
                        pauses: HistogramSummary::default(),
                        died: Some(message),
                    });
                }
            }
        }
        summary.failed_lines = device.failed_line_count();
        summary.retired_pages = device.retired_page_count();
        wave_series.push(summary);
    }

    FleetOutcome {
        strategy: config.strategy,
        warm_start_enabled: config.warm_start,
        seed: config.seed,
        scale: config.scale,
        regions: config.regions,
        failed_lines: device.failed_line_count(),
        retired_pages: device.retired_page_count(),
        degraded_bytes: device.degraded_bytes(),
        years_to_first_ue: device.years_to_first_uncorrectable(),
        device_wear: device.wear_summary(),
        advice_deposits: store.counters().0,
        outcomes,
        failures,
        pauses,
        touch_events,
        modeled_s,
        pcm_bytes,
        warm_starts,
        drifted_warm_starts,
        cold_starts,
        wave_series,
    }
}

/// splitmix64 finalizer — the workspace's standard bit mixer.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> FleetConfig {
        FleetConfig::new(32).with_scale(4096)
    }

    fn assert_outcomes_bit_identical(a: &FleetOutcome, b: &FleetOutcome) {
        assert_eq!(a.outcomes.len(), b.outcomes.len());
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            let tag = format!("tenant #{} ({})", x.index, x.benchmark);
            assert_eq!(x.benchmark, y.benchmark, "{tag}");
            assert_eq!(x.collector, y.collector, "{tag}");
            assert_eq!(x.region, y.region, "{tag}");
            assert_eq!(x.warm, y.warm, "{tag}");
            assert_eq!(x.pcm_writes, y.pcm_writes, "{tag}");
            assert_eq!(x.pcm_bytes, y.pcm_bytes, "{tag}");
            assert_eq!(x.touch_events, y.touch_events, "{tag}");
            assert_eq!(x.elapsed_s.to_bits(), y.elapsed_s.to_bits(), "{tag}");
            assert_eq!(x.pcm_write_rate.to_bits(), y.pcm_write_rate.to_bits(), "{tag}");
            assert_eq!(x.pauses.count, y.pauses.count, "{tag}");
            assert_eq!(x.died, y.died, "{tag}");
        }
        assert_eq!(a.failed_lines, b.failed_lines);
        assert_eq!(a.retired_pages, b.retired_pages);
        assert_eq!(a.degraded_bytes, b.degraded_bytes);
        assert_eq!(
            a.years_to_first_ue.map(f64::to_bits),
            b.years_to_first_ue.map(f64::to_bits)
        );
        assert_eq!(a.touch_events, b.touch_events);
        assert_eq!(a.pcm_bytes, b.pcm_bytes);
        assert_eq!(a.modeled_s.to_bits(), b.modeled_s.to_bits());
        assert_eq!(
            a.wave_series, b.wave_series,
            "per-wave series must be jobs-invariant"
        );
        assert_eq!(
            (
                a.warm_starts,
                a.drifted_warm_starts,
                a.cold_starts,
                a.advice_deposits
            ),
            (
                b.warm_starts,
                b.drifted_warm_starts,
                b.cold_starts,
                b.advice_deposits
            )
        );
    }

    #[test]
    fn fleet_is_bit_identical_for_any_worker_count() {
        let base = small_config();
        let one = run_fleet(&base);
        let four = run_fleet(&base.clone().with_jobs(4));
        assert!(one.failures.is_empty(), "no tenant may die: {:?}", one.failures);
        assert_eq!(one.outcomes.len(), 32);
        assert_outcomes_bit_identical(&one, &four);
        // The default mix actually exercises every workload kind and
        // collector, warm starts happen after the first wave, and the fleet
        // moves real PCM traffic.
        assert!(one.warm_starts > 0, "repeat tenants must warm-start");
        assert!(one.cold_starts > 0, "first-wave tenants are cold");
        assert!(one.advice_deposits > 0, "KG-D tenants must deposit learnings");
        assert!(one.pcm_bytes > 0 && one.touch_events > 0 && one.modeled_s > 0.0);
        assert!(one.outcomes.iter().any(|o| o.benchmark == "streaming"));
        assert!(one.outcomes.iter().any(|o| o.collector == "KG-N"));
        assert!(one.outcomes.iter().any(|o| o.collector == "KG-W"));
        assert!(one.events_per_sec() > 0.0);
    }

    #[test]
    fn wave_series_tracks_arrival_rounds_and_reaches_the_report() {
        let config = small_config();
        let outcome = run_fleet(&config);
        let waves = outcome.outcomes.len().div_ceil(config.wave.max(1));
        assert_eq!(outcome.wave_series.len(), waves);
        for (index, wave) in outcome.wave_series.iter().enumerate() {
            assert_eq!(wave.wave, index);
            assert!(wave.sessions > 0);
        }
        // Per-wave loads sum to the fleet totals; cumulative damage counts
        // never decrease and end at the device's final state.
        let touch: u64 = outcome.wave_series.iter().map(|w| w.touch_events).sum();
        let bytes: u64 = outcome.wave_series.iter().map(|w| w.pcm_bytes).sum();
        assert_eq!(touch, outcome.touch_events);
        assert_eq!(bytes, outcome.pcm_bytes);
        for pair in outcome.wave_series.windows(2) {
            assert!(pair[1].failed_lines >= pair[0].failed_lines);
            assert!(pair[1].retired_pages >= pair[0].retired_pages);
        }
        assert_eq!(
            outcome.wave_series.last().unwrap().failed_lines,
            outcome.failed_lines
        );
        // The synthesized telemetry report carries one deterministic
        // `fleet.wave` event per wave.
        let report = outcome.fleet_report();
        let wave_events: Vec<_> = report.events.iter().filter(|e| e.name == "fleet.wave").collect();
        assert_eq!(wave_events.len(), waves);
        assert!(wave_events.iter().all(|e| e.deterministic));
        assert!(wave_events[0].fields.iter().any(|(key, _)| key == "touch_events"));
    }

    #[test]
    fn a_panicking_tenant_is_reported_not_fatal() {
        let config = small_config().with_jobs(2);
        let mut specs = config.tenant_specs();
        specs[3].workload = TenantWorkload::Synthetic {
            benchmark: "no-such-benchmark".to_string(),
        };
        let outcome = run_fleet_with_specs(&config, specs);
        assert_eq!(outcome.failures.len(), 1);
        assert_eq!(outcome.failures[0].index, 3);
        assert!(outcome.failures[0].message.contains("no-such-benchmark"));
        assert_eq!(
            outcome.outcomes.len(),
            32,
            "the fleet completes around the failure"
        );
        assert_eq!(outcome.completed(), 31);
        let died = &outcome.outcomes[3];
        assert!(died.died.is_some() && died.pcm_writes == 0);
    }

    #[test]
    fn warm_starts_lower_kg_d_pcm_write_rates() {
        let outcome = run_fleet(&small_config());
        let rows = outcome.warm_cold_comparison();
        assert!(
            !rows.is_empty(),
            "the default mix must produce like-for-like groups"
        );
        let ratio = outcome.warm_cold_ratio().expect("comparable groups exist");
        assert!(
            ratio < 1.0,
            "warm-started KG-D tenants must write less PCM than cold ones (ratio {ratio:.3}, rows {rows:?})"
        );
    }

    #[test]
    fn wear_levelling_retires_fewer_pages_than_round_robin() {
        let base = FleetConfig::new(64).with_scale(4096);
        let naive = run_fleet(&base.clone().with_strategy(PlacementStrategy::RoundRobin));
        let levelled = run_fleet(&base.with_strategy(PlacementStrategy::WearLevelled));
        assert!(
            naive.retired_pages > 0,
            "the naive fleet must actually damage the device (failed lines: {})",
            naive.failed_lines
        );
        assert!(
            levelled.retired_pages < naive.retired_pages,
            "wear levelling must retire fewer pages ({} vs {})",
            levelled.retired_pages,
            naive.retired_pages
        );
        // Levelling spreads the same traffic more evenly: under round-robin
        // the heavy slots pin to fixed regions, so the hottest region takes
        // strictly more cumulative writes than any region of the levelled
        // fleet.
        let hottest = |outcome: &FleetOutcome| {
            let mut per_region = vec![0u64; outcome.regions];
            for tenant in &outcome.outcomes {
                per_region[tenant.region] += tenant.pcm_writes;
            }
            per_region.into_iter().max().unwrap_or(0)
        };
        assert!(
            hottest(&levelled) < hottest(&naive),
            "levelling must cap the hottest region ({} vs {})",
            hottest(&levelled),
            hottest(&naive)
        );
    }
}
