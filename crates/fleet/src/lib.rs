//! Multi-tenant heap fleet: many Kingsguard heaps, one PCM device budget.
//!
//! The paper evaluates write-rationing GC on a single JVM, but production
//! PCM economics play out across a server running thousands of short
//! sessions for years: wear is a *fleet-management* problem, not a per-heap
//! one. This crate runs hundreds-to-thousands of tenant
//! [`kingsguard::KingsguardHeap`] + [`kingsguard::PlacementPolicy`] sessions
//! over sharded OS worker threads in one process and adds the two services
//! that only exist at fleet scope:
//!
//! * a **wear broker** ([`broker`]): the physical PCM device is divided
//!   into regions ([`device::FleetDevice`]), every recycled session's
//!   per-line write counts are absorbed into its region's cumulative wear,
//!   and new tenants are placed on the least-worn regions — with retired
//!   pages (ECC-uncorrectable, remapped away) counting as capacity loss
//!   against a region. The naive alternative (static round-robin
//!   assignment) keeps hammering whatever region a heavy workload happens
//!   to hash to, and fails measurably more pages for the same traffic.
//! * a **fleet advice store** ([`advice_store`]): what one KG-D tenant
//!   learned online ([`kingsguard::PlacementPolicy::advice_snapshot`])
//!   warm-starts later tenants of the same workload, keyed by the site-map
//!   hash so stale snapshots take the same per-site drift-fallback path as
//!   stale `.kgprof` files — applied site by site, un-learned by KG-D when
//!   wrong, never trusted blindly.
//!
//! Everything is deterministic: tenants are scheduled in fixed *waves*
//! (discretised arrival rounds), all placement and warm-start decisions for
//! a wave are taken from fleet state at wave start, the wave's sessions fan
//! over worker threads (crash-isolated — a panicking tenant becomes a
//! per-tenant failure row, not a dead fleet), and their effects are
//! absorbed back in tenant-index order. Results are therefore bit-identical
//! for a fixed fleet seed regardless of worker-thread count, and two
//! same-seed fleet runs produce `.kgmetrics` documents with zero
//! deterministic drift.

#![forbid(unsafe_code)]

pub mod advice_store;
pub mod broker;
pub mod device;
pub mod driver;

pub use advice_store::{AdviceLookup, AdviceSnapshot, AdviceStore};
pub use broker::{PlacementStrategy, WearBroker};
pub use device::{FleetDevice, RegionStats};
pub use driver::{
    run_fleet, run_fleet_with_specs, FleetConfig, FleetOutcome, TenantFailure, TenantOutcome, TenantSpec,
    TenantWorkload, WarmStart, WaveSummary,
};
