//! The fleet advice store: KG-D learnings shared across tenant sessions.
//!
//! A cold KG-D tenant starts from all-PCM placement and pays real PCM
//! writes to re-learn what the previous tenant of the same workload already
//! knew. The store closes that loop: when a KG-D session is recycled, the
//! driver harvests its learned per-site advice
//! ([`kingsguard::PlacementPolicy::advice_snapshot`]) and deposits it here,
//! keyed by workload name and stamped with the site-map hash of the program
//! version that produced it. Later tenants of the same workload warm-start
//! from the snapshot ([`kingsguard::HeapConfig::kg_d_with`]).
//!
//! Staleness follows the `.kgprof` drift protocol ([`advice::SiteMapDrift`]):
//! a snapshot whose site-map hash no longer matches the current program is
//! *drifted*, not rejected — its advice is applied per-site, the rescue
//! fallback catches mispredictions, and KG-D un-learns whatever no longer
//! holds. A drifted warm start must therefore never end worse than the
//! KG-N baseline (the warm-start correctness test pins exactly this).

use std::collections::BTreeMap;

use advice::{AdviceTable, SiteMapDrift};

/// One deposited KG-D learning: the advice table a recycled session ended
/// with, plus the provenance needed for drift detection.
#[derive(Clone, Debug)]
pub struct AdviceSnapshot {
    /// Workload (benchmark) name the advice was learned on.
    pub benchmark: String,
    /// Site-map hash of the program version that learned it.
    pub site_map_hash: u64,
    /// The learned per-site placements.
    pub table: AdviceTable,
    /// Fleet-wide index of the tenant that deposited it.
    pub source_tenant: usize,
}

/// Outcome of a warm-start lookup.
#[derive(Clone, Debug)]
pub enum AdviceLookup {
    /// No snapshot for this workload: the tenant cold-starts.
    Cold,
    /// A snapshot exists; `drift` says whether its site map still matches.
    /// Drifted advice is applied per-site (never rejected wholesale).
    Warm {
        /// The stored learning.
        snapshot: AdviceSnapshot,
        /// Hash comparison against the current program version.
        drift: SiteMapDrift,
    },
}

impl AdviceLookup {
    /// `true` when the lookup warm-starts the tenant.
    pub fn is_warm(&self) -> bool {
        matches!(self, AdviceLookup::Warm { .. })
    }
}

/// The shared store: latest snapshot per workload, plus hit accounting.
#[derive(Clone, Debug, Default)]
pub struct AdviceStore {
    snapshots: BTreeMap<String, AdviceSnapshot>,
    deposits: u64,
    warm_hits: u64,
    drifted_hits: u64,
    misses: u64,
}

impl AdviceStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Deposits a recycled session's learned advice. The latest deposit per
    /// workload wins — fleet arrival order is deterministic, so so is the
    /// store's content. Empty tables are not deposited (a session that
    /// learned nothing has nothing to warm-start a successor with).
    pub fn deposit(&mut self, benchmark: &str, site_map_hash: u64, table: AdviceTable, source_tenant: usize) {
        if table.is_empty() {
            return;
        }
        self.deposits += 1;
        self.snapshots.insert(
            benchmark.to_string(),
            AdviceSnapshot {
                benchmark: benchmark.to_string(),
                site_map_hash,
                table,
                source_tenant,
            },
        );
    }

    /// Looks up warm-start advice for a new tenant of `benchmark` on the
    /// program version identified by `current_hash`.
    pub fn lookup(&mut self, benchmark: &str, current_hash: u64) -> AdviceLookup {
        match self.snapshots.get(benchmark) {
            None => {
                self.misses += 1;
                AdviceLookup::Cold
            }
            Some(snapshot) => {
                let drift = if snapshot.site_map_hash == current_hash {
                    SiteMapDrift::Match
                } else {
                    SiteMapDrift::Drifted {
                        stored: snapshot.site_map_hash,
                        current: current_hash,
                    }
                };
                if matches!(drift, SiteMapDrift::Drifted { .. }) {
                    self.drifted_hits += 1;
                } else {
                    self.warm_hits += 1;
                }
                AdviceLookup::Warm {
                    snapshot: snapshot.clone(),
                    drift,
                }
            }
        }
    }

    /// Workloads with a stored snapshot.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// `true` when nothing has been deposited yet.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// `(deposits, warm hits, drifted hits, misses)` counters.
    pub fn counters(&self) -> (u64, u64, u64, u64) {
        (self.deposits, self.warm_hits, self.drifted_hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use advice::{Placement, SiteId};

    fn table(sites: &[u32]) -> AdviceTable {
        AdviceTable::from_entries(
            sites.iter().map(|&s| (SiteId(s), Placement::DramMature)),
            Placement::PcmMature,
        )
    }

    #[test]
    fn cold_then_warm_then_latest_deposit_wins() {
        let mut store = AdviceStore::new();
        assert!(!store.lookup("lusearch", 42).is_warm());
        store.deposit("lusearch", 42, table(&[3, 4]), 0);
        store.deposit("lusearch", 42, table(&[5]), 7);
        match store.lookup("lusearch", 42) {
            AdviceLookup::Warm { snapshot, drift } => {
                assert_eq!(drift, SiteMapDrift::Match);
                assert_eq!(snapshot.source_tenant, 7, "latest deposit wins");
                assert_eq!(snapshot.table.placement(SiteId(5)), Placement::DramMature);
                assert_eq!(snapshot.table.placement(SiteId(3)), Placement::PcmMature);
            }
            AdviceLookup::Cold => panic!("deposited advice must warm-start"),
        }
        assert_eq!(store.counters(), (2, 1, 0, 1));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn mismatched_hash_is_drifted_not_rejected() {
        let mut store = AdviceStore::new();
        store.deposit("xalan", 0xAAAA, table(&[9]), 1);
        match store.lookup("xalan", 0xBBBB) {
            AdviceLookup::Warm { drift, snapshot } => {
                assert_eq!(
                    drift,
                    SiteMapDrift::Drifted {
                        stored: 0xAAAA,
                        current: 0xBBBB
                    }
                );
                assert!(
                    !snapshot.table.is_empty(),
                    "drifted advice still applies per-site"
                );
            }
            AdviceLookup::Cold => panic!("drifted advice must not be rejected wholesale"),
        }
        assert_eq!(store.counters(), (1, 0, 1, 0));
    }

    #[test]
    fn empty_tables_are_not_deposited() {
        let mut store = AdviceStore::new();
        store.deposit("pmd", 1, AdviceTable::all_cold(), 0);
        assert!(store.is_empty());
        assert!(!store.lookup("pmd", 1).is_warm());
    }
}
