//! The shared PCM device: per-region cumulative wear and fault state.
//!
//! Every tenant heap simulates its own address space, so fleet-level wear
//! needs a device abstraction of its own: one [`FleetDevice`] models the
//! server's physical PCM as a row of equally sized *regions*, each with its
//! own deterministic [`FaultModel`] (seeded from the fleet seed and the
//! region index) over the region's *cumulative* per-line write counts.
//! When a tenant session is recycled, its
//! [`hybrid_mem::MemorySystem::pcm_line_writes`] export is folded into the
//! region the broker placed it on — the same physical lines are reused by
//! session after session, which is exactly why wear accumulates — and the
//! region's fault schedule is pumped with the new cumulative counts
//! ([`FaultModel::pump`] is order-independent and idempotent per count, so
//! cumulative pumping is exact).
//!
//! Pages that cross the ECC-correctable threshold between sessions are
//! retired at the device level: they are spare-remapped away (capacity
//! loss) before the next tenant arrives, counted per region so the wear
//! broker can route new tenants around the damage.

use std::collections::BTreeMap;

use hybrid_mem::fault::LINES_PER_PAGE;
use hybrid_mem::{
    years_to_first_uncorrectable, FaultConfig, FaultEvent, FaultModel, WearSummary, WearTracker,
};

/// Lines per device region: 2^16 × 256 B = 16 MB of PCM. Tenant line ids
/// are folded into this window, so sessions on the same region overlap —
/// deliberately: a recycled session's successor reuses its predecessor's
/// physical pages.
pub const REGION_LINES: u64 = 1 << 16;

/// One region's wear and fault state.
#[derive(Clone, Debug)]
struct Region {
    fault: FaultModel,
    /// Cumulative device writes per local line, across every session the
    /// region ever hosted.
    counts: BTreeMap<u64, u64>,
    /// Accumulated modeled session-seconds (sessions on one region are
    /// serialised on the device).
    elapsed_s: f64,
    sessions: u64,
    total_writes: u64,
}

/// Read-only wear/fault snapshot of one region, consumed by the broker.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RegionStats {
    /// Sessions absorbed so far.
    pub sessions: u64,
    /// Cumulative device line writes.
    pub total_writes: u64,
    /// Permanently failed lines.
    pub failed_lines: u64,
    /// ECC-uncorrectable pages retired (spare-remapped away).
    pub retired_pages: u64,
    /// PCM capacity lost to retired pages, in bytes.
    pub degraded_bytes: u64,
    /// Accumulated modeled session-seconds.
    pub elapsed_s: f64,
}

/// What one absorbed session did to its region.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AbsorbOutcome {
    /// Lines newly failed by this session's wear.
    pub new_failed_lines: u64,
    /// Pages newly retired by this session's wear.
    pub new_retired_pages: u64,
}

/// The fleet's shared PCM device: a row of regions with cumulative wear.
#[derive(Clone, Debug)]
pub struct FleetDevice {
    regions: Vec<Region>,
}

impl FleetDevice {
    /// A device of `regions` un-worn regions. Each region draws its own
    /// fault schedule: `base` with the seed replaced by a splitmix64 mix of
    /// the fleet seed and the region index, so regions fail independently
    /// but the whole device is a pure function of `(seed, base)`.
    pub fn new(seed: u64, regions: usize, base: FaultConfig) -> Self {
        let regions = (0..regions.max(1) as u64)
            .map(|index| Region {
                fault: FaultModel::new(FaultConfig {
                    seed: mix(seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
                    ..base
                }),
                counts: BTreeMap::new(),
                elapsed_s: 0.0,
                sessions: 0,
                total_writes: 0,
            })
            .collect();
        FleetDevice { regions }
    }

    /// Number of regions.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// Folds one recycled session into `region`: its per-line write counts
    /// accumulate onto the region's lines (tenant line ids are folded into
    /// the region window) and the region's fault schedule advances against
    /// the new cumulative counts. Newly uncorrectable pages are retired
    /// immediately — the device remaps them to spare capacity between
    /// sessions, so the *next* tenant simply has less of this region left.
    pub fn absorb(&mut self, region: usize, line_writes: &[(u64, u64)], elapsed_s: f64) -> AbsorbOutcome {
        let region = &mut self.regions[region];
        for &(line, writes) in line_writes {
            if writes == 0 {
                continue;
            }
            *region.counts.entry(line % REGION_LINES).or_insert(0) += writes;
            region.total_writes += writes;
        }
        region.elapsed_s += elapsed_s.max(0.0);
        region.sessions += 1;
        let cumulative: Vec<(u64, u64)> = region.counts.iter().map(|(&l, &w)| (l, w)).collect();
        let mut outcome = AbsorbOutcome::default();
        for event in region.fault.pump(&cumulative) {
            match event {
                FaultEvent::LineFailed { .. } => outcome.new_failed_lines += 1,
                FaultEvent::PageUncorrectable { page, .. } => {
                    region.fault.mark_page_retired(page);
                    outcome.new_retired_pages += 1;
                }
                FaultEvent::TransientFlips { .. } => {}
            }
        }
        outcome
    }

    /// Wear/fault snapshot of `region`.
    pub fn stats(&self, region: usize) -> RegionStats {
        let region = &self.regions[region];
        RegionStats {
            sessions: region.sessions,
            total_writes: region.total_writes,
            failed_lines: region.fault.failed_line_count(),
            retired_pages: region.fault.retired_page_count(),
            degraded_bytes: region.fault.degraded_bytes(),
            elapsed_s: region.elapsed_s,
        }
    }

    /// Permanently failed lines, device-wide.
    pub fn failed_line_count(&self) -> u64 {
        self.regions.iter().map(|r| r.fault.failed_line_count()).sum()
    }

    /// Retired pages, device-wide.
    pub fn retired_page_count(&self) -> u64 {
        self.regions.iter().map(|r| r.fault.retired_page_count()).sum()
    }

    /// PCM capacity lost to retired pages, in bytes, device-wide.
    pub fn degraded_bytes(&self) -> u64 {
        self.regions.iter().map(|r| r.fault.degraded_bytes()).sum()
    }

    /// Analytic real-time years until the device's first uncorrectable page
    /// — the minimum of the per-region projections at each region's own
    /// cumulative write rates ([`years_to_first_uncorrectable`]; the wear
    /// acceleration divides back out). `None` when no region would ever
    /// fail.
    pub fn years_to_first_uncorrectable(&self) -> Option<f64> {
        self.regions
            .iter()
            .filter(|region| region.elapsed_s > 0.0)
            .filter_map(|region| {
                let cumulative: Vec<(u64, u64)> = region.counts.iter().map(|(&l, &w)| (l, w)).collect();
                years_to_first_uncorrectable(region.fault.config(), &cumulative, region.elapsed_s)
            })
            .min_by(|a, b| a.partial_cmp(b).expect("finite years"))
    }

    /// Device-wide wear distribution over every written line of every
    /// region (the hybrid-mem region wear rollup).
    pub fn wear_summary(&self) -> WearSummary {
        WearTracker::from_counts(
            self.regions
                .iter()
                .flat_map(|region| region.counts.values().copied()),
        )
        .summary()
    }

    /// Pages per region that are still usable (for capacity accounting).
    pub fn usable_pages(&self, region: usize) -> u64 {
        let total = REGION_LINES / LINES_PER_PAGE;
        total.saturating_sub(self.regions[region].fault.retired_page_count())
    }
}

/// splitmix64 finalizer — the workspace's standard bit mixer.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_mem::Endurance;

    fn config() -> FaultConfig {
        // Aggressive acceleration so a handful of absorbed writes crosses
        // line budgets in-test.
        FaultConfig::accelerated(7, Endurance::Low10M).with_wear_multiplier(1 << 22)
    }

    #[test]
    fn regions_draw_independent_schedules() {
        let device = FleetDevice::new(1, 4, config());
        let seeds: Vec<u64> = (0..4).map(|r| device.regions[r].fault.config().seed).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 4, "region seeds must differ: {seeds:?}");
        let again = FleetDevice::new(1, 4, config());
        assert_eq!(
            seeds,
            (0..4)
                .map(|r| again.regions[r].fault.config().seed)
                .collect::<Vec<_>>(),
            "region seeds are a pure function of the fleet seed"
        );
    }

    #[test]
    fn cumulative_absorption_equals_one_shot_absorption() {
        // Two lines per page stay below the ECC-correctable threshold, so
        // no page retires mid-test: a retired page stops aging, which makes
        // split and one-shot schedules *legitimately* diverge. Without
        // retirement in the way, cumulative pumping must be exact.
        let writes: Vec<(u64, u64)> = (0..64u64)
            .filter(|l| l % LINES_PER_PAGE < 2)
            .map(|l| (l, 3))
            .collect();
        let mut split = FleetDevice::new(9, 2, config());
        split.absorb(0, &writes, 1.0);
        split.absorb(0, &writes, 1.0);
        let doubled: Vec<(u64, u64)> = writes.iter().map(|&(l, w)| (l, 2 * w)).collect();
        let mut oneshot = FleetDevice::new(9, 2, config());
        oneshot.absorb(0, &doubled, 2.0);
        assert!(
            oneshot.failed_line_count() > 0,
            "the test traffic must actually wear lines"
        );
        assert_eq!(split.failed_line_count(), oneshot.failed_line_count());
        assert_eq!(split.retired_page_count(), oneshot.retired_page_count());
        assert_eq!(
            split.years_to_first_uncorrectable().map(f64::to_bits),
            oneshot.years_to_first_uncorrectable().map(f64::to_bits),
            "cumulative pumping must be exact"
        );
    }

    #[test]
    fn tenant_lines_fold_into_the_region_window() {
        let mut device = FleetDevice::new(3, 1, config());
        device.absorb(0, &[(REGION_LINES + 5, 4), (5, 4)], 1.0);
        assert_eq!(device.regions[0].counts.get(&5), Some(&8));
        assert_eq!(device.stats(0).total_writes, 8);
    }

    #[test]
    fn heavy_wear_fails_lines_and_retires_pages() {
        let mut device = FleetDevice::new(11, 2, config());
        // Enough writes on a full page's worth of lines to exceed every
        // budget (budget < 15M physical; 8 writes * 2^22 = 33.5M aged).
        let writes: Vec<(u64, u64)> = (0..LINES_PER_PAGE).map(|l| (l, 8)).collect();
        let outcome = device.absorb(0, &writes, 1.0);
        assert_eq!(outcome.new_failed_lines, LINES_PER_PAGE);
        assert_eq!(outcome.new_retired_pages, 1);
        assert_eq!(device.retired_page_count(), 1);
        assert_eq!(device.degraded_bytes(), 4096);
        assert_eq!(device.usable_pages(0), REGION_LINES / LINES_PER_PAGE - 1);
        assert_eq!(device.stats(1), RegionStats::default(), "other region untouched");
        // A retired page stops aging: pumping the same lines again fails
        // nothing new.
        let outcome = device.absorb(0, &writes, 1.0);
        assert_eq!(outcome, AbsorbOutcome::default());
    }

    #[test]
    fn years_projection_shortens_with_wear_rate() {
        let light = {
            let mut device = FleetDevice::new(5, 1, FaultConfig::new(5, Endurance::Mid30M));
            let writes: Vec<(u64, u64)> = (0..256).map(|l| (l, 100)).collect();
            device.absorb(0, &writes, 10.0);
            device.years_to_first_uncorrectable().unwrap()
        };
        let heavy = {
            let mut device = FleetDevice::new(5, 1, FaultConfig::new(5, Endurance::Mid30M));
            let writes: Vec<(u64, u64)> = (0..256).map(|l| (l, 1000)).collect();
            device.absorb(0, &writes, 10.0);
            device.years_to_first_uncorrectable().unwrap()
        };
        assert!(heavy < light, "10x the write rate must shorten the projection");
        let summary = {
            let mut device = FleetDevice::new(5, 2, config());
            device.absorb(1, &[(0, 4), (1, 8)], 1.0);
            device.wear_summary()
        };
        assert_eq!(summary.lines_written, 2);
        assert_eq!(summary.total_writes, 12);
        assert_eq!(summary.max_line_writes, 8);
    }
}
