//! The wear broker: fleet-level PCM placement for new tenants.
//!
//! Capacity is discovered and brokered centrally instead of statically
//! owned per heap (the agent/controller split of device-plugin systems):
//! at the start of every scheduling wave the broker snapshots each region's
//! cumulative wear and damage from the [`crate::device::FleetDevice`] and
//! assigns the wave's tenants to regions. Two strategies exist so the
//! fleet experiment can quantify the difference:
//!
//! * [`PlacementStrategy::RoundRobin`] — the naive baseline: region =
//!   tenant index mod region count. Deterministic arrival patterns pin
//!   heavy workloads to the same regions wave after wave, concentrating
//!   wear until their lines cross endurance budgets.
//! * [`PlacementStrategy::WearLevelled`] — regions are ranked by damage
//!   and cumulative wear (retired pages first: an ECC-uncorrectable page
//!   is permanent capacity loss, so damaged regions are avoided before
//!   merely worn ones), and the wave's tenants are dealt across the
//!   least-worn *half*; the hot half rests until cumulative wear beneath
//!   it catches up. Resting is what saves damaged pages: a page carrying
//!   failed-but-still-ECC-correctable lines stops aging instead of being
//!   pounded across the uncorrectable threshold.
//!
//! Placement for a whole wave is computed from wave-start state, never
//! from mid-wave results — that is what keeps fleet runs bit-identical
//! regardless of how many worker threads execute the wave.

use crate::device::FleetDevice;

/// How the broker maps new tenants onto device regions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlacementStrategy {
    /// Naive static assignment: `tenant_index % regions`.
    RoundRobin,
    /// Rank regions by (retired pages, failed lines, cumulative writes)
    /// and deal the wave across the least-worn half; the hot half rests.
    WearLevelled,
}

impl PlacementStrategy {
    /// Stable label used in reports and `.kgmetrics` metadata.
    pub fn label(self) -> &'static str {
        match self {
            PlacementStrategy::RoundRobin => "round-robin",
            PlacementStrategy::WearLevelled => "wear-levelled",
        }
    }
}

/// The broker: a strategy plus the per-wave ranking it derives.
#[derive(Clone, Debug)]
pub struct WearBroker {
    strategy: PlacementStrategy,
}

impl WearBroker {
    /// A broker using `strategy`.
    pub fn new(strategy: PlacementStrategy) -> Self {
        WearBroker { strategy }
    }

    /// The broker's strategy.
    pub fn strategy(&self) -> PlacementStrategy {
        self.strategy
    }

    /// Assigns regions to one wave of tenants from the device state at
    /// wave start. `tenant_indices` are the global (fleet-wide) tenant
    /// indices of the wave, in arrival order; the result is the region of
    /// each, in the same order.
    pub fn place_wave(&self, tenant_indices: &[usize], device: &FleetDevice) -> Vec<usize> {
        let regions = device.region_count();
        match self.strategy {
            PlacementStrategy::RoundRobin => tenant_indices.iter().map(|&index| index % regions).collect(),
            PlacementStrategy::WearLevelled => {
                let mut ranked: Vec<usize> = (0..regions).collect();
                ranked.sort_by_key(|&region| {
                    let stats = device.stats(region);
                    // Damage before wear: a retired page is permanent
                    // capacity loss, a failed line is imminent retirement,
                    // cumulative writes are the levelling signal proper.
                    // Region index breaks ties deterministically.
                    (
                        stats.retired_pages,
                        stats.failed_lines,
                        stats.total_writes,
                        region,
                    )
                });
                // Deal the wave across the least-worn *half* only: the hot
                // half rests this wave. That is the levelling lever proper —
                // a region whose pages carry failed-but-still-correctable
                // lines stops aging the moment it ranks hot, instead of
                // being pounded across the ECC threshold; it rejoins once
                // the rested rounds equalize cumulative wear beneath it.
                let dealt = (regions / 2).max(1);
                tenant_indices
                    .iter()
                    .enumerate()
                    .map(|(offset, _)| ranked[offset % dealt])
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_mem::{Endurance, FaultConfig};

    fn device() -> FleetDevice {
        FleetDevice::new(1, 4, FaultConfig::new(1, Endurance::Mid30M))
    }

    #[test]
    fn round_robin_ignores_wear() {
        let mut device = device();
        device.absorb(0, &[(0, 1_000_000)], 1.0);
        let broker = WearBroker::new(PlacementStrategy::RoundRobin);
        assert_eq!(broker.place_wave(&[0, 1, 2, 3, 4], &device), vec![0, 1, 2, 3, 0]);
    }

    #[test]
    fn wear_levelling_deals_least_worn_first() {
        let mut device = device();
        device.absorb(0, &[(0, 300)], 1.0);
        device.absorb(1, &[(0, 100)], 1.0);
        device.absorb(2, &[(0, 200)], 1.0);
        // Ranked 3 (un-worn), 1 (100), 2 (200), 0 (300); the wave is dealt
        // across the least-worn half {3, 1} while the hot half rests.
        let broker = WearBroker::new(PlacementStrategy::WearLevelled);
        assert_eq!(
            broker.place_wave(&[10, 11, 12, 13, 14], &device),
            vec![3, 1, 3, 1, 3]
        );
    }

    #[test]
    fn damaged_regions_rank_behind_merely_worn_ones() {
        // Region 0: few writes but a retired page (heavy concentrated wear
        // under extreme acceleration).
        let mut damaged = FleetDevice::new(
            1,
            4,
            FaultConfig::accelerated(1, Endurance::Low10M).with_wear_multiplier(1 << 22),
        );
        let page: Vec<(u64, u64)> = (0..16).map(|l| (l, 8)).collect();
        damaged.absorb(0, &page, 1.0);
        assert!(damaged.retired_page_count() > 0);
        // Region 1: far more total writes but no damage.
        damaged.absorb(1, &[(0, 1_000_000)], 1.0);
        let broker = WearBroker::new(PlacementStrategy::WearLevelled);
        let placement = broker.place_wave(&[0, 1, 2, 3], &damaged);
        assert!(
            !placement.contains(&0) && !placement.contains(&1),
            "damaged and heavily worn regions must rest: {placement:?}"
        );
        assert_eq!(placement, vec![2, 3, 2, 3], "the clean half absorbs the wave");
    }
}
