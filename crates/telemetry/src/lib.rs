//! Low-overhead metrics for the write-rationing GC stack.
//!
//! This crate is the observability substrate of the reproduction: monotonic
//! counters, gauges, fixed-bucket [`Histogram`]s with p50/p95/p99, span
//! timers with nested phase attribution, and structured events — all behind
//! a [`Telemetry`] handle that is a **true no-op when disabled**. Every
//! recording method reduces to a single branch on an `Option` discriminant
//! when telemetry is off (the same idiom as the heap-event tap), so
//! untapped hot paths are unaffected and the simulation stays bit-identical
//! either way.
//!
//! The overhead story on the `touch` fast path mirrors the counter-shard
//! design of the memory system: telemetry adds **no per-access work at
//! all** — device traffic, cache hit/miss rates and touch-event throughput
//! are derived from the shard-local counters the simulator already
//! accumulates and merges at safepoints, sampled into telemetry at GC
//! boundaries and end of run. The only live instrumentation is span
//! enter/exit around GC phases (a handful per collection) and rare policy
//! adaptation events. The `telemetry` bench (`BENCH_telemetry.json`) pins
//! the enabled-vs-disabled touch-path throughput delta.
//!
//! Lifecycle: create a handle with [`Telemetry::enabled`] (or leave the
//! default [`Telemetry::disabled`]), record during the run, then snapshot
//! with [`Telemetry::report`]. A [`TelemetryReport`] serialises to the
//! versioned `.kgmetrics` JSON-lines format via [`jsonl`], which also
//! parses, renders and diffs the files for regression triage.

#![forbid(unsafe_code)]

mod hist;
pub mod json;
pub mod jsonl;
pub mod profiler;
pub mod timeline;

pub use hist::Histogram;
pub use json::Json;
pub use jsonl::{
    diff_docs, fmt_ns, render_jsonl, write_jsonl, MetricsDiff, RunMeta, TelemetryDoc, TelemetryError,
    FILE_EXTENSION, SCHEMA_MIN_VERSION, SCHEMA_NAME, SCHEMA_VERSION,
};
pub use profiler::{
    PhaseProfile, Stage, StageProfile, StageTotals, TouchMode, TouchProfile, TouchProfiler,
    DEFAULT_SAMPLE_EVERY, STAGE_COUNT,
};
pub use timeline::{chrome_trace, folded_stacks, parse_folded, validate_chrome_trace, ChromeTraceStats};

use std::collections::BTreeMap;
use std::fmt;
use std::time::Instant;

/// One structured-event field value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// An unsigned integer (deterministic simulation quantities).
    U64(u64),
    /// A float (ratios and derived statistics).
    F64(f64),
    /// A string label.
    Str(String),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::U64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v:.3}"),
            Value::Str(v) => write!(f, "{v}"),
        }
    }
}

/// One structured event: a named occurrence with a stable sequence number
/// and key/value payload (e.g. a KG-D site promotion or a wear snapshot).
#[derive(Clone, Debug, PartialEq)]
pub struct TelemetryEvent {
    /// Position in the run's event stream (0-based, all events).
    pub seq: u64,
    /// Event name, e.g. `policy.promote`.
    pub name: String,
    /// `true` if the payload is a pure function of the simulation state
    /// (compared by `repro metrics diff`); `false` for timing data.
    pub deterministic: bool,
    /// Ordered key/value payload.
    pub fields: Vec<(String, Value)>,
}

/// Aggregate of one named span across all its enter/exit pairs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpanSummary {
    /// Span name, e.g. `gc.major.sweep`.
    pub name: String,
    /// Number of completed enter/exit pairs.
    pub count: u64,
    /// Total wall-clock nanoseconds inside the span.
    pub total_ns: u64,
    /// Nanoseconds not attributed to child spans nested inside this one.
    pub self_ns: u64,
}

/// Snapshot of one histogram: moments, quantiles and the non-empty buckets
/// (which make summaries exactly mergeable).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Median (bucket upper bound, clamped to `max`).
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// `(upper_bound, count)` per non-empty bucket, in value order.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSummary {
    /// Snapshots a live histogram.
    pub fn from_histogram(hist: &Histogram) -> Self {
        HistogramSummary {
            count: hist.count(),
            sum: hist.sum(),
            min: hist.min(),
            max: hist.max(),
            p50: hist.p50(),
            p95: hist.p95(),
            p99: hist.p99(),
            buckets: hist.nonzero_buckets(),
        }
    }

    /// The value at quantile `q`, recomputed from the stored buckets.
    pub fn quantile(&self, q: f64) -> u64 {
        hist::quantile_from_buckets(self.count, self.max, self.buckets.iter().copied(), q)
    }

    /// Merges `other` into `self` (exact — buckets share boundaries) and
    /// recomputes the stored quantiles from the merged buckets.
    pub fn merge(&mut self, other: &HistogramSummary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let mut merged: BTreeMap<u64, u64> = self.buckets.iter().copied().collect();
        for &(upper, count) in &other.buckets {
            *merged.entry(upper).or_insert(0) += count;
        }
        self.buckets = merged.into_iter().collect();
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.p50 = self.quantile(0.50);
        self.p95 = self.quantile(0.95);
        self.p99 = self.quantile(0.99);
    }
}

/// End-of-run snapshot of everything a [`Telemetry`] handle recorded.
/// All collections are sorted by name (events by sequence), so two
/// deterministic runs produce structurally identical reports.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TelemetryReport {
    /// Wall-clock nanoseconds from [`Telemetry::enabled`] to the snapshot.
    pub elapsed_ns: u64,
    /// Monotonic counters, `(name, value)`.
    pub counters: Vec<(String, u64)>,
    /// Gauges, `(name, value, deterministic)`.
    pub gauges: Vec<(String, f64, bool)>,
    /// Histograms, `(name, summary)`.
    pub hists: Vec<(String, HistogramSummary)>,
    /// Span aggregates.
    pub spans: Vec<SpanSummary>,
    /// Structured events in emission order.
    pub events: Vec<TelemetryEvent>,
}

impl TelemetryReport {
    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Looks up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _, _)| n == name).map(|&(_, v, _)| v)
    }

    /// Looks up a histogram by name.
    pub fn hist(&self, name: &str) -> Option<&HistogramSummary> {
        self.hists.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// Looks up a span by name.
    pub fn span(&self, name: &str) -> Option<&SpanSummary> {
        self.spans.iter().find(|s| s.name == name)
    }
}

#[derive(Default)]
struct SpanAccum {
    count: u64,
    total_ns: u64,
    child_ns: u64,
}

struct OpenSpan {
    name: &'static str,
    start: Instant,
    child_ns: u64,
}

struct Inner {
    started: Instant,
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, (f64, bool)>,
    hists: BTreeMap<&'static str, Histogram>,
    spans: BTreeMap<&'static str, SpanAccum>,
    stack: Vec<OpenSpan>,
    events: Vec<TelemetryEvent>,
}

/// The metrics handle. Disabled by default; every recording method is a
/// single branch when disabled, and [`Telemetry::report`] returns `None` —
/// a disabled handle emits exactly nothing.
#[derive(Default)]
pub struct Telemetry {
    inner: Option<Box<Inner>>,
}

impl Telemetry {
    /// A handle that records nothing.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// A recording handle; the run clock starts now.
    pub fn enabled() -> Self {
        Telemetry {
            inner: Some(Box::new(Inner {
                started: Instant::now(),
                counters: BTreeMap::new(),
                gauges: BTreeMap::new(),
                hists: BTreeMap::new(),
                spans: BTreeMap::new(),
                stack: Vec::new(),
                events: Vec::new(),
            })),
        }
    }

    /// `true` if this handle records.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Adds `n` to the monotonic counter `name`.
    #[inline]
    pub fn counter_add(&mut self, name: &'static str, n: u64) {
        if let Some(inner) = self.inner.as_mut() {
            *inner.counters.entry(name).or_insert(0) += n;
        }
    }

    /// Raises the monotonic counter `name` to `value` (keeps the maximum, so
    /// cumulative simulator statistics can be re-sampled at every safepoint).
    #[inline]
    pub fn counter_set(&mut self, name: &'static str, value: u64) {
        if let Some(inner) = self.inner.as_mut() {
            let slot = inner.counters.entry(name).or_insert(0);
            *slot = (*slot).max(value);
        }
    }

    /// Sets the deterministic gauge `name` (a pure function of simulation
    /// state, compared exactly by `repro metrics diff`).
    #[inline]
    pub fn gauge(&mut self, name: &'static str, value: f64) {
        if let Some(inner) = self.inner.as_mut() {
            inner.gauges.insert(name, (value, true));
        }
    }

    /// Sets the timing gauge `name` (wall-clock-derived; reported but never
    /// compared for drift).
    #[inline]
    pub fn timing_gauge(&mut self, name: &'static str, value: f64) {
        if let Some(inner) = self.inner.as_mut() {
            inner.gauges.insert(name, (value, false));
        }
    }

    /// Records one sample into the histogram `name`.
    #[inline]
    pub fn record(&mut self, name: &'static str, value: u64) {
        if let Some(inner) = self.inner.as_mut() {
            inner.hists.entry(name).or_default().record(value);
        }
    }

    /// Opens a span. Spans nest: time spent in a child is attributed to the
    /// child's `total_ns` and subtracted from the parent's `self_ns`.
    #[inline]
    pub fn span_enter(&mut self, name: &'static str) {
        if let Some(inner) = self.inner.as_mut() {
            inner.stack.push(OpenSpan {
                name,
                start: Instant::now(),
                child_ns: 0,
            });
        }
    }

    /// Closes the innermost open span and returns its wall-clock
    /// nanoseconds (0 when disabled or unbalanced).
    #[inline]
    pub fn span_exit(&mut self) -> u64 {
        let Some(inner) = self.inner.as_mut() else {
            return 0;
        };
        let Some(open) = inner.stack.pop() else {
            debug_assert!(false, "span_exit without a matching span_enter");
            return 0;
        };
        let elapsed = open.start.elapsed().as_nanos() as u64;
        let accum = inner.spans.entry(open.name).or_default();
        accum.count += 1;
        accum.total_ns += elapsed;
        accum.child_ns += open.child_ns;
        if let Some(parent) = inner.stack.last_mut() {
            parent.child_ns += elapsed;
        }
        elapsed
    }

    /// Number of currently open spans (0 at every safepoint by contract).
    pub fn open_spans(&self) -> usize {
        self.inner.as_ref().map_or(0, |inner| inner.stack.len())
    }

    /// Merges a pre-aggregated span (e.g. an extrapolated hot-path profile)
    /// into the span table, as if `count` enter/exit pairs totalling
    /// `total_ns` (of which `self_ns` was self time) had been recorded.
    /// Does not touch the live span stack, so it composes with open spans.
    #[inline]
    pub fn span_record(&mut self, name: &'static str, count: u64, total_ns: u64, self_ns: u64) {
        if let Some(inner) = self.inner.as_mut() {
            let accum = inner.spans.entry(name).or_default();
            accum.count += count;
            accum.total_ns += total_ns;
            accum.child_ns += total_ns.saturating_sub(self_ns);
        }
    }

    /// Emits a structured event. `make` builds the payload and is only
    /// evaluated when enabled, so call sites pay one branch when disabled.
    #[inline]
    pub fn event(
        &mut self,
        name: &'static str,
        deterministic: bool,
        make: impl FnOnce() -> Vec<(&'static str, Value)>,
    ) {
        if let Some(inner) = self.inner.as_mut() {
            let seq = inner.events.len() as u64;
            inner.events.push(TelemetryEvent {
                seq,
                name: name.to_string(),
                deterministic,
                fields: make().into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
            });
        }
    }

    /// Nanoseconds since [`Telemetry::enabled`] (0 when disabled).
    pub fn elapsed_ns(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |inner| inner.started.elapsed().as_nanos() as u64)
    }

    /// Snapshots everything recorded so far; `None` when disabled.
    pub fn report(&self) -> Option<TelemetryReport> {
        let inner = self.inner.as_ref()?;
        Some(TelemetryReport {
            elapsed_ns: inner.started.elapsed().as_nanos() as u64,
            counters: inner
                .counters
                .iter()
                .map(|(&name, &value)| (name.to_string(), value))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(&name, &(value, det))| (name.to_string(), value, det))
                .collect(),
            hists: inner
                .hists
                .iter()
                .map(|(&name, hist)| (name.to_string(), HistogramSummary::from_histogram(hist)))
                .collect(),
            spans: inner
                .spans
                .iter()
                .map(|(&name, accum)| SpanSummary {
                    name: name.to_string(),
                    count: accum.count,
                    total_ns: accum.total_ns,
                    self_ns: accum.total_ns.saturating_sub(accum.child_ns),
                })
                .collect(),
            events: inner.events.clone(),
        })
    }
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Telemetry")
            .field(&if self.inner.is_some() {
                "enabled"
            } else {
                "disabled"
            })
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_and_reports_nothing() {
        let mut t = Telemetry::disabled();
        t.counter_add("c", 3);
        t.counter_set("c", 99);
        t.gauge("g", 1.0);
        t.timing_gauge("tg", 2.0);
        t.record("h", 5);
        t.span_enter("s");
        assert_eq!(t.open_spans(), 0);
        assert_eq!(t.span_exit(), 0);
        t.event("e", true, || panic!("payload must not be built when disabled"));
        assert_eq!(t.elapsed_ns(), 0);
        assert!(t.report().is_none());
        assert!(!t.is_enabled());
        assert_eq!(format!("{t:?}"), "Telemetry(\"disabled\")");
    }

    #[test]
    fn counters_gauges_hists_and_events_round_trip() {
        let mut t = Telemetry::enabled();
        t.counter_add("gc.count", 2);
        t.counter_add("gc.count", 1);
        t.counter_set("pcm.writes", 100);
        t.counter_set("pcm.writes", 40); // max-set keeps 100
        t.gauge("hit_rate", 0.75);
        t.timing_gauge("events_per_sec", 1e6);
        t.record("pause", 100);
        t.record("pause", 1_000);
        t.event("promote", true, || vec![("site", Value::U64(7))]);
        let report = t.report().unwrap();
        assert_eq!(report.counter("gc.count"), Some(3));
        assert_eq!(report.counter("pcm.writes"), Some(100));
        assert_eq!(report.gauge("hit_rate"), Some(0.75));
        assert_eq!(
            report
                .gauges
                .iter()
                .find(|(n, _, _)| n == "events_per_sec")
                .map(|g| g.2),
            Some(false)
        );
        let pause = report.hist("pause").unwrap();
        assert_eq!(pause.count, 2);
        assert_eq!(pause.max, 1_000);
        assert_eq!(report.events.len(), 1);
        assert_eq!(report.events[0].name, "promote");
        assert_eq!(report.events[0].fields, vec![("site".to_string(), Value::U64(7))]);
    }

    #[test]
    fn spans_balance_and_attribute_child_time_to_parents() {
        let mut t = Telemetry::enabled();
        t.span_enter("outer");
        assert_eq!(t.open_spans(), 1);
        t.span_enter("inner");
        assert_eq!(t.open_spans(), 2);
        let inner_ns = t.span_exit();
        let outer_ns = t.span_exit();
        assert_eq!(t.open_spans(), 0);
        assert!(outer_ns >= inner_ns);
        let report = t.report().unwrap();
        let outer = report.span("outer").unwrap();
        let inner = report.span("inner").unwrap();
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        assert_eq!(inner.self_ns, inner.total_ns);
        // Exact by construction: parent's self time is total minus the
        // child's measured total.
        assert_eq!(outer.self_ns, outer.total_ns - inner.total_ns);
    }

    #[test]
    fn span_nesting_balance_holds_across_many_random_shapes() {
        // Property: after any balanced sequence of enters/exits the stack is
        // empty and the per-span counts equal the number of enters.
        let mut seed = 0x9e37_79b9_7f4a_7c15u64;
        let mut rand = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        const NAMES: [&str; 4] = ["a", "b", "c", "d"];
        for _ in 0..50 {
            let mut t = Telemetry::enabled();
            let mut enters = [0u64; 4];
            let mut depth = 0usize;
            for _ in 0..200 {
                if depth == 0 || rand() % 2 == 0 {
                    let which = (rand() % 4) as usize;
                    enters[which] += 1;
                    t.span_enter(NAMES[which]);
                    depth += 1;
                } else {
                    t.span_exit();
                    depth -= 1;
                }
            }
            while depth > 0 {
                t.span_exit();
                depth -= 1;
            }
            assert_eq!(t.open_spans(), 0);
            let report = t.report().unwrap();
            for (i, name) in NAMES.iter().enumerate() {
                let count = report.span(name).map_or(0, |s| s.count);
                assert_eq!(count, enters[i], "span {name} enter/exit mismatch");
                if let Some(span) = report.span(name) {
                    assert!(span.self_ns <= span.total_ns);
                }
            }
        }
    }

    #[test]
    fn span_record_merges_pre_aggregated_spans() {
        let mut t = Telemetry::enabled();
        t.span_record("touch", 10, 1_000, 400);
        t.span_record("touch", 5, 500, 100);
        t.span_enter("touch");
        t.span_exit();
        let report = t.report().unwrap();
        let touch = report.span("touch").unwrap();
        assert_eq!(touch.count, 16);
        assert!(touch.total_ns >= 1_500);
        // child_ns accumulated 600 + 400; self = total - child.
        assert_eq!(touch.self_ns, touch.total_ns - 1_000);
        // self_ns larger than total_ns saturates instead of underflowing.
        let mut u = Telemetry::enabled();
        u.span_record("odd", 1, 100, 200);
        assert_eq!(u.report().unwrap().span("odd").unwrap().self_ns, 100);
        // Disabled: single branch, no effect.
        let mut d = Telemetry::disabled();
        d.span_record("touch", 1, 1, 1);
        assert!(d.report().is_none());
    }

    #[test]
    fn histogram_summary_merge_recomputes_quantiles() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for v in 0..1_000u64 {
            if v % 2 == 0 {
                a.record(v * 7)
            } else {
                b.record(v * 7)
            }
            both.record(v * 7);
        }
        let mut sa = HistogramSummary::from_histogram(&a);
        let sb = HistogramSummary::from_histogram(&b);
        sa.merge(&sb);
        assert_eq!(sa, HistogramSummary::from_histogram(&both));
        // Merging into an empty summary adopts the other side wholesale.
        let mut empty = HistogramSummary::default();
        empty.merge(&sb);
        assert_eq!(empty, sb);
    }
}
