//! The versioned `.kgmetrics` JSON-lines format.
//!
//! One file per run, in the same spirit as the `.kgprof`/`.kgtrace`
//! formats: a header line carrying the schema name and version plus the run
//! identity (benchmark, collector, seed, scale), followed by one JSON
//! object per metric — counters, gauges, histograms, spans and structured
//! events. Readers reject files whose version is outside the supported
//! window, exactly like the binary trace format.
//!
//! Every record is (explicitly or by kind) *deterministic* or *timing*:
//! counters, deterministic gauges, histogram/span **counts** and
//! deterministic events are pure functions of the simulation and must not
//! drift between two runs of the same seed; wall-clock durations, rates and
//! quantiles are timing data and are reported but never compared. This
//! split is what lets `repro metrics diff` gate on zero metric drift while
//! still showing timing movement for triage.

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

use crate::json::Json;
use crate::{HistogramSummary, SpanSummary, TelemetryEvent, TelemetryReport, Value};

/// Schema name stamped into the header line.
pub const SCHEMA_NAME: &str = "kingsguard-telemetry";
/// Version this build writes.
pub const SCHEMA_VERSION: u32 = 1;
/// Oldest version this build reads.
pub const SCHEMA_MIN_VERSION: u32 = 1;
/// Canonical file extension (without the dot).
pub const FILE_EXTENSION: &str = "kgmetrics";

/// Run identity stamped into the header line.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunMeta {
    /// Workload name.
    pub benchmark: String,
    /// Collector label (e.g. `KG-D`).
    pub collector: String,
    /// Workload seed.
    pub seed: u64,
    /// Workload scale factor.
    pub scale: u64,
}

/// Errors reading or parsing a `.kgmetrics` file.
#[derive(Debug)]
pub enum TelemetryError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line is not what the schema requires.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// The header declares a version outside the supported window.
    UnsupportedVersion(u32),
}

impl fmt::Display for TelemetryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TelemetryError::Io(err) => write!(f, "telemetry i/o error: {err}"),
            TelemetryError::Malformed { line, reason } => {
                write!(f, "malformed telemetry line {line}: {reason}")
            }
            TelemetryError::UnsupportedVersion(version) => write!(
                f,
                "unsupported telemetry schema version {version} (this build reads versions \
                 {SCHEMA_MIN_VERSION}..={SCHEMA_VERSION})"
            ),
        }
    }
}

impl std::error::Error for TelemetryError {}

impl From<std::io::Error> for TelemetryError {
    fn from(err: std::io::Error) -> Self {
        TelemetryError::Io(err)
    }
}

// ---------------------------------------------------------------------------
// Rendering

pub(crate) fn json_escape(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders `value` as a JSON number (`{:?}` on `f64` round-trips; the rare
/// non-finite value becomes `null` and parses back as missing).
pub(crate) fn json_f64(value: f64) -> String {
    if value.is_finite() {
        format!("{value:?}")
    } else {
        "null".to_string()
    }
}

fn json_value(value: &Value) -> String {
    match value {
        Value::U64(v) => v.to_string(),
        Value::F64(v) => json_f64(*v),
        Value::Str(v) => format!("\"{}\"", json_escape(v)),
    }
}

/// Renders a report as the versioned JSON-lines document.
pub fn render_jsonl(meta: &RunMeta, report: &TelemetryReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"schema\":\"{}\",\"version\":{},\"benchmark\":\"{}\",\"collector\":\"{}\",\
         \"seed\":{},\"scale\":{},\"elapsed_ns\":{}}}\n",
        SCHEMA_NAME,
        SCHEMA_VERSION,
        json_escape(&meta.benchmark),
        json_escape(&meta.collector),
        meta.seed,
        meta.scale,
        report.elapsed_ns,
    ));
    for (name, value) in &report.counters {
        out.push_str(&format!(
            "{{\"t\":\"counter\",\"name\":\"{}\",\"value\":{}}}\n",
            json_escape(name),
            value
        ));
    }
    for (name, value, det) in &report.gauges {
        out.push_str(&format!(
            "{{\"t\":\"gauge\",\"name\":\"{}\",\"value\":{},\"det\":{}}}\n",
            json_escape(name),
            json_f64(*value),
            det
        ));
    }
    for (name, hist) in &report.hists {
        let buckets: Vec<String> = hist
            .buckets
            .iter()
            .map(|(upper, count)| format!("[{upper},{count}]"))
            .collect();
        out.push_str(&format!(
            "{{\"t\":\"hist\",\"name\":\"{}\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\
             \"p50\":{},\"p95\":{},\"p99\":{},\"buckets\":[{}]}}\n",
            json_escape(name),
            hist.count,
            hist.sum,
            hist.min,
            hist.max,
            hist.p50,
            hist.p95,
            hist.p99,
            buckets.join(","),
        ));
    }
    for span in &report.spans {
        out.push_str(&format!(
            "{{\"t\":\"span\",\"name\":\"{}\",\"count\":{},\"total_ns\":{},\"self_ns\":{}}}\n",
            json_escape(&span.name),
            span.count,
            span.total_ns,
            span.self_ns,
        ));
    }
    for event in &report.events {
        let fields: Vec<String> = event
            .fields
            .iter()
            .map(|(key, value)| format!("\"{}\":{}", json_escape(key), json_value(value)))
            .collect();
        out.push_str(&format!(
            "{{\"t\":\"event\",\"seq\":{},\"name\":\"{}\",\"det\":{},\"fields\":{{{}}}}}\n",
            event.seq,
            json_escape(&event.name),
            event.deterministic,
            fields.join(","),
        ));
    }
    out
}

/// Writes the JSON-lines document to `path`.
pub fn write_jsonl(path: &Path, meta: &RunMeta, report: &TelemetryReport) -> Result<(), TelemetryError> {
    std::fs::write(path, render_jsonl(meta, report))?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Parsing

fn parse_json_line(line: &str, line_no: usize) -> Result<Json, TelemetryError> {
    Json::parse(line).map_err(|reason| TelemetryError::Malformed {
        line: line_no,
        reason,
    })
}

// ---------------------------------------------------------------------------
// Documents

/// A parsed `.kgmetrics` file.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TelemetryDoc {
    /// Schema version declared by the header.
    pub version: u32,
    /// Run identity from the header.
    pub meta: RunMeta,
    /// Run wall-clock from the header (timing).
    pub elapsed_ns: u64,
    /// Counters by name (deterministic).
    pub counters: BTreeMap<String, u64>,
    /// Gauges by name: `(value, deterministic)`.
    pub gauges: BTreeMap<String, (f64, bool)>,
    /// Histograms by name (counts deterministic, values timing).
    pub hists: BTreeMap<String, HistogramSummary>,
    /// Spans by name (counts deterministic, times timing).
    pub spans: BTreeMap<String, SpanSummary>,
    /// Structured events in sequence order.
    pub events: Vec<TelemetryEvent>,
}

fn require_u64(obj: &Json, key: &str, line: usize) -> Result<u64, TelemetryError> {
    obj.u64_field(key).ok_or_else(|| TelemetryError::Malformed {
        line,
        reason: format!("missing or non-integer field '{key}'"),
    })
}

fn require_str(obj: &Json, key: &str, line: usize) -> Result<String, TelemetryError> {
    obj.str_field(key)
        .map(str::to_string)
        .ok_or_else(|| TelemetryError::Malformed {
            line,
            reason: format!("missing or non-string field '{key}'"),
        })
}

impl TelemetryDoc {
    /// Parses a JSON-lines document, rejecting unsupported schema versions.
    pub fn parse(text: &str) -> Result<Self, TelemetryError> {
        let mut lines = text
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l.trim()))
            .filter(|(_, l)| !l.is_empty());
        let (header_no, header_line) = lines.next().ok_or(TelemetryError::Malformed {
            line: 1,
            reason: "empty file".to_string(),
        })?;
        let header = parse_json_line(header_line, header_no)?;
        let schema = require_str(&header, "schema", header_no)?;
        if schema != SCHEMA_NAME {
            return Err(TelemetryError::Malformed {
                line: header_no,
                reason: format!("schema is '{schema}', expected '{SCHEMA_NAME}'"),
            });
        }
        let version = require_u64(&header, "version", header_no)? as u32;
        if !(SCHEMA_MIN_VERSION..=SCHEMA_VERSION).contains(&version) {
            return Err(TelemetryError::UnsupportedVersion(version));
        }
        let mut doc = TelemetryDoc {
            version,
            meta: RunMeta {
                benchmark: require_str(&header, "benchmark", header_no)?,
                collector: require_str(&header, "collector", header_no)?,
                seed: require_u64(&header, "seed", header_no)?,
                scale: require_u64(&header, "scale", header_no)?,
            },
            elapsed_ns: require_u64(&header, "elapsed_ns", header_no)?,
            ..TelemetryDoc::default()
        };
        for (line_no, line) in lines {
            let record = parse_json_line(line, line_no)?;
            let tag = require_str(&record, "t", line_no)?;
            match tag.as_str() {
                "counter" => {
                    doc.counters.insert(
                        require_str(&record, "name", line_no)?,
                        require_u64(&record, "value", line_no)?,
                    );
                }
                "gauge" => {
                    let det = record.bool_field("det").unwrap_or(false);
                    let value = record.num_field("value").unwrap_or(f64::NAN);
                    doc.gauges
                        .insert(require_str(&record, "name", line_no)?, (value, det));
                }
                "hist" => {
                    let buckets = match record.get("buckets") {
                        Some(Json::Arr(items)) => items
                            .iter()
                            .map(|item| match item {
                                Json::Arr(pair) if pair.len() == 2 => match (&pair[0], &pair[1]) {
                                    (Json::Num(u), Json::Num(c)) => Ok((*u as u64, *c as u64)),
                                    _ => Err(()),
                                },
                                _ => Err(()),
                            })
                            .collect::<Result<Vec<_>, ()>>()
                            .map_err(|()| TelemetryError::Malformed {
                                line: line_no,
                                reason: "bad bucket entry".to_string(),
                            })?,
                        _ => {
                            return Err(TelemetryError::Malformed {
                                line: line_no,
                                reason: "missing 'buckets' array".to_string(),
                            })
                        }
                    };
                    doc.hists.insert(
                        require_str(&record, "name", line_no)?,
                        HistogramSummary {
                            count: require_u64(&record, "count", line_no)?,
                            sum: require_u64(&record, "sum", line_no)?,
                            min: require_u64(&record, "min", line_no)?,
                            max: require_u64(&record, "max", line_no)?,
                            p50: require_u64(&record, "p50", line_no)?,
                            p95: require_u64(&record, "p95", line_no)?,
                            p99: require_u64(&record, "p99", line_no)?,
                            buckets,
                        },
                    );
                }
                "span" => {
                    let name = require_str(&record, "name", line_no)?;
                    doc.spans.insert(
                        name.clone(),
                        SpanSummary {
                            name,
                            count: require_u64(&record, "count", line_no)?,
                            total_ns: require_u64(&record, "total_ns", line_no)?,
                            self_ns: require_u64(&record, "self_ns", line_no)?,
                        },
                    );
                }
                "event" => {
                    let fields = match record.get("fields") {
                        Some(Json::Obj(pairs)) => pairs
                            .iter()
                            .map(|(key, value)| {
                                let value = match value {
                                    Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 => Value::U64(*n as u64),
                                    Json::Num(n) => Value::F64(*n),
                                    Json::Str(s) => Value::Str(s.clone()),
                                    Json::Null => Value::F64(f64::NAN),
                                    other => Value::Str(format!("{other:?}")),
                                };
                                (key.clone(), value)
                            })
                            .collect(),
                        _ => Vec::new(),
                    };
                    doc.events.push(TelemetryEvent {
                        seq: require_u64(&record, "seq", line_no)?,
                        name: require_str(&record, "name", line_no)?,
                        deterministic: record.bool_field("det").unwrap_or(false),
                        fields,
                    });
                }
                other => {
                    return Err(TelemetryError::Malformed {
                        line: line_no,
                        reason: format!("unknown record type '{other}'"),
                    })
                }
            }
        }
        doc.events.sort_by_key(|e| e.seq);
        Ok(doc)
    }

    /// Loads and parses the file at `path`.
    pub fn load(path: &Path) -> Result<Self, TelemetryError> {
        let text = std::fs::read_to_string(path)?;
        Self::parse(&text)
    }

    /// Human-readable rendering for `repro metrics show`.
    pub fn summary(&self) -> String {
        self.summary_top(None)
    }

    /// Like [`Self::summary`], but `top = Some(n)` keeps the output
    /// readable on large (e.g. fleet) files: counters sort by value,
    /// spans by self time and histograms by sample count — descending,
    /// truncated to the `n` largest — instead of dumping everything in
    /// name order.
    pub fn summary_top(&self, top: Option<usize>) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "telemetry run: {} / {} (seed {}, scale {}), schema v{}, elapsed {}\n",
            self.meta.benchmark,
            self.meta.collector,
            self.meta.seed,
            self.meta.scale,
            self.version,
            fmt_ns(self.elapsed_ns),
        ));
        // Sorts descending by `key` (ties broken by name for determinism)
        // and keeps the `top` largest; `None` keeps name order, complete.
        fn ranked<T, K: Ord>(
            map: &BTreeMap<String, T>,
            top: Option<usize>,
            key: impl Fn(&T) -> K,
        ) -> (Vec<(&String, &T)>, usize) {
            let mut rows: Vec<_> = map.iter().collect();
            let Some(n) = top else {
                return (rows, 0);
            };
            rows.sort_by(|(na, va), (nb, vb)| key(vb).cmp(&key(va)).then(na.cmp(nb)));
            let omitted = rows.len().saturating_sub(n);
            rows.truncate(n);
            (rows, omitted)
        }
        let section = |out: &mut String, label: &str, omitted: usize| {
            if omitted > 0 {
                out.push_str(&format!(
                    "{label} (top {} shown, {omitted} omitted):\n",
                    top.unwrap()
                ));
            } else {
                out.push_str(&format!("{label}:\n"));
            }
        };
        if !self.counters.is_empty() {
            let (rows, omitted) = ranked(&self.counters, top, |&v| v);
            section(&mut out, "counters", omitted);
            for (name, value) in rows {
                out.push_str(&format!("  {name} = {value}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, (value, det)) in &self.gauges {
                let kind = if *det { "det" } else { "timing" };
                out.push_str(&format!("  {name} = {value:.4} ({kind})\n"));
            }
        }
        if !self.hists.is_empty() {
            let (rows, omitted) = ranked(&self.hists, top, |h| h.count);
            section(&mut out, "histograms", omitted);
            for (name, hist) in rows {
                out.push_str(&format!(
                    "  {name}: count={} p50={} p95={} p99={} max={}\n",
                    hist.count,
                    fmt_ns(hist.p50),
                    fmt_ns(hist.p95),
                    fmt_ns(hist.p99),
                    fmt_ns(hist.max),
                ));
            }
        }
        if !self.spans.is_empty() {
            let (rows, omitted) = ranked(&self.spans, top, |s| s.self_ns);
            section(&mut out, "spans", omitted);
            for (name, span) in rows {
                out.push_str(&format!(
                    "  {name}: count={} total={} self={}\n",
                    span.count,
                    fmt_ns(span.total_ns),
                    fmt_ns(span.self_ns),
                ));
            }
        }
        out.push_str(&format!("events: {}\n", self.events.len()));
        let event_cap = top.unwrap_or(20);
        for event in self.events.iter().take(event_cap) {
            let fields: Vec<String> = event.fields.iter().map(|(k, v)| format!("{k}={v}")).collect();
            out.push_str(&format!(
                "  #{} {} [{}] {}\n",
                event.seq,
                event.name,
                if event.deterministic { "det" } else { "timing" },
                fields.join(" "),
            ));
        }
        if self.events.len() > event_cap {
            out.push_str(&format!("  ... {} more\n", self.events.len() - event_cap));
        }
        out
    }
}

/// Formats nanoseconds with an adaptive unit (`ns`, `us`, `ms`, `s`).
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

// ---------------------------------------------------------------------------
// Diffing

/// Result of comparing two documents: deterministic drift (a regression
/// gate) and informational timing movement.
#[derive(Clone, Debug, Default)]
pub struct MetricsDiff {
    /// Number of deterministic quantities compared.
    pub compared: usize,
    /// One line per drifted deterministic quantity.
    pub drift: Vec<String>,
    /// One line per timing quantity that moved (informational).
    pub timing: Vec<String>,
}

impl MetricsDiff {
    /// `true` if any deterministic quantity differs.
    pub fn has_drift(&self) -> bool {
        !self.drift.is_empty()
    }

    /// Human-readable rendering for `repro metrics diff`.
    pub fn report(&self) -> String {
        let mut out = format!(
            "deterministic metrics: {} compared, {} drifted\n",
            self.compared,
            self.drift.len()
        );
        for line in &self.drift {
            out.push_str(&format!("  DRIFT {line}\n"));
        }
        if self.timing.is_empty() {
            out.push_str("timing metrics: unchanged or within noise\n");
        } else {
            out.push_str("timing metrics (informational):\n");
            for line in &self.timing {
                out.push_str(&format!("  {line}\n"));
            }
        }
        out
    }
}

fn diff_keyed<T, FD, FT>(
    diff: &mut MetricsDiff,
    kind: &str,
    a: &BTreeMap<String, T>,
    b: &BTreeMap<String, T>,
    det_value: FD,
    timing_line: FT,
) where
    FD: Fn(&T) -> String,
    FT: Fn(&str, &T, &T) -> Option<String>,
{
    let keys: std::collections::BTreeSet<&String> = a.keys().chain(b.keys()).collect();
    for key in keys {
        match (a.get(key.as_str()), b.get(key.as_str())) {
            (Some(va), Some(vb)) => {
                diff.compared += 1;
                let (da, db) = (det_value(va), det_value(vb));
                if da != db {
                    diff.drift.push(format!("{kind} {key}: {da} != {db}"));
                }
                if let Some(line) = timing_line(key, va, vb) {
                    diff.timing.push(line);
                }
            }
            (Some(_), None) => {
                diff.compared += 1;
                diff.drift.push(format!("{kind} {key}: present only in A"));
            }
            (None, Some(_)) => {
                diff.compared += 1;
                diff.drift.push(format!("{kind} {key}: present only in B"));
            }
            (None, None) => unreachable!(),
        }
    }
}

fn ratio_note(name: &str, what: &str, a: f64, b: f64) -> Option<String> {
    if a == b {
        return None;
    }
    let ratio = if a != 0.0 { b / a } else { f64::INFINITY };
    Some(format!("{name} {what}: {a:.1} -> {b:.1} ({ratio:.2}x)"))
}

/// Compares two parsed documents. Deterministic records must match exactly;
/// timing records are reported as informational movement.
pub fn diff_docs(a: &TelemetryDoc, b: &TelemetryDoc) -> MetricsDiff {
    let mut diff = MetricsDiff::default();

    // Run identity: comparing different runs is almost always a mistake —
    // surface it as drift rather than silently comparing apples to oranges.
    diff.compared += 1;
    if a.meta != b.meta {
        diff.drift.push(format!(
            "run identity: {}/{} seed {} scale {} != {}/{} seed {} scale {}",
            a.meta.benchmark,
            a.meta.collector,
            a.meta.seed,
            a.meta.scale,
            b.meta.benchmark,
            b.meta.collector,
            b.meta.seed,
            b.meta.scale,
        ));
    }
    if a.elapsed_ns != b.elapsed_ns {
        diff.timing.push(format!(
            "elapsed: {} -> {}",
            fmt_ns(a.elapsed_ns),
            fmt_ns(b.elapsed_ns)
        ));
    }

    diff_keyed(
        &mut diff,
        "counter",
        &a.counters,
        &b.counters,
        |v| v.to_string(),
        |_, _, _| None,
    );
    diff_keyed(
        &mut diff,
        "gauge",
        &a.gauges,
        &b.gauges,
        |(value, det)| {
            if *det {
                // Deterministic gauges compare exactly (bit-for-bit via the
                // round-tripping `{:?}` rendering).
                format!("{value:?}")
            } else {
                "timing".to_string()
            }
        },
        |name, (va, det), (vb, _)| {
            if *det {
                None
            } else {
                ratio_note(name, "gauge", *va, *vb)
            }
        },
    );
    diff_keyed(
        &mut diff,
        "hist",
        &a.hists,
        &b.hists,
        // Sample counts are deterministic (one sample per GC); the sampled
        // durations are wall-clock and therefore timing-only.
        |h| h.count.to_string(),
        |name, ha, hb| ratio_note(name, "p99", ha.p99 as f64, hb.p99 as f64),
    );
    diff_keyed(
        &mut diff,
        "span",
        &a.spans,
        &b.spans,
        |s| s.count.to_string(),
        |name, sa, sb| ratio_note(name, "total_ns", sa.total_ns as f64, sb.total_ns as f64),
    );

    // Deterministic events must match as an ordered sequence.
    let det_a: Vec<&TelemetryEvent> = a.events.iter().filter(|e| e.deterministic).collect();
    let det_b: Vec<&TelemetryEvent> = b.events.iter().filter(|e| e.deterministic).collect();
    diff.compared += det_a.len().max(det_b.len());
    if det_a.len() != det_b.len() {
        diff.drift.push(format!(
            "deterministic events: {} in A, {} in B",
            det_a.len(),
            det_b.len()
        ));
    } else {
        for (ea, eb) in det_a.iter().zip(det_b.iter()) {
            if ea.name != eb.name || !fields_match(&ea.fields, &eb.fields) {
                diff.drift.push(format!(
                    "event #{} {:?} != #{} {:?}",
                    ea.seq, ea.name, eb.seq, eb.name
                ));
            }
        }
    }
    diff
}

fn fields_match(a: &[(String, Value)], b: &[(String, Value)]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b.iter()).all(|((ka, va), (kb, vb))| {
            ka == kb
                && match (va, vb) {
                    (Value::F64(x), Value::F64(y)) => {
                        x.to_bits() == y.to_bits() || (x.is_nan() && y.is_nan())
                    }
                    (x, y) => x == y,
                }
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telemetry;

    fn sample_report() -> (RunMeta, TelemetryReport) {
        let mut t = Telemetry::enabled();
        t.counter_add("gc.collections.nursery", 12);
        t.counter_set("mem.writes.pcm", 4_096);
        t.gauge("cache.hit_rate", 0.9375);
        t.timing_gauge("touch.events_per_sec", 1.25e7);
        for pause in [800u64, 1_200, 9_000, 64_000] {
            t.record("gc.pause_ns", pause);
        }
        t.span_enter("gc.nursery");
        t.span_enter("gc.nursery.copy");
        t.span_exit();
        t.span_exit();
        t.event("policy.promote", true, || {
            vec![
                ("site", Value::U64(42)),
                ("trigger", Value::Str("rescue".to_string())),
            ]
        });
        let meta = RunMeta {
            benchmark: "lusearch".to_string(),
            collector: "KG-D".to_string(),
            seed: 7,
            scale: 2048,
        };
        let report = t.report().unwrap();
        (meta, report)
    }

    #[test]
    fn render_parse_round_trip() {
        let (meta, report) = sample_report();
        let text = render_jsonl(&meta, &report);
        let doc = TelemetryDoc::parse(&text).unwrap();
        assert_eq!(doc.version, SCHEMA_VERSION);
        assert_eq!(doc.meta, meta);
        assert_eq!(doc.counters["gc.collections.nursery"], 12);
        assert_eq!(doc.counters["mem.writes.pcm"], 4_096);
        assert_eq!(doc.gauges["cache.hit_rate"], (0.9375, true));
        assert!(!doc.gauges["touch.events_per_sec"].1);
        let pause = &doc.hists["gc.pause_ns"];
        assert_eq!(pause.count, 4);
        assert_eq!(pause.max, 64_000);
        assert_eq!(pause, report.hist("gc.pause_ns").unwrap());
        assert_eq!(doc.spans["gc.nursery"].count, 1);
        assert_eq!(doc.events.len(), 1);
        assert_eq!(doc.events[0].fields[0], ("site".to_string(), Value::U64(42)));
        // A second round trip is a fixed point.
        let doc2 = TelemetryDoc::parse(&text).unwrap();
        assert_eq!(doc, doc2);
        assert!(doc.summary().contains("lusearch"));
    }

    #[test]
    fn unknown_version_is_rejected() {
        let text = format!(
            "{{\"schema\":\"{SCHEMA_NAME}\",\"version\":{},\"benchmark\":\"x\",\
             \"collector\":\"y\",\"seed\":0,\"scale\":1,\"elapsed_ns\":0}}\n",
            SCHEMA_VERSION + 1
        );
        match TelemetryDoc::parse(&text) {
            Err(TelemetryError::UnsupportedVersion(v)) => {
                assert_eq!(v, SCHEMA_VERSION + 1);
                let msg = TelemetryError::UnsupportedVersion(v).to_string();
                assert!(msg.contains("unsupported telemetry schema version"));
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
        // Wrong schema name and garbage lines are malformed, not panics.
        assert!(matches!(
            TelemetryDoc::parse("{\"schema\":\"other\",\"version\":1}"),
            Err(TelemetryError::Malformed { .. })
        ));
        assert!(TelemetryDoc::parse("not json").is_err());
        assert!(TelemetryDoc::parse("").is_err());
    }

    #[test]
    fn identical_documents_diff_clean() {
        let (meta, report) = sample_report();
        let text = render_jsonl(&meta, &report);
        let a = TelemetryDoc::parse(&text).unwrap();
        let b = TelemetryDoc::parse(&text).unwrap();
        let diff = diff_docs(&a, &b);
        assert!(!diff.has_drift(), "unexpected drift: {:?}", diff.drift);
        assert!(diff.compared > 4);
        assert!(diff.report().contains("0 drifted"));
    }

    #[test]
    fn deterministic_drift_is_detected_and_timing_is_not() {
        let (meta, report) = sample_report();
        let a = TelemetryDoc::parse(&render_jsonl(&meta, &report)).unwrap();
        let mut b = a.clone();
        // Timing-only movement: elapsed and span durations may differ freely.
        b.elapsed_ns += 1_000_000;
        let span = b.spans.get_mut("gc.nursery").unwrap();
        span.total_ns *= 3;
        let diff = diff_docs(&a, &b);
        assert!(!diff.has_drift(), "timing flagged as drift: {:?}", diff.drift);
        assert!(!diff.timing.is_empty());
        // Deterministic drift: a counter change must be caught...
        let mut c = a.clone();
        *c.counters.get_mut("mem.writes.pcm").unwrap() += 1;
        assert!(diff_docs(&a, &c).has_drift());
        // ...as must a missing counter, a det-gauge change, a histogram
        // count change and a deterministic event change.
        let mut d = a.clone();
        d.counters.remove("gc.collections.nursery");
        assert!(diff_docs(&a, &d).has_drift());
        let mut e = a.clone();
        e.gauges.insert("cache.hit_rate".to_string(), (0.5, true));
        assert!(diff_docs(&a, &e).has_drift());
        let mut f = a.clone();
        f.hists.get_mut("gc.pause_ns").unwrap().count += 1;
        assert!(diff_docs(&a, &f).has_drift());
        let mut g = a.clone();
        g.events[0].fields[0].1 = Value::U64(43);
        assert!(diff_docs(&a, &g).has_drift());
    }

    #[test]
    fn escaped_strings_round_trip() {
        let mut t = Telemetry::enabled();
        t.event("weird", true, || {
            vec![("label", Value::Str("a\"b\\c\nd\te".to_string()))]
        });
        let meta = RunMeta {
            benchmark: "bench \"q\"".to_string(),
            collector: "KG\\N".to_string(),
            seed: 1,
            scale: 2,
        };
        let report = t.report().unwrap();
        let doc = TelemetryDoc::parse(&render_jsonl(&meta, &report)).unwrap();
        assert_eq!(doc.meta, meta);
        assert_eq!(doc.events[0].fields[0].1, Value::Str("a\"b\\c\nd\te".to_string()));
    }

    #[test]
    fn hostile_inputs_error_without_panicking() {
        let (meta, report) = sample_report();
        let text = render_jsonl(&meta, &report);
        let parse_survives = |input: String| {
            std::panic::catch_unwind(move || {
                let _ = TelemetryDoc::parse(&input);
            })
            .is_ok()
        };
        // Every prefix truncation parses to Ok or a descriptive Err — never
        // a panic. A truncation that cuts a line mid-record must be an Err.
        let header_len = text.lines().next().unwrap().len();
        for cut in 0..text.len() {
            let prefix = text[..cut].to_string();
            assert!(parse_survives(prefix.clone()), "panic at truncation {cut}");
            if !prefix.is_empty() && !prefix.ends_with('\n') {
                let result = TelemetryDoc::parse(&prefix);
                if let Err(err) = &result {
                    assert!(!err.to_string().is_empty(), "cut {cut}: empty error message");
                }
                if cut < header_len {
                    // A mid-header truncation can never be a valid document.
                    assert!(result.is_err(), "cut {cut}: truncated header accepted");
                }
            }
        }
        // Every single-bit flip that stays valid UTF-8 parses without
        // panicking (the outcome may legitimately be Ok when the flip lands
        // in a value).
        let bytes = text.as_bytes();
        for pos in 0..bytes.len() {
            for bit in 0..8 {
                let mut flipped = bytes.to_vec();
                flipped[pos] ^= 1 << bit;
                if let Ok(corrupt) = String::from_utf8(flipped) {
                    assert!(parse_survives(corrupt), "panic at flip {pos}/{bit}");
                }
            }
        }
        // Targeted corruption keeps its descriptive messages.
        let missing = TelemetryDoc::load(Path::new("/nonexistent/run.kgmetrics"));
        assert!(matches!(missing, Err(TelemetryError::Io(_))));
        let garbage_record = format!(
            "{}{{\"t\":\"wat\"}}\n",
            text.lines().next().unwrap().to_owned() + "\n"
        );
        match TelemetryDoc::parse(&garbage_record) {
            Err(TelemetryError::Malformed { line, reason }) => {
                assert_eq!(line, 2);
                assert!(reason.contains("wat"), "{reason}");
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn summary_top_ranks_and_truncates() {
        let mut t = Telemetry::enabled();
        t.counter_add("small", 1);
        t.counter_add("large", 1_000);
        t.counter_add("medium", 50);
        t.span_record("cheap", 1, 10, 10);
        t.span_record("hot", 1, 9_000, 9_000);
        t.span_record("warm", 1, 500, 500);
        let meta = RunMeta::default();
        let doc = TelemetryDoc::parse(&render_jsonl(&meta, &t.report().unwrap())).unwrap();
        let full = doc.summary();
        assert!(full.contains("small"));
        assert!(full.contains("cheap"));
        let top = doc.summary_top(Some(2));
        // The two largest counters survive, the smallest is dropped and
        // the truncation is labelled.
        assert!(top.contains("large"));
        assert!(top.contains("medium"));
        assert!(!top.contains("small"));
        assert!(top.contains("counters (top 2 shown, 1 omitted):"));
        // Spans rank by self time: hot and warm survive, cheap is dropped.
        assert!(top.contains("hot"));
        assert!(top.contains("warm"));
        assert!(!top.contains("cheap"));
        // Ranking is descending: large before medium, hot before warm.
        assert!(top.find("large").unwrap() < top.find("medium").unwrap());
        assert!(top.find("hot").unwrap() < top.find("warm").unwrap());
    }

    #[test]
    fn fmt_ns_is_adaptive() {
        assert_eq!(fmt_ns(850), "850ns");
        assert_eq!(fmt_ns(12_500), "12.5us");
        assert_eq!(fmt_ns(2_345_678), "2.3ms");
        assert_eq!(fmt_ns(1_500_000_000), "1.50s");
    }
}
