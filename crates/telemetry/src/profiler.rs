//! Sampled hot-path profiler for the simulated memory system.
//!
//! The ROADMAP's hot-path overhaul needs *component-level* attribution of
//! where `MemorySystem::touch` spends its time: the page-map lookup, the
//! cache model, the controller's line bookkeeping, the byte-level backing
//! store and the per-line wear tracking. Timing every touch would dwarf the
//! work being measured, so the profiler samples: every touch is **counted**
//! (cheap per-stage event tallies, batched into one call per touch), and
//! every Nth touch is **timed** stage by stage. Per-stage self time is then
//! extrapolated from the sampled population — `sampled_ns × events /
//! sampled_events` — which is exact when cost per event is uniform and
//! converges quickly in practice because touches are numerous and
//! homogeneous.
//!
//! Like [`crate::Telemetry`], a disabled profiler is one `Option`
//! discriminant branch per touch and records nothing, so the simulation is
//! bit-identical with the profiler on or off: the profiler only *observes*
//! host time, it never feeds back into simulated state.

use std::fmt;

/// Number of instrumented stages.
pub const STAGE_COUNT: usize = 5;

/// Default sampling cadence: one timed touch per 512. A simulated touch
/// costs a few tens of nanoseconds, so the `Instant::now()` brackets of a
/// sampled touch are several times the touch itself — at 1/64 they alone
/// cost ~9% of a touch-bound run. At 1/512 the timed population is still
/// statistically dense (thousands of samples on any realistic run) while
/// sampling cost drops to ~1%, keeping the whole profiler under the 10%
/// bar the `telemetry` bench pins.
pub const DEFAULT_SAMPLE_EVERY: u64 = 512;

/// One component of the memory-system hot path.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// Page-map lookups (address → placement info).
    PageMap = 0,
    /// The cache hierarchy model (hit/miss/eviction simulation).
    CacheModel = 1,
    /// Controller counter bookkeeping (per-kind/phase/page tallies).
    LineBookkeeping = 2,
    /// The byte-level backing store (actual data movement).
    BackingStore = 3,
    /// Per-cache-line wear tracking (optional; feeds the fault model).
    WearTracking = 4,
}

impl Stage {
    /// All stages in index order.
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::PageMap,
        Stage::CacheModel,
        Stage::LineBookkeeping,
        Stage::BackingStore,
        Stage::WearTracking,
    ];

    /// Human-readable label used in tables.
    pub fn label(self) -> &'static str {
        match self {
            Stage::PageMap => "page-map",
            Stage::CacheModel => "cache-model",
            Stage::LineBookkeeping => "line-bookkeeping",
            Stage::BackingStore => "backing-store",
            Stage::WearTracking => "wear-tracking",
        }
    }

    /// Dotted span name under which the stage lands in `.kgmetrics` files
    /// (children of the synthetic `touch` parent span).
    pub fn span_name(self) -> &'static str {
        match self {
            Stage::PageMap => "touch.page_map",
            Stage::CacheModel => "touch.cache",
            Stage::LineBookkeeping => "touch.bookkeeping",
            Stage::BackingStore => "touch.backing",
            Stage::WearTracking => "touch.wear",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// What the instrumented hot path should do for the touch in flight.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TouchMode {
    /// Profiler disabled: run the uninstrumented fast path.
    Off,
    /// Count per-stage events locally, no clocks.
    Counting,
    /// Count *and* time each stage with `Instant::now()` pairs.
    Sampled,
}

/// Per-stage event counts and (when sampled) nanoseconds, accumulated
/// locally by the hot path and handed to the profiler once per touch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageTotals {
    /// Events per stage, indexed by [`Stage`].
    pub events: [u64; STAGE_COUNT],
    /// Sampled nanoseconds per stage, indexed by [`Stage`].
    pub ns: [u64; STAGE_COUNT],
}

impl StageTotals {
    /// Adds `events` untimed events to `stage`.
    #[inline]
    pub fn add(&mut self, stage: Stage, events: u64) {
        self.events[stage as usize] += events;
    }

    /// Adds `events` timed events taking `ns` nanoseconds to `stage`.
    #[inline]
    pub fn add_timed(&mut self, stage: Stage, events: u64, ns: u64) {
        self.events[stage as usize] += events;
        self.ns[stage as usize] += ns;
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct StageAgg {
    events: u64,
    sampled_events: u64,
    sampled_ns: u64,
}

#[derive(Clone, Copy, Debug, Default)]
struct PhaseAgg {
    touches: u64,
    sampled_touches: u64,
    sampled_ns: u64,
}

struct ProfilerInner {
    sample_every: u64,
    /// Touches left before the next sampled one (a countdown instead of a
    /// modulo keeps the per-touch cost to a decrement and a compare).
    until_sample: u64,
    /// Phase of the most recent sampled touch; backing-store timing issued
    /// by the access wrappers right after the touch attributes here.
    current_phase: usize,
    stages: [StageAgg; STAGE_COUNT],
    phases: Vec<PhaseAgg>,
}

/// The sampling profiler handle. Disabled by default; [`begin_touch`]
/// costs one branch when disabled.
///
/// [`begin_touch`]: TouchProfiler::begin_touch
#[derive(Default)]
pub struct TouchProfiler {
    inner: Option<Box<ProfilerInner>>,
}

impl TouchProfiler {
    /// A handle that records nothing.
    pub fn disabled() -> Self {
        TouchProfiler { inner: None }
    }

    /// A recording handle timing every `sample_every`-th touch (clamped to
    /// ≥ 1) across `phase_count` execution phases.
    pub fn enabled(sample_every: u64, phase_count: usize) -> Self {
        TouchProfiler {
            inner: Some(Box::new(ProfilerInner {
                sample_every: sample_every.max(1),
                until_sample: sample_every.max(1) - 1,
                current_phase: 0,
                stages: [StageAgg::default(); STAGE_COUNT],
                phases: vec![PhaseAgg::default(); phase_count.max(1)],
            })),
        }
    }

    /// `true` if this handle records.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The sampling cadence, when enabled.
    pub fn sample_every(&self) -> Option<u64> {
        self.inner.as_ref().map(|inner| inner.sample_every)
    }

    /// Registers the start of one touch performed by `phase` (an index into
    /// the phase table) and decides how the hot path should instrument it.
    ///
    /// # Panics
    ///
    /// Panics if `phase` is outside the `phase_count` the profiler was
    /// enabled with.
    #[inline]
    pub fn begin_touch(&mut self, phase: usize) -> TouchMode {
        let Some(inner) = self.inner.as_mut() else {
            return TouchMode::Off;
        };
        let agg = &mut inner.phases[phase];
        agg.touches += 1;
        if inner.until_sample == 0 {
            inner.until_sample = inner.sample_every - 1;
            agg.sampled_touches += 1;
            inner.current_phase = phase;
            TouchMode::Sampled
        } else {
            inner.until_sample -= 1;
            TouchMode::Counting
        }
    }

    /// Absorbs the per-stage totals of one touch. `sampled` must be `true`
    /// exactly when [`Self::begin_touch`] returned [`TouchMode::Sampled`]
    /// (the `ns` fields are only meaningful then).
    #[inline]
    pub fn finish_touch(&mut self, totals: &StageTotals, sampled: bool) {
        let Some(inner) = self.inner.as_mut() else {
            return;
        };
        if sampled {
            let mut touch_ns = 0u64;
            for i in 0..STAGE_COUNT {
                let stage = &mut inner.stages[i];
                stage.events += totals.events[i];
                stage.sampled_events += totals.events[i];
                stage.sampled_ns += totals.ns[i];
                touch_ns += totals.ns[i];
            }
            inner.phases[inner.current_phase].sampled_ns += touch_ns;
        } else {
            for i in 0..STAGE_COUNT {
                inner.stages[i].events += totals.events[i];
            }
        }
    }

    /// Records a backing-store operation issued outside the touch loop (the
    /// access wrappers hit the backing store after accounting the touch).
    /// `ns` is `Some` when the preceding touch was sampled and the wrapper
    /// timed the operation; the time attributes to the sampled touch's
    /// phase.
    #[inline]
    pub fn backing_op(&mut self, events: u64, ns: Option<u64>) {
        let Some(inner) = self.inner.as_mut() else {
            return;
        };
        let stage = &mut inner.stages[Stage::BackingStore as usize];
        stage.events += events;
        if let Some(ns) = ns {
            stage.sampled_events += events;
            stage.sampled_ns += ns;
            inner.phases[inner.current_phase].sampled_ns += ns;
        }
    }

    /// Snapshots the profile so far; `None` when disabled.
    pub fn profile(&self) -> Option<TouchProfile> {
        let inner = self.inner.as_ref()?;
        Some(TouchProfile {
            sample_every: inner.sample_every,
            touches: inner.phases.iter().map(|p| p.touches).sum(),
            sampled_touches: inner.phases.iter().map(|p| p.sampled_touches).sum(),
            stages: Stage::ALL
                .iter()
                .map(|&stage| {
                    let agg = &inner.stages[stage as usize];
                    StageProfile {
                        stage,
                        events: agg.events,
                        sampled_events: agg.sampled_events,
                        sampled_ns: agg.sampled_ns,
                    }
                })
                .collect(),
            phases: inner
                .phases
                .iter()
                .enumerate()
                .map(|(phase, agg)| PhaseProfile {
                    phase,
                    touches: agg.touches,
                    sampled_touches: agg.sampled_touches,
                    sampled_ns: agg.sampled_ns,
                })
                .collect(),
        })
    }
}

impl fmt::Debug for TouchProfiler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("TouchProfiler")
            .field(&if self.inner.is_some() {
                "enabled"
            } else {
                "disabled"
            })
            .finish()
    }
}

/// Linear extrapolation from the sampled population to the full one.
fn extrapolate(sampled_ns: u64, total: u64, sampled: u64) -> u64 {
    if sampled == 0 || total == 0 {
        return 0;
    }
    (sampled_ns as f64 * total as f64 / sampled as f64) as u64
}

/// One stage's aggregate: exact event counts plus sampled timing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageProfile {
    /// Which stage.
    pub stage: Stage,
    /// Exact event count (every touch counts, sampled or not).
    pub events: u64,
    /// Events belonging to sampled (timed) touches.
    pub sampled_events: u64,
    /// Measured nanoseconds across the sampled events.
    pub sampled_ns: u64,
}

impl StageProfile {
    /// Estimated self time across *all* events, extrapolated from the
    /// sampled population.
    pub fn estimated_self_ns(&self) -> u64 {
        extrapolate(self.sampled_ns, self.events, self.sampled_events)
    }
}

/// One phase's aggregate: how many touches it issued and the sampled time
/// they spent in the memory system.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseProfile {
    /// Phase index (the caller's phase table; the heap maps these to
    /// labels).
    pub phase: usize,
    /// Exact touch count.
    pub touches: u64,
    /// Touches that were timed.
    pub sampled_touches: u64,
    /// Measured nanoseconds across the sampled touches.
    pub sampled_ns: u64,
}

impl PhaseProfile {
    /// Estimated memory-system time spent on behalf of this phase.
    pub fn estimated_ns(&self) -> u64 {
        extrapolate(self.sampled_ns, self.touches, self.sampled_touches)
    }
}

/// End-of-run snapshot of the profiler.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TouchProfile {
    /// Sampling cadence the profile was taken at.
    pub sample_every: u64,
    /// Total touches observed.
    pub touches: u64,
    /// Touches that were timed.
    pub sampled_touches: u64,
    /// Per-stage aggregates, in [`Stage::ALL`] order.
    pub stages: Vec<StageProfile>,
    /// Per-phase aggregates, in phase-index order.
    pub phases: Vec<PhaseProfile>,
}

impl TouchProfile {
    /// Sum of the per-stage extrapolated self times.
    pub fn estimated_total_ns(&self) -> u64 {
        self.stages.iter().map(StageProfile::estimated_self_ns).sum()
    }

    /// Total events across all stages (exact).
    pub fn total_events(&self) -> u64 {
        self.stages.iter().map(|s| s.events).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_records_nothing() {
        let mut p = TouchProfiler::disabled();
        assert_eq!(p.begin_touch(0), TouchMode::Off);
        let mut totals = StageTotals::default();
        totals.add(Stage::CacheModel, 5);
        p.finish_touch(&totals, false);
        p.backing_op(1, Some(10));
        assert!(!p.is_enabled());
        assert_eq!(p.sample_every(), None);
        assert!(p.profile().is_none());
        assert_eq!(format!("{p:?}"), "TouchProfiler(\"disabled\")");
    }

    #[test]
    fn sampling_cadence_times_every_nth_touch() {
        let mut p = TouchProfiler::enabled(4, 2);
        let mut sampled = 0;
        for i in 1..=16 {
            let mode = p.begin_touch(i % 2);
            if mode == TouchMode::Sampled {
                sampled += 1;
                assert_eq!(i % 4, 0, "touch {i} sampled off-cadence");
            }
            let mut totals = StageTotals::default();
            totals.add_timed(
                Stage::CacheModel,
                1,
                if mode == TouchMode::Sampled { 100 } else { 0 },
            );
            p.finish_touch(&totals, mode == TouchMode::Sampled);
        }
        assert_eq!(sampled, 4);
        let profile = p.profile().unwrap();
        assert_eq!(profile.sample_every, 4);
        assert_eq!(profile.touches, 16);
        assert_eq!(profile.sampled_touches, 4);
        let cache = &profile.stages[Stage::CacheModel as usize];
        assert_eq!(cache.events, 16);
        assert_eq!(cache.sampled_events, 4);
        assert_eq!(cache.sampled_ns, 400);
        // 400 ns over 4 sampled events, extrapolated to 16 events.
        assert_eq!(cache.estimated_self_ns(), 1_600);
        assert_eq!(profile.estimated_total_ns(), 1_600);
        assert_eq!(profile.total_events(), 16);
        // Touches alternated between the two phases.
        assert_eq!(profile.phases.len(), 2);
        assert_eq!(profile.phases[0].touches, 8);
        assert_eq!(profile.phases[1].touches, 8);
        // Every 4th touch had phase index (i % 2) == 0.
        assert_eq!(profile.phases[0].sampled_touches, 4);
        assert_eq!(profile.phases[0].sampled_ns, 400);
        assert_eq!(profile.phases[0].estimated_ns(), 800);
        assert_eq!(profile.phases[1].sampled_touches, 0);
        assert_eq!(profile.phases[1].estimated_ns(), 0);
    }

    #[test]
    fn backing_ops_attribute_to_the_sampled_phase() {
        let mut p = TouchProfiler::enabled(1, 3);
        assert_eq!(p.begin_touch(2), TouchMode::Sampled);
        let mut totals = StageTotals::default();
        totals.add_timed(Stage::PageMap, 2, 50);
        p.finish_touch(&totals, true);
        p.backing_op(1, Some(30));
        // An untimed backing op (counting-mode touch) still counts events.
        p.backing_op(1, None);
        let profile = p.profile().unwrap();
        let backing = &profile.stages[Stage::BackingStore as usize];
        assert_eq!(backing.events, 2);
        assert_eq!(backing.sampled_events, 1);
        assert_eq!(backing.sampled_ns, 30);
        assert_eq!(backing.estimated_self_ns(), 60);
        assert_eq!(profile.phases[2].sampled_ns, 80, "touch + backing ns");
    }

    #[test]
    fn zero_sample_every_is_clamped_and_zero_samples_extrapolate_to_zero() {
        let mut p = TouchProfiler::enabled(0, 1);
        assert_eq!(p.sample_every(), Some(1));
        assert_eq!(p.begin_touch(0), TouchMode::Sampled);
        let empty = StageProfile {
            stage: Stage::WearTracking,
            events: 100,
            sampled_events: 0,
            sampled_ns: 0,
        };
        assert_eq!(empty.estimated_self_ns(), 0);
    }

    #[test]
    fn stage_labels_and_span_names_are_distinct() {
        let labels: std::collections::BTreeSet<_> = Stage::ALL.iter().map(|s| s.label()).collect();
        let spans: std::collections::BTreeSet<_> = Stage::ALL.iter().map(|s| s.span_name()).collect();
        assert_eq!(labels.len(), STAGE_COUNT);
        assert_eq!(spans.len(), STAGE_COUNT);
        assert!(spans.iter().all(|name| name.starts_with("touch.")));
        assert_eq!(format!("{}", Stage::PageMap), "page-map");
    }
}
