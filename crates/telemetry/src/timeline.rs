//! Timeline export: `.kgmetrics` → Chrome `trace_event` JSON and
//! collapsed-stack ("folded") flamegraph input.
//!
//! A `.kgmetrics` file stores span *aggregates* (count/total/self per
//! dotted name), not individual span instances, so the exporters synthesize
//! an aggregate flame chart: each span becomes one `B`/`E` pair whose
//! window is its total time, nested under its dotted-name parent (the
//! longest proper dotted prefix that is itself a span), with siblings laid
//! out sequentially and structured events rendered as instants after the
//! span area. Timestamps are synthetic but monotonic — the layout shows
//! *where time went*, not *when*, which is exactly what aggregate data can
//! support honestly.
//!
//! The Chrome output loads in `chrome://tracing`, Perfetto and speedscope;
//! the folded output feeds `flamegraph.pl` or speedscope's "folded" import.
//! [`validate_chrome_trace`] re-parses an export and checks the properties
//! the viewers rely on (well-formed JSON, monotonic timestamps, matched
//! `B`/`E` pairs); it backs both the exporter tests and the CI smoke.

use std::collections::BTreeMap;

use crate::json::Json;
use crate::jsonl::{json_escape, json_f64, TelemetryDoc};
use crate::Value;

// ---------------------------------------------------------------------------
// Span tree

struct Node {
    name: String,
    count: u64,
    total_ns: u64,
    self_ns: u64,
    children: Vec<usize>,
}

/// Builds the dotted-name span forest: `a.b.c` nests under the longest
/// proper dotted prefix (`a.b`, else `a`) that is itself a span. Returns
/// `(nodes, roots)`, children and roots in name order.
fn span_forest(doc: &TelemetryDoc) -> (Vec<Node>, Vec<usize>) {
    let mut nodes = Vec::with_capacity(doc.spans.len());
    let mut index: BTreeMap<&str, usize> = BTreeMap::new();
    let mut roots = Vec::new();
    // BTreeMap iteration is sorted, so every parent precedes its children.
    for (name, span) in &doc.spans {
        let id = nodes.len();
        nodes.push(Node {
            name: name.clone(),
            count: span.count,
            total_ns: span.total_ns,
            self_ns: span.self_ns,
            children: Vec::new(),
        });
        let mut parent = None;
        let mut prefix = name.as_str();
        while let Some(dot) = prefix.rfind('.') {
            prefix = &prefix[..dot];
            if let Some(&pid) = index.get(prefix) {
                parent = Some(pid);
                break;
            }
        }
        match parent {
            Some(pid) => nodes[pid].children.push(id),
            None => roots.push(id),
        }
        index.insert(name.as_str(), id);
    }
    (nodes, roots)
}

// ---------------------------------------------------------------------------
// Chrome trace_event export

/// Microsecond timestamp with nanosecond resolution (Chrome's `ts` unit).
fn ts_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn chrome_span(out: &mut Vec<String>, nodes: &[Node], id: usize, start_ns: u64) -> u64 {
    let node = &nodes[id];
    out.push(format!(
        "{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"B\",\"ts\":{},\"pid\":1,\"tid\":1,\
         \"args\":{{\"count\":{},\"total_ns\":{},\"self_ns\":{}}}}}",
        json_escape(&node.name),
        ts_us(start_ns),
        node.count,
        node.total_ns,
        node.self_ns,
    ));
    let mut cursor = start_ns;
    for &child in &node.children {
        cursor = chrome_span(out, nodes, child, cursor);
    }
    // The window covers the span's own total and, defensively, any child
    // overflow (merged aggregates can report children exceeding the
    // parent), keeping `E` timestamps monotonic by construction.
    let end_ns = start_ns + node.total_ns.max(cursor - start_ns);
    out.push(format!(
        "{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"E\",\"ts\":{},\"pid\":1,\"tid\":1}}",
        json_escape(&node.name),
        ts_us(end_ns),
    ));
    end_ns
}

fn chrome_arg(value: &Value) -> String {
    match value {
        Value::U64(v) => v.to_string(),
        Value::F64(v) => json_f64(*v),
        Value::Str(v) => format!("\"{}\"", json_escape(v)),
    }
}

/// Renders `doc` as a Chrome `trace_event` JSON document (object form,
/// with run identity in `otherData`).
pub fn chrome_trace(doc: &TelemetryDoc) -> String {
    let mut events = Vec::new();
    events.push(format!(
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0.000,\"pid\":1,\"tid\":1,\
         \"args\":{{\"name\":\"{} / {}\"}}}}",
        json_escape(&doc.meta.benchmark),
        json_escape(&doc.meta.collector),
    ));
    let (nodes, roots) = span_forest(doc);
    let mut cursor = 0u64;
    for root in roots {
        cursor = chrome_span(&mut events, &nodes, root, cursor);
    }
    // Structured events become instants laid out after the span area, in
    // sequence order, 1 µs apart — a deterministic strip viewers show as
    // the run's event timeline.
    for event in &doc.events {
        cursor += 1_000;
        let args: Vec<String> = event
            .fields
            .iter()
            .map(|(key, value)| format!("\"{}\":{}", json_escape(key), chrome_arg(value)))
            .collect();
        events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"event\",\"ph\":\"i\",\"ts\":{},\"pid\":1,\"tid\":1,\
             \"s\":\"t\",\"args\":{{{}}}}}",
            json_escape(&event.name),
            ts_us(cursor),
            args.join(","),
        ));
    }
    format!(
        "{{\"traceEvents\":[\n{}\n],\"displayTimeUnit\":\"ms\",\"otherData\":{{\
         \"schema\":\"kingsguard-telemetry\",\"benchmark\":\"{}\",\"collector\":\"{}\",\
         \"seed\":{},\"scale\":{},\"elapsed_ns\":{}}}}}\n",
        events.join(",\n"),
        json_escape(&doc.meta.benchmark),
        json_escape(&doc.meta.collector),
        doc.meta.seed,
        doc.meta.scale,
        doc.elapsed_ns,
    )
}

/// Statistics returned by [`validate_chrome_trace`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChromeTraceStats {
    /// Total events in `traceEvents`.
    pub events: usize,
    /// `ph:"B"` events.
    pub begins: usize,
    /// `ph:"E"` events.
    pub ends: usize,
    /// `ph:"i"` instant events.
    pub instants: usize,
}

/// Checks that `text` is a well-formed Chrome trace: parseable JSON with a
/// `traceEvents` array, timestamps monotonic (non-decreasing) in array
/// order, and every `B` matched by an `E` of the same name in stack order.
pub fn validate_chrome_trace(text: &str) -> Result<ChromeTraceStats, String> {
    let doc = Json::parse(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing 'traceEvents' array")?;
    let mut stats = ChromeTraceStats {
        events: events.len(),
        ..ChromeTraceStats::default()
    };
    let mut last_ts = f64::NEG_INFINITY;
    let mut stack: Vec<String> = Vec::new();
    for (i, event) in events.iter().enumerate() {
        let ph = event
            .str_field("ph")
            .ok_or_else(|| format!("event {i}: missing 'ph'"))?;
        let ts = event
            .num_field("ts")
            .ok_or_else(|| format!("event {i}: missing 'ts'"))?;
        if ph != "M" {
            if ts < last_ts {
                return Err(format!("event {i}: ts {ts} < previous {last_ts}"));
            }
            last_ts = ts;
        }
        let name = event
            .str_field("name")
            .ok_or_else(|| format!("event {i}: missing 'name'"))?;
        match ph {
            "B" => {
                stats.begins += 1;
                stack.push(name.to_string());
            }
            "E" => {
                stats.ends += 1;
                match stack.pop() {
                    Some(open) if open == name => {}
                    Some(open) => return Err(format!("event {i}: E '{name}' closes B '{open}'")),
                    None => return Err(format!("event {i}: E '{name}' without open B")),
                }
            }
            "i" => stats.instants += 1,
            "M" => {}
            other => return Err(format!("event {i}: unexpected phase '{other}'")),
        }
    }
    if let Some(open) = stack.pop() {
        return Err(format!("unclosed B event '{open}'"));
    }
    Ok(stats)
}

// ---------------------------------------------------------------------------
// Collapsed-stack (folded) export

/// Frame names must not contain the folded format's separators.
fn fold_frame(name: &str) -> String {
    name.replace([';', ' '], "_")
}

fn folded_span(out: &mut String, nodes: &[Node], id: usize, prefix: &str) {
    let node = &nodes[id];
    let path = if prefix.is_empty() {
        fold_frame(&node.name)
    } else {
        format!("{prefix};{}", fold_frame(&node.name))
    };
    out.push_str(&format!("{path} {}\n", node.self_ns));
    for &child in &node.children {
        folded_span(out, nodes, child, &path);
    }
}

/// Renders `doc`'s span aggregates in collapsed-stack format: one line per
/// span, `frame;frame;... self_ns`, suitable for `flamegraph.pl` and
/// speedscope. Every span is emitted (including zero-weight ones), so the
/// output round-trips exactly through [`parse_folded`].
pub fn folded_stacks(doc: &TelemetryDoc) -> String {
    let (nodes, roots) = span_forest(doc);
    let mut out = String::new();
    for root in roots {
        folded_span(&mut out, &nodes, root, "");
    }
    out
}

/// Parses collapsed-stack text back into `(frames, weight)` rows.
pub fn parse_folded(text: &str) -> Result<Vec<(Vec<String>, u64)>, String> {
    let mut rows = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (stack, weight) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no weight column", i + 1))?;
        let weight: u64 = weight
            .parse()
            .map_err(|_| format!("line {}: bad weight '{weight}'", i + 1))?;
        let frames: Vec<String> = stack.split(';').map(str::to_string).collect();
        if frames.iter().any(String::is_empty) {
            return Err(format!("line {}: empty frame", i + 1));
        }
        rows.push((frames, weight));
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RunMeta, Telemetry, TelemetryDoc, Value};

    fn golden_doc() -> TelemetryDoc {
        let mut t = Telemetry::enabled();
        t.span_enter("gc.nursery");
        t.span_enter("gc.nursery.copy");
        t.span_exit();
        t.span_exit();
        t.span_enter("gc.major");
        t.span_exit();
        t.span_record("touch", 10, 5_000, 0);
        t.span_record("touch.cache", 10, 3_000, 3_000);
        t.span_record("touch.page_map", 10, 1_500, 1_500);
        t.event("policy.promote", true, || vec![("site", Value::U64(7))]);
        t.event("wear.snapshot", false, || {
            vec![("cov", Value::F64(0.5)), ("kind", Value::Str("PCM".into()))]
        });
        let meta = RunMeta {
            benchmark: "lusearch".to_string(),
            collector: "KG-D".to_string(),
            seed: 7,
            scale: 2048,
        };
        let text = crate::render_jsonl(&meta, &t.report().unwrap());
        TelemetryDoc::parse(&text).unwrap()
    }

    #[test]
    fn chrome_trace_is_well_formed() {
        let doc = golden_doc();
        let trace = chrome_trace(&doc);
        let stats = validate_chrome_trace(&trace).unwrap();
        // 6 spans (gc.nursery, gc.nursery.copy, gc.major, touch,
        // touch.cache, touch.page_map) → 6 B + 6 E, plus 2 instants.
        assert_eq!(stats.begins, 6);
        assert_eq!(stats.ends, 6);
        assert_eq!(stats.instants, 2);
        assert_eq!(stats.events, 6 + 6 + 2 + 1); // + metadata event
                                                 // Run identity is embedded.
        assert!(trace.contains("\"benchmark\":\"lusearch\""));
        assert!(trace.contains("\"collector\":\"KG-D\""));
    }

    #[test]
    fn chrome_trace_nests_dotted_children_inside_parents() {
        let doc = golden_doc();
        let trace = chrome_trace(&doc);
        let json = Json::parse(&trace).unwrap();
        let events = json.get("traceEvents").unwrap().as_arr().unwrap();
        let pos = |ph: &str, name: &str| {
            events
                .iter()
                .position(|e| e.str_field("ph") == Some(ph) && e.str_field("name") == Some(name))
                .unwrap_or_else(|| panic!("no {ph} event for {name}"))
        };
        // The child opens after its parent opens and closes before it.
        assert!(pos("B", "gc.nursery") < pos("B", "gc.nursery.copy"));
        assert!(pos("E", "gc.nursery.copy") < pos("E", "gc.nursery"));
        assert!(pos("B", "touch") < pos("B", "touch.cache"));
        let ts = |i: usize| events[i].num_field("ts").unwrap();
        assert!(ts(pos("E", "touch.cache")) <= ts(pos("E", "touch")));
    }

    #[test]
    fn chrome_trace_is_deterministic() {
        let doc = golden_doc();
        assert_eq!(chrome_trace(&doc), chrome_trace(&doc));
    }

    #[test]
    fn folded_round_trips_and_weights_are_self_ns() {
        let doc = golden_doc();
        let folded = folded_stacks(&doc);
        let rows = parse_folded(&folded).unwrap();
        assert_eq!(rows.len(), doc.spans.len(), "one row per span");
        let find = |frames: &[&str]| {
            let want: Vec<String> = frames.iter().map(|s| s.to_string()).collect();
            rows.iter()
                .find(|(f, _)| *f == want)
                .map(|&(_, w)| w)
                .unwrap_or_else(|| panic!("missing stack {frames:?}"))
        };
        assert_eq!(find(&["touch"]), 0);
        assert_eq!(find(&["touch", "touch.cache"]), 3_000);
        assert_eq!(find(&["touch", "touch.page_map"]), 1_500);
        assert_eq!(
            find(&["gc.nursery", "gc.nursery.copy"]),
            doc.spans["gc.nursery.copy"].self_ns
        );
        // Total weight equals the sum of span self times.
        let total: u64 = rows.iter().map(|&(_, w)| w).sum();
        let expect: u64 = doc.spans.values().map(|s| s.self_ns).sum();
        assert_eq!(total, expect);
    }

    #[test]
    fn folded_parser_rejects_malformed_lines() {
        assert!(parse_folded("no_weight_column\n").is_err());
        assert!(parse_folded("frame notanumber\n").is_err());
        assert!(parse_folded("a;;b 10\n").is_err());
        assert_eq!(parse_folded("\n  \n").unwrap(), Vec::new());
        let ok = parse_folded("a;b 10\nc 2\n").unwrap();
        assert_eq!(ok.len(), 2);
        assert_eq!(ok[0], (vec!["a".to_string(), "b".to_string()], 10));
    }

    #[test]
    fn validator_rejects_broken_traces() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        // Unmatched B.
        let unmatched = r#"{"traceEvents":[{"name":"a","ph":"B","ts":0,"pid":1,"tid":1}]}"#;
        assert!(validate_chrome_trace(unmatched).unwrap_err().contains("unclosed"));
        // E closing the wrong span.
        let crossed = r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":0,"pid":1,"tid":1},
            {"name":"b","ph":"E","ts":1,"pid":1,"tid":1}]}"#;
        assert!(validate_chrome_trace(crossed).is_err());
        // Non-monotonic ts.
        let backwards = r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":5,"pid":1,"tid":1},
            {"name":"a","ph":"E","ts":1,"pid":1,"tid":1}]}"#;
        assert!(validate_chrome_trace(backwards).unwrap_err().contains("ts"));
    }
}
