//! Fixed-bucket power-of-two histograms.

/// A fixed 64-bucket power-of-two histogram over `u64` samples.
///
/// Bucket `i` covers the values `v` with `2^(i-1) < v <= 2^i` (bucket 0
/// covers `0` and `1`), so recording is a `leading_zeros` plus two adds and
/// merging two histograms is exact. Quantiles are read as the inclusive
/// upper bound of the bucket holding the requested rank, clamped to the
/// observed maximum — a relative error of at most 2x, which is plenty for
/// pause-time triage while keeping the memory footprint constant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; Histogram::BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Number of buckets; bucket `i` has inclusive upper bound `2^i`.
    pub const BUCKETS: usize = 64;

    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: [0; Self::BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket `value` lands in: the smallest `i` with `value <= 2^i`.
    pub fn bucket_index(value: u64) -> usize {
        if value <= 1 {
            0
        } else {
            (64 - (value - 1).leading_zeros() as usize).min(Self::BUCKETS - 1)
        }
    }

    /// Inclusive upper bound of bucket `index` (saturating for the last
    /// bucket, which also absorbs values above `2^63`).
    pub fn bucket_upper_bound(index: usize) -> u64 {
        if index >= Self::BUCKETS - 1 {
            u64::MAX
        } else {
            1u64 << index
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of the samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`: the upper bound of the bucket
    /// containing rank `ceil(q * count)`, clamped to the observed maximum.
    pub fn quantile(&self, q: f64) -> u64 {
        quantile_from_buckets(
            self.count,
            self.max,
            self.counts
                .iter()
                .enumerate()
                .map(|(i, &c)| (Self::bucket_upper_bound(i), c)),
            q,
        )
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// `(upper_bound, count)` for every non-empty bucket, in value order.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_upper_bound(i), c))
            .collect()
    }

    /// Adds every sample of `other` into `self` (exact: buckets align).
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Quantile walk over `(upper_bound, count)` pairs in value order. Shared by
/// the live [`Histogram`] and by parsed bucket summaries so merged summaries
/// report the same quantiles a merged live histogram would.
pub(crate) fn quantile_from_buckets(
    count: u64,
    max: u64,
    buckets: impl IntoIterator<Item = (u64, u64)>,
    q: f64,
) -> u64 {
    if count == 0 {
        return 0;
    }
    let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
    let mut seen = 0u64;
    for (upper, c) in buckets {
        seen += c;
        if seen >= rank {
            return upper.min(max);
        }
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift so the property tests stay zero-dependency.
    struct XorShift(u64);

    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 0);
        assert_eq!(Histogram::bucket_index(2), 1);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 2);
        assert_eq!(Histogram::bucket_index(5), 3);
        assert_eq!(Histogram::bucket_index(1 << 20), 20);
        assert_eq!(Histogram::bucket_index((1 << 20) + 1), 21);
        assert_eq!(Histogram::bucket_index(u64::MAX), Histogram::BUCKETS - 1);
        assert_eq!(Histogram::bucket_upper_bound(0), 1);
        assert_eq!(Histogram::bucket_upper_bound(10), 1024);
        assert_eq!(Histogram::bucket_upper_bound(63), u64::MAX);
    }

    #[test]
    fn every_value_lands_between_its_bucket_bounds() {
        let mut rng = XorShift(0x1234_5678_9abc_def0);
        for _ in 0..10_000 {
            let shift = rng.next() % 64;
            let value = rng.next() >> shift;
            let index = Histogram::bucket_index(value);
            assert!(value <= Histogram::bucket_upper_bound(index));
            if index > 0 {
                let lower = Histogram::bucket_upper_bound(index - 1);
                assert!(value > lower, "{value} not above lower bound {lower}");
            }
        }
    }

    #[test]
    fn quantiles_bracket_the_sample_set() {
        let mut rng = XorShift(42);
        let mut hist = Histogram::new();
        let mut values = Vec::new();
        for _ in 0..5_000 {
            let v = rng.next() % 1_000_000;
            values.push(v);
            hist.record(v);
        }
        values.sort_unstable();
        assert_eq!(hist.count(), 5_000);
        assert_eq!(hist.max(), *values.last().unwrap());
        assert_eq!(hist.min(), values[0]);
        assert_eq!(hist.quantile(1.0), hist.max());
        // Quantiles are monotone and each one upper-bounds the exact rank
        // value while staying within one power of two of it.
        let mut last = 0;
        for q in [0.1, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let approx = hist.quantile(q);
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let exact = values[rank - 1];
            assert!(approx >= exact, "q{q}: {approx} < exact {exact}");
            assert!(approx <= exact.max(1) * 2, "q{q}: {approx} > 2x exact {exact}");
            assert!(approx >= last);
            last = approx;
        }
    }

    #[test]
    fn empty_histogram_is_all_zeroes() {
        let hist = Histogram::new();
        assert_eq!(hist.count(), 0);
        assert_eq!(hist.min(), 0);
        assert_eq!(hist.max(), 0);
        assert_eq!(hist.p50(), 0);
        assert_eq!(hist.mean(), 0.0);
        assert!(hist.nonzero_buckets().is_empty());
    }

    #[test]
    fn merge_matches_recording_everything_into_one() {
        let mut rng = XorShift(7);
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for i in 0..2_000 {
            let v = rng.next() % 100_000;
            if i % 2 == 0 {
                a.record(v)
            } else {
                b.record(v)
            }
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }
}
