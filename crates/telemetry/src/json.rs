//! A minimal, dependency-free JSON reader.
//!
//! This is the parser behind the `.kgmetrics` JSON-lines format, promoted
//! to a public module so the rest of the workspace (the `BENCH_*.json`
//! regression diff, the Chrome-trace validator) can read JSON documents
//! without taking on an external dependency. It is a *reader*: rendering
//! stays with each format's own writer so output layouts remain stable.
//!
//! The parser never panics on hostile input — every malformed document is a
//! descriptive `Err` (the `.kgmetrics` property tests drive truncations and
//! bit-flips through it).

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source field order (duplicate keys are kept; lookups
    /// return the first).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses `text` as exactly one JSON value (leading/trailing whitespace
    /// allowed, anything else after the value is an error).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut parser = Parser::new(text);
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err("trailing garbage after JSON value".to_string());
        }
        Ok(value)
    }

    /// Looks up `key` in an object (`None` on other variants).
    pub fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string field `key` of an object.
    pub fn str_field(&self, key: &str) -> Option<&str> {
        match self.get(key)? {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric field `key` of an object.
    pub fn num_field(&self, key: &str) -> Option<f64> {
        match self.get(key)? {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The non-negative integer field `key` of an object.
    pub fn u64_field(&self, key: &str) -> Option<u64> {
        let n = self.num_field(key)?;
        if n >= 0.0 && n.fract() == 0.0 {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The boolean field `key` of an object.
    pub fn bool_field(&self, key: &str) -> Option<bool> {
        match self.get(key)? {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The object fields in source order, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), String> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", expected as char, self.pos))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(())
        } else {
            Err(format!("expected '{literal}' at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_literal("true").map(|_| Json::Bool(true)),
            Some(b'f') => self.eat_literal("false").map(|_| Json::Bool(false)),
            Some(b'n') => self.eat_literal("null").map(|_| Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!("unexpected byte '{}' at {}", b as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err("bad escape".to_string()),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (the input is a &str, so
                    // the bytes are valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).unwrap();
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}'"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_round_trip_through_field_accessors() {
        let doc = Json::parse(
            r#"{"s":"hi","n":3.5,"u":42,"b":true,"nul":null,"arr":[1,"two",false],"obj":{"k":1}}"#,
        )
        .unwrap();
        assert_eq!(doc.str_field("s"), Some("hi"));
        assert_eq!(doc.num_field("n"), Some(3.5));
        assert_eq!(doc.u64_field("u"), Some(42));
        assert_eq!(doc.u64_field("n"), None, "fractional number is not a u64");
        assert_eq!(doc.bool_field("b"), Some(true));
        assert_eq!(doc.get("nul"), Some(&Json::Null));
        let arr = doc.get("arr").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[0].as_num(), Some(1.0));
        assert_eq!(arr[1].as_str(), Some("two"));
        assert_eq!(doc.get("obj").unwrap().u64_field("k"), Some(1));
        assert_eq!(doc.as_obj().map(<[_]>::len), Some(7));
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn escapes_and_unicode_parse() {
        let doc = Json::parse(r#"{"k":"a\"b\\c\nd\teA"}"#).unwrap();
        assert_eq!(doc.str_field("k"), Some("a\"b\\c\nd\teA"));
    }

    #[test]
    fn malformed_documents_are_errors_not_panics() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"k\":}",
            "\"unterminated",
            "12 34",
            "tru",
            "{\"k\":1}garbage",
            "-",
            "{\"k\" 1}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }
}
