//! Thread-local allocation buffers.
//!
//! A [`Tlab`] is a bump window carved out of a space's contiguous region and
//! handed to one mutator context. Allocation inside the window is a pure
//! cursor bump — no space bookkeeping, no page mapping, no shared state —
//! which is what lets a multi-mutator runtime allocate without serialising
//! on the heap: mutators only rendezvous with the owning space when a window
//! is exhausted and a new one must be carved.
//!
//! A chunk size of zero requests *exact* carving: every refill carves
//! precisely the bytes of the triggering allocation, so the space's
//! allocation addresses and collection trigger points are bit-identical to
//! direct bump allocation regardless of how many mutators share the space.
//! That mode keeps deterministic simulations reproducible across mutator
//! counts; real chunked windows (`chunk_size > 0`) trade that exactness for
//! fewer rendezvous.

use hybrid_mem::Address;

/// A thread-local bump window over `[cursor, limit)`.
///
/// Carved by [`crate::copyspace::CopySpace::carve_tlab`] (or any
/// [`crate::bump::BumpAllocator`] via [`crate::bump::BumpAllocator::carve`])
/// and owned by one mutator context until the next safepoint retires it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Tlab {
    cursor: Address,
    limit: Address,
}

impl Tlab {
    /// Creates a window over `[base, base + len)`.
    pub(crate) fn new(base: Address, len: usize) -> Self {
        Tlab {
            cursor: base,
            limit: base.add(len),
        }
    }

    /// Allocates `size` bytes (8-byte aligned) from the window, without
    /// touching the owning space. Returns `None` when the window cannot fit
    /// the request — the mutator's cue to carve a fresh window.
    pub fn alloc(&mut self, size: usize) -> Option<Address> {
        let size = (size + 7) & !7;
        let start = self.cursor;
        let end = start.add(size);
        if end > self.limit {
            return None;
        }
        self.cursor = end;
        Some(start)
    }

    /// Bytes still available in the window.
    pub fn remaining_bytes(&self) -> usize {
        self.limit.diff(self.cursor)
    }

    /// Exclusive upper bound of the window (diagnostic).
    pub fn limit(&self) -> Address {
        self.limit
    }

    /// Current bump cursor (diagnostic). Equal to the window's base address
    /// immediately after carving, before any allocation.
    pub fn cursor(&self) -> Address {
        self.cursor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_allocations_are_aligned_and_bounded() {
        let mut tlab = Tlab::new(Address::new(0x1000), 64);
        let a = tlab.alloc(13).unwrap();
        let b = tlab.alloc(24).unwrap();
        assert_eq!(a, Address::new(0x1000));
        assert_eq!(b, Address::new(0x1010));
        assert_eq!(tlab.remaining_bytes(), 24);
        assert!(tlab.alloc(32).is_none(), "window exhausted");
        assert_eq!(tlab.remaining_bytes(), 24, "failed alloc leaves the cursor");
        assert!(tlab.alloc(24).is_some());
        assert_eq!(tlab.remaining_bytes(), 0);
    }
}
