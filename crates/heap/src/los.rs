//! Large object space (LOS) with treadmill collection.
//!
//! Jikes RVM manages objects larger than 8 KB separately, allocating them
//! directly into a non-copying large object space and collecting them with a
//! treadmill: two doubly-linked lists of references; tracing "snaps" live
//! references from one list to the other and reclamation frees whatever was
//! left behind (Section 3). KG-W modifies the treadmill to support *moving*
//! a written large object from the PCM large space to the DRAM large space
//! (Section 4.2.4); the move itself is performed by the collector, which
//! copies the object into the target space and lets the source copy die.

use std::collections::{BTreeSet, HashMap};

use hybrid_mem::{Address, MemoryKind, MemorySystem, Phase, PAGE_SIZE};

use crate::object::{ObjectRef, ObjectShape};
use crate::space::{SpaceId, SpaceUsage};

#[derive(Clone, Copy, Debug)]
struct LargeInfo {
    size: usize,
    pages: usize,
    marked: bool,
}

/// Result of sweeping a large object space.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LosSweepStats {
    /// Large objects reclaimed.
    pub objects_freed: usize,
    /// Bytes reclaimed (page-rounded).
    pub bytes_freed: usize,
    /// Live large objects remaining.
    pub objects_live: usize,
    /// Live bytes remaining.
    pub bytes_live: usize,
}

/// A non-moving large object space.
#[derive(Debug)]
pub struct LargeObjectSpace {
    id: SpaceId,
    kind: MemoryKind,
    base: Address,
    capacity: usize,
    cursor: Address,
    free_runs: Vec<(Address, usize)>,
    /// Pages fenced by PCM retirement: excluded from every future run so a
    /// retired page is never handed out (and remapped) again.
    retired_pages: BTreeSet<u64>,
    objects: HashMap<u64, LargeInfo>,
    bytes_allocated_total: u64,
    treadmill_snaps: u64,
}

impl LargeObjectSpace {
    /// Creates a large object space over `capacity` bytes starting at `base`.
    pub fn new(id: SpaceId, kind: MemoryKind, base: Address, capacity: usize) -> Self {
        LargeObjectSpace {
            id,
            kind,
            base,
            capacity,
            cursor: base,
            free_runs: Vec::new(),
            retired_pages: BTreeSet::new(),
            objects: HashMap::new(),
            bytes_allocated_total: 0,
            treadmill_snaps: 0,
        }
    }

    /// This space's identifier.
    pub fn id(&self) -> SpaceId {
        self.id
    }

    /// The memory technology backing this space.
    pub fn kind(&self) -> MemoryKind {
        self.kind
    }

    /// Number of live (not yet swept) large objects.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Bytes used by large objects (page-rounded).
    pub fn used_bytes(&self) -> usize {
        self.objects.values().map(|info| info.pages * PAGE_SIZE).sum()
    }

    /// Cumulative bytes ever allocated in this space.
    pub fn total_bytes_allocated(&self) -> u64 {
        self.bytes_allocated_total
    }

    /// Number of treadmill snap operations performed (allocation + tracing).
    pub fn treadmill_snaps(&self) -> u64 {
        self.treadmill_snaps
    }

    /// Usage snapshot.
    pub fn usage(&self) -> SpaceUsage {
        SpaceUsage {
            used_bytes: self.used_bytes(),
            mapped_bytes: self.used_bytes(),
        }
    }

    /// Returns `true` if `addr` lies in this space's reserved region.
    pub fn in_region(&self, addr: Address) -> bool {
        addr >= self.base && addr < self.base.add(self.capacity)
    }

    /// Returns `true` if `addr` is the header address of a live large object
    /// in this space.
    pub fn contains(&self, addr: Address) -> bool {
        self.objects.contains_key(&addr.raw())
    }

    /// Returns the registered size of the large object at `addr`, if any.
    pub fn size_of(&self, addr: Address) -> Option<usize> {
        self.objects.get(&addr.raw()).map(|info| info.size)
    }

    /// Returns a run to the free list, splitting it around retired pages so
    /// fenced pages never re-enter circulation.
    fn push_free_run(&mut self, addr: Address, pages: usize) {
        let mut start = addr;
        let mut len = 0usize;
        for i in 0..pages {
            let page = addr.add(i * PAGE_SIZE);
            if self.retired_pages.contains(&page.page().0) {
                if len > 0 {
                    self.free_runs.push((start, len));
                }
                len = 0;
            } else {
                if len == 0 {
                    start = page;
                }
                len += 1;
            }
        }
        if len > 0 {
            self.free_runs.push((start, len));
        }
    }

    fn take_run(&mut self, pages: usize) -> Option<Address> {
        // First fit from the free list (runs never contain retired pages).
        if let Some(pos) = self.free_runs.iter().position(|&(_, p)| p >= pages) {
            let (addr, run_pages) = self.free_runs.swap_remove(pos);
            if run_pages > pages {
                self.free_runs
                    .push((addr.add(pages * PAGE_SIZE), run_pages - pages));
            }
            return Some(addr);
        }
        // Otherwise extend the frontier, skipping past any retired page.
        loop {
            let addr = self.cursor;
            let end = addr.add(pages * PAGE_SIZE);
            if end > self.base.add(self.capacity) {
                return None;
            }
            let bad = (0..pages).find(|&i| self.retired_pages.contains(&addr.add(i * PAGE_SIZE).page().0));
            match bad {
                None => {
                    self.cursor = end;
                    return Some(addr);
                }
                Some(i) => {
                    // Save the clean prefix for smaller requests and resume
                    // past the fenced page.
                    if i > 0 {
                        self.push_free_run(addr, i);
                    }
                    self.cursor = addr.add((i + 1) * PAGE_SIZE);
                }
            }
        }
    }

    /// Fences the page at `page_base` after PCM retirement: it is carved out
    /// of the free list and never allocated into again.
    pub fn retire_page(&mut self, page_base: Address) {
        debug_assert!(
            self.in_region(page_base),
            "retire_page outside space: {page_base}"
        );
        self.retired_pages.insert(page_base.page().0);
        let runs = std::mem::take(&mut self.free_runs);
        for (addr, pages) in runs {
            self.push_free_run(addr, pages);
        }
    }

    /// Number of pages fenced by retirement.
    pub fn retired_page_count(&self) -> usize {
        self.retired_pages.len()
    }

    /// Returns `true` if any page of `[addr, addr + size)` has been fenced
    /// by [`LargeObjectSpace::retire_page`]. Passive — used by the
    /// sanitizer's retired-page-emptiness check.
    pub fn overlaps_retired(&self, addr: Address, size: usize) -> bool {
        let first = addr.align_down(PAGE_SIZE);
        let pages = (addr.diff(first) + size.max(1)).div_ceil(PAGE_SIZE);
        (0..pages).any(|i| self.retired_pages.contains(&first.add(i * PAGE_SIZE).page().0))
    }

    /// Allocates and initialises a large object of `shape`.
    ///
    /// Returns `None` if the space cannot hold the object.
    pub fn alloc(
        &mut self,
        mem: &mut MemorySystem,
        shape: ObjectShape,
        type_id: u16,
        phase: Phase,
    ) -> Option<ObjectRef> {
        let size = shape.size();
        let addr = self.alloc_raw(mem, size)?;
        mem.zero(addr, size, phase);
        let obj = ObjectRef::from_address(addr);
        obj.initialize(mem, shape, type_id, phase);
        // Snapping the new object onto the treadmill writes two list pointers.
        self.treadmill_snaps += 1;
        mem.account_write(addr, Phase::Runtime);
        mem.account_write(addr, Phase::Runtime);
        Some(obj)
    }

    /// Allocates raw, registered room for a large object copied from another
    /// space (KG-W's large-object move). The caller copies the bytes.
    pub fn alloc_raw(&mut self, mem: &mut MemorySystem, size: usize) -> Option<Address> {
        let pages = size.div_ceil(PAGE_SIZE);
        let addr = self.take_run(pages)?;
        mem.map_pages(addr, pages, self.kind, self.id.raw());
        self.objects.insert(
            addr.raw(),
            LargeInfo {
                size,
                pages,
                marked: false,
            },
        );
        self.bytes_allocated_total += size as u64;
        Some(addr)
    }

    /// Prepares for collection: moves every object to the "from" list
    /// (clears marks).
    pub fn prepare_collection(&mut self) {
        for info in self.objects.values_mut() {
            info.marked = false;
        }
    }

    /// Marks (snaps) a live large object. Returns `true` if it was newly
    /// marked. The snap updates two treadmill pointers, charged to `phase`.
    pub fn mark(&mut self, mem: &mut MemorySystem, obj: ObjectRef, phase: Phase) -> bool {
        let Some(info) = self.objects.get_mut(&obj.address().raw()) else {
            panic!("marking large object {obj:?} that is not in {}", self.id);
        };
        if info.marked {
            return false;
        }
        info.marked = true;
        self.treadmill_snaps += 1;
        mem.account_write(obj.address(), phase);
        mem.account_write(obj.address(), phase);
        true
    }

    /// Returns `true` if the object is currently marked.
    pub fn is_marked(&self, obj: ObjectRef) -> bool {
        self.objects
            .get(&obj.address().raw())
            .map(|i| i.marked)
            .unwrap_or(false)
    }

    /// Removes a large object from this space without reclaiming its pages'
    /// contents first (used after the collector has copied it elsewhere).
    pub fn remove(&mut self, mem: &mut MemorySystem, obj: ObjectRef) {
        if let Some(info) = self.objects.remove(&obj.address().raw()) {
            mem.unmap_pages(obj.address(), info.pages);
            self.push_free_run(obj.address(), info.pages);
        }
    }

    /// Sweeps the space: every unmarked object is reclaimed.
    pub fn sweep(&mut self, mem: &mut MemorySystem) -> LosSweepStats {
        let mut stats = LosSweepStats::default();
        let mut dead: Vec<u64> = self
            .objects
            .iter()
            .filter(|(_, info)| !info.marked)
            .map(|(&addr, _)| addr)
            .collect();
        // Deterministic reclamation order keeps the free list (and therefore
        // subsequent allocation addresses) reproducible across runs.
        dead.sort_unstable();
        for addr in dead {
            let info = self.objects.remove(&addr).expect("dead object disappeared");
            stats.objects_freed += 1;
            stats.bytes_freed += info.pages * PAGE_SIZE;
            mem.unmap_pages(Address::new(addr), info.pages);
            self.push_free_run(Address::new(addr), info.pages);
        }
        stats.objects_live = self.objects.len();
        stats.bytes_live = self.used_bytes();
        stats
    }

    /// Iterates over the live large objects in this space.
    pub fn iter_objects(&self) -> impl Iterator<Item = ObjectRef> + '_ {
        self.objects
            .keys()
            .map(|&addr| ObjectRef::from_address(Address::new(addr)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_mem::MemoryConfig;

    fn setup() -> (MemorySystem, LargeObjectSpace) {
        let mut mem = MemorySystem::new(MemoryConfig::architecture_independent());
        let base = mem.reserve_extent("los", 8 << 20);
        (
            mem,
            LargeObjectSpace::new(SpaceId::LARGE_PCM, MemoryKind::Pcm, base, 8 << 20),
        )
    }

    fn big_shape() -> ObjectShape {
        ObjectShape::primitive(10 * 1024)
    }

    #[test]
    fn alloc_registers_and_maps_pages() {
        let (mut mem, mut los) = setup();
        let obj = los.alloc(&mut mem, big_shape(), 9, Phase::Mutator).unwrap();
        assert!(los.contains(obj.address()));
        assert!(los.in_region(obj.address()));
        assert_eq!(los.object_count(), 1);
        assert_eq!(mem.kind_of(obj.address()), MemoryKind::Pcm);
        assert_eq!(obj.shape(&mut mem, Phase::Mutator), big_shape());
        assert!(los.used_bytes() >= big_shape().size());
    }

    #[test]
    fn sweep_frees_unmarked_objects() {
        let (mut mem, mut los) = setup();
        let live = los.alloc(&mut mem, big_shape(), 1, Phase::Mutator).unwrap();
        let dead = los.alloc(&mut mem, big_shape(), 2, Phase::Mutator).unwrap();
        los.prepare_collection();
        assert!(los.mark(&mut mem, live, Phase::MajorGc));
        assert!(
            !los.mark(&mut mem, live, Phase::MajorGc),
            "second mark is a no-op"
        );
        let stats = los.sweep(&mut mem);
        assert_eq!(stats.objects_freed, 1);
        assert_eq!(stats.objects_live, 1);
        assert!(los.contains(live.address()));
        assert!(!los.contains(dead.address()));
        assert!(!mem.is_mapped(dead.address()));
    }

    #[test]
    fn freed_pages_are_reused() {
        let (mut mem, mut los) = setup();
        let first = los.alloc(&mut mem, big_shape(), 1, Phase::Mutator).unwrap();
        los.prepare_collection();
        los.sweep(&mut mem); // frees `first`
        let second = los.alloc(&mut mem, big_shape(), 1, Phase::Mutator).unwrap();
        assert_eq!(first.address(), second.address(), "free run should be reused");
    }

    #[test]
    fn remove_releases_pages_for_reuse() {
        let (mut mem, mut los) = setup();
        let obj = los.alloc(&mut mem, big_shape(), 1, Phase::Mutator).unwrap();
        los.remove(&mut mem, obj);
        assert_eq!(los.object_count(), 0);
        assert!(!mem.is_mapped(obj.address()));
        let again = los.alloc_raw(&mut mem, big_shape().size()).unwrap();
        assert_eq!(again, obj.address());
    }

    #[test]
    fn retired_pages_are_never_reallocated() {
        let (mut mem, mut los) = setup();
        let obj = los.alloc(&mut mem, big_shape(), 1, Phase::Mutator).unwrap();
        let dying = obj.address().align_down(PAGE_SIZE).add(PAGE_SIZE);
        // The object dies; its run returns to the free list — except the
        // retired page, which is carved out forever.
        los.retire_page(dying);
        los.prepare_collection();
        los.sweep(&mut mem);
        assert_eq!(los.retired_page_count(), 1);
        for _ in 0..50 {
            let Some(addr) = los.alloc_raw(&mut mem, big_shape().size()) else {
                break;
            };
            let pages = big_shape().size().div_ceil(PAGE_SIZE);
            for i in 0..pages {
                assert_ne!(
                    addr.add(i * PAGE_SIZE).align_down(PAGE_SIZE),
                    dying,
                    "allocated over a retired page"
                );
            }
        }
    }

    #[test]
    fn frontier_skips_retired_pages() {
        let (mut mem, mut los) = setup();
        // Retire a page ahead of the frontier; allocation must step over it.
        let ahead = los.cursor.add(PAGE_SIZE);
        los.retire_page(ahead);
        let obj = los.alloc(&mut mem, big_shape(), 1, Phase::Mutator).unwrap();
        let pages = big_shape().size().div_ceil(PAGE_SIZE);
        for i in 0..pages {
            assert_ne!(obj.address().add(i * PAGE_SIZE).align_down(PAGE_SIZE), ahead);
        }
    }

    #[test]
    fn capacity_is_enforced() {
        let mut mem = MemorySystem::new(MemoryConfig::architecture_independent());
        let base = mem.reserve_extent("tiny-los", 64 * 1024);
        let mut los = LargeObjectSpace::new(SpaceId::LARGE_PCM, MemoryKind::Pcm, base, 64 * 1024);
        let mut count = 0;
        while los.alloc(&mut mem, big_shape(), 0, Phase::Mutator).is_some() {
            count += 1;
        }
        assert!((1..=6).contains(&count), "unexpected capacity: {count}");
    }

    #[test]
    fn treadmill_snaps_are_accounted_as_writes() {
        let (mut mem, mut los) = setup();
        let before = mem.stats().phase_writes(MemoryKind::Pcm).get(Phase::Runtime);
        los.alloc(&mut mem, big_shape(), 0, Phase::Mutator).unwrap();
        let after = mem.stats().phase_writes(MemoryKind::Pcm).get(Phase::Runtime);
        assert!(after > before);
        assert!(los.treadmill_snaps() >= 1);
    }

    #[test]
    #[should_panic(expected = "not in")]
    fn marking_foreign_object_panics() {
        let (mut mem, mut los) = setup();
        los.mark(
            &mut mem,
            ObjectRef::from_address(Address::new(0x1234)),
            Phase::MajorGc,
        );
    }

    #[test]
    fn iter_objects_lists_live_objects() {
        let (mut mem, mut los) = setup();
        let a = los.alloc(&mut mem, big_shape(), 0, Phase::Mutator).unwrap();
        let b = los.alloc(&mut mem, big_shape(), 0, Phase::Mutator).unwrap();
        let mut seen: Vec<_> = los.iter_objects().collect();
        seen.sort();
        let mut expect = vec![a, b];
        expect.sort();
        assert_eq!(seen, expect);
    }
}
