//! Contiguous bump-pointer allocation.
//!
//! Contiguous allocation is the allocation discipline of both the nursery
//! and the Immix mature space in the paper ("Bump pointer object allocation
//! is contiguous in the nursery, in lines, and blocks", Section 3). The
//! allocator maps pages from the owning space's memory technology on demand
//! as the cursor advances.

use hybrid_mem::{Address, MemoryKind, MemorySystem, PAGE_SIZE};

use crate::space::SpaceId;

/// A bump-pointer allocator over a contiguous virtual range.
#[derive(Debug, Clone)]
pub struct BumpAllocator {
    base: Address,
    cursor: Address,
    limit: Address,
    mapped_limit: Address,
}

impl BumpAllocator {
    /// Creates an allocator over `[base, base + capacity)`.
    pub fn new(base: Address, capacity: usize) -> Self {
        BumpAllocator {
            base,
            cursor: base,
            limit: base.add(capacity),
            mapped_limit: base,
        }
    }

    /// Base address of the region.
    pub fn base(&self) -> Address {
        self.base
    }

    /// Current allocation cursor.
    pub fn cursor(&self) -> Address {
        self.cursor
    }

    /// Exclusive upper bound of the region.
    pub fn limit(&self) -> Address {
        self.limit
    }

    /// Bytes allocated since the last reset.
    pub fn used_bytes(&self) -> usize {
        self.cursor.diff(self.base)
    }

    /// Bytes of the region that have been mapped.
    pub fn mapped_bytes(&self) -> usize {
        self.mapped_limit.diff(self.base)
    }

    /// Remaining capacity in bytes.
    pub fn remaining_bytes(&self) -> usize {
        self.limit.diff(self.cursor)
    }

    /// Returns `true` if `addr` lies between the region base and the current
    /// cursor (i.e. inside allocated memory).
    pub fn contains(&self, addr: Address) -> bool {
        addr >= self.base && addr < self.cursor
    }

    /// Returns `true` if `addr` lies anywhere in the reserved region.
    pub fn in_region(&self, addr: Address) -> bool {
        addr >= self.base && addr < self.limit
    }

    /// Allocates `size` bytes (8-byte aligned), demand-mapping pages of
    /// `kind` for space `space`. Returns `None` when the region is full,
    /// which is the caller's signal to trigger a collection.
    pub fn alloc(
        &mut self,
        mem: &mut MemorySystem,
        size: usize,
        kind: MemoryKind,
        space: SpaceId,
    ) -> Option<Address> {
        let size = (size + 7) & !7;
        let start = self.cursor;
        let end = start.add(size);
        if end > self.limit {
            return None;
        }
        if end > self.mapped_limit {
            let map_start = self.mapped_limit.align_down(PAGE_SIZE);
            let map_end = end.align_up(PAGE_SIZE);
            let pages = map_end.diff(map_start) / PAGE_SIZE;
            mem.map_pages(map_start, pages, kind, space.raw());
            self.mapped_limit = map_end;
        }
        self.cursor = end;
        Some(start)
    }

    /// Carves a thread-local allocation window of at least `min_size` bytes
    /// (8-byte aligned) and at most `max(chunk_size, min_size)` bytes,
    /// demand-mapping its pages like [`BumpAllocator::alloc`]. A
    /// `chunk_size` of zero carves exactly `min_size` (the exact mode of
    /// [`crate::tlab`]: addresses identical to direct bump allocation).
    /// Returns `None` when even `min_size` no longer fits — the caller's
    /// signal to trigger a collection.
    pub fn carve(
        &mut self,
        mem: &mut MemorySystem,
        min_size: usize,
        chunk_size: usize,
        kind: MemoryKind,
        space: SpaceId,
    ) -> Option<crate::tlab::Tlab> {
        let min = (min_size + 7) & !7;
        if self.remaining_bytes() < min {
            return None;
        }
        let want = if chunk_size == 0 {
            min
        } else {
            ((chunk_size + 7) & !7).max(min).min(self.remaining_bytes())
        };
        let start = self.alloc(mem, want, kind, space)?;
        Some(crate::tlab::Tlab::new(start, want))
    }

    /// Resets the cursor to the base, releasing the logical contents. Mapped
    /// pages are kept mapped (the VM reuses nursery pages across collections).
    pub fn reset(&mut self) {
        self.cursor = self.base;
    }

    /// Unmaps all pages and resets the cursor (used when a space is retired).
    pub fn release(&mut self, mem: &mut MemorySystem) {
        let mapped = self.mapped_bytes();
        if mapped > 0 {
            mem.unmap_pages(self.base, mapped / PAGE_SIZE);
        }
        self.mapped_limit = self.base;
        self.cursor = self.base;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_mem::MemoryConfig;

    fn setup(capacity: usize) -> (MemorySystem, BumpAllocator) {
        let mut mem = MemorySystem::new(MemoryConfig::architecture_independent());
        let base = mem.reserve_extent("bump", capacity.max(PAGE_SIZE));
        (mem, BumpAllocator::new(base, capacity))
    }

    #[test]
    fn sequential_allocations_do_not_overlap() {
        let (mut mem, mut bump) = setup(64 * 1024);
        let a = bump
            .alloc(&mut mem, 24, MemoryKind::Dram, SpaceId::NURSERY)
            .unwrap();
        let b = bump
            .alloc(&mut mem, 40, MemoryKind::Dram, SpaceId::NURSERY)
            .unwrap();
        assert!(b >= a.add(24));
        assert_eq!(bump.used_bytes(), 64);
    }

    #[test]
    fn allocation_is_eight_byte_aligned() {
        let (mut mem, mut bump) = setup(4096);
        let a = bump
            .alloc(&mut mem, 13, MemoryKind::Dram, SpaceId::NURSERY)
            .unwrap();
        let b = bump
            .alloc(&mut mem, 3, MemoryKind::Dram, SpaceId::NURSERY)
            .unwrap();
        assert!(a.is_aligned(8));
        assert!(b.is_aligned(8));
        assert_eq!(b.diff(a), 16);
    }

    #[test]
    fn exhaustion_returns_none() {
        let (mut mem, mut bump) = setup(PAGE_SIZE);
        assert!(bump
            .alloc(&mut mem, PAGE_SIZE, MemoryKind::Pcm, SpaceId::MATURE_PCM)
            .is_some());
        assert!(bump
            .alloc(&mut mem, 8, MemoryKind::Pcm, SpaceId::MATURE_PCM)
            .is_none());
        assert_eq!(bump.remaining_bytes(), 0);
    }

    #[test]
    fn pages_are_demand_mapped_with_requested_kind() {
        let (mut mem, mut bump) = setup(8 * PAGE_SIZE);
        bump.alloc(&mut mem, 100, MemoryKind::Pcm, SpaceId::MATURE_PCM)
            .unwrap();
        assert_eq!(mem.kind_of(bump.base()), MemoryKind::Pcm);
        assert_eq!(bump.mapped_bytes(), PAGE_SIZE);
        bump.alloc(&mut mem, 2 * PAGE_SIZE, MemoryKind::Pcm, SpaceId::MATURE_PCM)
            .unwrap();
        assert!(bump.mapped_bytes() >= 2 * PAGE_SIZE);
    }

    #[test]
    fn reset_keeps_pages_mapped() {
        let (mut mem, mut bump) = setup(4 * PAGE_SIZE);
        bump.alloc(&mut mem, 3000, MemoryKind::Dram, SpaceId::NURSERY)
            .unwrap();
        let mapped = bump.mapped_bytes();
        bump.reset();
        assert_eq!(bump.used_bytes(), 0);
        assert_eq!(bump.mapped_bytes(), mapped);
        assert!(mem.is_mapped(bump.base()));
    }

    #[test]
    fn release_unmaps_pages() {
        let (mut mem, mut bump) = setup(4 * PAGE_SIZE);
        bump.alloc(&mut mem, 3000, MemoryKind::Dram, SpaceId::NURSERY)
            .unwrap();
        bump.release(&mut mem);
        assert!(!mem.is_mapped(bump.base()));
        assert_eq!(bump.mapped_bytes(), 0);
    }

    #[test]
    fn contains_tracks_cursor() {
        let (mut mem, mut bump) = setup(4 * PAGE_SIZE);
        let a = bump
            .alloc(&mut mem, 64, MemoryKind::Dram, SpaceId::NURSERY)
            .unwrap();
        assert!(bump.contains(a));
        assert!(!bump.contains(a.add(64)));
        assert!(bump.in_region(a.add(64)));
        assert!(!bump.in_region(bump.limit()));
    }
}
