//! Object model.
//!
//! Objects are laid out in the simulated heap exactly as a Jikes-style VM
//! would lay them out, with three header words followed by the payload:
//!
//! ```text
//! +0   status word   mark bit | forwarded bit | small-object bit | forwarding pointer
//! +8   info word     type id | #reference slots | primitive payload bytes
//! +16  write word    the extra header word added by Kingsguard-writers; the
//!                    write barrier sets bit 0 when the object is written
//! +24  reference slots (8 bytes each)
//! +24+8r  primitive payload (rounded up to 8 bytes)
//! ```
//!
//! The *write word* corresponds to lines 13–17 of the paper's Figure 4: the
//! barrier stores a one into an extra header word of any non-nursery object
//! that is written. The *small-object bit* supports the metadata optimization
//! (MDO): objects of 16 bytes or less keep their mark state in the header
//! rather than in the DRAM mark-state table.

use hybrid_mem::{Address, MemorySystem, Phase};

/// Bytes of object header (status + info + write words).
pub const HEADER_BYTES: usize = 24;

/// Bytes per reference slot.
pub const REF_SLOT_BYTES: usize = 8;

/// Objects larger than this many bytes are handled by the large object space
/// (the Jikes RVM / Immix default of 8 KB).
pub const LARGE_OBJECT_THRESHOLD: usize = 8 * 1024;

/// Objects of at most this size keep their mark state in the object header
/// even when the metadata optimization is enabled (Section 4.2.5).
pub const SMALL_OBJECT_MDO_THRESHOLD: usize = 16;

const STATUS_OFFSET: usize = 0;
const INFO_OFFSET: usize = 8;
const WRITE_WORD_OFFSET: usize = 16;

/// Byte offset of the status word within the header (for passive
/// inspection via [`hybrid_mem::MemorySystem::peek_u64`]).
pub const STATUS_WORD_OFFSET: usize = STATUS_OFFSET;

/// Byte offset of the info word within the header (for passive inspection).
pub const INFO_WORD_OFFSET: usize = INFO_OFFSET;

/// Decodes a raw info word into the object's shape and type id — the
/// inverse of the encoding written by [`ObjectRef::initialize`]. The
/// `kingsguard-check` sanitizer peeks the word from the backing store and
/// decodes it host-side so header validation adds no simulated traffic.
pub fn decode_info_word(info: u64) -> (ObjectShape, u16) {
    let type_id = (info >> 48) as u16;
    let ref_slots = ((info >> 32) & 0xffff) as u16;
    let payload_bytes = (info & 0xffff_ffff) as u32;
    (ObjectShape::new(ref_slots, payload_bytes), type_id)
}

/// Returns `true` if a raw status word has the forwarded bit set (the
/// object's contents have been evacuated and the header now holds a
/// forwarding pointer). A live, reachable object must never carry this bit
/// outside a collection.
pub fn status_word_is_forwarded(status: u64) -> bool {
    status & FORWARDED_BIT != 0
}

const MARK_BIT: u64 = 1 << 63;
const FORWARDED_BIT: u64 = 1 << 62;
const SMALL_BIT: u64 = 1 << 61;
const ADDRESS_MASK: u64 = (1 << 48) - 1;

/// Shape of an object: how many reference slots and how many primitive
/// payload bytes it has.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ObjectShape {
    /// Number of reference (pointer) slots.
    pub ref_slots: u16,
    /// Primitive payload size in bytes (not counting reference slots).
    pub payload_bytes: u32,
}

impl ObjectShape {
    /// Creates a shape with `ref_slots` reference slots and `payload_bytes`
    /// bytes of primitive data.
    pub fn new(ref_slots: u16, payload_bytes: u32) -> Self {
        ObjectShape {
            ref_slots,
            payload_bytes,
        }
    }

    /// A pure primitive object (e.g. a `byte[]`).
    pub fn primitive(payload_bytes: u32) -> Self {
        Self::new(0, payload_bytes)
    }

    /// Total size of an object of this shape in bytes, including the header,
    /// rounded up to 8 bytes.
    pub fn size(&self) -> usize {
        let payload = (self.payload_bytes as usize + 7) & !7;
        HEADER_BYTES + self.ref_slots as usize * REF_SLOT_BYTES + payload
    }

    /// Returns `true` if an object of this shape must be allocated in the
    /// large object space.
    pub fn is_large(&self) -> bool {
        self.size() > LARGE_OBJECT_THRESHOLD
    }

    /// Returns `true` if objects of this shape are "small" for the purposes
    /// of the metadata optimization: at most 16 bytes of payload beyond the
    /// header (the paper's "objects 16 bytes and smaller", whose mark state
    /// stays in the header).
    pub fn is_mdo_small(&self) -> bool {
        let payload = (self.payload_bytes as usize + 7) & !7;
        self.ref_slots as usize * REF_SLOT_BYTES + payload <= SMALL_OBJECT_MDO_THRESHOLD
    }
}

/// A reference to a heap object (the address of its header).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectRef(pub Address);

impl std::fmt::Debug for ObjectRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ObjectRef({:#x})", self.0.raw())
    }
}

impl ObjectRef {
    /// The null object reference.
    pub const NULL: ObjectRef = ObjectRef(Address::ZERO);

    /// Creates an object reference from a raw address.
    pub const fn from_address(addr: Address) -> Self {
        ObjectRef(addr)
    }

    /// The address of the object header.
    pub const fn address(self) -> Address {
        self.0
    }

    /// Returns `true` if this is the null reference.
    pub const fn is_null(self) -> bool {
        self.0.is_zero()
    }

    /// Writes a fresh header for an object of `shape` at this address.
    ///
    /// The caller (the allocator) has already zeroed the object's memory;
    /// this charges the header-initialisation stores to `phase`.
    pub fn initialize(self, mem: &mut MemorySystem, shape: ObjectShape, type_id: u16, phase: Phase) {
        let mut status = 0u64;
        if shape.is_mdo_small() {
            status |= SMALL_BIT;
        }
        mem.write_u64(self.0.add(STATUS_OFFSET), status, phase);
        let info = (type_id as u64) << 48 | (shape.ref_slots as u64) << 32 | shape.payload_bytes as u64;
        mem.write_u64(self.0.add(INFO_OFFSET), info, phase);
        mem.write_u64(self.0.add(WRITE_WORD_OFFSET), 0, phase);
    }

    /// Reads this object's shape from its info word.
    pub fn shape(self, mem: &mut MemorySystem, phase: Phase) -> ObjectShape {
        let info = mem.read_u64(self.0.add(INFO_OFFSET), phase);
        ObjectShape {
            ref_slots: ((info >> 32) & 0xffff) as u16,
            payload_bytes: (info & 0xffff_ffff) as u32,
        }
    }

    /// Reads this object's type id.
    pub fn type_id(self, mem: &mut MemorySystem, phase: Phase) -> u16 {
        (mem.read_u64(self.0.add(INFO_OFFSET), phase) >> 48) as u16
    }

    /// Total object size in bytes.
    pub fn size(self, mem: &mut MemorySystem, phase: Phase) -> usize {
        self.shape(mem, phase).size()
    }

    /// Address of reference slot `index`.
    ///
    /// # Panics
    ///
    /// Does not bounds-check in release builds; callers obtain the slot count
    /// from [`ObjectRef::shape`].
    pub fn ref_slot(self, index: usize) -> Address {
        self.0.add(HEADER_BYTES + index * REF_SLOT_BYTES)
    }

    /// Address of the primitive payload byte at `offset`.
    pub fn payload_addr(self, mem: &mut MemorySystem, offset: usize, phase: Phase) -> Address {
        let shape = self.shape(mem, phase);
        self.0
            .add(HEADER_BYTES + shape.ref_slots as usize * REF_SLOT_BYTES + offset)
    }

    /// Reads reference slot `index`.
    pub fn read_ref(self, mem: &mut MemorySystem, index: usize, phase: Phase) -> ObjectRef {
        ObjectRef(Address::new(mem.read_u64(self.ref_slot(index), phase)))
    }

    /// Stores `target` into reference slot `index` **without** any write
    /// barrier. Collectors use this when updating references after copying.
    pub fn write_ref_raw(self, mem: &mut MemorySystem, index: usize, target: ObjectRef, phase: Phase) {
        mem.write_u64(self.ref_slot(index), target.address().raw(), phase);
    }

    // ----- status word -------------------------------------------------

    fn status(self, mem: &mut MemorySystem, phase: Phase) -> u64 {
        mem.read_u64(self.0.add(STATUS_OFFSET), phase)
    }

    fn set_status(self, mem: &mut MemorySystem, status: u64, phase: Phase) {
        mem.write_u64(self.0.add(STATUS_OFFSET), status, phase);
    }

    /// Returns `true` if the mark bit in the object header is set.
    pub fn is_marked(self, mem: &mut MemorySystem, phase: Phase) -> bool {
        self.status(mem, phase) & MARK_BIT != 0
    }

    /// Sets or clears the header mark bit. The store is performed (and
    /// charged to `phase`) even when the bit already has the requested value,
    /// matching the unconditional mark store a real collector performs.
    pub fn set_marked(self, mem: &mut MemorySystem, marked: bool, phase: Phase) {
        let status = self.status(mem, phase);
        let new = if marked {
            status | MARK_BIT
        } else {
            status & !MARK_BIT
        };
        self.set_status(mem, new, phase);
    }

    /// Returns `true` if the object is flagged "small" for MDO purposes.
    pub fn is_mdo_small(self, mem: &mut MemorySystem, phase: Phase) -> bool {
        self.status(mem, phase) & SMALL_BIT != 0
    }

    /// Returns `true` if this object has been forwarded (copied elsewhere
    /// during the in-progress collection).
    pub fn is_forwarded(self, mem: &mut MemorySystem, phase: Phase) -> bool {
        self.status(mem, phase) & FORWARDED_BIT != 0
    }

    /// Returns the forwarding pointer installed by a collection.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the object is not forwarded.
    pub fn forwarding(self, mem: &mut MemorySystem, phase: Phase) -> ObjectRef {
        let status = self.status(mem, phase);
        debug_assert!(status & FORWARDED_BIT != 0, "object {self:?} is not forwarded");
        ObjectRef(Address::new(status & ADDRESS_MASK))
    }

    /// Installs a forwarding pointer to `target` in this object's header.
    pub fn set_forwarding(self, mem: &mut MemorySystem, target: ObjectRef, phase: Phase) {
        let status = self.status(mem, phase);
        let preserved = status & SMALL_BIT;
        self.set_status(
            mem,
            preserved | FORWARDED_BIT | (target.address().raw() & ADDRESS_MASK),
            phase,
        );
    }

    // ----- write word ---------------------------------------------------

    /// Returns `true` if the write barrier has recorded a write to this
    /// object since the bit was last reset.
    pub fn is_written(self, mem: &mut MemorySystem, phase: Phase) -> bool {
        mem.read_u64(self.0.add(WRITE_WORD_OFFSET), phase) & 1 != 0
    }

    /// Sets the write bit (the store of Figure 4, lines 13–17).
    pub fn set_written(self, mem: &mut MemorySystem, phase: Phase) {
        mem.write_u64(self.0.add(WRITE_WORD_OFFSET), 1, phase);
    }

    /// Clears the write bit (done when KG-W moves a written PCM object back
    /// to DRAM, Section 4.2.3).
    pub fn clear_written(self, mem: &mut MemorySystem, phase: Phase) {
        mem.write_u64(self.0.add(WRITE_WORD_OFFSET), 0, phase);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_mem::{MemoryConfig, MemoryKind};

    fn setup() -> (MemorySystem, ObjectRef) {
        let mut mem = MemorySystem::new(MemoryConfig::architecture_independent());
        let base = mem.reserve_extent("objects", 1 << 20);
        mem.map_pages(base, 16, MemoryKind::Dram, 0);
        (mem, ObjectRef::from_address(base.add(64)))
    }

    #[test]
    fn shape_size_and_classification() {
        assert_eq!(ObjectShape::new(0, 0).size(), HEADER_BYTES);
        assert_eq!(ObjectShape::new(2, 9).size(), HEADER_BYTES + 16 + 16);
        assert!(!ObjectShape::new(2, 16).is_large());
        assert!(ObjectShape::primitive(16 * 1024).is_large());
        assert!(ObjectShape::new(0, 0).is_mdo_small());
        assert!(!ObjectShape::new(4, 64).is_mdo_small());
    }

    #[test]
    fn initialize_and_read_back_shape() {
        let (mut mem, obj) = setup();
        let shape = ObjectShape::new(3, 40);
        obj.initialize(&mut mem, shape, 17, Phase::Mutator);
        assert_eq!(obj.shape(&mut mem, Phase::Mutator), shape);
        assert_eq!(obj.type_id(&mut mem, Phase::Mutator), 17);
        assert_eq!(obj.size(&mut mem, Phase::Mutator), shape.size());
        assert!(!obj.is_marked(&mut mem, Phase::Mutator));
        assert!(!obj.is_written(&mut mem, Phase::Mutator));
        assert!(!obj.is_forwarded(&mut mem, Phase::Mutator));
        assert!(!obj.is_mdo_small(&mut mem, Phase::Mutator));
    }

    #[test]
    fn small_objects_get_small_bit() {
        let (mut mem, obj) = setup();
        obj.initialize(&mut mem, ObjectShape::new(0, 0), 0, Phase::Mutator);
        assert!(obj.is_mdo_small(&mut mem, Phase::Mutator));
    }

    #[test]
    fn mark_bit_round_trip() {
        let (mut mem, obj) = setup();
        obj.initialize(&mut mem, ObjectShape::new(1, 8), 1, Phase::Mutator);
        obj.set_marked(&mut mem, true, Phase::MajorGc);
        assert!(obj.is_marked(&mut mem, Phase::MajorGc));
        obj.set_marked(&mut mem, false, Phase::MajorGc);
        assert!(!obj.is_marked(&mut mem, Phase::MajorGc));
    }

    #[test]
    fn write_bit_round_trip() {
        let (mut mem, obj) = setup();
        obj.initialize(&mut mem, ObjectShape::new(1, 8), 1, Phase::Mutator);
        obj.set_written(&mut mem, Phase::Mutator);
        assert!(obj.is_written(&mut mem, Phase::Mutator));
        obj.clear_written(&mut mem, Phase::MajorGc);
        assert!(!obj.is_written(&mut mem, Phase::Mutator));
    }

    #[test]
    fn forwarding_preserves_small_bit() {
        let (mut mem, obj) = setup();
        obj.initialize(&mut mem, ObjectShape::new(0, 0), 1, Phase::Mutator);
        let target = ObjectRef::from_address(obj.address().add(4096));
        obj.set_forwarding(&mut mem, target, Phase::NurseryGc);
        assert!(obj.is_forwarded(&mut mem, Phase::NurseryGc));
        assert_eq!(obj.forwarding(&mut mem, Phase::NurseryGc), target);
        assert!(obj.is_mdo_small(&mut mem, Phase::NurseryGc));
    }

    #[test]
    fn reference_slots_read_write() {
        let (mut mem, obj) = setup();
        obj.initialize(&mut mem, ObjectShape::new(2, 0), 1, Phase::Mutator);
        let target = ObjectRef::from_address(obj.address().add(1024));
        obj.write_ref_raw(&mut mem, 1, target, Phase::Mutator);
        assert_eq!(obj.read_ref(&mut mem, 1, Phase::Mutator), target);
        assert!(obj.read_ref(&mut mem, 0, Phase::Mutator).is_null());
    }

    #[test]
    fn payload_address_is_after_ref_slots() {
        let (mut mem, obj) = setup();
        obj.initialize(&mut mem, ObjectShape::new(2, 32), 1, Phase::Mutator);
        let payload = obj.payload_addr(&mut mem, 4, Phase::Mutator);
        assert_eq!(payload, obj.address().add(HEADER_BYTES + 16 + 4));
    }
}
