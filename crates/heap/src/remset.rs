//! Remembered sets.
//!
//! Generational collection requires remembering every pointer from outside
//! the independently-collected region into it. The paper's KG-W collector
//! maintains two remembered sets (Figure 4): `remset` records slots outside
//! the nursery that point into the nursery, and `remset_observers` records
//! slots outside the nursery *and* observer space that point into either.

use std::collections::HashSet;

use hybrid_mem::Address;

/// A deduplicated set of slot addresses (object fields holding interesting
/// pointers).
#[derive(Debug, Default, Clone)]
pub struct RememberedSet {
    slots: HashSet<u64>,
    inserts: u64,
}

impl RememberedSet {
    /// Creates an empty remembered set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `slot`. Returns `true` if the slot was not already present.
    pub fn insert(&mut self, slot: Address) -> bool {
        self.inserts += 1;
        self.slots.insert(slot.raw())
    }

    /// Number of distinct slots currently remembered.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Returns `true` if no slots are remembered.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Total number of insert operations (including duplicates) — a proxy for
    /// barrier work.
    pub fn total_inserts(&self) -> u64 {
        self.inserts
    }

    /// Iterates over the remembered slots in ascending address order (a
    /// deterministic order keeps whole runs reproducible for a given seed).
    pub fn iter(&self) -> impl Iterator<Item = Address> + '_ {
        let mut slots: Vec<u64> = self.slots.iter().copied().collect();
        slots.sort_unstable();
        slots.into_iter().map(Address::new)
    }

    /// Removes and returns all remembered slots in ascending address order.
    pub fn drain(&mut self) -> Vec<Address> {
        let slots: Vec<Address> = self.iter().collect();
        self.slots.clear();
        slots
    }

    /// Discards all remembered slots.
    pub fn clear(&mut self) {
        self.slots.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_deduplicates() {
        let mut remset = RememberedSet::new();
        assert!(remset.insert(Address::new(0x100)));
        assert!(!remset.insert(Address::new(0x100)));
        assert!(remset.insert(Address::new(0x108)));
        assert_eq!(remset.len(), 2);
        assert_eq!(remset.total_inserts(), 3);
    }

    #[test]
    fn drain_empties_the_set() {
        let mut remset = RememberedSet::new();
        remset.insert(Address::new(0x10));
        remset.insert(Address::new(0x20));
        let mut drained = remset.drain();
        drained.sort();
        assert_eq!(drained, vec![Address::new(0x10), Address::new(0x20)]);
        assert!(remset.is_empty());
        // Counters survive the drain.
        assert_eq!(remset.total_inserts(), 2);
    }

    #[test]
    fn clear_resets_slots_only() {
        let mut remset = RememberedSet::new();
        remset.insert(Address::new(0x10));
        remset.clear();
        assert!(remset.is_empty());
        assert_eq!(remset.total_inserts(), 1);
    }

    #[test]
    fn iter_visits_each_slot_once() {
        let mut remset = RememberedSet::new();
        for i in 0..10u64 {
            remset.insert(Address::new(0x1000 + i * 8));
            remset.insert(Address::new(0x1000 + i * 8));
        }
        assert_eq!(remset.iter().count(), 10);
    }
}
