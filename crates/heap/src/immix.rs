//! Immix mark-region space.
//!
//! The mature spaces of all collectors in the paper are Immix mark-region
//! spaces (Blackburn & McKinley, PLDI 2008): a hierarchy of 32 KB blocks
//! divided into 256 B lines. Objects may cross lines but not blocks.
//! Allocation bump-allocates into contiguous runs of free lines, first in
//! partially free ("recyclable") blocks and then in completely free blocks.
//! Collection marks lines and blocks live while tracing; reclamation happens
//! at line and block granularity at the end of a full-heap collection.
//!
//! The paper never triggers Immix defragmentation for its heap sizes
//! (Section 6.3), so this implementation performs no defragmentation either;
//! opportunistic copying between mature spaces is the job of the KG-W
//! collector, which uses [`ImmixSpace::alloc_for_copy`] to evacuate objects
//! into the other technology's mature space.
//!
//! Line marks are *side metadata*: they are stored (and their write traffic
//! accounted) in a metadata area at the start of the space's extent, separate
//! from the objects, exactly as MMTk stores its line/block mark bytes.

use hybrid_mem::{Address, MemoryKind, MemorySystem, Phase, BLOCK_SIZE, LINE_SIZE, PAGE_SIZE};

use crate::object::LARGE_OBJECT_THRESHOLD;
use crate::space::{SpaceId, SpaceUsage};

/// Lines per 32 KB block.
pub const LINES_PER_BLOCK: usize = BLOCK_SIZE / LINE_SIZE;

/// State of an Immix block after the last sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockState {
    /// No live lines: the block is completely free.
    Free,
    /// Some live lines: new objects can be bump-allocated into the holes.
    Recyclable,
    /// Every line is live.
    Full,
}

#[derive(Clone, Debug)]
struct Block {
    /// Lines containing live data after the last collection *or* data
    /// allocated since then.
    occupied: u128,
    /// Lines marked live during the in-progress collection.
    line_marks: u128,
    /// Lines fenced by PCM page retirement: counted as permanently occupied
    /// so nothing is ever allocated on a retired page, and so the block is
    /// never returned to the OS (which would resurrect the page on PCM the
    /// next time the block is acquired).
    retired: u128,
    /// Whether any object in the block was marked during the in-progress
    /// collection.
    block_mark: bool,
    state: BlockState,
    mapped: bool,
}

impl Block {
    fn new() -> Self {
        Block {
            occupied: 0,
            line_marks: 0,
            retired: 0,
            block_mark: false,
            state: BlockState::Free,
            mapped: false,
        }
    }

    fn occupied_lines(&self) -> usize {
        self.occupied.count_ones() as usize
    }
}

/// Result of sweeping an Immix space at the end of a major collection.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Blocks that became completely free.
    pub free_blocks: usize,
    /// Blocks left partially occupied.
    pub recyclable_blocks: usize,
    /// Blocks with every line live.
    pub full_blocks: usize,
    /// Bytes of line space reclaimed.
    pub bytes_reclaimed: usize,
    /// Bytes of line space still live.
    pub live_bytes: usize,
}

/// An Immix mark-region space.
#[derive(Debug)]
pub struct ImmixSpace {
    id: SpaceId,
    kind: MemoryKind,
    meta_base: Address,
    blocks_base: Address,
    max_blocks: usize,
    blocks: Vec<Block>,
    /// Current bump gap.
    cursor: Address,
    limit: Address,
    cursor_block: Option<usize>,
    /// Next line to scan for holes in the cursor block.
    scan_line: usize,
    bytes_allocated_total: u64,
}

impl ImmixSpace {
    /// Creates an Immix space over an extent of `capacity` bytes starting at
    /// `base` (reserved by the caller), backed by `kind` memory.
    ///
    /// The first portion of the extent is used for line-mark side metadata
    /// (one byte per line), the remainder for blocks.
    pub fn new(id: SpaceId, kind: MemoryKind, base: Address, capacity: usize) -> Self {
        let max_blocks_estimate = capacity / BLOCK_SIZE;
        let meta_bytes = (max_blocks_estimate * LINES_PER_BLOCK).max(PAGE_SIZE);
        let blocks_base = base.add(meta_bytes).align_up(BLOCK_SIZE);
        let usable = capacity.saturating_sub(blocks_base.diff(base));
        ImmixSpace {
            id,
            kind,
            meta_base: base,
            blocks_base,
            max_blocks: usable / BLOCK_SIZE,
            blocks: Vec::new(),
            cursor: Address::ZERO,
            limit: Address::ZERO,
            cursor_block: None,
            scan_line: 0,
            bytes_allocated_total: 0,
        }
    }

    /// This space's identifier.
    pub fn id(&self) -> SpaceId {
        self.id
    }

    /// The memory technology backing this space.
    pub fn kind(&self) -> MemoryKind {
        self.kind
    }

    /// Maximum number of blocks this space can hold.
    pub fn max_blocks(&self) -> usize {
        self.max_blocks
    }

    /// Number of blocks currently acquired (mapped at least once).
    pub fn blocks_in_use(&self) -> usize {
        self.blocks.iter().filter(|b| b.mapped).count()
    }

    /// Bytes of occupied lines (live data plus allocation since the last
    /// sweep). This is the figure used for heap-composition plots.
    pub fn used_bytes(&self) -> usize {
        self.blocks
            .iter()
            .filter(|b| b.mapped)
            .map(|b| b.occupied_lines() * LINE_SIZE)
            .sum()
    }

    /// Cumulative bytes ever bump-allocated into this space.
    pub fn total_bytes_allocated(&self) -> u64 {
        self.bytes_allocated_total
    }

    /// Current usage snapshot.
    pub fn usage(&self) -> SpaceUsage {
        SpaceUsage {
            used_bytes: self.used_bytes(),
            mapped_bytes: self.blocks.iter().filter(|b| b.mapped).count() * BLOCK_SIZE,
        }
    }

    /// Returns `true` if `addr` points into an acquired block of this space.
    pub fn contains(&self, addr: Address) -> bool {
        if addr < self.blocks_base {
            return false;
        }
        let index = addr.diff(self.blocks_base) / BLOCK_SIZE;
        index < self.blocks.len() && self.blocks[index].mapped
    }

    fn block_base(&self, index: usize) -> Address {
        self.blocks_base.add(index * BLOCK_SIZE)
    }

    fn block_index(&self, addr: Address) -> usize {
        addr.diff(self.blocks_base) / BLOCK_SIZE
    }

    fn line_of(&self, addr: Address) -> (usize, usize) {
        let index = self.block_index(addr);
        let line = (addr.diff(self.block_base(index)) / LINE_SIZE).min(LINES_PER_BLOCK - 1);
        (index, line)
    }

    fn ensure_block(&mut self, mem: &mut MemorySystem, index: usize) {
        while self.blocks.len() <= index {
            self.blocks.push(Block::new());
        }
        if !self.blocks[index].mapped {
            let base = self.block_base(index);
            mem.map_pages(base, BLOCK_SIZE / PAGE_SIZE, self.kind, self.id.raw());
            self.blocks[index].mapped = true;
        }
    }

    /// Allocates `size` bytes for a copied or promoted object. Returns `None`
    /// when the space has no room left, which triggers a full-heap
    /// collection in the collectors.
    ///
    /// # Panics
    ///
    /// Panics if `size` exceeds the large-object threshold (such objects
    /// belong in the large object space).
    pub fn alloc_for_copy(&mut self, mem: &mut MemorySystem, size: usize) -> Option<Address> {
        assert!(
            size <= LARGE_OBJECT_THRESHOLD,
            "object of {size} bytes must be allocated in the large object space"
        );
        let size = (size + 7) & !7;
        loop {
            // Fast path: the current gap fits the object.
            if self.cursor != Address::ZERO && self.cursor.add(size) <= self.limit {
                let result = self.cursor;
                self.cursor = self.cursor.add(size);
                let block_index = self.cursor_block.expect("cursor implies a block");
                self.mark_occupied(block_index, result, size);
                self.bytes_allocated_total += size as u64;
                return Some(result);
            }
            // Slow path: find the next hole in the cursor block, or move on
            // to another block.
            if !self.advance_gap(mem, size) {
                return None;
            }
        }
    }

    fn mark_occupied(&mut self, block_index: usize, start: Address, size: usize) {
        let first = (start.diff(self.block_base(block_index))) / LINE_SIZE;
        let last = (start.add(size - 1).diff(self.block_base(block_index))) / LINE_SIZE;
        for line in first..=last {
            self.blocks[block_index].occupied |= 1u128 << line;
        }
    }

    /// Finds the next gap able to hold `size` bytes. Returns `false` when the
    /// space is exhausted.
    fn advance_gap(&mut self, mem: &mut MemorySystem, size: usize) -> bool {
        let lines_needed = size.div_ceil(LINE_SIZE);
        // Continue scanning the current block first.
        if let Some(block_index) = self.cursor_block {
            if let Some((start_line, run)) = self.find_hole(block_index, self.scan_line, lines_needed) {
                self.set_gap(block_index, start_line, run);
                return true;
            }
        }
        // Then look for a recyclable block with a large enough hole.
        for index in 0..self.blocks.len() {
            if Some(index) == self.cursor_block || !self.blocks[index].mapped {
                continue;
            }
            if self.blocks[index].state == BlockState::Full {
                continue;
            }
            if let Some((start_line, run)) = self.find_hole(index, 0, lines_needed) {
                self.cursor_block = Some(index);
                self.set_gap(index, start_line, run);
                return true;
            }
        }
        // Finally acquire a brand new block.
        let next_index = self
            .blocks
            .iter()
            .position(|b| !b.mapped)
            .unwrap_or(self.blocks.len());
        if next_index >= self.max_blocks {
            return false;
        }
        self.ensure_block(mem, next_index);
        self.cursor_block = Some(next_index);
        self.set_gap(next_index, 0, LINES_PER_BLOCK);
        true
    }

    fn set_gap(&mut self, block_index: usize, start_line: usize, run: usize) {
        let base = self.block_base(block_index);
        self.cursor = base.add(start_line * LINE_SIZE);
        self.limit = base.add((start_line + run) * LINE_SIZE);
        self.scan_line = start_line + run;
    }

    /// Finds a run of at least `lines_needed` unoccupied lines in
    /// `block_index`, starting the search at `from_line`.
    fn find_hole(&self, block_index: usize, from_line: usize, lines_needed: usize) -> Option<(usize, usize)> {
        let occupied = self.blocks[block_index].occupied;
        let mut line = from_line;
        while line < LINES_PER_BLOCK {
            if occupied & (1u128 << line) != 0 {
                line += 1;
                continue;
            }
            let start = line;
            while line < LINES_PER_BLOCK && occupied & (1u128 << line) == 0 {
                line += 1;
            }
            if line - start >= lines_needed {
                return Some((start, line - start));
            }
        }
        None
    }

    // ----- collection support -------------------------------------------

    /// Prepares the space for a major collection: clears all line and block
    /// marks.
    pub fn prepare_collection(&mut self) {
        for block in &mut self.blocks {
            block.line_marks = 0;
            block.block_mark = false;
        }
    }

    /// Marks the lines spanned by the live object at `addr` of `size` bytes.
    /// The line-mark stores are charged to the side-metadata area of this
    /// space (same memory technology as the space itself).
    ///
    /// Returns `true` if this call newly marked at least one line.
    pub fn mark_lines(&mut self, mem: &mut MemorySystem, addr: Address, size: usize, phase: Phase) -> bool {
        debug_assert!(self.contains(addr), "mark_lines on address outside space: {addr}");
        let (block_index, first_line) = self.line_of(addr);
        let (_, last_line) = self.line_of(addr.add(size.max(1) - 1));
        let mut newly = false;
        for line in first_line..=last_line {
            let bit = 1u128 << line;
            if self.blocks[block_index].line_marks & bit == 0 {
                self.blocks[block_index].line_marks |= bit;
                newly = true;
                // One side-metadata store per newly marked line.
                let meta_addr = self.meta_base.add(block_index * LINES_PER_BLOCK + line);
                self.ensure_meta_mapped(mem, meta_addr);
                mem.account_write(meta_addr, phase);
            }
        }
        if !self.blocks[block_index].block_mark {
            self.blocks[block_index].block_mark = true;
        }
        newly
    }

    fn ensure_meta_mapped(&mut self, mem: &mut MemorySystem, meta_addr: Address) {
        let page_start = meta_addr.align_down(PAGE_SIZE);
        if !mem.is_mapped(page_start) {
            mem.map_pages(page_start, 1, self.kind, self.id.raw());
        }
    }

    /// Fences the page at `page_base` after PCM retirement: its lines become
    /// permanently occupied (never allocated into again) and the block is
    /// pinned mapped so the page's remap to spare capacity survives sweeps.
    /// Drops the current bump gap, so call before any allocation that must
    /// avoid the dying page.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `page_base` is not inside this space.
    pub fn retire_page(&mut self, page_base: Address) {
        debug_assert!(self.contains(page_base), "retire_page outside space: {page_base}");
        let (block_index, first_line) = self.line_of(page_base);
        let mask = ((1u128 << (PAGE_SIZE / LINE_SIZE)) - 1) << first_line;
        let block = &mut self.blocks[block_index];
        block.retired |= mask;
        block.occupied |= mask;
        // The bump gap may overlap the newly fenced lines; drop it so the
        // next allocation rescans against the updated occupancy.
        self.cursor = Address::ZERO;
        self.limit = Address::ZERO;
        self.cursor_block = None;
        self.scan_line = 0;
    }

    /// Number of lines fenced by page retirement.
    pub fn retired_lines(&self) -> usize {
        self.blocks.iter().map(|b| b.retired.count_ones() as usize).sum()
    }

    /// Returns `true` if any byte of `[addr, addr + size)` lies on a line
    /// retired by [`ImmixSpace::retire_page`]. Objects never span blocks, so
    /// the whole extent is resolved within `addr`'s block. Passive — used by
    /// the sanitizer's retired-page-emptiness check.
    pub fn overlaps_retired(&self, addr: Address, size: usize) -> bool {
        if !self.contains(addr) {
            return false;
        }
        let (index, first) = self.line_of(addr);
        let (_, last) = self.line_of(addr.add(size.saturating_sub(1)));
        let block = &self.blocks[index];
        (first..=last).any(|line| block.retired & (1u128 << line) != 0)
    }

    /// Sweeps the space at the end of a major collection: occupied lines
    /// become exactly the marked lines (plus any retired lines, which stay
    /// fenced forever), blocks are classified, completely free blocks are
    /// returned to the OS, and the allocation cursor is reset so subsequent
    /// allocation starts from recyclable blocks.
    pub fn sweep(&mut self, mem: &mut MemorySystem) -> SweepStats {
        let mut stats = SweepStats::default();
        for index in 0..self.blocks.len() {
            let block = &mut self.blocks[index];
            if !block.mapped {
                continue;
            }
            let before = block.occupied_lines();
            block.occupied = block.line_marks | block.retired;
            let after = block.occupied_lines();
            stats.bytes_reclaimed += before.saturating_sub(after) * LINE_SIZE;
            stats.live_bytes += after * LINE_SIZE;
            block.state = if after == 0 {
                BlockState::Free
            } else if after == LINES_PER_BLOCK {
                BlockState::Full
            } else {
                BlockState::Recyclable
            };
            if block.state == BlockState::Free {
                stats.free_blocks += 1;
                let base = self.blocks_base.add(index * BLOCK_SIZE);
                mem.unmap_pages(base, BLOCK_SIZE / PAGE_SIZE);
                block.mapped = false;
            } else if block.state == BlockState::Full {
                stats.full_blocks += 1;
            } else {
                stats.recyclable_blocks += 1;
            }
        }
        self.cursor = Address::ZERO;
        self.limit = Address::ZERO;
        self.cursor_block = None;
        self.scan_line = 0;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_mem::MemoryConfig;

    fn setup(capacity: usize) -> (MemorySystem, ImmixSpace) {
        let mut mem = MemorySystem::new(MemoryConfig::architecture_independent());
        let base = mem.reserve_extent("mature", capacity);
        (
            mem,
            ImmixSpace::new(SpaceId::MATURE_PCM, MemoryKind::Pcm, base, capacity),
        )
    }

    #[test]
    fn allocations_land_in_blocks_of_the_right_kind() {
        let (mut mem, mut space) = setup(1 << 20);
        let a = space.alloc_for_copy(&mut mem, 64).unwrap();
        let b = space.alloc_for_copy(&mut mem, 128).unwrap();
        assert!(space.contains(a));
        assert!(space.contains(b));
        assert_ne!(a, b);
        assert_eq!(mem.kind_of(a), MemoryKind::Pcm);
        assert_eq!(space.blocks_in_use(), 1);
        assert!(space.used_bytes() >= LINE_SIZE);
    }

    #[test]
    fn objects_never_cross_block_boundaries() {
        let (mut mem, mut space) = setup(4 << 20);
        let mut last_block = None;
        for _ in 0..150 {
            let addr = space.alloc_for_copy(&mut mem, 6000).unwrap();
            let start_block = addr.block();
            let end_block = addr.add(6000 - 1).block();
            assert_eq!(start_block, end_block, "object crosses a block boundary");
            last_block = Some(start_block);
        }
        assert!(last_block.is_some());
        assert!(space.blocks_in_use() > 1);
    }

    #[test]
    #[should_panic(expected = "large object")]
    fn oversized_allocation_panics() {
        let (mut mem, mut space) = setup(1 << 20);
        space.alloc_for_copy(&mut mem, LARGE_OBJECT_THRESHOLD + 8);
    }

    #[test]
    fn exhaustion_returns_none() {
        let (mut mem, mut space) = setup(3 * BLOCK_SIZE);
        let mut allocations = 0;
        while space.alloc_for_copy(&mut mem, 4096).is_some() {
            allocations += 1;
            assert!(allocations < 1000, "space never reported exhaustion");
        }
        assert!(allocations > 0);
    }

    #[test]
    fn sweep_reclaims_unmarked_lines_and_frees_blocks() {
        let (mut mem, mut space) = setup(1 << 20);
        let keep = space.alloc_for_copy(&mut mem, 512).unwrap();
        let _dead = space.alloc_for_copy(&mut mem, 512).unwrap();
        let used_before = space.used_bytes();
        space.prepare_collection();
        space.mark_lines(&mut mem, keep, 512, Phase::MajorGc);
        let stats = space.sweep(&mut mem);
        assert!(space.used_bytes() < used_before);
        assert_eq!(stats.live_bytes, space.used_bytes());
        assert!(stats.bytes_reclaimed > 0);
        assert!(space.contains(keep));
    }

    #[test]
    fn fully_dead_blocks_are_unmapped() {
        let (mut mem, mut space) = setup(1 << 20);
        let addr = space.alloc_for_copy(&mut mem, 1024).unwrap();
        space.prepare_collection();
        let stats = space.sweep(&mut mem);
        assert_eq!(stats.free_blocks, 1);
        assert_eq!(space.blocks_in_use(), 0);
        assert!(!space.contains(addr));
        assert_eq!(space.used_bytes(), 0);
    }

    #[test]
    fn recyclable_blocks_are_reused_before_new_blocks() {
        let (mut mem, mut space) = setup(1 << 20);
        // Fill one block with several objects, keep only the first alive.
        let keep = space.alloc_for_copy(&mut mem, 2048).unwrap();
        for _ in 0..10 {
            space.alloc_for_copy(&mut mem, 2048).unwrap();
        }
        space.prepare_collection();
        space.mark_lines(&mut mem, keep, 2048, Phase::MajorGc);
        space.sweep(&mut mem);
        let blocks_before = space.blocks_in_use();
        // New allocation should reuse the recyclable block's holes.
        let addr = space.alloc_for_copy(&mut mem, 2048).unwrap();
        assert_eq!(space.blocks_in_use(), blocks_before);
        assert_ne!(
            addr.align_down(LINE_SIZE),
            keep.align_down(LINE_SIZE),
            "allocation must not overwrite live lines"
        );
    }

    #[test]
    fn mark_lines_accounts_side_metadata_writes() {
        let (mut mem, mut space) = setup(1 << 20);
        let addr = space.alloc_for_copy(&mut mem, 1000).unwrap();
        space.prepare_collection();
        let writes_before = mem.stats().phase_writes(MemoryKind::Pcm).get(Phase::MajorGc);
        assert!(space.mark_lines(&mut mem, addr, 1000, Phase::MajorGc));
        // Marking the same object again marks no new lines.
        assert!(!space.mark_lines(&mut mem, addr, 1000, Phase::MajorGc));
        let writes_after = mem.stats().phase_writes(MemoryKind::Pcm).get(Phase::MajorGc);
        let lines = 1000usize.div_ceil(LINE_SIZE) as u64;
        assert!(writes_after - writes_before >= lines);
    }

    #[test]
    fn retired_pages_are_fenced_and_pin_their_block() {
        let (mut mem, mut space) = setup(1 << 20);
        let addr = space.alloc_for_copy(&mut mem, 512).unwrap();
        let page = addr.align_down(PAGE_SIZE);
        space.retire_page(page);
        assert_eq!(space.retired_lines(), PAGE_SIZE / LINE_SIZE);
        // New allocations never land on the retired page.
        for _ in 0..200 {
            let a = space.alloc_for_copy(&mut mem, 256).unwrap();
            assert_ne!(a.align_down(PAGE_SIZE), page, "allocated on a retired page");
        }
        // Sweeping with nothing marked frees every line except the fence,
        // and the fenced block stays mapped.
        space.prepare_collection();
        space.sweep(&mut mem);
        assert_eq!(space.retired_lines(), PAGE_SIZE / LINE_SIZE);
        assert!(space.blocks_in_use() >= 1, "retired block must stay mapped");
        assert!(space.contains(page));
        let a = space.alloc_for_copy(&mut mem, 256).unwrap();
        assert_ne!(a.align_down(PAGE_SIZE), page);
    }

    #[test]
    fn usage_reports_mapped_blocks() {
        let (mut mem, mut space) = setup(1 << 20);
        space.alloc_for_copy(&mut mem, 100).unwrap();
        let usage = space.usage();
        assert_eq!(usage.mapped_bytes, BLOCK_SIZE);
        assert!(usage.used_bytes >= LINE_SIZE);
        assert!(space.total_bytes_allocated() >= 100);
    }
}
