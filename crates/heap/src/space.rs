//! Common space identifiers and usage reporting.

/// Identifies a heap space. The concrete set of spaces depends on the
/// collector configuration (Figure 3 of the paper); ids are stable small
/// integers so they can be stored in the page map.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpaceId(pub u8);

impl SpaceId {
    /// The nursery (DRAM in all Kingsguard configurations).
    pub const NURSERY: SpaceId = SpaceId(1);
    /// The observer space (KG-W only, DRAM).
    pub const OBSERVER: SpaceId = SpaceId(2);
    /// The mature space of the baseline collector, or the PCM mature space.
    pub const MATURE_PCM: SpaceId = SpaceId(3);
    /// The DRAM mature space (KG-W only).
    pub const MATURE_DRAM: SpaceId = SpaceId(4);
    /// The large object space in PCM (or the only LOS for the baselines).
    pub const LARGE_PCM: SpaceId = SpaceId(5);
    /// The DRAM large object space (KG-W only).
    pub const LARGE_DRAM: SpaceId = SpaceId(6);
    /// The metadata space.
    pub const METADATA: SpaceId = SpaceId(7);

    /// Raw id value.
    pub const fn raw(self) -> u8 {
        self.0
    }
}

impl std::fmt::Display for SpaceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match *self {
            SpaceId::NURSERY => "nursery",
            SpaceId::OBSERVER => "observer",
            SpaceId::MATURE_PCM => "mature-pcm",
            SpaceId::MATURE_DRAM => "mature-dram",
            SpaceId::LARGE_PCM => "large-pcm",
            SpaceId::LARGE_DRAM => "large-dram",
            SpaceId::METADATA => "metadata",
            SpaceId(other) => return write!(f, "space-{other}"),
        };
        f.write_str(name)
    }
}

/// Space occupancy snapshot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpaceUsage {
    /// Bytes currently holding live or not-yet-collected objects.
    pub used_bytes: usize,
    /// Bytes of virtual memory currently mapped for this space.
    pub mapped_bytes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names() {
        assert_eq!(SpaceId::NURSERY.to_string(), "nursery");
        assert_eq!(SpaceId::MATURE_DRAM.to_string(), "mature-dram");
        assert_eq!(SpaceId(42).to_string(), "space-42");
    }

    #[test]
    fn ids_are_distinct() {
        let ids = [
            SpaceId::NURSERY,
            SpaceId::OBSERVER,
            SpaceId::MATURE_PCM,
            SpaceId::MATURE_DRAM,
            SpaceId::LARGE_PCM,
            SpaceId::LARGE_DRAM,
            SpaceId::METADATA,
        ];
        for (i, a) in ids.iter().enumerate() {
            for b in &ids[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
