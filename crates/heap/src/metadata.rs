//! Metadata space and the metadata optimization (MDO).
//!
//! The JVM and collector write object metadata in addition to application
//! data: mark state, remembered-set buffers, treadmill pointers. In the
//! baseline collectors this metadata lives wherever the owning space lives —
//! which, for a PCM mature space, turns every major collection into a PCM
//! write storm (one header write per live object).
//!
//! The metadata optimization of Kingsguard-writers (Section 4.2.5) decouples
//! mark state from PCM objects: for every 4 MB region of the PCM mature
//! space the collector reserves a 262 KB mark-state table in DRAM (a 6.25 %
//! overhead, one byte per 16 object bytes). Objects of 16 bytes or less keep
//! using their header mark bit (they carry a "small" flag).

use std::collections::HashMap;

use hybrid_mem::{Address, MemoryKind, MemorySystem, Phase, PAGE_SIZE};

use crate::bump::BumpAllocator;
use crate::object::ObjectRef;
use crate::space::{SpaceId, SpaceUsage};

/// Size of the PCM region covered by one mark-state table (4 MB).
pub const MARK_TABLE_REGION: usize = 4 << 20;

/// Granularity of mark-state entries: one byte of table per 16 bytes of
/// region, giving the paper's 262 KB (256 KiB) table per 4 MB region.
pub const MARK_TABLE_GRANULE: usize = 16;

/// Size of one mark-state table in bytes.
pub const MARK_TABLE_BYTES: usize = MARK_TABLE_REGION / MARK_TABLE_GRANULE;

/// The metadata space: a bump-allocated region holding collector side
/// metadata (mark-state tables, remembered-set buffers).
#[derive(Debug)]
pub struct MetadataSpace {
    kind: MemoryKind,
    bump: BumpAllocator,
    mark_tables: HashMap<u64, Address>,
    remset_buffer: Option<Address>,
    remset_cursor: usize,
    table_bytes: u64,
}

impl MetadataSpace {
    /// Creates a metadata space backed by `kind` memory over `capacity`
    /// bytes starting at `base`.
    pub fn new(kind: MemoryKind, base: Address, capacity: usize) -> Self {
        MetadataSpace {
            kind,
            bump: BumpAllocator::new(base, capacity),
            mark_tables: HashMap::new(),
            remset_buffer: None,
            remset_cursor: 0,
            table_bytes: 0,
        }
    }

    /// The memory technology holding the metadata.
    pub fn kind(&self) -> MemoryKind {
        self.kind
    }

    /// Bytes of metadata allocated so far.
    pub fn used_bytes(&self) -> usize {
        self.bump.used_bytes()
    }

    /// Bytes consumed by mark-state tables alone.
    pub fn mark_table_bytes(&self) -> u64 {
        self.table_bytes
    }

    /// Usage snapshot.
    pub fn usage(&self) -> SpaceUsage {
        SpaceUsage {
            used_bytes: self.bump.used_bytes(),
            mapped_bytes: self.bump.mapped_bytes(),
        }
    }

    /// Allocates a raw metadata table of `bytes` bytes.
    ///
    /// # Panics
    ///
    /// Panics if the metadata space is exhausted; metadata is sized as a
    /// fraction of the heap and exhausting it indicates a configuration
    /// error.
    pub fn alloc_table(&mut self, mem: &mut MemorySystem, bytes: usize) -> Address {
        self.bump
            .alloc(mem, bytes, self.kind, SpaceId::METADATA)
            .expect("metadata space exhausted; increase its capacity")
    }

    fn table_for(&mut self, mem: &mut MemorySystem, region_base: Address) -> Address {
        if let Some(&table) = self.mark_tables.get(&region_base.raw()) {
            return table;
        }
        let table = self.alloc_table(mem, MARK_TABLE_BYTES);
        self.table_bytes += MARK_TABLE_BYTES as u64;
        self.mark_tables.insert(region_base.raw(), table);
        table
    }

    fn mark_entry_addr(&mut self, mem: &mut MemorySystem, obj: ObjectRef) -> Address {
        let region_base = obj.address().align_down(MARK_TABLE_REGION);
        let table = self.table_for(mem, region_base);
        let offset = obj.address().diff(region_base) / MARK_TABLE_GRANULE;
        table.add(offset)
    }

    /// Sets the out-of-object mark state for `obj` (the MDO path). The store
    /// is charged to `phase` and lands in this space's memory technology.
    /// Returns `true` if the object was newly marked.
    pub fn set_object_mark(&mut self, mem: &mut MemorySystem, obj: ObjectRef, phase: Phase) -> bool {
        let addr = self.mark_entry_addr(mem, obj);
        let mut byte = [0u8];
        mem.read_bytes(addr, &mut byte, phase);
        if byte[0] != 0 {
            return false;
        }
        mem.write_bytes(addr, &[1u8], phase);
        true
    }

    /// Reads the out-of-object mark state for `obj`.
    pub fn object_mark(&mut self, mem: &mut MemorySystem, obj: ObjectRef, phase: Phase) -> bool {
        let addr = self.mark_entry_addr(mem, obj);
        let mut byte = [0u8];
        mem.read_bytes(addr, &mut byte, phase);
        byte[0] != 0
    }

    /// Clears the mark-state tables at the start of a major collection.
    /// The clearing writes are charged to the collector (`phase`).
    pub fn clear_object_marks(&mut self, mem: &mut MemorySystem, phase: Phase) {
        let tables: Vec<Address> = self.mark_tables.values().copied().collect();
        for table in tables {
            // Zeroing the table is a bulk write over the table bytes.
            mem.zero(table, MARK_TABLE_BYTES, phase);
        }
    }

    /// Number of mark-state tables allocated so far.
    pub fn mark_table_count(&self) -> usize {
        self.mark_tables.len()
    }

    /// Accounts one remembered-set buffer store (the write performed by the
    /// generational write barrier when it remembers a slot, Figure 4 lines
    /// 7–12).
    pub fn record_remset_store(&mut self, mem: &mut MemorySystem, phase: Phase) {
        let buffer = match self.remset_buffer {
            Some(buffer) => buffer,
            None => {
                let buffer = self.alloc_table(mem, PAGE_SIZE);
                self.remset_buffer = Some(buffer);
                buffer
            }
        };
        let addr = buffer.add(self.remset_cursor % PAGE_SIZE);
        self.remset_cursor = (self.remset_cursor + 8) % PAGE_SIZE;
        mem.account_write(addr, phase);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_mem::MemoryConfig;

    fn setup(kind: MemoryKind) -> (MemorySystem, MetadataSpace) {
        let mut mem = MemorySystem::new(MemoryConfig::architecture_independent());
        let base = mem.reserve_extent("metadata", 16 << 20);
        (mem, MetadataSpace::new(kind, base, 16 << 20))
    }

    #[test]
    fn mark_state_round_trip_in_dram() {
        let (mut mem, mut meta) = setup(MemoryKind::Dram);
        let obj = ObjectRef::from_address(Address::new(0x4000_0000));
        assert!(!meta.object_mark(&mut mem, obj, Phase::MajorGc));
        assert!(meta.set_object_mark(&mut mem, obj, Phase::MajorGc));
        assert!(
            !meta.set_object_mark(&mut mem, obj, Phase::MajorGc),
            "second mark is not new"
        );
        assert!(meta.object_mark(&mut mem, obj, Phase::MajorGc));
        // The mark stores landed in DRAM, not PCM: that is the whole point
        // of the metadata optimization.
        let stats = mem.stats();
        assert!(stats.writes(MemoryKind::Dram) > 0);
        assert_eq!(stats.writes(MemoryKind::Pcm), 0);
    }

    #[test]
    fn one_table_per_4mb_region() {
        let (mut mem, mut meta) = setup(MemoryKind::Dram);
        let a = ObjectRef::from_address(Address::new(0x4000_0000));
        let b = ObjectRef::from_address(Address::new(0x4000_0000 + 1024));
        let c = ObjectRef::from_address(Address::new(0x4000_0000 + MARK_TABLE_REGION as u64 + 8));
        meta.set_object_mark(&mut mem, a, Phase::MajorGc);
        meta.set_object_mark(&mut mem, b, Phase::MajorGc);
        assert_eq!(meta.mark_table_count(), 1);
        meta.set_object_mark(&mut mem, c, Phase::MajorGc);
        assert_eq!(meta.mark_table_count(), 2);
        assert_eq!(meta.mark_table_bytes(), 2 * MARK_TABLE_BYTES as u64);
    }

    #[test]
    fn table_overhead_matches_paper() {
        // 262 KB (256 KiB) per 4 MB region, a 6.25% overhead.
        assert_eq!(MARK_TABLE_BYTES, 256 * 1024);
        assert!((MARK_TABLE_BYTES as f64 / MARK_TABLE_REGION as f64 - 0.0625).abs() < 1e-12);
    }

    #[test]
    fn clear_object_marks_resets_state() {
        let (mut mem, mut meta) = setup(MemoryKind::Dram);
        let obj = ObjectRef::from_address(Address::new(0x5000_0000));
        meta.set_object_mark(&mut mem, obj, Phase::MajorGc);
        meta.clear_object_marks(&mut mem, Phase::MajorGc);
        assert!(!meta.object_mark(&mut mem, obj, Phase::MajorGc));
    }

    #[test]
    fn objects_16_bytes_apart_share_no_entry() {
        let (mut mem, mut meta) = setup(MemoryKind::Dram);
        let a = ObjectRef::from_address(Address::new(0x6000_0000));
        let b = ObjectRef::from_address(Address::new(0x6000_0000 + MARK_TABLE_GRANULE as u64));
        meta.set_object_mark(&mut mem, a, Phase::MajorGc);
        assert!(!meta.object_mark(&mut mem, b, Phase::MajorGc));
    }

    #[test]
    fn remset_stores_are_charged_to_metadata_kind() {
        let (mut mem, mut meta) = setup(MemoryKind::Pcm);
        for _ in 0..10 {
            meta.record_remset_store(&mut mem, Phase::Mutator);
        }
        let stats = mem.stats();
        assert!(stats.phase_writes(MemoryKind::Pcm).get(Phase::Mutator) >= 10);
    }

    #[test]
    fn used_bytes_grow_with_tables() {
        let (mut mem, mut meta) = setup(MemoryKind::Dram);
        assert_eq!(meta.used_bytes(), 0);
        meta.set_object_mark(
            &mut mem,
            ObjectRef::from_address(Address::new(0x7000_0000)),
            Phase::MajorGc,
        );
        assert!(meta.used_bytes() >= MARK_TABLE_BYTES);
        assert!(meta.usage().mapped_bytes >= MARK_TABLE_BYTES);
    }
}
