//! MMTk-style heap substrate for the Kingsguard write-rationing collectors.
//!
//! This crate provides the building blocks that Jikes RVM / MMTk provide to
//! the collectors in the paper, implemented from scratch on top of the
//! [`hybrid_mem`] simulated memory system:
//!
//! * an **object model** with a status word, an info word describing the
//!   object's reference slots and primitive payload, and the extra *write
//!   word* that Kingsguard-writers adds to every header ([`object`]),
//! * **bump-pointer allocation** ([`bump`]) and contiguous **copy spaces**
//!   used for the nursery and the observer space ([`copyspace`]),
//! * an **Immix mark-region space** with 32 KB blocks and 256 B lines,
//!   line/block marking, recyclable-block allocation and headroom for
//!   copying during collection ([`immix`]),
//! * a **large object space** managed by a treadmill ([`los`]),
//! * a **metadata space** holding collector side metadata, including the
//!   DRAM mark-state tables of the paper's metadata optimization (MDO)
//!   ([`metadata`]),
//! * **remembered sets** ([`remset`]) and a **root table** with stable
//!   handles ([`roots`]).
//!
//! The collectors themselves (GenImmix, KG-N, KG-W) live in the `kingsguard`
//! crate.

#![forbid(unsafe_code)]

pub mod bump;
pub mod copyspace;
pub mod immix;
pub mod los;
pub mod metadata;
pub mod object;
pub mod remset;
pub mod roots;
pub mod space;
pub mod tlab;

pub use copyspace::CopySpace;
pub use immix::ImmixSpace;
pub use los::LargeObjectSpace;
pub use metadata::MetadataSpace;
pub use object::{
    decode_info_word, status_word_is_forwarded, ObjectRef, ObjectShape, HEADER_BYTES, INFO_WORD_OFFSET,
    LARGE_OBJECT_THRESHOLD, REF_SLOT_BYTES, STATUS_WORD_OFFSET,
};
pub use remset::RememberedSet;
pub use roots::{Handle, RootTable};
pub use space::{SpaceId, SpaceUsage};
pub use tlab::Tlab;
