//! Root table with stable handles.
//!
//! Workload code (the synthetic mutators) cannot hold raw object addresses
//! across a collection because collections move objects. Instead it holds
//! [`Handle`]s into a root table owned by the runtime; the collector treats
//! every table entry as a root and updates it when the referent moves —
//! exactly the role stacks, registers and JNI handle blocks play for a real
//! JVM.

use hybrid_mem::Address;

use crate::object::ObjectRef;

/// A stable index into the root table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Handle(u32);

impl Handle {
    /// Raw index value (diagnostic only).
    pub fn index(self) -> u32 {
        self.0
    }
}

/// A table of GC roots addressed by stable handles.
#[derive(Debug, Default)]
pub struct RootTable {
    entries: Vec<Address>,
    free: Vec<u32>,
    live: usize,
}

impl RootTable {
    /// Creates an empty root table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live roots.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Returns `true` if the table holds no roots.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Registers `obj` as a root and returns its handle.
    pub fn add(&mut self, obj: ObjectRef) -> Handle {
        debug_assert!(!obj.is_null(), "cannot root the null reference");
        self.live += 1;
        if let Some(index) = self.free.pop() {
            self.entries[index as usize] = obj.address();
            Handle(index)
        } else {
            self.entries.push(obj.address());
            Handle((self.entries.len() - 1) as u32)
        }
    }

    /// Returns the current referent of `handle`.
    ///
    /// # Panics
    ///
    /// Panics if the handle has been removed.
    pub fn get(&self, handle: Handle) -> ObjectRef {
        let addr = self.entries[handle.0 as usize];
        assert!(!addr.is_zero(), "use of removed root handle {handle:?}");
        ObjectRef::from_address(addr)
    }

    /// Replaces the referent of `handle` (used by the collector when the
    /// object moves).
    pub fn set(&mut self, handle: Handle, obj: ObjectRef) {
        debug_assert!(!obj.is_null());
        self.entries[handle.0 as usize] = obj.address();
    }

    /// Unregisters a root, making its object eligible for collection.
    pub fn remove(&mut self, handle: Handle) {
        let entry = &mut self.entries[handle.0 as usize];
        if !entry.is_zero() {
            *entry = Address::ZERO;
            self.free.push(handle.0);
            self.live -= 1;
        }
    }

    /// Iterates over the live root entries, yielding `(handle, object)`.
    pub fn iter(&self) -> impl Iterator<Item = (Handle, ObjectRef)> + '_ {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, addr)| !addr.is_zero())
            .map(|(i, &addr)| (Handle(i as u32), ObjectRef::from_address(addr)))
    }

    /// Applies `update` to every live root, storing the returned reference
    /// back into the table. The collector uses this to redirect roots to the
    /// new copies of moved objects.
    pub fn update_roots(&mut self, mut update: impl FnMut(ObjectRef) -> ObjectRef) {
        for entry in &mut self.entries {
            if !entry.is_zero() {
                let new = update(ObjectRef::from_address(*entry));
                debug_assert!(!new.is_null(), "root updated to null");
                *entry = new.address();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(addr: u64) -> ObjectRef {
        ObjectRef::from_address(Address::new(addr))
    }

    #[test]
    fn add_get_set_remove() {
        let mut roots = RootTable::new();
        let h = roots.add(obj(0x1000));
        assert_eq!(roots.get(h), obj(0x1000));
        roots.set(h, obj(0x2000));
        assert_eq!(roots.get(h), obj(0x2000));
        assert_eq!(roots.len(), 1);
        roots.remove(h);
        assert!(roots.is_empty());
    }

    #[test]
    #[should_panic(expected = "removed root handle")]
    fn get_after_remove_panics() {
        let mut roots = RootTable::new();
        let h = roots.add(obj(0x1000));
        roots.remove(h);
        roots.get(h);
    }

    #[test]
    fn handles_are_recycled() {
        let mut roots = RootTable::new();
        let a = roots.add(obj(0x1000));
        roots.remove(a);
        let b = roots.add(obj(0x3000));
        assert_eq!(a.index(), b.index());
        assert_eq!(roots.len(), 1);
    }

    #[test]
    fn double_remove_is_harmless() {
        let mut roots = RootTable::new();
        let a = roots.add(obj(0x1000));
        roots.remove(a);
        roots.remove(a);
        assert_eq!(roots.len(), 0);
        // The free list must not contain the slot twice.
        let b = roots.add(obj(0x2000));
        let c = roots.add(obj(0x3000));
        assert_ne!(b.index(), c.index());
    }

    #[test]
    fn update_roots_rewrites_every_live_entry() {
        let mut roots = RootTable::new();
        let h1 = roots.add(obj(0x1000));
        let h2 = roots.add(obj(0x2000));
        let removed = roots.add(obj(0x3000));
        roots.remove(removed);
        roots.update_roots(|o| ObjectRef::from_address(o.address().add(8)));
        assert_eq!(roots.get(h1), obj(0x1008));
        assert_eq!(roots.get(h2), obj(0x2008));
    }

    #[test]
    fn iter_skips_removed_entries() {
        let mut roots = RootTable::new();
        let _a = roots.add(obj(0x1000));
        let b = roots.add(obj(0x2000));
        roots.remove(b);
        assert_eq!(roots.iter().count(), 1);
    }
}
