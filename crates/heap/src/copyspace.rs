//! Contiguous copy spaces: the nursery and the observer space.
//!
//! Both the nursery and KG-W's observer space are contiguous bump-allocated
//! regions whose survivors are evacuated elsewhere during collection, after
//! which the whole region is reset. The observer space is simply a second
//! copy space that is twice the nursery size (Section 4.2.1).

use hybrid_mem::{MemoryKind, MemorySystem, Phase};

use crate::bump::BumpAllocator;
use crate::object::{ObjectRef, ObjectShape};
use crate::space::{SpaceId, SpaceUsage};

/// A contiguous, bump-allocated, wholesale-evacuated space.
#[derive(Debug)]
pub struct CopySpace {
    id: SpaceId,
    kind: MemoryKind,
    bump: BumpAllocator,
    objects_allocated: u64,
    bytes_allocated: u64,
}

impl CopySpace {
    /// Creates a copy space of `capacity` bytes backed by `kind` memory.
    /// The caller reserves the extent from the memory system and passes its
    /// base address via `base`.
    pub fn new(id: SpaceId, kind: MemoryKind, base: hybrid_mem::Address, capacity: usize) -> Self {
        CopySpace {
            id,
            kind,
            bump: BumpAllocator::new(base, capacity),
            objects_allocated: 0,
            bytes_allocated: 0,
        }
    }

    /// This space's identifier.
    pub fn id(&self) -> SpaceId {
        self.id
    }

    /// The memory technology backing this space.
    pub fn kind(&self) -> MemoryKind {
        self.kind
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.bump.limit().diff(self.bump.base())
    }

    /// Base address of this space's reserved region (for passive
    /// inspection; see the `kingsguard-check` sanitizer).
    pub fn base(&self) -> hybrid_mem::Address {
        self.bump.base()
    }

    /// Bytes currently allocated (since the last reset).
    pub fn used_bytes(&self) -> usize {
        self.bump.used_bytes()
    }

    /// Remaining free bytes.
    pub fn free_bytes(&self) -> usize {
        self.bump.remaining_bytes()
    }

    /// Cumulative bytes allocated in this space over the whole run.
    pub fn total_bytes_allocated(&self) -> u64 {
        self.bytes_allocated
    }

    /// Cumulative objects allocated in this space over the whole run.
    pub fn total_objects_allocated(&self) -> u64 {
        self.objects_allocated
    }

    /// Returns `true` if `addr` points into currently allocated memory of
    /// this space.
    pub fn contains(&self, addr: hybrid_mem::Address) -> bool {
        self.bump.contains(addr)
    }

    /// Returns `true` if `addr` lies in this space's reserved region
    /// (allocated or not).
    pub fn in_region(&self, addr: hybrid_mem::Address) -> bool {
        self.bump.in_region(addr)
    }

    /// Allocates and initialises an object of `shape`, charging the zeroing
    /// and header-initialisation writes to `phase`.
    ///
    /// Returns `None` when the space is full — the collector's cue to run.
    pub fn alloc(
        &mut self,
        mem: &mut MemorySystem,
        shape: ObjectShape,
        type_id: u16,
        phase: Phase,
    ) -> Option<ObjectRef> {
        let addr = self.bump.alloc(mem, shape.size(), self.kind, self.id)?;
        Some(self.init_object(mem, addr, shape, type_id, phase))
    }

    /// Zero-fills and initialises a freshly allocated object at `addr` and
    /// counts it against this space's cumulative totals. This is the second
    /// half of [`CopySpace::alloc`], exposed so the TLAB fast path (bump
    /// inside a window carved with [`CopySpace::carve_tlab`]) performs the
    /// identical initialisation sequence: memory is zeroed first (the "Why
    /// Nothing Matters" zeroing writes), then the header is initialised.
    pub fn init_object(
        &mut self,
        mem: &mut MemorySystem,
        addr: hybrid_mem::Address,
        shape: ObjectShape,
        type_id: u16,
        phase: Phase,
    ) -> ObjectRef {
        let size = shape.size();
        mem.zero(addr, size, phase);
        let obj = ObjectRef::from_address(addr);
        obj.initialize(mem, shape, type_id, phase);
        self.objects_allocated += 1;
        self.bytes_allocated += size as u64;
        obj
    }

    /// Allocates raw room for a copied object of `size` bytes without
    /// zeroing (the collector copies the full object bytes over it).
    pub fn alloc_for_copy(&mut self, mem: &mut MemorySystem, size: usize) -> Option<hybrid_mem::Address> {
        self.bump.alloc(mem, size, self.kind, self.id)
    }

    /// Carves a thread-local allocation window for a mutator context: at
    /// least `min_size` bytes, at most `max(chunk_size, min_size)`
    /// (`chunk_size == 0` carves exactly `min_size` — see [`crate::tlab`]).
    /// Objects bump-allocated inside the window are initialised and counted
    /// through [`CopySpace::init_object`]. Returns `None` when the space
    /// cannot fit `min_size` — the mutator's cue to request a collection.
    pub fn carve_tlab(
        &mut self,
        mem: &mut MemorySystem,
        min_size: usize,
        chunk_size: usize,
    ) -> Option<crate::tlab::Tlab> {
        self.bump.carve(mem, min_size, chunk_size, self.kind, self.id)
    }

    /// Resets the space after its survivors have been evacuated.
    pub fn reset(&mut self) {
        self.bump.reset();
    }

    /// Current usage snapshot.
    pub fn usage(&self) -> SpaceUsage {
        SpaceUsage {
            used_bytes: self.bump.used_bytes(),
            mapped_bytes: self.bump.mapped_bytes(),
        }
    }

    /// Iterates over the objects currently allocated in this space, in
    /// allocation order. The callback receives each object; iteration uses
    /// the object sizes stored in headers, so it must only be called while
    /// the space contains a valid sequence of objects (not mid-copy).
    pub fn iter_objects(
        &self,
        mem: &mut MemorySystem,
        phase: Phase,
        mut visit: impl FnMut(&mut MemorySystem, ObjectRef),
    ) {
        let mut cursor = self.bump.base();
        let end = self.bump.cursor();
        while cursor < end {
            let obj = ObjectRef::from_address(cursor);
            let size = obj.size(mem, phase);
            visit(mem, obj);
            cursor = cursor.add(size);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_mem::{Address, MemoryConfig};

    fn setup(capacity: usize) -> (MemorySystem, CopySpace) {
        let mut mem = MemorySystem::new(MemoryConfig::architecture_independent());
        let base = mem.reserve_extent("nursery", capacity);
        (
            mem,
            CopySpace::new(SpaceId::NURSERY, MemoryKind::Dram, base, capacity),
        )
    }

    #[test]
    fn alloc_initialises_header_and_tracks_usage() {
        let (mut mem, mut space) = setup(64 * 1024);
        let shape = ObjectShape::new(2, 16);
        let obj = space.alloc(&mut mem, shape, 5, Phase::Mutator).unwrap();
        assert_eq!(obj.shape(&mut mem, Phase::Mutator), shape);
        assert_eq!(space.used_bytes(), shape.size());
        assert_eq!(space.total_objects_allocated(), 1);
        assert!(space.contains(obj.address()));
        assert_eq!(mem.kind_of(obj.address()), MemoryKind::Dram);
    }

    #[test]
    fn alloc_returns_none_when_full() {
        let (mut mem, mut space) = setup(4096);
        let shape = ObjectShape::new(0, 1000);
        let mut count = 0;
        while space.alloc(&mut mem, shape, 0, Phase::Mutator).is_some() {
            count += 1;
        }
        assert_eq!(count, 4096 / shape.size());
        assert!(space.free_bytes() < shape.size());
    }

    #[test]
    fn reset_allows_reuse_but_keeps_cumulative_counters() {
        let (mut mem, mut space) = setup(8192);
        space
            .alloc(&mut mem, ObjectShape::new(0, 100), 0, Phase::Mutator)
            .unwrap();
        let total = space.total_bytes_allocated();
        space.reset();
        assert_eq!(space.used_bytes(), 0);
        assert_eq!(space.total_bytes_allocated(), total);
        assert!(space
            .alloc(&mut mem, ObjectShape::new(0, 100), 0, Phase::Mutator)
            .is_some());
        assert!(space.total_bytes_allocated() > total);
    }

    #[test]
    fn iter_objects_visits_allocation_order() {
        let (mut mem, mut space) = setup(64 * 1024);
        let a = space
            .alloc(&mut mem, ObjectShape::new(1, 8), 1, Phase::Mutator)
            .unwrap();
        let b = space
            .alloc(&mut mem, ObjectShape::new(0, 64), 2, Phase::Mutator)
            .unwrap();
        let c = space
            .alloc(&mut mem, ObjectShape::new(3, 0), 3, Phase::Mutator)
            .unwrap();
        let mut seen = Vec::new();
        space.iter_objects(&mut mem, Phase::MajorGc, |_, obj| seen.push(obj));
        assert_eq!(seen, vec![a, b, c]);
    }

    #[test]
    fn alloc_for_copy_does_not_zero_or_count_objects() {
        let (mut mem, mut space) = setup(8192);
        let addr = space.alloc_for_copy(&mut mem, 128).unwrap();
        assert_eq!(space.total_objects_allocated(), 0);
        assert!(space.contains(addr));
    }

    #[test]
    fn exact_tlab_carving_matches_direct_bump_addresses() {
        let (mut mem, mut space) = setup(64 * 1024);
        let (mut mem2, mut space2) = setup(64 * 1024);
        for size in [24usize, 40, 64, 13] {
            let direct = space.alloc_for_copy(&mut mem, size).unwrap();
            let mut tlab = space2.carve_tlab(&mut mem2, size, 0).unwrap();
            let carved = tlab.alloc(size).unwrap();
            assert_eq!(direct, carved, "exact mode must mirror direct bumping");
            assert_eq!(tlab.remaining_bytes(), 0, "exact windows are single-object");
            space2.init_object(
                &mut mem2,
                carved,
                ObjectShape::primitive(size as u32),
                1,
                Phase::Mutator,
            );
        }
        assert_eq!(space.used_bytes(), space2.used_bytes());
        assert_eq!(space2.total_objects_allocated(), 4);
    }

    #[test]
    fn chunked_tlab_carving_serves_many_objects_per_window() {
        let (mut mem, mut space) = setup(64 * 1024);
        let mut tlab = space.carve_tlab(&mut mem, 32, 1024).unwrap();
        let mut served = 0;
        while tlab.alloc(32).is_some() {
            served += 1;
        }
        assert_eq!(served, 1024 / 32);
        assert_eq!(space.used_bytes(), 1024, "the whole window is carved up front");
        // Exhausted space refuses to carve: the collection trigger.
        let (mut mem3, mut space3) = setup(4096);
        assert!(space3.carve_tlab(&mut mem3, 4096, 0).is_some());
        assert!(space3.carve_tlab(&mut mem3, 8, 1024).is_none());
    }

    #[test]
    fn in_region_covers_unallocated_part() {
        let (_, space) = setup(8192);
        let base = space.bump.base();
        assert!(space.in_region(base.add(5000)));
        assert!(!space.contains(base.add(5000)));
        assert!(!space.in_region(Address::new(64)));
    }
}
