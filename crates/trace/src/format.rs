//! The versioned `.kgtrace` on-disk format.
//!
//! Traces can hold millions of events, so unlike the diff-friendly text
//! `.kgprof` profiles they are stored as a compact binary stream:
//!
//! ```text
//! magic      8 bytes   "KGTRACE\0"
//! version    u32 LE    current: 2
//! workload   u32 LE length + UTF-8 bytes
//! seed       u64 LE
//! scale      u64 LE
//! nursery    u64 LE    nursery bytes of the recording heap
//! observer   u64 LE    observer-space bytes of the recording heap
//! site-hash  u64 LE    site-map hash (0 = unhashed)
//! fault-seed u64 LE    fault-schedule seed (0 = fault-free; v2+)
//! count      u64 LE    number of events
//! events     count × (opcode u8 + LEB128 operands)
//! checksum   u64 LE    FNV-1a over every preceding byte
//! ```
//!
//! Event operands are unsigned LEB128 varints, so the common case — context
//! 0, small slots, short writes — costs one byte per operand. The format is
//! versioned like `.kgprof`: the parser accepts versions
//! [`FORMAT_MIN_VERSION`]`..=`[`FORMAT_VERSION`] and rejects everything
//! else. Corruption is detected three ways: truncation (decoding runs out
//! of bytes), a declared event count that does not match the stream, and a
//! trailing FNV-1a checksum that catches in-place bit flips.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use kingsguard::{CollectKind, MutatorConfig};

use crate::event::{Trace, TraceEvent, TraceHeader};

/// Leading magic bytes of every `.kgtrace` file.
pub const FORMAT_MAGIC: &[u8; 8] = b"KGTRACE\0";

/// Current format version. Bump when the header or event layout changes.
/// Version 2 added the fault-schedule seed to the header; version-1 files
/// still parse (their fault seed reads as 0, i.e. fault-free).
pub const FORMAT_VERSION: u32 = 2;

/// Oldest version this build still reads.
pub const FORMAT_MIN_VERSION: u32 = 1;

/// Canonical file extension.
pub const FILE_EXTENSION: &str = "kgtrace";

const OP_SPAWN: u8 = 0;
const OP_RETIRE: u8 = 1;
const OP_ALLOC: u8 = 2;
const OP_ALLOC_LARGE: u8 = 3;
const OP_WRITE_REF: u8 = 4;
const OP_WRITE_PRIM: u8 = 5;
const OP_READ_REF: u8 = 6;
const OP_READ_PRIM: u8 = 7;
const OP_RELEASE: u8 = 8;
const OP_SAFEPOINT: u8 = 9;
const OP_COLLECT_YOUNG: u8 = 10;
const OP_COLLECT_NURSERY: u8 = 11;
const OP_COLLECT_OBSERVER: u8 = 12;
const OP_COLLECT_FULL: u8 = 13;
const OP_HOOK: u8 = 14;

/// Everything that can go wrong reading or writing a trace.
#[derive(Debug)]
pub enum TraceError {
    /// The file could not be read or written.
    Io(io::Error),
    /// The magic bytes are missing or wrong (not a `.kgtrace` file).
    BadMagic,
    /// The file declares a version this build does not understand.
    UnsupportedVersion(u32),
    /// The stream ended before the declared content (truncated file).
    Truncated {
        /// Byte offset at which the decoder ran out of input.
        offset: usize,
    },
    /// An event could not be decoded.
    BadEvent {
        /// Index of the malformed event.
        index: u64,
        /// Byte offset of its opcode.
        offset: usize,
        /// What was wrong.
        reason: String,
    },
    /// The header is malformed (bad string, absurd length, ...).
    BadHeader(String),
    /// The declared event count does not match the stream.
    CountMismatch {
        /// Events the header declared.
        declared: u64,
        /// Events actually decoded.
        found: u64,
    },
    /// The trailing checksum does not match the content (bit corruption).
    ChecksumMismatch {
        /// Checksum stored in the file.
        stored: u64,
        /// Checksum computed over the content.
        computed: u64,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(err) => write!(f, "trace I/O error: {err}"),
            TraceError::BadMagic => write!(f, "not a .kgtrace file (bad magic)"),
            TraceError::UnsupportedVersion(version) => write!(
                f,
                "unsupported trace version {version} (this build reads versions \
                 {FORMAT_MIN_VERSION}..={FORMAT_VERSION})"
            ),
            TraceError::Truncated { offset } => {
                write!(f, "trace truncated: input ended at byte {offset}")
            }
            TraceError::BadEvent {
                index,
                offset,
                reason,
            } => write!(f, "bad trace event {index} at byte {offset}: {reason}"),
            TraceError::BadHeader(reason) => write!(f, "bad trace header: {reason}"),
            TraceError::CountMismatch { declared, found } => {
                write!(f, "trace declares {declared} events but contains {found}")
            }
            TraceError::ChecksumMismatch { stored, computed } => write!(
                f,
                "trace checksum mismatch: stored {stored:016x}, computed {computed:016x} \
                 (file corrupted)"
            ),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<io::Error> for TraceError {
    fn from(err: io::Error) -> Self {
        TraceError::Io(err)
    }
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn push_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn push_u32(out: &mut Vec<u8>, value: u32) {
    out.extend_from_slice(&value.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, value: u64) {
    out.extend_from_slice(&value.to_le_bytes());
}

fn encode_event(out: &mut Vec<u8>, event: &TraceEvent) {
    match *event {
        TraceEvent::Spawn { ctx, config } => {
            out.push(OP_SPAWN);
            push_varint(out, ctx as u64);
            push_varint(out, config.tlab_bytes as u64);
            push_varint(out, config.ssb_capacity as u64);
        }
        TraceEvent::Retire { ctx } => {
            out.push(OP_RETIRE);
            push_varint(out, ctx as u64);
        }
        TraceEvent::Alloc {
            ctx,
            ref_slots,
            payload_bytes,
            type_id,
            site,
            large,
        } => {
            out.push(if large { OP_ALLOC_LARGE } else { OP_ALLOC });
            push_varint(out, ctx as u64);
            push_varint(out, ref_slots as u64);
            push_varint(out, payload_bytes as u64);
            push_varint(out, type_id as u64);
            push_varint(out, site as u64);
        }
        TraceEvent::WriteRef {
            ctx,
            src,
            slot,
            target,
        } => {
            out.push(OP_WRITE_REF);
            push_varint(out, ctx as u64);
            push_varint(out, src);
            push_varint(out, slot as u64);
            // 0 encodes a null store; allocation indices shift up by one.
            push_varint(out, target.map(|t| t + 1).unwrap_or(0));
        }
        TraceEvent::WritePrim {
            ctx,
            src,
            offset,
            len,
        } => {
            out.push(OP_WRITE_PRIM);
            push_varint(out, ctx as u64);
            push_varint(out, src);
            push_varint(out, offset);
            push_varint(out, len);
        }
        TraceEvent::ReadRef { ctx, src, slot } => {
            out.push(OP_READ_REF);
            push_varint(out, ctx as u64);
            push_varint(out, src);
            push_varint(out, slot as u64);
        }
        TraceEvent::ReadPrim {
            ctx,
            src,
            offset,
            len,
        } => {
            out.push(OP_READ_PRIM);
            push_varint(out, ctx as u64);
            push_varint(out, src);
            push_varint(out, offset);
            push_varint(out, len);
        }
        TraceEvent::Release { obj } => {
            out.push(OP_RELEASE);
            push_varint(out, obj);
        }
        TraceEvent::Safepoint => out.push(OP_SAFEPOINT),
        TraceEvent::Collect { kind } => out.push(match kind {
            CollectKind::Young => OP_COLLECT_YOUNG,
            CollectKind::Nursery => OP_COLLECT_NURSERY,
            CollectKind::Observer => OP_COLLECT_OBSERVER,
            CollectKind::Full => OP_COLLECT_FULL,
        }),
        TraceEvent::Hook {
            allocated_bytes,
            total_bytes,
            elapsed_ms,
        } => {
            out.push(OP_HOOK);
            push_varint(out, allocated_bytes);
            push_varint(out, total_bytes);
            push_varint(out, elapsed_ms);
        }
    }
}

/// FNV-1a over `bytes` (the same fold `workloads::site_map_hash` uses).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Serializes a trace to the binary format.
pub fn trace_to_bytes(trace: &Trace) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + trace.events.len() * 6);
    out.extend_from_slice(FORMAT_MAGIC);
    push_u32(&mut out, FORMAT_VERSION);
    push_u32(&mut out, trace.header.workload.len() as u32);
    out.extend_from_slice(trace.header.workload.as_bytes());
    push_u64(&mut out, trace.header.seed);
    push_u64(&mut out, trace.header.scale);
    push_u64(&mut out, trace.header.nursery_bytes);
    push_u64(&mut out, trace.header.observer_bytes);
    push_u64(&mut out, trace.header.site_map_hash);
    push_u64(&mut out, trace.header.fault_seed);
    push_u64(&mut out, trace.events.len() as u64);
    for event in &trace.events {
        encode_event(&mut out, event);
    }
    let checksum = fnv1a(&out);
    push_u64(&mut out, checksum);
    out
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], TraceError> {
        if self.pos + n > self.bytes.len() {
            return Err(TraceError::Truncated { offset: self.pos });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, TraceError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, TraceError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, TraceError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn varint(&mut self) -> Result<u64, TraceError> {
        let start = self.pos;
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift >= 64 || (shift == 63 && byte > 1) {
                // Varints only occur in event operands; the caller rewrites
                // this into a BadEvent carrying the event index.
                return Err(TraceError::BadEvent {
                    index: 0,
                    offset: start,
                    reason: "varint overflows u64".to_string(),
                });
            }
            value |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    }
}

fn narrow<T: TryFrom<u64>>(value: u64, what: &str, index: u64, offset: usize) -> Result<T, TraceError> {
    T::try_from(value).map_err(|_| TraceError::BadEvent {
        index,
        offset,
        reason: format!("{what} value {value} out of range"),
    })
}

fn decode_event(reader: &mut Reader<'_>, index: u64) -> Result<TraceEvent, TraceError> {
    decode_event_inner(reader, index).map_err(|err| match err {
        // Stamp operand-level varint failures with the event they occurred
        // in (the Reader cannot know the index).
        TraceError::BadEvent {
            index: 0,
            offset,
            reason,
        } => TraceError::BadEvent {
            index,
            offset,
            reason,
        },
        other => other,
    })
}

fn decode_event_inner(reader: &mut Reader<'_>, index: u64) -> Result<TraceEvent, TraceError> {
    let offset = reader.pos;
    let opcode = reader.u8()?;
    let event = match opcode {
        OP_SPAWN => TraceEvent::Spawn {
            ctx: narrow(reader.varint()?, "ctx", index, offset)?,
            config: MutatorConfig {
                tlab_bytes: narrow(reader.varint()?, "tlab_bytes", index, offset)?,
                ssb_capacity: narrow(reader.varint()?, "ssb_capacity", index, offset)?,
            },
        },
        OP_RETIRE => TraceEvent::Retire {
            ctx: narrow(reader.varint()?, "ctx", index, offset)?,
        },
        OP_ALLOC | OP_ALLOC_LARGE => TraceEvent::Alloc {
            ctx: narrow(reader.varint()?, "ctx", index, offset)?,
            ref_slots: narrow(reader.varint()?, "ref_slots", index, offset)?,
            payload_bytes: narrow(reader.varint()?, "payload_bytes", index, offset)?,
            type_id: narrow(reader.varint()?, "type_id", index, offset)?,
            site: narrow(reader.varint()?, "site", index, offset)?,
            large: opcode == OP_ALLOC_LARGE,
        },
        OP_WRITE_REF => TraceEvent::WriteRef {
            ctx: narrow(reader.varint()?, "ctx", index, offset)?,
            src: reader.varint()?,
            slot: narrow(reader.varint()?, "slot", index, offset)?,
            target: match reader.varint()? {
                0 => None,
                shifted => Some(shifted - 1),
            },
        },
        OP_WRITE_PRIM => TraceEvent::WritePrim {
            ctx: narrow(reader.varint()?, "ctx", index, offset)?,
            src: reader.varint()?,
            offset: reader.varint()?,
            len: reader.varint()?,
        },
        OP_READ_REF => TraceEvent::ReadRef {
            ctx: narrow(reader.varint()?, "ctx", index, offset)?,
            src: reader.varint()?,
            slot: narrow(reader.varint()?, "slot", index, offset)?,
        },
        OP_READ_PRIM => TraceEvent::ReadPrim {
            ctx: narrow(reader.varint()?, "ctx", index, offset)?,
            src: reader.varint()?,
            offset: reader.varint()?,
            len: reader.varint()?,
        },
        OP_RELEASE => TraceEvent::Release {
            obj: reader.varint()?,
        },
        OP_SAFEPOINT => TraceEvent::Safepoint,
        OP_COLLECT_YOUNG => TraceEvent::Collect {
            kind: CollectKind::Young,
        },
        OP_COLLECT_NURSERY => TraceEvent::Collect {
            kind: CollectKind::Nursery,
        },
        OP_COLLECT_OBSERVER => TraceEvent::Collect {
            kind: CollectKind::Observer,
        },
        OP_COLLECT_FULL => TraceEvent::Collect {
            kind: CollectKind::Full,
        },
        OP_HOOK => TraceEvent::Hook {
            allocated_bytes: reader.varint()?,
            total_bytes: reader.varint()?,
            elapsed_ms: reader.varint()?,
        },
        other => {
            return Err(TraceError::BadEvent {
                index,
                offset,
                reason: format!("unknown opcode {other}"),
            })
        }
    };
    Ok(event)
}

/// Parses a trace from its binary representation.
pub fn parse_trace(bytes: &[u8]) -> Result<Trace, TraceError> {
    if bytes.len() < FORMAT_MAGIC.len() {
        return Err(TraceError::Truncated { offset: bytes.len() });
    }
    if &bytes[..FORMAT_MAGIC.len()] != FORMAT_MAGIC {
        return Err(TraceError::BadMagic);
    }
    // The checksum covers everything before its own 8 bytes.
    if bytes.len() < FORMAT_MAGIC.len() + 4 + 8 {
        return Err(TraceError::Truncated { offset: bytes.len() });
    }
    let content = &bytes[..bytes.len() - 8];
    let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().expect("8 bytes"));
    let computed = fnv1a(content);
    if stored != computed {
        return Err(TraceError::ChecksumMismatch { stored, computed });
    }

    let mut reader = Reader {
        bytes: content,
        pos: FORMAT_MAGIC.len(),
    };
    let version = reader.u32()?;
    if !(FORMAT_MIN_VERSION..=FORMAT_VERSION).contains(&version) {
        return Err(TraceError::UnsupportedVersion(version));
    }
    let name_len = reader.u32()? as usize;
    if name_len > 4096 {
        return Err(TraceError::BadHeader(format!(
            "workload name length {name_len} is implausible"
        )));
    }
    let workload = std::str::from_utf8(reader.take(name_len)?)
        .map_err(|_| TraceError::BadHeader("workload name is not UTF-8".to_string()))?
        .to_string();
    let header = TraceHeader {
        workload,
        seed: reader.u64()?,
        scale: reader.u64()?,
        nursery_bytes: reader.u64()?,
        observer_bytes: reader.u64()?,
        site_map_hash: reader.u64()?,
        // Version 1 predates fault injection: those traces are fault-free.
        fault_seed: if version >= 2 { reader.u64()? } else { 0 },
    };
    let declared = reader.u64()?;
    let mut events = Vec::with_capacity(declared.min(1 << 24) as usize);
    let mut index = 0u64;
    while reader.pos < content.len() {
        events.push(decode_event(&mut reader, index)?);
        index += 1;
    }
    if index != declared {
        return Err(TraceError::CountMismatch {
            declared,
            found: index,
        });
    }
    Ok(Trace { header, events })
}

/// Writes a trace to `path`, creating parent directories as needed. The
/// write goes through a uniquely named sibling temporary file followed by a
/// rename, so concurrent recorders of the same deterministic trace (e.g.
/// two collector runs under `--jobs`, which share a process id but not the
/// per-write counter) never expose a half-written file.
pub fn save_trace(trace: &Trace, path: &Path) -> Result<(), TraceError> {
    static WRITE_SERIAL: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    let serial = WRITE_SERIAL.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let tmp = path.with_extension(format!("{FILE_EXTENSION}.tmp-{}-{serial}", std::process::id()));
    fs::write(&tmp, trace_to_bytes(trace))?;
    fs::rename(&tmp, path)?;
    Ok(())
}

/// Reads a trace back from `path`.
pub fn load_trace(path: &Path) -> Result<Trace, TraceError> {
    let bytes = fs::read(path)?;
    parse_trace(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        Trace {
            header: TraceHeader {
                workload: "lusearch".to_string(),
                seed: 0xC0FFEE,
                scale: 256,
                nursery_bytes: 256 * 1024,
                observer_bytes: 512 * 1024,
                site_map_hash: 0x00c3_e1f2_9b04_d877,
                fault_seed: 0xDEAD_BEEF,
            },
            events: vec![
                TraceEvent::Spawn {
                    ctx: 1,
                    config: MutatorConfig::default(),
                },
                TraceEvent::Alloc {
                    ctx: 1,
                    ref_slots: 2,
                    payload_bytes: 48,
                    type_id: 7,
                    site: 29,
                    large: false,
                },
                TraceEvent::Alloc {
                    ctx: 0,
                    ref_slots: 0,
                    payload_bytes: 16 * 1024,
                    type_id: 200,
                    site: 35,
                    large: true,
                },
                TraceEvent::WriteRef {
                    ctx: 1,
                    src: 0,
                    slot: 1,
                    target: Some(1),
                },
                TraceEvent::WriteRef {
                    ctx: 1,
                    src: 0,
                    slot: 1,
                    target: None,
                },
                TraceEvent::WritePrim {
                    ctx: 0,
                    src: 1,
                    offset: 128,
                    len: 8,
                },
                TraceEvent::ReadRef {
                    ctx: 0,
                    src: 0,
                    slot: 0,
                },
                TraceEvent::ReadPrim {
                    ctx: 1,
                    src: 1,
                    offset: 0,
                    len: 64,
                },
                TraceEvent::Hook {
                    allocated_bytes: 1 << 20,
                    total_bytes: 4 << 20,
                    elapsed_ms: 64,
                },
                TraceEvent::Collect {
                    kind: CollectKind::Young,
                },
                TraceEvent::Collect {
                    kind: CollectKind::Full,
                },
                TraceEvent::Release { obj: 1 },
                TraceEvent::Safepoint,
                TraceEvent::Retire { ctx: 1 },
            ],
        }
    }

    #[test]
    fn round_trip_preserves_every_event() {
        let trace = sample_trace();
        let bytes = trace_to_bytes(&trace);
        let parsed = parse_trace(&bytes).unwrap();
        assert_eq!(parsed, trace);
        // A second round trip is byte-identical.
        assert_eq!(trace_to_bytes(&parsed), bytes);
    }

    #[test]
    fn round_trip_through_disk() {
        let trace = sample_trace();
        let dir = std::env::temp_dir().join(format!("kgtrace-test-{}", std::process::id()));
        let path = dir.join("sample.kgtrace");
        save_trace(&trace, &path).unwrap();
        assert_eq!(load_trace(&path).unwrap(), trace);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_trace_round_trips() {
        let trace = Trace {
            header: TraceHeader {
                workload: "empty".to_string(),
                seed: 0,
                scale: 1,
                nursery_bytes: 0,
                observer_bytes: 0,
                site_map_hash: 0,
                fault_seed: 0,
            },
            events: Vec::new(),
        };
        assert_eq!(parse_trace(&trace_to_bytes(&trace)).unwrap(), trace);
    }

    #[test]
    fn version1_traces_without_a_fault_seed_still_parse() {
        // Reconstruct the v1 layout by hand: splice the fault-seed field
        // out of a v2 file, stamp version 1 and re-checksum.
        let mut trace = sample_trace();
        trace.header.fault_seed = 0;
        let v2 = trace_to_bytes(&trace);
        let seed_at = 8 + 4 + 4 + trace.header.workload.len() + 40;
        let mut v1: Vec<u8> = Vec::new();
        v1.extend_from_slice(&v2[..seed_at]);
        v1.extend_from_slice(&v2[seed_at + 8..v2.len() - 8]);
        v1[8..12].copy_from_slice(&1u32.to_le_bytes());
        let checksum = fnv1a(&v1);
        v1.extend_from_slice(&checksum.to_le_bytes());
        let parsed = parse_trace(&v1).unwrap();
        assert_eq!(parsed, trace, "v1 parse must default the fault seed to 0");
    }

    #[test]
    fn truncated_files_are_rejected() {
        let bytes = trace_to_bytes(&sample_trace());
        for cut in [0, 4, FORMAT_MAGIC.len() + 2, bytes.len() / 2, bytes.len() - 1] {
            let err = parse_trace(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    TraceError::Truncated { .. } | TraceError::ChecksumMismatch { .. }
                ),
                "cut at {cut}: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn every_truncation_and_bit_flip_is_rejected() {
        // Exhaustive hostile-input property: no prefix of a valid trace and
        // no single-bit corruption of one may parse, and none may panic.
        // Truncation trips the length/checksum checks; an in-place flip is
        // always caught because it lands in either the content (checksum
        // mismatch) or the checksum itself.
        let bytes = trace_to_bytes(&sample_trace());
        for cut in 0..bytes.len() {
            let err = parse_trace(&bytes[..cut]).unwrap_err();
            assert!(!err.to_string().is_empty(), "cut {cut}: empty error message");
        }
        for pos in 0..bytes.len() {
            for bit in 0..8 {
                let mut flipped = bytes.clone();
                flipped[pos] ^= 1 << bit;
                assert!(
                    parse_trace(&flipped).is_err(),
                    "flip {pos}/{bit}: corrupt trace accepted"
                );
            }
        }
    }

    #[test]
    fn corrupt_bytes_fail_the_checksum() {
        let mut bytes = trace_to_bytes(&sample_trace());
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(matches!(
            parse_trace(&bytes),
            Err(TraceError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let mut bytes = trace_to_bytes(&sample_trace());
        bytes[0] = b'X';
        assert!(matches!(parse_trace(&bytes), Err(TraceError::BadMagic)));
        assert!(matches!(
            parse_trace(b"kingsguard-site-profile 2\n"),
            Err(TraceError::BadMagic)
        ));
    }

    #[test]
    fn unknown_version_is_rejected() {
        let mut bytes = trace_to_bytes(&sample_trace());
        // Patch the version field, then re-stamp the checksum so only the
        // version is wrong.
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        let content_len = bytes.len() - 8;
        let checksum = fnv1a(&bytes[..content_len]);
        bytes[content_len..].copy_from_slice(&checksum.to_le_bytes());
        match parse_trace(&bytes) {
            Err(TraceError::UnsupportedVersion(99)) => {}
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn count_mismatch_is_rejected() {
        let trace = sample_trace();
        let mut bytes = trace_to_bytes(&trace);
        // Declare one event more than the stream holds. The count field sits
        // after magic(8) + version(4) + name-len(4) + name + 6×u64.
        let count_at = 8 + 4 + 4 + trace.header.workload.len() + 48;
        let declared = trace.events.len() as u64 + 1;
        bytes[count_at..count_at + 8].copy_from_slice(&declared.to_le_bytes());
        let content_len = bytes.len() - 8;
        let checksum = fnv1a(&bytes[..content_len]);
        bytes[content_len..].copy_from_slice(&checksum.to_le_bytes());
        assert!(matches!(
            parse_trace(&bytes),
            Err(TraceError::CountMismatch { declared: d, found: f }) if d == f + 1
        ));
    }

    #[test]
    fn varint_overflow_is_reported_as_a_bad_event() {
        // A trace declaring one Release event whose operand is an 11-byte
        // varint (overflowing u64), with the checksum patched so only the
        // operand is wrong.
        let empty = Trace {
            header: TraceHeader {
                workload: "x".to_string(),
                seed: 0,
                scale: 1,
                nursery_bytes: 0,
                observer_bytes: 0,
                site_map_hash: 0,
                fault_seed: 0,
            },
            events: Vec::new(),
        };
        let mut bytes = trace_to_bytes(&empty);
        bytes.truncate(bytes.len() - 8); // drop checksum
        let count_at = 8 + 4 + 4 + 1 + 48;
        bytes[count_at..count_at + 8].copy_from_slice(&1u64.to_le_bytes());
        bytes.push(OP_RELEASE);
        bytes.extend_from_slice(&[0xFF; 10]);
        bytes.push(0x01);
        let checksum = fnv1a(&bytes);
        bytes.extend_from_slice(&checksum.to_le_bytes());
        match parse_trace(&bytes) {
            Err(TraceError::BadEvent { index: 0, reason, .. }) => {
                assert!(reason.contains("varint"), "unexpected reason {reason:?}");
            }
            other => panic!("expected BadEvent, got {other:?}"),
        }
    }

    #[test]
    fn concurrent_saves_of_the_same_trace_never_corrupt_the_file() {
        let trace = sample_trace();
        let dir = std::env::temp_dir().join(format!("kgtrace-race-{}", std::process::id()));
        let path = dir.join("shared.kgtrace");
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| save_trace(&trace, &path).unwrap());
            }
        });
        assert_eq!(load_trace(&path).unwrap(), trace);
        // No stray tmp files left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|entry| entry.ok())
            .filter(|entry| entry.file_name().to_string_lossy().contains("tmp"))
            .collect();
        assert!(leftovers.is_empty(), "leftover tmp files: {leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn error_messages_are_descriptive() {
        let err = parse_trace(b"BOGUS***rest").unwrap_err();
        assert!(err.to_string().contains("magic"));
        let trace = sample_trace();
        let mut bytes = trace_to_bytes(&trace);
        bytes[8..12].copy_from_slice(&7u32.to_le_bytes());
        let content_len = bytes.len() - 8;
        let checksum = fnv1a(&bytes[..content_len]);
        bytes[content_len..].copy_from_slice(&checksum.to_le_bytes());
        assert!(parse_trace(&bytes).unwrap_err().to_string().contains("version 7"));
    }
}
