//! Replay: driving a heap from a recorded [`Trace`].
//!
//! [`TraceReplayer::replay`] issues the recorded operation stream against a
//! fresh [`KingsguardHeap`] — any heap whose nursery and observer sizes
//! match the recording heap's, under **any** placement policy. Because the
//! heap simulator is deterministic and the stream is the complete
//! mutator-visible API history (including mutator spawn configurations, so
//! TLAB and store-buffer behaviour reproduce exactly), a replay against the
//! recording configuration is bit-identical to the live run: same PCM/DRAM
//! write counts, same line statistics, same collector counters. Replaying
//! against a *different* policy answers "what would this collector have
//! done on the same program?" without re-running workload logic.

use std::fmt;

use kingsguard::{CollectKind, KingsguardHeap, MutatorContext};
use kingsguard_heap::{Handle, ObjectShape};

use crate::event::{Trace, TraceEvent};

/// Progress snapshot handed to the replay hook at every recorded hook
/// marker (the trace-side twin of `workloads::MutatorProgress`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplayProgress {
    /// Bytes the workload had allocated at the marker.
    pub allocated_bytes: u64,
    /// Total bytes the workload will allocate.
    pub total_bytes: u64,
    /// The workload's nominal elapsed milliseconds at the marker.
    pub elapsed_ms: u64,
}

/// What a replay did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Events replayed.
    pub events: u64,
    /// Objects allocated.
    pub allocations: u64,
    /// Hook markers encountered.
    pub hooks: u64,
}

/// Everything that can go wrong replaying a trace.
#[derive(Debug)]
pub enum ReplayError {
    /// The replay heap is not fresh (it already allocated or spawned
    /// contexts).
    HeapNotFresh,
    /// The replay heap's space sizes do not match the recording heap's, so
    /// the recorded lifetimes and GC trigger points would be meaningless.
    ConfigMismatch {
        /// Which size differs ("nursery" or "observer").
        what: &'static str,
        /// The size recorded in the trace header.
        recorded: u64,
        /// The replay heap's size.
        current: u64,
    },
    /// An event referenced an allocation index that was never allocated or
    /// was already released (a corrupt or hand-edited trace).
    UnknownObject {
        /// Index of the offending event.
        event: u64,
        /// The dangling allocation index.
        obj: u64,
    },
    /// An event referenced a context that was never spawned or was retired.
    UnknownContext {
        /// Index of the offending event.
        event: u64,
        /// The dangling context index.
        ctx: u32,
    },
    /// The heap assigned a different context index than the trace recorded
    /// (the replay heap was not fresh, or spawn order was tampered with).
    ContextIndexMismatch {
        /// The context index the trace expects.
        recorded: u32,
        /// The context index the heap assigned.
        assigned: u32,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::HeapNotFresh => {
                write!(
                    f,
                    "trace replay requires a fresh heap (no allocations, no contexts)"
                )
            }
            ReplayError::ConfigMismatch {
                what,
                recorded,
                current,
            } => write!(
                f,
                "replay heap's {what} size {current} does not match the recorded {recorded}"
            ),
            ReplayError::UnknownObject { event, obj } => {
                write!(f, "event {event} references unknown or released object {obj}")
            }
            ReplayError::UnknownContext { event, ctx } => {
                write!(f, "event {event} references unknown or retired context {ctx}")
            }
            ReplayError::ContextIndexMismatch { recorded, assigned } => write!(
                f,
                "heap assigned context index {assigned} where the trace recorded {recorded}"
            ),
        }
    }
}

impl std::error::Error for ReplayError {}

/// Replays a [`Trace`] against a heap. See the module docs.
pub struct TraceReplayer<'t> {
    trace: &'t Trace,
}

impl<'t> TraceReplayer<'t> {
    /// Creates a replayer over `trace`.
    pub fn new(trace: &'t Trace) -> Self {
        TraceReplayer { trace }
    }

    /// Replays the full event stream against `heap`, ignoring hook markers.
    /// The heap is left one [`KingsguardHeap::finish`] away from its
    /// end-of-run report.
    pub fn replay(&self, heap: &mut KingsguardHeap) -> Result<ReplayStats, ReplayError> {
        self.replay_with(heap, |_, _| {})
    }

    /// Replays the full event stream, invoking `hook` at every recorded
    /// hook marker — the same cadence the recording driver's periodic hook
    /// ran at, which is how hook-driven baselines (e.g. OS Write
    /// Partitioning) replay their mid-run work.
    pub fn replay_with(
        &self,
        heap: &mut KingsguardHeap,
        mut hook: impl FnMut(&mut KingsguardHeap, ReplayProgress),
    ) -> Result<ReplayStats, ReplayError> {
        if heap.stats().objects_allocated != 0 || heap.mutator_count() != 1 {
            return Err(ReplayError::HeapNotFresh);
        }
        let header = &self.trace.header;
        if heap.config().nursery_bytes as u64 != header.nursery_bytes {
            return Err(ReplayError::ConfigMismatch {
                what: "nursery",
                recorded: header.nursery_bytes,
                current: heap.config().nursery_bytes as u64,
            });
        }
        if heap.config().observer_bytes as u64 != header.observer_bytes {
            return Err(ReplayError::ConfigMismatch {
                what: "observer",
                recorded: header.observer_bytes,
                current: heap.config().observer_bytes as u64,
            });
        }

        // Allocation index → live handle (None once released).
        let mut objects: Vec<Option<Handle>> = Vec::new();
        // Context index → spawned context (slot 0 is the built-in default
        // context, driven through the legacy heap methods).
        let mut contexts: Vec<Option<MutatorContext>> = vec![None];
        let mut stats = ReplayStats::default();

        let resolve = |objects: &[Option<Handle>], obj: u64, event: u64| -> Result<Handle, ReplayError> {
            objects
                .get(obj as usize)
                .copied()
                .flatten()
                .ok_or(ReplayError::UnknownObject { event, obj })
        };

        for (index, event) in self.trace.events.iter().enumerate() {
            let at = index as u64;
            match *event {
                TraceEvent::Spawn { ctx, config } => {
                    let spawned = heap.spawn_mutator_with(config);
                    let assigned = spawned.index() as u32;
                    if assigned != ctx {
                        return Err(ReplayError::ContextIndexMismatch {
                            recorded: ctx,
                            assigned,
                        });
                    }
                    if contexts.len() <= ctx as usize {
                        contexts.resize_with(ctx as usize + 1, || None);
                    }
                    contexts[ctx as usize] = Some(spawned);
                }
                TraceEvent::Retire { ctx } => {
                    let slot = contexts
                        .get_mut(ctx as usize)
                        .ok_or(ReplayError::UnknownContext { event: at, ctx })?;
                    let retired = slot
                        .take()
                        .ok_or(ReplayError::UnknownContext { event: at, ctx })?;
                    retired.retire(heap);
                }
                TraceEvent::Alloc {
                    ctx,
                    ref_slots,
                    payload_bytes,
                    type_id,
                    site,
                    large: _,
                } => {
                    let shape = ObjectShape::new(ref_slots, payload_bytes);
                    let site = advice::SiteId(site);
                    let handle = match context(&mut contexts, ctx, at)? {
                        None => heap.alloc_site(shape, type_id, site),
                        Some(mutator) => mutator.alloc_site(heap, shape, type_id, site),
                    };
                    objects.push(Some(handle));
                    stats.allocations += 1;
                }
                TraceEvent::WriteRef {
                    ctx,
                    src,
                    slot,
                    target,
                } => {
                    let src = resolve(&objects, src, at)?;
                    let target = match target {
                        None => None,
                        Some(t) => Some(resolve(&objects, t, at)?),
                    };
                    match context(&mut contexts, ctx, at)? {
                        None => heap.write_ref(src, slot as usize, target),
                        Some(mutator) => mutator.write_ref(heap, src, slot as usize, target),
                    }
                }
                TraceEvent::WritePrim {
                    ctx,
                    src,
                    offset,
                    len,
                } => {
                    let src = resolve(&objects, src, at)?;
                    match context(&mut contexts, ctx, at)? {
                        None => heap.write_prim(src, offset as usize, len as usize),
                        Some(mutator) => mutator.write_prim(heap, src, offset as usize, len as usize),
                    }
                }
                TraceEvent::ReadRef { ctx, src, slot } => {
                    let src = resolve(&objects, src, at)?;
                    match context(&mut contexts, ctx, at)? {
                        None => {
                            heap.read_ref(src, slot as usize);
                        }
                        Some(mutator) => {
                            mutator.read_ref(heap, src, slot as usize);
                        }
                    }
                }
                TraceEvent::ReadPrim {
                    ctx,
                    src,
                    offset,
                    len,
                } => {
                    let src = resolve(&objects, src, at)?;
                    match context(&mut contexts, ctx, at)? {
                        None => heap.read_prim(src, offset as usize, len as usize),
                        Some(mutator) => mutator.read_prim(heap, src, offset as usize, len as usize),
                    }
                }
                TraceEvent::Release { obj } => {
                    let handle = resolve(&objects, obj, at)?;
                    heap.release(handle);
                    objects[obj as usize] = None;
                }
                TraceEvent::Safepoint => heap.safepoint(),
                TraceEvent::Collect { kind } => match kind {
                    CollectKind::Young => heap.collect_young(),
                    CollectKind::Nursery => heap.collect_nursery(),
                    CollectKind::Observer => heap.collect_observer(),
                    CollectKind::Full => heap.collect_full(),
                },
                TraceEvent::Hook {
                    allocated_bytes,
                    total_bytes,
                    elapsed_ms,
                } => {
                    stats.hooks += 1;
                    hook(
                        heap,
                        ReplayProgress {
                            allocated_bytes,
                            total_bytes,
                            elapsed_ms,
                        },
                    );
                }
            }
            stats.events += 1;
        }
        // Leave the heap fully synced, and fail fast (in debug builds) if
        // any context still buffers barrier events.
        heap.safepoint();
        heap.debug_assert_mutators_drained();
        Ok(stats)
    }
}

/// Looks up the context slot for `ctx`: `Ok(None)` is the built-in default
/// context (legacy methods), `Ok(Some(..))` a spawned context.
fn context(
    contexts: &mut [Option<MutatorContext>],
    ctx: u32,
    event: u64,
) -> Result<Option<&mut MutatorContext>, ReplayError> {
    if ctx == 0 {
        return Ok(None);
    }
    match contexts.get_mut(ctx as usize) {
        Some(Some(mutator)) => Ok(Some(mutator)),
        _ => Err(ReplayError::UnknownContext { event, ctx }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{TraceMeta, TraceRecorder};
    use hybrid_mem::{MemoryConfig, MemoryKind};
    use kingsguard::HeapConfig;
    use kingsguard_heap::ObjectShape;

    fn fresh(config: HeapConfig) -> KingsguardHeap {
        KingsguardHeap::new(config, MemoryConfig::architecture_independent())
    }

    fn meta() -> TraceMeta {
        TraceMeta {
            workload: "unit".to_string(),
            seed: 1,
            scale: 1,
            site_map_hash: 0,
        }
    }

    /// Records a small hand-written workload and returns its trace plus the
    /// live run's report.
    fn record_sample(config: HeapConfig) -> (Trace, kingsguard::RunReport) {
        let mut heap = fresh(config);
        let recorder = TraceRecorder::install(&mut heap, meta());
        let mut keep = Vec::new();
        for i in 0..300u32 {
            let shape = ObjectShape::new((i % 3) as u16, 24 + (i % 80));
            let handle = heap.alloc_site(shape, 1 + (i % 9) as u16, advice::SiteId(21 + (i % 8)));
            heap.write_prim(handle, (i as usize) % 64, 8);
            if shape.ref_slots > 0 {
                heap.write_ref(handle, 0, keep.last().copied());
            }
            if i % 4 == 0 {
                keep.push(handle);
            } else {
                heap.release(handle);
            }
        }
        let big = heap.alloc(ObjectShape::primitive(16 * 1024), 200);
        heap.write_prim(big, 100, 32);
        heap.collect_young();
        for handle in keep.drain(..) {
            heap.release(handle);
        }
        let trace = recorder.finish(&mut heap);
        (trace, heap.finish())
    }

    fn fingerprint(report: &kingsguard::RunReport) -> (u64, u64, u64, u64, u64, u64) {
        (
            report.memory.writes(MemoryKind::Pcm),
            report.memory.writes(MemoryKind::Dram),
            report.memory.reads(MemoryKind::Pcm),
            report.gc.remset_insertions,
            report.gc.nursery.collections,
            report.gc.primitive_writes,
        )
    }

    #[test]
    fn replay_reproduces_the_live_run_bit_identically() {
        for config in [
            HeapConfig::kg_n(),
            HeapConfig::kg_w(),
            HeapConfig::gen_immix_pcm(),
        ] {
            let (trace, live) = record_sample(config.clone());
            let mut heap = fresh(config);
            let stats = TraceReplayer::new(&trace).replay(&mut heap).unwrap();
            assert_eq!(stats.allocations, trace.allocations());
            let replayed = heap.finish();
            assert_eq!(fingerprint(&replayed), fingerprint(&live));
        }
    }

    #[test]
    fn a_trace_recorded_once_replays_under_every_policy() {
        // Record under KG-N, replay under KG-W and PCM-only: the op stream
        // is policy-independent, so each replay must match that policy's
        // own live run.
        let (trace, _) = record_sample(HeapConfig::kg_n());
        for config in [
            HeapConfig::kg_w(),
            HeapConfig::gen_immix_pcm(),
            HeapConfig::kg_d(),
        ] {
            let (_, live) = record_sample(config.clone());
            let mut heap = fresh(config);
            TraceReplayer::new(&trace).replay(&mut heap).unwrap();
            let replayed = heap.finish();
            assert_eq!(fingerprint(&replayed), fingerprint(&live));
        }
    }

    #[test]
    fn replay_rejects_a_mismatched_nursery() {
        let (trace, _) = record_sample(HeapConfig::kg_n());
        let mut heap = fresh(HeapConfig::kg_n_large_nursery());
        match TraceReplayer::new(&trace).replay(&mut heap) {
            Err(ReplayError::ConfigMismatch { what: "nursery", .. }) => {}
            other => panic!("expected nursery mismatch, got {other:?}"),
        }
    }

    #[test]
    fn replay_rejects_a_used_heap() {
        let (trace, _) = record_sample(HeapConfig::kg_n());
        let mut heap = fresh(HeapConfig::kg_n());
        let _used = heap.alloc(ObjectShape::new(0, 16), 1);
        assert!(matches!(
            TraceReplayer::new(&trace).replay(&mut heap),
            Err(ReplayError::HeapNotFresh)
        ));
    }

    #[test]
    fn replay_rejects_dangling_object_references() {
        let trace = Trace {
            header: crate::event::TraceHeader {
                workload: "bad".to_string(),
                seed: 0,
                scale: 1,
                nursery_bytes: HeapConfig::kg_n().nursery_bytes as u64,
                observer_bytes: HeapConfig::kg_n().observer_bytes as u64,
                site_map_hash: 0,
                fault_seed: 0,
            },
            events: vec![TraceEvent::WritePrim {
                ctx: 0,
                src: 5,
                offset: 0,
                len: 8,
            }],
        };
        let mut heap = fresh(HeapConfig::kg_n());
        assert!(matches!(
            TraceReplayer::new(&trace).replay(&mut heap),
            Err(ReplayError::UnknownObject { obj: 5, .. })
        ));
    }

    #[test]
    fn multi_context_traces_replay_with_recorded_interleaving() {
        let run = |record: bool| -> (Option<Trace>, kingsguard::RunReport) {
            let mut heap = fresh(HeapConfig::kg_n());
            let recorder = record.then(|| TraceRecorder::install(&mut heap, meta()));
            let config = kingsguard::MutatorConfig::default().with_ssb_capacity(7);
            let mut a = heap.spawn_mutator_with(config);
            let mut b = heap.spawn_mutator_with(config);
            let mut last = None;
            for i in 0..200u32 {
                let (ctx, other) = if i % 2 == 0 {
                    (&mut a, &mut b)
                } else {
                    (&mut b, &mut a)
                };
                let handle = ctx.alloc(&mut heap, ObjectShape::new(1, 40), 1);
                other.write_ref(&mut heap, handle, 0, last);
                ctx.write_prim(&mut heap, handle, 0, 8);
                if let Some(previous) = last.replace(handle) {
                    heap.release(previous);
                }
            }
            a.retire(&mut heap);
            b.retire(&mut heap);
            let trace = recorder.map(|r| r.finish(&mut heap));
            (trace, heap.finish())
        };
        let (trace, live) = run(true);
        let (check, live_again) = run(false);
        assert!(check.is_none());
        assert_eq!(
            fingerprint(&live),
            fingerprint(&live_again),
            "driver is deterministic"
        );
        let mut heap = fresh(HeapConfig::kg_n());
        TraceReplayer::new(&trace.unwrap()).replay(&mut heap).unwrap();
        assert_eq!(fingerprint(&heap.finish()), fingerprint(&live));
    }

    #[test]
    fn hooks_fire_at_recorded_positions() {
        let mut heap = fresh(HeapConfig::kg_n());
        let recorder = TraceRecorder::install(&mut heap, meta());
        let handle = heap.alloc(ObjectShape::new(0, 64), 1);
        heap.trace_hook_marker(64, 128, 1);
        heap.write_prim(handle, 0, 8);
        heap.trace_hook_marker(128, 128, 2);
        let trace = recorder.finish(&mut heap);
        drop(heap.finish());

        let mut heap = fresh(HeapConfig::kg_n());
        let mut seen = Vec::new();
        let stats = TraceReplayer::new(&trace)
            .replay_with(&mut heap, |_, progress| seen.push(progress))
            .unwrap();
        assert_eq!(stats.hooks, 2);
        assert_eq!(
            seen,
            vec![
                ReplayProgress {
                    allocated_bytes: 64,
                    total_bytes: 128,
                    elapsed_ms: 1,
                },
                ReplayProgress {
                    allocated_bytes: 128,
                    total_bytes: 128,
                    elapsed_ms: 2,
                },
            ]
        );
    }
}
