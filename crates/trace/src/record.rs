//! Recording: turning a live run into a [`Trace`].
//!
//! [`TraceRecorder::install`] attaches itself to a **fresh** heap through
//! [`kingsguard::KingsguardHeap::set_event_tap`] and converts every
//! [`kingsguard::HeapEvent`] into its persisted twin, replacing runtime
//! [`kingsguard_heap::Handle`]s with stable allocation indices. Recording is
//! completely passive — the tap observes the API stream without perturbing
//! it — so a recorded run produces statistics bit-identical to an untapped
//! run of the same workload.

use std::cell::RefCell;
use std::rc::Rc;

use kingsguard::{HeapEvent, KingsguardHeap};

use crate::event::{Trace, TraceEvent, TraceHeader};

/// Sentinel in the handle table for "no live allocation under this handle".
const NO_ALLOC: u64 = u64::MAX;

/// Workload provenance stamped into the trace header at install time (the
/// heap-derived fields — nursery and observer sizes — are read from the
/// heap itself).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceMeta {
    /// Workload name.
    pub workload: String,
    /// RNG seed of the workload.
    pub seed: u64,
    /// Workload scale divisor.
    pub scale: u64,
    /// Hash of the workload's allocation-site map (`0` = unhashed).
    pub site_map_hash: u64,
}

#[derive(Debug, Default)]
struct RecorderInner {
    events: Vec<TraceEvent>,
    /// Live root handle (raw index) → allocation index. Root handles are
    /// dense small integers (the root table reuses released slots), so a
    /// vector beats a hash map on this per-event hot path.
    handles: Vec<u64>,
    next_alloc: u64,
}

impl RecorderInner {
    fn index_of(&self, handle: kingsguard_heap::Handle) -> u64 {
        let index = self
            .handles
            .get(handle.index() as usize)
            .copied()
            .unwrap_or(NO_ALLOC);
        if index == NO_ALLOC {
            panic!(
                "trace recorder saw handle {handle:?} with no recorded allocation; \
                 install the recorder on a fresh heap before the first allocation"
            );
        }
        index
    }

    fn map_handle(&mut self, handle: kingsguard_heap::Handle, alloc: u64) {
        let slot = handle.index() as usize;
        if self.handles.len() <= slot {
            self.handles.resize(slot + 1, NO_ALLOC);
        }
        self.handles[slot] = alloc;
    }

    fn on_event(&mut self, event: &HeapEvent) {
        let converted = match *event {
            HeapEvent::MutatorSpawned { ctx, config } => TraceEvent::Spawn {
                ctx: ctx as u32,
                config,
            },
            HeapEvent::MutatorRetired { ctx } => TraceEvent::Retire { ctx: ctx as u32 },
            HeapEvent::Alloc {
                ctx,
                handle,
                ref_slots,
                payload_bytes,
                type_id,
                site,
                large,
            } => {
                let index = self.next_alloc;
                self.next_alloc += 1;
                self.map_handle(handle, index);
                TraceEvent::Alloc {
                    ctx: ctx as u32,
                    ref_slots,
                    payload_bytes,
                    type_id,
                    site: site.0,
                    large,
                }
            }
            HeapEvent::WriteRef {
                ctx,
                src,
                slot,
                target,
            } => TraceEvent::WriteRef {
                ctx: ctx as u32,
                src: self.index_of(src),
                slot: slot as u32,
                target: target.map(|t| self.index_of(t)),
            },
            HeapEvent::WritePrim {
                ctx,
                src,
                offset,
                len,
            } => TraceEvent::WritePrim {
                ctx: ctx as u32,
                src: self.index_of(src),
                offset: offset as u64,
                len: len as u64,
            },
            HeapEvent::ReadRef { ctx, src, slot } => TraceEvent::ReadRef {
                ctx: ctx as u32,
                src: self.index_of(src),
                slot: slot as u32,
            },
            HeapEvent::ReadPrim {
                ctx,
                src,
                offset,
                len,
            } => TraceEvent::ReadPrim {
                ctx: ctx as u32,
                src: self.index_of(src),
                offset: offset as u64,
                len: len as u64,
            },
            HeapEvent::Release { handle } => {
                let obj = self.index_of(handle);
                // The handle slot will be reused by a future allocation.
                self.handles[handle.index() as usize] = NO_ALLOC;
                TraceEvent::Release { obj }
            }
            HeapEvent::Safepoint => TraceEvent::Safepoint,
            HeapEvent::Collect { kind } => TraceEvent::Collect { kind },
            HeapEvent::HookMark {
                allocated_bytes,
                total_bytes,
                elapsed_ms,
            } => TraceEvent::Hook {
                allocated_bytes,
                total_bytes,
                elapsed_ms,
            },
        };
        self.events.push(converted);
    }
}

/// Records the heap-event stream of one run. See the module docs.
pub struct TraceRecorder {
    header: TraceHeader,
    inner: Rc<RefCell<RecorderInner>>,
}

impl TraceRecorder {
    /// Installs a recorder on `heap` and returns the handle that will yield
    /// the finished [`Trace`]. The heap must be fresh — no allocations, no
    /// spawned contexts — because events preceding installation cannot be
    /// replayed.
    ///
    /// # Panics
    ///
    /// Panics if `heap` has already allocated or spawned mutator contexts.
    pub fn install(heap: &mut KingsguardHeap, meta: TraceMeta) -> TraceRecorder {
        assert_eq!(
            heap.stats().objects_allocated,
            0,
            "trace recording must start before the first allocation"
        );
        assert_eq!(
            heap.mutator_count(),
            1,
            "trace recording must start before any mutator context is spawned"
        );
        let header = TraceHeader {
            workload: meta.workload,
            seed: meta.seed,
            scale: meta.scale,
            nursery_bytes: heap.config().nursery_bytes as u64,
            observer_bytes: heap.config().observer_bytes as u64,
            site_map_hash: meta.site_map_hash,
            // Provenance of the fault environment comes from the heap
            // itself: a replay must install the same schedule (or none) for
            // the recorded stream to reproduce bit-identically.
            fault_seed: heap
                .memory()
                .fault_model()
                .map(|model| model.config().seed)
                .unwrap_or(0),
        };
        let inner = Rc::new(RefCell::new(RecorderInner::default()));
        let tap_inner = Rc::clone(&inner);
        heap.set_event_tap(Box::new(move |event| tap_inner.borrow_mut().on_event(event)));
        TraceRecorder { header, inner }
    }

    /// Number of events recorded so far.
    pub fn events_recorded(&self) -> usize {
        self.inner.borrow().events.len()
    }

    /// Detaches the recorder from `heap` and returns the finished trace.
    pub fn finish(self, heap: &mut KingsguardHeap) -> Trace {
        heap.clear_event_tap();
        let inner = Rc::try_unwrap(self.inner)
            .expect("the heap's tap closure was dropped by clear_event_tap")
            .into_inner();
        Trace {
            header: self.header,
            events: inner.events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_mem::MemoryConfig;
    use kingsguard::HeapConfig;
    use kingsguard_heap::ObjectShape;

    fn fresh_heap() -> KingsguardHeap {
        KingsguardHeap::new(HeapConfig::kg_n(), MemoryConfig::architecture_independent())
    }

    fn meta() -> TraceMeta {
        TraceMeta {
            workload: "unit".to_string(),
            seed: 7,
            scale: 1,
            site_map_hash: 0,
        }
    }

    #[test]
    fn records_the_mutator_visible_stream_in_order() {
        let mut heap = fresh_heap();
        let recorder = TraceRecorder::install(&mut heap, meta());
        let parent = heap.alloc(ObjectShape::new(1, 32), 1);
        let child = heap.alloc_site(ObjectShape::new(0, 64), 2, advice::SiteId(29));
        heap.write_ref(parent, 0, Some(child));
        heap.write_prim(child, 8, 16);
        heap.release(child);
        heap.collect_young();
        heap.safepoint();
        let trace = recorder.finish(&mut heap);
        assert!(!heap.has_event_tap());
        assert_eq!(trace.header.nursery_bytes, heap.config().nursery_bytes as u64);
        assert_eq!(trace.allocations(), 2);
        use crate::event::TraceEvent as E;
        assert_eq!(
            trace.events,
            vec![
                E::Alloc {
                    ctx: 0,
                    ref_slots: 1,
                    payload_bytes: 32,
                    type_id: 1,
                    site: advice::SiteId::UNKNOWN.0,
                    large: false,
                },
                E::Alloc {
                    ctx: 0,
                    ref_slots: 0,
                    payload_bytes: 64,
                    type_id: 2,
                    site: 29,
                    large: false,
                },
                E::WriteRef {
                    ctx: 0,
                    src: 0,
                    slot: 0,
                    target: Some(1),
                },
                E::WritePrim {
                    ctx: 0,
                    src: 1,
                    offset: 8,
                    len: 16,
                },
                E::Release { obj: 1 },
                E::Collect {
                    kind: kingsguard::CollectKind::Young,
                },
                E::Safepoint,
            ]
        );
    }

    #[test]
    fn handle_reuse_after_release_maps_to_fresh_indices() {
        let mut heap = fresh_heap();
        let recorder = TraceRecorder::install(&mut heap, meta());
        // The root table reuses the released slot, so both allocations get
        // the same runtime handle but distinct allocation indices.
        let first = heap.alloc(ObjectShape::new(0, 16), 1);
        heap.release(first);
        let second = heap.alloc(ObjectShape::new(0, 16), 1);
        heap.write_prim(second, 0, 8);
        let trace = recorder.finish(&mut heap);
        assert_eq!(
            trace.events.last(),
            Some(&TraceEvent::WritePrim {
                ctx: 0,
                src: 1,
                offset: 0,
                len: 8,
            })
        );
    }

    #[test]
    #[should_panic(expected = "before the first allocation")]
    fn installing_on_a_used_heap_panics() {
        let mut heap = fresh_heap();
        let _obj = heap.alloc(ObjectShape::new(0, 16), 1);
        let _recorder = TraceRecorder::install(&mut heap, meta());
    }

    #[test]
    fn spawned_contexts_are_recorded_with_their_configuration() {
        let mut heap = fresh_heap();
        let recorder = TraceRecorder::install(&mut heap, meta());
        let config = kingsguard::MutatorConfig::default().with_ssb_capacity(7);
        let mut ctx = heap.spawn_mutator_with(config);
        let handle = ctx.alloc(&mut heap, ObjectShape::new(0, 32), 3);
        ctx.write_prim(&mut heap, handle, 0, 8);
        ctx.retire(&mut heap);
        let trace = recorder.finish(&mut heap);
        assert_eq!(trace.events[0], TraceEvent::Spawn { ctx: 1, config });
        assert_eq!(trace.events.last(), Some(&TraceEvent::Retire { ctx: 1 }));
    }
}
