//! Heap-event trace record/replay: record a workload once, replay it under
//! every collector.
//!
//! The reproduction's methodology is trace-shaped: each collector is judged
//! on the same deterministic stream of allocations, writes and GC events.
//! This crate makes that stream a first-class artifact — in the spirit of
//! Elephant-Tracks-style GC event streams — instead of something
//! re-simulated from scratch for every (benchmark, collector) pair:
//!
//! * [`TraceRecorder`] taps the [`kingsguard::MutatorContext`] layer of a
//!   live run (see [`kingsguard::tap`]) and captures the complete
//!   mutator-visible event vocabulary: site-tagged small and large
//!   allocations, reference and primitive writes with their demographics,
//!   reads, root releases, mutator spawn/retire (with each context's
//!   TLAB/store-buffer configuration, so K-mutator interleavings and SSB
//!   batching replay faithfully), explicit GC-safepoint markers and
//!   workload hook markers.
//! * The [`format`](mod@format) module persists the stream as a versioned, compact,
//!   checksummed binary `.kgtrace` file with `.kgprof`-style corruption
//!   handling (unknown versions, truncation and bit flips are rejected
//!   with descriptive errors).
//! * [`TraceReplayer`] drives any [`kingsguard::PlacementPolicy`] through a
//!   [`kingsguard::KingsguardHeap`] from the recorded stream, bypassing
//!   workload generation entirely. Replaying against the recording
//!   configuration is **bit-identical** to the live run (same `PcmWrites`,
//!   same line statistics — the `hybrid_mem` statistics are the oracle);
//!   replaying against other policies turns "N benchmarks × M collectors"
//!   into "record N, replay N×M".
//!
//! # Record once, replay many
//!
//! ```
//! use hybrid_mem::{MemoryConfig, MemoryKind};
//! use kingsguard::{HeapConfig, KingsguardHeap};
//! use kingsguard_heap::ObjectShape;
//! use trace::{TraceMeta, TraceRecorder, TraceReplayer};
//!
//! // Record a (tiny) workload under KG-N.
//! let mut heap = KingsguardHeap::new(HeapConfig::kg_n(), MemoryConfig::architecture_independent());
//! let recorder = TraceRecorder::install(
//!     &mut heap,
//!     TraceMeta {
//!         workload: "doc".into(),
//!         seed: 7,
//!         scale: 1,
//!         site_map_hash: 0,
//!     },
//! );
//! for _ in 0..64 {
//!     let obj = heap.alloc(ObjectShape::new(0, 64), 1);
//!     heap.write_prim(obj, 0, 8);
//!     heap.release(obj);
//! }
//! let trace = recorder.finish(&mut heap);
//! let live = heap.finish();
//!
//! // Replay the same program under two other collectors.
//! for config in [HeapConfig::kg_n(), HeapConfig::kg_w()] {
//!     let mut replay_heap = KingsguardHeap::new(config, MemoryConfig::architecture_independent());
//!     TraceReplayer::new(&trace).replay(&mut replay_heap).unwrap();
//!     let report = replay_heap.finish();
//!     assert_eq!(report.gc.objects_allocated, live.gc.objects_allocated);
//! }
//! ```

#![forbid(unsafe_code)]

pub mod event;
pub mod format;
pub mod record;
pub mod replay;

pub use event::{CollectKind, Trace, TraceEvent, TraceHeader};
pub use format::{
    load_trace, parse_trace, save_trace, trace_to_bytes, TraceError, FILE_EXTENSION, FORMAT_MAGIC,
    FORMAT_MIN_VERSION, FORMAT_VERSION,
};
pub use record::{TraceMeta, TraceRecorder};
pub use replay::{ReplayError, ReplayProgress, ReplayStats, TraceReplayer};
