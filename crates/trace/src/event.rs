//! The persisted heap-event vocabulary.
//!
//! A trace event is the on-disk twin of a [`kingsguard::HeapEvent`]: the
//! same operation, but with every root [`kingsguard_heap::Handle`] replaced
//! by the *allocation index* of the object it referred to — the position of
//! the object's allocation event in the trace, counting from zero. Handles
//! are runtime-assigned and reused after release, so they are meaningless
//! across processes; allocation indices are stable, dense and append-only,
//! which is what makes the format replayable and diffable.

pub use kingsguard::CollectKind;
use kingsguard::MutatorConfig;

/// One persisted heap event. See [`crate::format`] for the encoding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A mutator context was spawned at slot `ctx`.
    Spawn {
        /// The context index the heap assigned (replay verifies it gets the
        /// same one).
        ctx: u32,
        /// The context's TLAB / store-buffer configuration.
        config: MutatorConfig,
    },
    /// The context at slot `ctx` was retired.
    Retire {
        /// The retired context index.
        ctx: u32,
    },
    /// An object allocation; its allocation index is implicit (the number of
    /// allocation events preceding it).
    Alloc {
        /// The context that allocated.
        ctx: u32,
        /// Reference slots of the object's shape.
        ref_slots: u16,
        /// Primitive payload bytes of the object's shape.
        payload_bytes: u32,
        /// The object's type id.
        type_id: u16,
        /// The allocation site (`advice::SiteId::UNKNOWN.0` when untagged).
        site: u32,
        /// `true` if the shape takes the large-object path (recorded for
        /// diffing and sanity checks; replay re-derives it from the shape).
        large: bool,
    },
    /// A reference store through the write barrier.
    WriteRef {
        /// The context that wrote.
        ctx: u32,
        /// Allocation index of the written object.
        src: u64,
        /// The written slot index.
        slot: u32,
        /// Allocation index of the stored reference.
        target: Option<u64>,
    },
    /// A primitive store (offset/len as the mutator passed them).
    WritePrim {
        /// The context that wrote.
        ctx: u32,
        /// Allocation index of the written object.
        src: u64,
        /// Requested payload offset.
        offset: u64,
        /// Requested store length in bytes.
        len: u64,
    },
    /// A reference-slot read.
    ReadRef {
        /// The context that read.
        ctx: u32,
        /// Allocation index of the read object.
        src: u64,
        /// The read slot index.
        slot: u32,
    },
    /// A primitive payload read.
    ReadPrim {
        /// The context that read.
        ctx: u32,
        /// Allocation index of the read object.
        src: u64,
        /// Requested payload offset.
        offset: u64,
        /// Requested read length in bytes.
        len: u64,
    },
    /// A root release.
    Release {
        /// Allocation index of the released object.
        obj: u64,
    },
    /// An explicit mutator safepoint.
    Safepoint,
    /// A mutator-initiated collection.
    Collect {
        /// Which collection entry point was called.
        kind: CollectKind,
    },
    /// A workload progress marker (the point where the driver's periodic
    /// hook ran).
    Hook {
        /// Bytes the workload had allocated at the marker.
        allocated_bytes: u64,
        /// Total bytes the workload will allocate.
        total_bytes: u64,
        /// The workload's nominal elapsed milliseconds at the marker.
        elapsed_ms: u64,
    },
}

impl TraceEvent {
    /// Returns `true` for allocation events (the events that consume an
    /// allocation index).
    pub fn is_alloc(&self) -> bool {
        matches!(self, TraceEvent::Alloc { .. })
    }
}

/// Header of a `.kgtrace` file: enough provenance to validate a replay
/// target and to key trace caches.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceHeader {
    /// Workload name (benchmark or custom driver).
    pub workload: String,
    /// RNG seed the workload was generated from.
    pub seed: u64,
    /// Workload scale divisor.
    pub scale: u64,
    /// Nursery size of the recording heap, in bytes. Workload drivers size
    /// object lifetimes from this, so a replay heap must match for the
    /// recorded stream to be meaningful.
    pub nursery_bytes: u64,
    /// Observer-space size of the recording heap, in bytes (same caveat).
    pub observer_bytes: u64,
    /// Hash of the workload's allocation-site map at recording time
    /// (`0` = unhashed), mirroring the `.kgprof` drift detection.
    pub site_map_hash: u64,
    /// Seed of the PCM fault-injection schedule active while recording
    /// (`0` = fault-free run; format v2+). Replays must run under the same
    /// schedule for record-vs-replay bit-identity to hold, so this keys the
    /// staleness check exactly like the site-map hash.
    pub fault_seed: u64,
}

/// A fully decoded trace: header plus the event stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace {
    /// File header.
    pub header: TraceHeader,
    /// The recorded events, in program order.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Number of allocation events (objects the replay will create).
    pub fn allocations(&self) -> u64 {
        self.events.iter().filter(|e| e.is_alloc()).count() as u64
    }
}
