//! Figure 1 and Figure 5: PCM lifetime.

use hybrid_mem::lifetime::Endurance;
use kingsguard::HeapConfig;
use workloads::simulated_benchmarks;

use crate::report::{mean, telemetry_summary, TextTable};
use crate::runner::{run_benchmark, run_jobs, ExperimentConfig, ExperimentResult};

/// One benchmark's lifetime results under the three collectors.
#[derive(Clone, Debug)]
pub struct LifetimeRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Lifetime in years of the PCM-only system at 30 M endurance.
    pub pcm_only_years: f64,
    /// Lifetime in years under KG-N.
    pub kg_n_years: f64,
    /// Lifetime in years under KG-W.
    pub kg_w_years: f64,
}

impl LifetimeRow {
    /// KG-N lifetime improvement over PCM-only.
    pub fn kg_n_improvement(&self) -> f64 {
        self.kg_n_years / self.pcm_only_years
    }

    /// KG-W lifetime improvement over PCM-only.
    pub fn kg_w_improvement(&self) -> f64 {
        self.kg_w_years / self.pcm_only_years
    }
}

/// Results for Figures 1 and 5.
#[derive(Clone, Debug)]
pub struct LifetimeResults {
    /// Per-benchmark rows (simulation subset).
    pub rows: Vec<LifetimeRow>,
    /// The underlying experiment results (PCM-only, KG-N, KG-W per
    /// benchmark), for reuse by other figures.
    pub raw: Vec<ExperimentResult>,
}

impl LifetimeResults {
    /// Average PCM-only lifetime at the given endurance level, in years
    /// (the per-endurance bars of Figure 1).
    pub fn average_years(&self, collector: &str, endurance: Endurance) -> f64 {
        let years: Vec<f64> = self
            .raw
            .iter()
            .filter(|r| r.collector == collector)
            .map(|r| r.pcm_lifetime_years(endurance.writes_per_cell()))
            .collect();
        mean(&years)
    }

    /// Average KG-N lifetime improvement over PCM-only (the paper reports 5×).
    pub fn average_kg_n_improvement(&self) -> f64 {
        mean(&self.rows.iter().map(|r| r.kg_n_improvement()).collect::<Vec<_>>())
    }

    /// Average KG-W lifetime improvement over PCM-only (the paper reports 11×).
    pub fn average_kg_w_improvement(&self) -> f64 {
        mean(&self.rows.iter().map(|r| r.kg_w_improvement()).collect::<Vec<_>>())
    }

    /// Figure 1 report: lifetime in years per endurance level.
    pub fn figure1_report(&self) -> String {
        let mut table = TextTable::new(
            "Figure 1: PCM lifetime in years (32 GB, line wear-leveling), averaged over the simulated benchmarks",
            &["Endurance", "PCM-only", "KG-N", "KG-W"],
        );
        for endurance in Endurance::ALL {
            table.row(vec![
                endurance.label().to_string(),
                format!("{:.1}", self.average_years("PCM-only", endurance)),
                format!("{:.1}", self.average_years("KG-N", endurance)),
                format!("{:.1}", self.average_years("KG-W", endurance)),
            ]);
        }
        table.render()
    }

    /// Figure 5 report: per-benchmark lifetime relative to PCM-only.
    pub fn figure5_report(&self) -> String {
        let mut table = TextTable::new(
            "Figure 5: PCM lifetime relative to PCM-only (30 M endurance)",
            &["Benchmark", "KG-N", "KG-W"],
        );
        for row in &self.rows {
            table.row(vec![
                row.benchmark.clone(),
                format!("{:.1}x", row.kg_n_improvement()),
                format!("{:.1}x", row.kg_w_improvement()),
            ]);
        }
        table.row(vec![
            "Average".to_string(),
            format!("{:.1}x", self.average_kg_n_improvement()),
            format!("{:.1}x", self.average_kg_w_improvement()),
        ]);
        let mut out = table.render();
        if let Some(summary) = telemetry_summary(self.raw.iter()) {
            out.push_str(&summary);
            out.push('\n');
        }
        out
    }
}

/// Runs the lifetime experiments (Figures 1 and 5) over the simulation
/// subset.
pub fn run(config: &ExperimentConfig) -> LifetimeResults {
    let benchmarks = simulated_benchmarks();
    let per_benchmark = run_jobs(&benchmarks, config.jobs, |profile| {
        let pcm_only = run_benchmark(profile, HeapConfig::gen_immix_pcm(), config);
        let kg_n = run_benchmark(profile, HeapConfig::kg_n(), config);
        let kg_w = run_benchmark(profile, HeapConfig::kg_w(), config);
        let endurance = Endurance::Mid30M.writes_per_cell();
        let row = LifetimeRow {
            benchmark: profile.name.to_string(),
            pcm_only_years: pcm_only.pcm_lifetime_years(endurance),
            kg_n_years: kg_n.pcm_lifetime_years(endurance),
            kg_w_years: kg_w.pcm_lifetime_years(endurance),
        };
        (row, [pcm_only, kg_n, kg_w])
    });
    let mut rows = Vec::new();
    let mut raw = Vec::new();
    for (row, results) in per_benchmark {
        rows.push(row);
        raw.extend(results);
    }
    LifetimeResults { rows, raw }
}

/// Figure 1: lifetime in years per endurance level.
pub fn figure1(config: &ExperimentConfig) -> LifetimeResults {
    run(config)
}

/// Figure 5: lifetime relative to PCM-only.
pub fn figure5(config: &ExperimentConfig) -> LifetimeResults {
    run(config)
}
