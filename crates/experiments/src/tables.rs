//! Tables 1–4 of the paper.

use hybrid_mem::devices::{self, CPU_FREQ_GHZ, MEMORY_BANDWIDTH_GBPS};
use hybrid_mem::MemoryKind;
use kingsguard::HeapConfig;
use workloads::{all_benchmarks, simulated_benchmarks};

use crate::report::{collect_rows, mean, percent, TelemetryRollup, TextTable};
use crate::runner::{run_benchmark, run_benchmark_with_wp, run_jobs, ExperimentConfig};

/// Table 1: collector configurations (a static description).
pub fn table1() -> String {
    let mut table = TextTable::new(
        "Table 1: collector configurations",
        &[
            "Configuration",
            "monitor writes",
            "metadata in DRAM",
            "LOO in nursery",
        ],
    );
    let configs = [
        HeapConfig::kg_n(),
        HeapConfig::kg_w(),
        HeapConfig::kg_w_no_loo(),
        HeapConfig::kg_w_no_loo_no_mdo(),
    ];
    for config in configs {
        let is_kgw = config.has_observer();
        table.row(vec![
            config.label(),
            if is_kgw { "yes" } else { "no" }.to_string(),
            if is_kgw && config.kgw.metadata_optimization {
                "yes"
            } else {
                "no"
            }
            .to_string(),
            if is_kgw && config.kgw.large_object_optimization {
                "yes"
            } else {
                "no"
            }
            .to_string(),
        ]);
    }
    table.render()
}

/// Table 2: simulated system parameters (the memory-model constants in use).
pub fn table2() -> String {
    let dram = devices::params_for(MemoryKind::Dram);
    let pcm = devices::params_for(MemoryKind::Pcm);
    let mut table = TextTable::new(
        "Table 2: simulated system parameters",
        &["Component", "Parameters"],
    );
    table.row(vec![
        "Core".into(),
        format!("{CPU_FREQ_GHZ} GHz, out-of-order (mechanistic model)"),
    ]);
    table.row(vec![
        "Memory bandwidth".into(),
        format!("{MEMORY_BANDWIDTH_GBPS} GB/s"),
    ]);
    table.row(vec![
        "Memory systems".into(),
        "32 GB DRAM-only / 32 GB PCM-only / hybrid 1 GB DRAM + 32 GB PCM".into(),
    ]);
    table.row(vec![
        "DRAM parameters".into(),
        format!(
            "{:.0} ns read/write, {:.3} W read, {:.3} W write",
            dram.read_latency_ns, dram.read_power_w, dram.write_power_w
        ),
    ]);
    table.row(vec![
        "PCM parameters".into(),
        format!(
            "{:.0} ns read, {:.0} ns write, {:.3} W read, {:.1} W write, {} M writes/cell, fine-grained wear-leveling",
            pcm.read_latency_ns,
            pcm.write_latency_ns,
            pcm.read_power_w,
            pcm.write_power_w,
            pcm.endurance_writes.unwrap_or(0) / 1_000_000
        ),
    ]);
    table.row(vec![
        "Caches".into(),
        "32 KB L1-D (8-way), 256 KB L2 (8-way), 4 MB shared L3 (16-way), 64 B lines".into(),
    ]);
    table.render()
}

/// One row of Table 3.
#[derive(Clone, Debug)]
pub struct WriteRateRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Measured (published) 4→32-core scaling factor.
    pub scaling_factor: f64,
    /// Simulated 4-core PCM write rate in GB/s (PCM-only system).
    pub simulated_4core_gbps: f64,
    /// Estimated 32-core write rate in GB/s (simulated × scaling factor).
    pub estimated_32core_gbps: f64,
    /// The paper's estimated 32-core write rate in GB/s.
    pub paper_gbps: f64,
}

/// Table 3 results.
#[derive(Clone, Debug)]
pub struct WriteRateResults {
    /// One row per simulation-subset benchmark.
    pub rows: Vec<WriteRateRow>,
    /// Telemetry rollup of the runs behind the table.
    pub telemetry: TelemetryRollup,
}

impl WriteRateResults {
    /// Average estimated 32-core write rate in GB/s.
    pub fn average_estimated_gbps(&self) -> f64 {
        mean(
            &self
                .rows
                .iter()
                .map(|r| r.estimated_32core_gbps)
                .collect::<Vec<_>>(),
        )
    }

    /// Renders the Table 3 report.
    pub fn report(&self) -> String {
        let mut table = TextTable::new(
            "Table 3: measured scaling and estimated 32-core write rates (PCM-only)",
            &[
                "Benchmark",
                "Scaling factor",
                "4-core GB/s (sim)",
                "32-core GB/s (est.)",
                "32-core GB/s (paper)",
            ],
        );
        for row in &self.rows {
            table.row(vec![
                row.benchmark.clone(),
                format!("{:.1}x", row.scaling_factor),
                format!("{:.2}", row.simulated_4core_gbps),
                format!("{:.1}", row.estimated_32core_gbps),
                format!("{:.1}", row.paper_gbps),
            ]);
        }
        table.render() + &self.telemetry.appendix()
    }
}

/// Table 3: write-rate estimation for the simulation subset.
pub fn table3(config: &ExperimentConfig) -> WriteRateResults {
    let benchmarks = simulated_benchmarks();
    let (rows, telemetry) = collect_rows(run_jobs(&benchmarks, config.jobs, |profile| {
        let result = run_benchmark(profile, HeapConfig::gen_immix_pcm(), config);
        let four_core = result.pcm_write_rate_4core() / 1e9;
        let scaling = profile.scaling_factor.unwrap_or(1.0);
        let mut rollup = TelemetryRollup::default();
        rollup.absorb(&result);
        (
            WriteRateRow {
                benchmark: profile.name.to_string(),
                scaling_factor: scaling,
                simulated_4core_gbps: four_core,
                estimated_32core_gbps: four_core * scaling,
                paper_gbps: profile.paper_write_rate_gbps.unwrap_or(0.0),
            },
            rollup,
        )
    }));
    WriteRateResults { rows, telemetry }
}

/// One row of Table 4.
#[derive(Clone, Debug)]
pub struct DemographicsRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Allocation volume in MB (scaled back to the paper's units).
    pub allocation_mb: f64,
    /// Heap size in MB (the paper's 2× minimum live size).
    pub heap_mb: f64,
    /// Nursery survival under KG-N.
    pub nursery_survival_kg_n: f64,
    /// Nursery survival under KG-W.
    pub nursery_survival_kg_w: f64,
    /// Peak PCM mapped by KG-N, in (unscaled) MB.
    pub kg_n_pcm_mb: f64,
    /// Peak PCM mapped by KG-W, in MB.
    pub kg_w_pcm_mb: f64,
    /// Peak DRAM mapped by KG-W, in MB.
    pub kg_w_dram_mb: f64,
    /// Peak DRAM used by the WP baseline's DRAM partition, in MB (only for
    /// the simulation subset; 0 otherwise).
    pub wp_dram_mb: f64,
    /// Fraction of the KG-W heap held in the DRAM mature space.
    pub kg_w_mature_dram_fraction: f64,
    /// KG-W metadata (mark tables) in MB.
    pub kg_w_metadata_mb: f64,
    /// Observer-space survival rate.
    pub observer_survival: f64,
    /// Fraction of observer survivors (bytes) held in DRAM.
    pub held_in_dram_bytes: f64,
    /// Fraction of observer survivors (objects) held in DRAM.
    pub held_in_dram_objects: f64,
}

/// Table 4 results.
#[derive(Clone, Debug)]
pub struct Table4Results {
    /// One row per benchmark (all 18).
    pub rows: Vec<DemographicsRow>,
    /// The scale factor used (needed to interpret absolute MB values).
    pub scale: u64,
    /// Telemetry rollup of the runs behind the table.
    pub telemetry: TelemetryRollup,
}

impl Table4Results {
    /// Average nursery survival across benchmarks (the paper reports ~17 %).
    pub fn average_nursery_survival(&self) -> f64 {
        mean(
            &self
                .rows
                .iter()
                .map(|r| r.nursery_survival_kg_w)
                .collect::<Vec<_>>(),
        )
    }

    /// Average fraction of observer survivors held in DRAM (the paper
    /// reports ~10 % of objects).
    pub fn average_held_in_dram_objects(&self) -> f64 {
        mean(
            &self
                .rows
                .iter()
                .map(|r| r.held_in_dram_objects)
                .collect::<Vec<_>>(),
        )
    }

    /// Renders the Table 4 report.
    pub fn report(&self) -> String {
        let mut table = TextTable::new(
            &format!(
                "Table 4: object demographics (spaces scaled down by {}x)",
                self.scale
            ),
            &[
                "Benchmark",
                "alloc MB",
                "heap MB",
                "% nursery survival",
                "KG-N PCM MB",
                "KG-W PCM MB",
                "KG-W DRAM MB",
                "WP DRAM MB",
                "% mature in DRAM",
                "metadata MB",
                "% observer survival",
                "% held in DRAM (MB/obj)",
            ],
        );
        for row in &self.rows {
            table.row(vec![
                row.benchmark.clone(),
                format!("{:.0}", row.allocation_mb),
                format!("{:.0}", row.heap_mb),
                percent(row.nursery_survival_kg_w),
                format!("{:.1}", row.kg_n_pcm_mb),
                format!("{:.1}", row.kg_w_pcm_mb),
                format!("{:.1}", row.kg_w_dram_mb),
                if row.wp_dram_mb > 0.0 {
                    format!("{:.1}", row.wp_dram_mb)
                } else {
                    "-".to_string()
                },
                percent(row.kg_w_mature_dram_fraction),
                format!("{:.2}", row.kg_w_metadata_mb),
                percent(row.observer_survival),
                format!(
                    "{}/{}",
                    percent(row.held_in_dram_bytes),
                    percent(row.held_in_dram_objects)
                ),
            ]);
        }
        table.render() + &self.telemetry.appendix()
    }
}

/// Table 4: object demographics and space consumption per benchmark.
///
/// When `include_wp` is `true`, the WP baseline is additionally run for the
/// simulation subset to fill the "WP DRAM" column.
pub fn table4(config: &ExperimentConfig, include_wp: bool) -> Table4Results {
    let config = ExperimentConfig {
        mode: crate::MeasurementMode::ArchitectureIndependent,
        ..config.clone()
    };
    let to_mb = |bytes: u64| bytes as f64 / (1 << 20) as f64;
    let benchmarks = all_benchmarks();
    let pairs = run_jobs(&benchmarks, config.jobs, |profile| {
        let kg_n = run_benchmark(profile, HeapConfig::kg_n(), &config);
        let kg_w = run_benchmark(profile, HeapConfig::kg_w(), &config);
        let mut rollup = TelemetryRollup::default();
        rollup.absorb(&kg_n);
        rollup.absorb(&kg_w);
        let wp_dram_mb = if include_wp && profile.simulated {
            let wp = run_benchmark_with_wp(profile, &config);
            wp.wp
                .map(|s| to_mb((s.peak_dram_pages * hybrid_mem::PAGE_SIZE) as u64))
                .unwrap_or(0.0)
        } else {
            0.0
        };
        let heap_bytes = kg_w.gc.peak_pcm_mapped + kg_w.gc.peak_dram_mapped;
        let row = DemographicsRow {
            benchmark: profile.name.to_string(),
            allocation_mb: to_mb(kg_w.gc.bytes_allocated) * config.scale as f64,
            heap_mb: profile.heap_mb as f64,
            nursery_survival_kg_n: kg_n.gc.nursery_survival(),
            nursery_survival_kg_w: kg_w.gc.nursery_survival(),
            kg_n_pcm_mb: to_mb(kg_n.gc.peak_pcm_mapped),
            kg_w_pcm_mb: to_mb(kg_w.gc.peak_pcm_mapped),
            kg_w_dram_mb: to_mb(kg_w.gc.peak_dram_mapped),
            wp_dram_mb,
            kg_w_mature_dram_fraction: if heap_bytes > 0 {
                kg_w.gc.peak_mature_dram_used as f64 / heap_bytes as f64
            } else {
                0.0
            },
            kg_w_metadata_mb: to_mb(kg_w.gc.peak_metadata_used),
            observer_survival: kg_w.gc.observer_survival(),
            held_in_dram_bytes: kg_w.gc.observer_dram_fraction(),
            held_in_dram_objects: kg_w.gc.observer_dram_object_fraction(),
        };
        (row, rollup)
    });
    let (rows, telemetry) = collect_rows(pairs);
    Table4Results {
        rows,
        scale: config.scale,
        telemetry,
    }
}
