//! Plain-text table formatting for experiment reports, plus the per-row
//! metric helpers shared by the advise and adaptive comparison tables.

use hybrid_mem::lifetime::Endurance;

use crate::runner::ExperimentResult;

/// Endurance level used for the lifetime columns of the comparison tables
/// (the paper's headline 30 M writes-per-cell point).
pub const LIFETIME_ENDURANCE: Endurance = Endurance::Mid30M;

/// Finds `collector`'s result within one comparison row.
pub(crate) fn result_for<'a>(
    results: &'a [ExperimentResult],
    benchmark: &str,
    collector: &str,
) -> &'a ExperimentResult {
    results
        .iter()
        .find(|r| r.collector == collector)
        .unwrap_or_else(|| panic!("missing {collector} result for {benchmark}"))
}

/// Estimated 32-core PCM write rate in GB/s.
pub(crate) fn write_rate_gbps(result: &ExperimentResult) -> f64 {
    result.pcm_write_rate_32core() / 1e9
}

/// PCM lifetime in years at [`LIFETIME_ENDURANCE`].
pub(crate) fn lifetime_years(result: &ExperimentResult) -> f64 {
    result.pcm_lifetime_years(LIFETIME_ENDURANCE.writes_per_cell())
}

/// Energy-delay product of `collector` relative to `baseline` within one
/// comparison row (0.0 when the baseline's EDP is zero).
pub(crate) fn edp_relative(
    results: &[ExperimentResult],
    benchmark: &str,
    collector: &str,
    baseline: &str,
) -> f64 {
    let base = result_for(results, benchmark, baseline).edp;
    if base == 0.0 {
        return 0.0;
    }
    result_for(results, benchmark, collector).edp / base
}

/// A simple fixed-width text table builder.
#[derive(Debug, Default, Clone)]
pub struct TextTable {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        TextTable {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must have as many cells as the header).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        debug_assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let columns = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(columns) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        let mut line = String::new();
        for (i, header) in self.header.iter().enumerate() {
            line.push_str(&format!("{:<width$}  ", header, width = widths[i]));
        }
        out.push_str(line.trim_end());
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (columns - 1)));
        out.push('\n');
        for row in &self.rows {
            let mut line = String::new();
            for (i, cell) in row.iter().enumerate().take(columns) {
                line.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
            }
            out.push_str(line.trim_end());
            out.push('\n');
        }
        out
    }
}

/// Formats a ratio as e.g. "0.19".
pub fn ratio(value: f64) -> String {
    format!("{value:.2}")
}

/// Formats a percentage as e.g. "81%".
pub fn percent(value: f64) -> String {
    format!("{:.0}%", value * 100.0)
}

/// Formats a byte count in MB.
pub fn mb(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / (1 << 20) as f64)
}

/// Geometric-mean helper used for "Average" rows (the paper averages ratios).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

// ---------------------------------------------------------------------------
// Telemetry summary lines and pause columns
// ---------------------------------------------------------------------------

/// GC pause count of one run's telemetry, rendered for a table cell
/// ("n/a" when the run carried no telemetry). The count is deterministic:
/// one histogram sample per collection.
pub fn pause_count_cell(result: &ExperimentResult) -> String {
    pause_count_cell_of(result.telemetry.as_ref())
}

/// [`pause_count_cell`] over a bare telemetry report (for drivers holding a
/// [`kingsguard::RunReport`] instead of an [`ExperimentResult`]).
pub fn pause_count_cell_of(telemetry: Option<&telemetry::TelemetryReport>) -> String {
    match telemetry {
        Some(report) => report
            .hist("gc.pause_ns")
            .map_or(0, |hist| hist.count)
            .to_string(),
        None => "n/a".to_string(),
    }
}

/// Maximum GC pause of one run's telemetry, rendered for a table cell
/// ("n/a" when the run carried no telemetry, "-" when it never collected).
/// The duration is wall-clock timing: informative, not deterministic.
pub fn max_pause_cell(result: &ExperimentResult) -> String {
    max_pause_cell_of(result.telemetry.as_ref())
}

/// [`max_pause_cell`] over a bare telemetry report.
pub fn max_pause_cell_of(telemetry: Option<&telemetry::TelemetryReport>) -> String {
    match telemetry {
        Some(report) => match report.hist("gc.pause_ns") {
            Some(hist) if hist.count > 0 => telemetry::fmt_ns(hist.max),
            _ => "-".to_string(),
        },
        None => "n/a".to_string(),
    }
}

/// Accumulates the telemetry of every run behind one experiment table into
/// the end-of-run summary line. The figure experiments derive their rows
/// from transient [`ExperimentResult`]s; each row absorbs its runs into a
/// rollup so the summary survives the results being dropped.
#[derive(Clone, Debug, Default)]
pub struct TelemetryRollup {
    runs: usize,
    pauses: telemetry::HistogramSummary,
    touch_events: u64,
    elapsed_ns: u64,
    cache_hits: u64,
    cache_misses: u64,
}

impl TelemetryRollup {
    /// Folds one run's telemetry in (a run without telemetry is skipped).
    pub fn absorb(&mut self, result: &ExperimentResult) {
        let Some(report) = result.telemetry.as_ref() else {
            return;
        };
        self.runs += 1;
        if let Some(hist) = report.hist("gc.pause_ns") {
            self.pauses.merge(hist);
        }
        self.touch_events += report.counter("touch.events").unwrap_or(0);
        self.cache_hits += report.counter("cache.hits").unwrap_or(0);
        self.cache_misses += report.counter("cache.misses").unwrap_or(0);
        self.elapsed_ns += report.elapsed_ns;
    }

    /// Folds another rollup in (for per-row rollups fanned over
    /// [`crate::runner::run_jobs`] worker threads).
    pub fn merge(&mut self, other: &TelemetryRollup) {
        self.runs += other.runs;
        self.pauses.merge(&other.pauses);
        self.touch_events += other.touch_events;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.elapsed_ns += other.elapsed_ns;
    }

    /// The summary line: GC pauses (count, p50/p99, max), touch-path
    /// throughput and cache hit rate ("n/a" without caches, e.g. in
    /// architecture-independent mode). `None` when no run carried telemetry.
    pub fn line(&self) -> Option<String> {
        if self.runs == 0 {
            return None;
        }
        let mut line = format!(
            "telemetry ({} runs): {} GC pauses (p50 {}, p99 {}, max {})",
            self.runs,
            self.pauses.count,
            telemetry::fmt_ns(self.pauses.p50),
            telemetry::fmt_ns(self.pauses.p99),
            telemetry::fmt_ns(self.pauses.max),
        );
        if self.elapsed_ns > 0 {
            let events_per_sec = self.touch_events as f64 / (self.elapsed_ns as f64 / 1e9);
            line.push_str(&format!(", {:.2} M events/s", events_per_sec / 1e6));
        }
        let cached = self.cache_hits + self.cache_misses;
        if cached > 0 {
            line.push_str(&format!(
                ", cache hit rate {}",
                percent(self.cache_hits as f64 / cached as f64)
            ));
        } else {
            line.push_str(", cache hit rate n/a");
        }
        Some(line)
    }

    /// [`TelemetryRollup::line`] with a trailing newline, or the empty
    /// string — ready to append to a rendered table.
    pub fn appendix(&self) -> String {
        match self.line() {
            Some(line) => format!("{line}\n"),
            None => String::new(),
        }
    }
}

/// Splits `(row, rollup)` pairs produced by a fanned per-benchmark closure
/// into the row list and the table-wide rollup.
pub(crate) fn collect_rows<R>(pairs: Vec<(R, TelemetryRollup)>) -> (Vec<R>, TelemetryRollup) {
    let mut rollup = TelemetryRollup::default();
    let rows = pairs
        .into_iter()
        .map(|(row, r)| {
            rollup.merge(&r);
            row
        })
        .collect();
    (rows, rollup)
}

/// The end-of-run telemetry summary over retained results (see
/// [`TelemetryRollup`] for the accumulating form).
pub fn telemetry_summary<'a>(results: impl IntoIterator<Item = &'a ExperimentResult>) -> Option<String> {
    let mut rollup = TelemetryRollup::default();
    for result in results {
        rollup.absorb(result);
    }
    rollup.line()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut table = TextTable::new("Demo", &["name", "value"]);
        table.row(vec!["a".into(), "1".into()]);
        table.row(vec!["longer-name".into(), "2".into()]);
        let text = table.render();
        assert!(text.contains("Demo"));
        assert!(text.contains("longer-name"));
        assert_eq!(table.len(), 2);
        assert!(!table.is_empty());
        // Header line and separator present.
        assert!(text.lines().count() >= 4);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ratio(0.191), "0.19");
        assert_eq!(percent(0.81), "81%");
        assert_eq!(mb(32 << 20), "32.0");
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
    }

    /// A bare result carrying only the given telemetry report, for pinning
    /// the formatting of the pause columns and summary lines.
    fn result_with_telemetry(telemetry: Option<telemetry::TelemetryReport>) -> ExperimentResult {
        ExperimentResult {
            benchmark: "demo".to_string(),
            collector: "KG-W".to_string(),
            gc: Default::default(),
            memory: Default::default(),
            time: Default::default(),
            energy: Default::default(),
            edp: 0.0,
            wp: None,
            scaling_factor: 1.0,
            site_profile: None,
            telemetry,
        }
    }

    fn report_with_pauses(pauses_ns: &[u64]) -> telemetry::TelemetryReport {
        let mut t = telemetry::Telemetry::enabled();
        for &pause in pauses_ns {
            t.record("gc.pause_ns", pause);
        }
        t.counter_set("touch.events", 1_000);
        t.counter_set("cache.hits", 75);
        t.counter_set("cache.misses", 25);
        let mut report = t.report().expect("enabled telemetry reports");
        report.elapsed_ns = 2_000_000_000; // pin: timing is not deterministic
        report
    }

    #[test]
    fn pause_cells_are_golden() {
        let run = result_with_telemetry(Some(report_with_pauses(&[1_000, 3_000_000, 2_000])));
        assert_eq!(pause_count_cell(&run), "3");
        assert_eq!(max_pause_cell(&run), "3.0ms");

        let idle = result_with_telemetry(Some(report_with_pauses(&[])));
        assert_eq!(pause_count_cell(&idle), "0");
        assert_eq!(max_pause_cell(&idle), "-");

        let dark = result_with_telemetry(None);
        assert_eq!(pause_count_cell(&dark), "n/a");
        assert_eq!(max_pause_cell(&dark), "n/a");
    }

    #[test]
    fn telemetry_summary_line_is_golden() {
        let runs = [
            result_with_telemetry(Some(report_with_pauses(&[1_000, 3_000_000, 2_000]))),
            result_with_telemetry(Some(report_with_pauses(&[500_000]))),
        ];
        let line = telemetry_summary(runs.iter()).expect("telemetry present");
        // 2 runs, 4 pauses, 500 events/s over 2+2 pinned seconds, 75% hits.
        assert_eq!(
            line,
            "telemetry (2 runs): 4 GC pauses (p50 2.0us, p99 3.0ms, max 3.0ms), \
             0.00 M events/s, cache hit rate 75%"
        );
        assert!(telemetry_summary(std::iter::empty()).is_none());
        assert!(telemetry_summary([result_with_telemetry(None)].iter()).is_none());
    }
}
