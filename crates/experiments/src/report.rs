//! Plain-text table formatting for experiment reports, plus the per-row
//! metric helpers shared by the advise and adaptive comparison tables.

use hybrid_mem::lifetime::Endurance;

use crate::runner::ExperimentResult;

/// Endurance level used for the lifetime columns of the comparison tables
/// (the paper's headline 30 M writes-per-cell point).
pub const LIFETIME_ENDURANCE: Endurance = Endurance::Mid30M;

/// Finds `collector`'s result within one comparison row.
pub(crate) fn result_for<'a>(
    results: &'a [ExperimentResult],
    benchmark: &str,
    collector: &str,
) -> &'a ExperimentResult {
    results
        .iter()
        .find(|r| r.collector == collector)
        .unwrap_or_else(|| panic!("missing {collector} result for {benchmark}"))
}

/// Estimated 32-core PCM write rate in GB/s.
pub(crate) fn write_rate_gbps(result: &ExperimentResult) -> f64 {
    result.pcm_write_rate_32core() / 1e9
}

/// PCM lifetime in years at [`LIFETIME_ENDURANCE`].
pub(crate) fn lifetime_years(result: &ExperimentResult) -> f64 {
    result.pcm_lifetime_years(LIFETIME_ENDURANCE.writes_per_cell())
}

/// Energy-delay product of `collector` relative to `baseline` within one
/// comparison row (0.0 when the baseline's EDP is zero).
pub(crate) fn edp_relative(
    results: &[ExperimentResult],
    benchmark: &str,
    collector: &str,
    baseline: &str,
) -> f64 {
    let base = result_for(results, benchmark, baseline).edp;
    if base == 0.0 {
        return 0.0;
    }
    result_for(results, benchmark, collector).edp / base
}

/// A simple fixed-width text table builder.
#[derive(Debug, Default, Clone)]
pub struct TextTable {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        TextTable {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must have as many cells as the header).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        debug_assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let columns = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(columns) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        let mut line = String::new();
        for (i, header) in self.header.iter().enumerate() {
            line.push_str(&format!("{:<width$}  ", header, width = widths[i]));
        }
        out.push_str(line.trim_end());
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (columns - 1)));
        out.push('\n');
        for row in &self.rows {
            let mut line = String::new();
            for (i, cell) in row.iter().enumerate().take(columns) {
                line.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
            }
            out.push_str(line.trim_end());
            out.push('\n');
        }
        out
    }
}

/// Formats a ratio as e.g. "0.19".
pub fn ratio(value: f64) -> String {
    format!("{value:.2}")
}

/// Formats a percentage as e.g. "81%".
pub fn percent(value: f64) -> String {
    format!("{:.0}%", value * 100.0)
}

/// Formats a byte count in MB.
pub fn mb(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / (1 << 20) as f64)
}

/// Geometric-mean helper used for "Average" rows (the paper averages ratios).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut table = TextTable::new("Demo", &["name", "value"]);
        table.row(vec!["a".into(), "1".into()]);
        table.row(vec!["longer-name".into(), "2".into()]);
        let text = table.render();
        assert!(text.contains("Demo"));
        assert!(text.contains("longer-name"));
        assert_eq!(table.len(), 2);
        assert!(!table.is_empty());
        // Header line and separator present.
        assert!(text.lines().count() >= 4);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ratio(0.191), "0.19");
        assert_eq!(percent(0.81), "81%");
        assert_eq!(mb(32 << 20), "32.0");
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
    }
}
