//! The multi-mutator comparison (`repro mutators --mutators K`).
//!
//! Runs every simulated benchmark under the `MutatorContext` API with K
//! interleaved mutator threads and verifies the redesign's exactness
//! guarantee end to end: in architecture-independent mode (the measurement
//! mode this experiment always uses), for every (benchmark, collector)
//! pair, the aggregate PCM and DRAM device write counts at K mutators are
//! **identical** to the K=1 run — every barrier event batched in a
//! context's store buffer and every device event recorded in a context's
//! counter shard arrives, none twice. The table also reports the per-context PCM write attribution
//! the sharded counters provide for free, and re-checks the KG-D ≤ KG-N
//! bound under K mutators. A final row exercises the GraphChi-style
//! streaming workload (phase change mid-run) under the same driver.

use kingsguard::{HeapConfig, KingsguardHeap};
use workloads::{benchmark, simulated_benchmarks, StreamingConfig, StreamingWorkload, SyntheticMutator};

use advice::AdviceTable;
use hybrid_mem::{MemoryKind, ShardStats};

use crate::report::TextTable;
use crate::runner::{run_jobs, ExperimentConfig};

/// The collector labels of the comparison, in row order per benchmark.
pub const MUTATOR_CONFIGS: [&str; 5] = ["PCM-only", "KG-N", "KG-W", "KG-A", "KG-D"];

fn config_for(label: &str) -> HeapConfig {
    match label {
        "PCM-only" => HeapConfig::gen_immix_pcm(),
        "KG-N" => HeapConfig::kg_n(),
        "KG-W" => HeapConfig::kg_w(),
        // All-cold advice keeps KG-A self-contained (no profiling run); the
        // point here is the multi-mutator machinery, not advice quality.
        "KG-A" => HeapConfig::kg_a(AdviceTable::all_cold()),
        "KG-D" => HeapConfig::kg_d(),
        other => panic!("unknown collector label {other}"),
    }
}

/// One (benchmark, collector) comparison.
#[derive(Clone, Debug)]
pub struct MutatorRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Collector label.
    pub collector: String,
    /// Aggregate PCM device writes of the K=1 run.
    pub pcm_writes_k1: u64,
    /// Aggregate PCM device writes of the K-mutator run.
    pub pcm_writes_k: u64,
    /// Aggregate DRAM device writes of the K=1 run.
    pub dram_writes_k1: u64,
    /// Aggregate DRAM device writes of the K-mutator run.
    pub dram_writes_k: u64,
    /// Estimated 32-core PCM write rate of the K-mutator run in bytes/s
    /// (the metric of the paper's lifetime bound and of the adaptive
    /// comparison).
    pub pcm_write_rate_k: f64,
    /// Per-context PCM write attribution of the K-mutator run.
    pub context_pcm_writes: Vec<u64>,
    /// GC pause count of the K-mutator run, rendered (deterministic: one
    /// sample per collection).
    pub gc_pauses_k: String,
    /// Maximum GC pause of the K-mutator run, rendered (wall-clock timing).
    pub max_pause_k: String,
}

impl MutatorRow {
    /// Returns `true` if the K-mutator aggregates match K=1 exactly.
    pub fn exact(&self) -> bool {
        self.pcm_writes_k1 == self.pcm_writes_k && self.dram_writes_k1 == self.dram_writes_k
    }
}

/// Outcome of the streaming-workload row.
#[derive(Clone, Debug)]
pub struct StreamingRow {
    /// KG-N PCM device writes.
    pub kg_n_pcm_writes: u64,
    /// KG-D PCM device writes.
    pub kg_d_pcm_writes: u64,
    /// Per-site advisories KG-D learned during the run.
    pub kg_d_promotions: u64,
    /// Stale advisories KG-D revoked after the phase change.
    pub kg_d_reversions: u64,
}

/// Results of the multi-mutator comparison.
#[derive(Clone, Debug)]
pub struct MutatorResults {
    /// Mutator threads of the K runs.
    pub mutators: usize,
    /// Per-(benchmark, collector) rows.
    pub rows: Vec<MutatorRow>,
    /// The streaming-workload comparison under the same driver.
    pub streaming: StreamingRow,
}

impl MutatorResults {
    /// Number of rows whose K aggregates match K=1 exactly.
    pub fn exact_rows(&self) -> usize {
        self.rows.iter().filter(|r| r.exact()).count()
    }

    /// Number of benchmarks where KG-D's estimated 32-core PCM write rate
    /// at K mutators is ≤ KG-N's at K (the same metric as the adaptive
    /// comparison and the paper's lifetime bound).
    pub fn kg_d_wins(&self) -> usize {
        let kg_n_rate = |benchmark: &str| {
            self.rows
                .iter()
                .find(|r| r.benchmark == benchmark && r.collector == "KG-N")
                .map(|r| r.pcm_write_rate_k)
        };
        self.rows
            .iter()
            .filter(|r| r.collector == "KG-D")
            .filter(|r| r.pcm_write_rate_k <= kg_n_rate(&r.benchmark).unwrap_or(0.0))
            .count()
    }

    /// Number of benchmarks in the comparison.
    pub fn benchmarks(&self) -> usize {
        self.rows.len() / MUTATOR_CONFIGS.len()
    }

    /// Renders the comparison table.
    pub fn report(&self) -> String {
        let mut table = TextTable::new(
            &format!(
                "Multi-mutator heap API: {} interleaved mutator threads vs 1\n\
                 (PCM/DRAM device writes must match exactly — sharded counters and batched\n\
                 barriers lose no events; 'Per-context PCM' is the K-run write attribution)",
                self.mutators
            ),
            &[
                "Benchmark",
                "Collector",
                "PCM K=1",
                &format!("PCM K={}", self.mutators),
                "Exact",
                "Per-context PCM",
                "GCs",
                "Max pause",
            ],
        );
        for row in &self.rows {
            table.row(vec![
                row.benchmark.clone(),
                row.collector.clone(),
                row.pcm_writes_k1.to_string(),
                row.pcm_writes_k.to_string(),
                if row.exact() { "yes" } else { "NO" }.to_string(),
                row.context_pcm_writes
                    .iter()
                    .map(u64::to_string)
                    .collect::<Vec<_>>()
                    .join("/"),
                row.gc_pauses_k.clone(),
                row.max_pause_k.clone(),
            ]);
        }
        let mut out = table.render();
        out.push_str(&format!(
            "exact shard merge on {}/{} (benchmark, collector) pairs; KG-D PCM write rate <= KG-N on {}/{} benchmarks at K={}\n",
            self.exact_rows(),
            self.rows.len(),
            self.kg_d_wins(),
            self.benchmarks(),
            self.mutators
        ));
        out.push_str(&format!(
            "graphchi.stream (phase change): KG-D {} vs KG-N {} PCM writes, {} sites learned, {} un-learned\n",
            self.streaming.kg_d_pcm_writes,
            self.streaming.kg_n_pcm_writes,
            self.streaming.kg_d_promotions,
            self.streaming.kg_d_reversions
        ));
        out
    }
}

fn run_with_mutators(
    name: &str,
    heap_config: HeapConfig,
    config: &ExperimentConfig,
    mutators: usize,
) -> (kingsguard::RunReport, Vec<ShardStats>) {
    let profile = benchmark(name).unwrap_or_else(|| panic!("unknown benchmark {name}"));
    let budget = profile.scaled_heap_bytes(config.scale).max(2 << 20) as usize;
    let mut heap = KingsguardHeap::new(
        heap_config.with_heap_budget(budget),
        hybrid_mem::MemoryConfig::architecture_independent(),
    );
    heap.enable_telemetry();
    let workload = SyntheticMutator::new(
        profile,
        workloads::WorkloadConfig {
            scale: config.scale,
            seed: config.seed,
        },
    );
    let traffic = workload.run_multi_configured(
        &mut heap,
        mutators,
        kingsguard::MutatorConfig::default(),
        |_, _| {},
    );
    (heap.finish(), traffic)
}

/// Estimated 32-core PCM write rate of a run in bytes/s (the shared
/// derivation of [`crate::runner::report_pcm_write_rate_32core`]).
fn pcm_write_rate(name: &str, report: &kingsguard::RunReport) -> f64 {
    let profile = benchmark(name).unwrap_or_else(|| panic!("unknown benchmark {name}"));
    crate::runner::report_pcm_write_rate_32core(report, profile.scaling_factor.unwrap_or(1.0))
}

fn streaming_row(config: &ExperimentConfig, mutators: usize) -> StreamingRow {
    let run = |heap_config: HeapConfig| {
        let mut heap = KingsguardHeap::new(
            heap_config.with_heap_budget(512 * 1024),
            hybrid_mem::MemoryConfig::architecture_independent(),
        );
        let workload = StreamingWorkload::new(StreamingConfig {
            mutators,
            seed: config.seed,
            scale: config.scale,
            ..Default::default()
        });
        workload.run(&mut heap);
        let adaptation = heap.policy().adaptation_counters().unwrap_or((0, 0));
        (heap.finish(), adaptation)
    };
    let (kg_n, _) = run(HeapConfig::kg_n());
    let (kg_d, (promotions, reversions)) = run(HeapConfig::kg_d());
    StreamingRow {
        kg_n_pcm_writes: kg_n.memory.writes(MemoryKind::Pcm),
        kg_d_pcm_writes: kg_d.memory.writes(MemoryKind::Pcm),
        kg_d_promotions: promotions,
        kg_d_reversions: reversions,
    }
}

/// Runs the multi-mutator comparison over `benchmarks` with `mutators`
/// interleaved mutator threads per run, fanning the (benchmark, collector)
/// pairs over `config.jobs` worker threads.
pub fn mutator_scaling(config: &ExperimentConfig, benchmarks: &[&str], mutators: usize) -> MutatorResults {
    let mutators = mutators.max(1);
    let pairs: Vec<(&str, &str)> = benchmarks
        .iter()
        .flat_map(|&b| MUTATOR_CONFIGS.iter().map(move |&c| (b, c)))
        .collect();
    let rows = run_jobs(&pairs, config.jobs, |&(name, collector)| {
        let (base, _) = run_with_mutators(name, config_for(collector), config, 1);
        let (multi, traffic) = run_with_mutators(name, config_for(collector), config, mutators);
        MutatorRow {
            benchmark: name.to_string(),
            collector: collector.to_string(),
            pcm_writes_k1: base.memory.writes(MemoryKind::Pcm),
            pcm_writes_k: multi.memory.writes(MemoryKind::Pcm),
            dram_writes_k1: base.memory.writes(MemoryKind::Dram),
            dram_writes_k: multi.memory.writes(MemoryKind::Dram),
            pcm_write_rate_k: pcm_write_rate(name, &multi),
            context_pcm_writes: traffic.iter().map(|t| t.writes(MemoryKind::Pcm)).collect(),
            gc_pauses_k: crate::report::pause_count_cell_of(multi.telemetry.as_ref()),
            max_pause_k: crate::report::max_pause_cell_of(multi.telemetry.as_ref()),
        }
    });
    MutatorResults {
        mutators,
        rows,
        streaming: streaming_row(config, mutators),
    }
}

/// The default benchmark set: the paper's simulation subset.
pub fn default_benchmarks() -> Vec<&'static str> {
    simulated_benchmarks().iter().map(|p| p.name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_are_exact_for_every_collector_and_kg_d_holds() {
        let config = ExperimentConfig::quick();
        let results = mutator_scaling(&config, &["lusearch", "pmd"], 4);
        assert_eq!(results.rows.len(), 2 * MUTATOR_CONFIGS.len());
        assert_eq!(
            results.exact_rows(),
            results.rows.len(),
            "sharded merge lost or duplicated events:\n{}",
            results.report()
        );
        assert_eq!(results.kg_d_wins(), 2, "KG-D must hold its bound at K=4");
        for row in &results.rows {
            assert_eq!(row.context_pcm_writes.len(), 4);
        }
        assert!(
            results.streaming.kg_d_reversions > 0,
            "the streaming phase change must trigger un-learning"
        );
        let report = results.report();
        assert!(report.contains("graphchi.stream"));
        assert!(report.contains("exact shard merge"));
    }

    #[test]
    fn threaded_mutator_comparison_matches_sequential() {
        let sequential = mutator_scaling(&ExperimentConfig::quick(), &["lu.fix"], 2);
        let threaded = mutator_scaling(&ExperimentConfig::quick().with_jobs(4), &["lu.fix"], 2);
        for (a, b) in sequential.rows.iter().zip(&threaded.rows) {
            assert_eq!(a.benchmark, b.benchmark);
            assert_eq!(a.collector, b.collector);
            assert_eq!(a.pcm_writes_k, b.pcm_writes_k);
            assert_eq!(a.context_pcm_writes, b.context_pcm_writes);
        }
    }
}
