//! Experiment runner: executes one (benchmark, collector) pair and derives
//! every metric the paper reports from the run.
//!
//! When [`ExperimentConfig::trace_dir`] is set, runs are **trace-backed**:
//! the first run of a (benchmark, scale, seed, space-sizing) combination
//! records its heap-event stream to a `.kgtrace` file in that directory
//! (recording is passive, so its results equal a live run), and every
//! subsequent run of the same combination — under *any* collector,
//! including hook-driven baselines like OS Write Partitioning — replays the
//! stream instead of re-running workload generation. Replay is bit-identical
//! to a live run and measurably faster, so an N-collector comparison pays
//! the workload-generation cost once instead of N times.

use std::fmt;
use std::path::{Path, PathBuf};

use advice::SiteProfile;
use hybrid_mem::energy::{EnergyBreakdown, EnergyModel};
use hybrid_mem::lifetime::LifetimeModel;
use hybrid_mem::timing::{ExecutionModel, TimeBreakdown};
use hybrid_mem::{FaultConfig, MemoryConfig, MemoryKind, MemoryStats, Phase};
use kingsguard::{GcStats, HeapConfig, KingsguardHeap};
use oswp::{WritePartitioning, WritePartitioningConfig, WritePartitioningStats};
use trace::TraceReplayer;
use workloads::{BenchmarkProfile, SyntheticMutator, WorkloadConfig};

/// How the memory system is measured.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MeasurementMode {
    /// Cycle-level simulation mode: scaled cache hierarchy + memory
    /// controller (used for Figures 5–10, as in Section 6.1).
    Simulation,
    /// Architecture-independent mode: no caches, every heap store reaches
    /// the device counters (used for Figures 11–12 and Table 4, matching the
    /// paper's barrier-reported "real hardware" numbers of Section 6.2).
    ArchitectureIndependent,
}

/// Configuration shared by all experiments.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExperimentConfig {
    /// Divisor applied to the paper's allocation volumes and heap sizes.
    pub scale: u64,
    /// RNG seed for the synthetic mutators.
    pub seed: u64,
    /// Divisor applied to the cache hierarchy in simulation mode so the
    /// scaled-down working sets see realistic miss rates.
    pub cache_scale: usize,
    /// Measurement mode.
    pub mode: MeasurementMode,
    /// Worker threads for fanning the embarrassingly parallel per-benchmark
    /// runs of an experiment over [`run_jobs`] (`1` runs inline; results and
    /// output ordering are identical either way).
    pub jobs: usize,
    /// Directory of recorded `.kgtrace` heap-event streams. When set, every
    /// benchmark run records its trace on first use and replays it on every
    /// later use (see the module docs); when `None`, runs are always live.
    pub trace_dir: Option<PathBuf>,
    /// Directory for `.kgmetrics` telemetry emissions. Runs always collect
    /// telemetry (it is host-side bookkeeping, bit-identical on or off, and
    /// feeds the pause columns of the experiment tables); when this is set,
    /// each run additionally writes its report as a JSON-lines file named
    /// `{benchmark}-{collector}.kgmetrics`, and per-line write tracking is
    /// forced on so wear-distribution snapshots are included.
    pub telemetry_dir: Option<PathBuf>,
    /// Deterministic PCM fault injection. `None` (the default) runs
    /// fault-free and is bit-identical to builds that predate the fault
    /// model; `Some` installs the schedule in every heap the experiment
    /// builds, and its seed is stamped into recorded `.kgtrace` provenance
    /// so replays only reuse traces taken under the same schedule.
    pub fault: Option<FaultConfig>,
}

impl ExperimentConfig {
    /// The default experiment configuration (scale 256, simulation mode).
    pub fn simulation() -> Self {
        ExperimentConfig {
            scale: 256,
            seed: 0xC0FFEE,
            cache_scale: 16,
            mode: MeasurementMode::Simulation,
            jobs: 1,
            trace_dir: None,
            telemetry_dir: None,
            fault: None,
        }
    }

    /// Architecture-independent mode at the default scale.
    pub fn architecture_independent() -> Self {
        ExperimentConfig {
            mode: MeasurementMode::ArchitectureIndependent,
            ..Self::simulation()
        }
    }

    /// A much smaller configuration for unit tests and smoke runs.
    pub fn quick() -> Self {
        ExperimentConfig {
            scale: 2048,
            seed: 7,
            cache_scale: 64,
            mode: MeasurementMode::ArchitectureIndependent,
            jobs: 1,
            trace_dir: None,
            telemetry_dir: None,
            fault: None,
        }
    }

    /// Same configuration with a different scale.
    pub fn with_scale(mut self, scale: u64) -> Self {
        self.scale = scale;
        self
    }

    /// Same configuration with a different worker-thread count.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Same configuration with trace-backed runs recording to / replaying
    /// from `dir`.
    pub fn with_trace_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.trace_dir = Some(dir.into());
        self
    }

    /// Same configuration with `.kgmetrics` telemetry files written to
    /// `dir` (see [`ExperimentConfig::telemetry_dir`]).
    pub fn with_telemetry_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.telemetry_dir = Some(dir.into());
        self
    }

    /// Same configuration with deterministic PCM fault injection enabled
    /// (see [`ExperimentConfig::fault`]).
    pub fn with_faults(mut self, fault: FaultConfig) -> Self {
        self.fault = Some(fault);
        self
    }

    pub(crate) fn memory_config(&self) -> MemoryConfig {
        let mut config = match self.mode {
            MeasurementMode::Simulation => MemoryConfig::hybrid_scaled(self.cache_scale),
            MeasurementMode::ArchitectureIndependent => MemoryConfig::architecture_independent(),
        };
        if self.telemetry_dir.is_some() {
            // Emitted telemetry includes wear-distribution snapshots, which
            // need per-line write counts. Tracking only adds host-side
            // bookkeeping; the simulated traffic is unchanged.
            config.track_line_writes = true;
        }
        if let Some(fault) = self.fault {
            config = config.with_faults(fault);
        }
        config
    }

    pub(crate) fn workload(&self) -> WorkloadConfig {
        WorkloadConfig {
            scale: self.scale,
            seed: self.seed,
        }
    }
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self::simulation()
    }
}

/// The outcome of running one benchmark under one collector.
#[derive(Clone, Debug)]
pub struct ExperimentResult {
    /// Benchmark name.
    pub benchmark: String,
    /// Collector label ("KG-N", "KG-W", "PCM-only", "WP", ...).
    pub collector: String,
    /// Collector statistics.
    pub gc: GcStats,
    /// Memory-system statistics (caches flushed).
    pub memory: MemoryStats,
    /// Execution-time breakdown from the mechanistic model.
    pub time: TimeBreakdown,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
    /// Energy-delay product in joule-seconds.
    pub edp: f64,
    /// OS Write Partitioning statistics when the WP baseline was active.
    pub wp: Option<WritePartitioningStats>,
    /// The profile's 4→32-core write-rate scaling factor (1.0 if the paper
    /// did not report one).
    pub scaling_factor: f64,
    /// The per-site profile gathered by the run, when it was a profiling run
    /// (see [`run_benchmark_profiled`]).
    pub site_profile: Option<SiteProfile>,
    /// The run's telemetry snapshot: GC-phase spans, pause histograms,
    /// device/cache counters and adaptation events (see the `telemetry`
    /// crate). Always present for runs driven by this module.
    pub telemetry: Option<telemetry::TelemetryReport>,
}

impl ExperimentResult {
    /// Device writes to PCM (cache lines).
    pub fn pcm_writes(&self) -> u64 {
        self.memory.writes(MemoryKind::Pcm)
    }

    /// Device writes to DRAM (cache lines).
    pub fn dram_writes(&self) -> u64 {
        self.memory.writes(MemoryKind::Dram)
    }

    /// Application (barrier-level) writes that reached PCM, i.e. mutator
    /// phase device writes.
    pub fn pcm_app_writes(&self) -> u64 {
        self.memory.phase_writes(MemoryKind::Pcm).get(Phase::Mutator)
    }

    /// Execution time in seconds from the mechanistic model.
    pub fn execution_time_s(&self) -> f64 {
        self.time.total_s()
    }

    /// Simulated 4-core PCM write rate in bytes per second.
    pub fn pcm_write_rate_4core(&self) -> f64 {
        let time = self.execution_time_s();
        if time <= 0.0 {
            return 0.0;
        }
        self.memory.bytes_written(MemoryKind::Pcm) as f64 / time
    }

    /// Estimated 32-core PCM write rate in bytes per second: the simulated
    /// 4-core rate multiplied by the measured scaling factor (Table 3
    /// methodology).
    pub fn pcm_write_rate_32core(&self) -> f64 {
        self.pcm_write_rate_4core() * self.scaling_factor
    }

    /// PCM lifetime in years for `endurance_writes` per cell under the
    /// estimated 32-core write rate (Equation 1 of the paper).
    pub fn pcm_lifetime_years(&self, endurance_writes: u64) -> f64 {
        let model = LifetimeModel {
            capacity_bytes: 32 << 30,
            endurance_writes,
        };
        model.years(self.pcm_write_rate_32core())
    }
}

/// Estimated 32-core PCM write rate of a raw [`kingsguard::RunReport`] in
/// bytes/s: the same derivation `finalize` bakes into
/// [`ExperimentResult::pcm_write_rate_32core`] (default execution model,
/// PCM bytes over modeled time, times the published scaling factor), for
/// callers holding a report instead of a finalized result.
pub fn report_pcm_write_rate_32core(report: &kingsguard::RunReport, scaling_factor: f64) -> f64 {
    let time = ExecutionModel::default()
        .breakdown(&report.gc.work, &report.memory)
        .total_s();
    if time <= 0.0 {
        return 0.0;
    }
    report.memory.bytes_written(MemoryKind::Pcm) as f64 / time * scaling_factor
}

pub(crate) fn heap_config_for(
    profile: &BenchmarkProfile,
    mut base: HeapConfig,
    config: &ExperimentConfig,
) -> HeapConfig {
    let budget = profile.scaled_heap_bytes(config.scale).max(2 << 20) as usize;
    base = base.with_heap_budget(budget);
    base
}

pub(crate) fn finalize(
    profile: &BenchmarkProfile,
    collector: String,
    heap: KingsguardHeap,
    wp: Option<WritePartitioningStats>,
    dram_fraction: f64,
    pcm_fraction: f64,
    config: &ExperimentConfig,
) -> ExperimentResult {
    let report = heap.finish();
    let model = ExecutionModel::default();
    let time = model.breakdown(&report.gc.work, &report.memory);
    let energy_model = EnergyModel::default();
    let energy = energy_model.breakdown(&report.memory, time.total_s(), dram_fraction, pcm_fraction);
    let edp = energy.total_j() * time.total_s();
    if let (Some(dir), Some(telemetry)) = (&config.telemetry_dir, &report.telemetry) {
        let meta = telemetry::RunMeta {
            benchmark: profile.name.to_string(),
            collector: collector.clone(),
            seed: config.seed,
            scale: config.scale,
        };
        let path = metrics_path(dir, profile.name, &collector);
        if let Err(err) = std::fs::create_dir_all(dir)
            .map_err(telemetry::TelemetryError::from)
            .and_then(|()| telemetry::write_jsonl(&path, &meta, telemetry))
        {
            eprintln!("warning: could not write telemetry {}: {err}", path.display());
        }
    }
    ExperimentResult {
        benchmark: profile.name.to_string(),
        collector,
        gc: report.gc,
        memory: report.memory,
        time,
        energy,
        edp,
        wp,
        scaling_factor: profile.scaling_factor.unwrap_or(1.0),
        site_profile: report.site_profile,
        telemetry: report.telemetry,
    }
}

/// Canonical telemetry file path for one (benchmark, collector) run.
pub fn metrics_path(dir: &Path, benchmark: &str, collector: &str) -> PathBuf {
    let sanitize = |s: &str| -> String {
        s.chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' || c == '.' {
                    c
                } else {
                    '_'
                }
            })
            .collect()
    };
    dir.join(format!(
        "{}-{}.{}",
        sanitize(benchmark),
        sanitize(collector),
        telemetry::FILE_EXTENSION
    ))
}

/// Runs `profile` under the collector described by `heap_config`.
pub fn run_benchmark(
    profile: &BenchmarkProfile,
    heap_config: HeapConfig,
    config: &ExperimentConfig,
) -> ExperimentResult {
    run_benchmark_inner(profile, heap_config, config, false)
}

/// Runs `profile` under `heap_config` with per-site profiling enabled: the
/// returned result carries the [`SiteProfile`] in
/// [`ExperimentResult::site_profile`]. Profiling is host-side bookkeeping —
/// it adds no simulated memory traffic, so the run's metrics are identical
/// to an unprofiled run.
pub fn run_benchmark_profiled(
    profile: &BenchmarkProfile,
    heap_config: HeapConfig,
    config: &ExperimentConfig,
) -> ExperimentResult {
    run_benchmark_inner(profile, heap_config, config, true)
}

fn run_benchmark_inner(
    profile: &BenchmarkProfile,
    heap_config: HeapConfig,
    config: &ExperimentConfig,
    profiled: bool,
) -> ExperimentResult {
    let label = heap_config.label();
    let heap_config = heap_config_for(profile, heap_config, config);
    // Provisioned capacities of the paper's memory systems: 32 GB DRAM-only,
    // 32 GB PCM-only, or hybrid 1 GB DRAM + 32 GB PCM.
    let (dram_fraction, pcm_fraction) = if heap_config.is_hybrid() {
        (1.0 / 32.0, 1.0)
    } else if heap_config.nursery_kind() == MemoryKind::Dram {
        (1.0, 0.0)
    } else {
        (0.0, 1.0)
    };
    let mut heap = KingsguardHeap::new(heap_config.clone(), config.memory_config());
    heap.enable_telemetry();
    if profiled {
        heap.enable_profiling(profile.name);
    }
    drive_workload(profile, &mut heap, &heap_config, config, |_, _| {});
    finalize(profile, label, heap, None, dram_fraction, pcm_fraction, config)
}

/// Runs `profile` on a PCM-only generational Immix heap managed by the OS
/// Write Partitioning baseline (Section 6.1.3).
pub fn run_benchmark_with_wp(profile: &BenchmarkProfile, config: &ExperimentConfig) -> ExperimentResult {
    let heap_config = heap_config_for(profile, HeapConfig::gen_immix_pcm(), config);
    let mut heap = KingsguardHeap::new(heap_config.clone(), config.memory_config());
    heap.enable_telemetry();
    let mut wp = WritePartitioning::new(WritePartitioningConfig::default());
    drive_workload(profile, &mut heap, &heap_config, config, |heap, progress| {
        heap.with_synced_memory(|mem| wp.advance(mem, progress.elapsed_ms));
    });
    finalize(
        profile,
        "WP".to_string(),
        heap,
        Some(wp.stats()),
        1.0 / 32.0,
        1.0,
        config,
    )
}

/// Canonical trace file path for one workload: keyed by everything that
/// shapes the recorded op stream — workload name, scale, seed, the
/// nursery/observer sizes the driver derives lifetimes from, and the
/// mutator count `mutators` (K shapes context spawns, interleaving and SSB
/// drain points; only in architecture-independent mode are totals
/// K-invariant) — so distinct combinations never collide and every
/// collector sharing a combination shares one trace.
pub fn trace_path(
    dir: &Path,
    workload: &str,
    heap_config: &HeapConfig,
    config: &ExperimentConfig,
    mutators: usize,
) -> PathBuf {
    // Fault-injected runs get their own files (keyed by the fault seed):
    // their device-level schedules differ, and fault-free runs keep the
    // historical names.
    let fault = match config.fault {
        Some(fault) => format!("-f{:016x}", fault.seed),
        None => String::new(),
    };
    dir.join(format!(
        "{workload}-n{}-o{}-s{}-x{:016x}-k{}{fault}.{}",
        heap_config.nursery_bytes,
        heap_config.observer_bytes,
        config.scale,
        config.seed,
        mutators.max(1),
        trace::FILE_EXTENSION
    ))
}

/// Returns `true` when `recorded` was taken under the current workload site
/// map. A trace whose `site-map-hash` no longer matches is *stale*: its
/// site-tagged stream would feed outdated ids to site-aware policies
/// (KG-A/KG-D) and the profiling pipeline, so — mirroring the `.kgprof`
/// drift policy — consumers log the drift and re-record instead of
/// replaying it. Unhashed traces (hash 0, e.g. hand-built) are trusted.
pub fn trace_site_map_current(recorded: &trace::Trace) -> bool {
    recorded.header.site_map_hash == 0 || recorded.header.site_map_hash == workloads::site_map_hash()
}

/// Returns `true` when `recorded` was taken under the fault schedule the
/// current configuration installs (seed 0 = fault-free, which is also what
/// v1 traces report). A mismatched trace would replay a different device
/// failure history, so consumers re-record instead of replaying it.
pub fn trace_fault_schedule_current(recorded: &trace::Trace, config: &ExperimentConfig) -> bool {
    recorded.header.fault_seed == config.fault.map(|fault| fault.seed).unwrap_or(0)
}

/// Drives `heap` through `profile`'s workload. Live when
/// [`ExperimentConfig::trace_dir`] is unset; otherwise replays the recorded
/// trace, recording it first (passively, so the recording run doubles as
/// this collector's result) when none exists or the existing file is
/// unreadable or stale.
pub(crate) fn drive_workload(
    profile: &BenchmarkProfile,
    heap: &mut KingsguardHeap,
    heap_config: &HeapConfig,
    config: &ExperimentConfig,
    mut hook: impl FnMut(&mut KingsguardHeap, workloads::MutatorProgress),
) {
    let mutator = SyntheticMutator::new(profile.clone(), config.workload());
    let Some(dir) = &config.trace_dir else {
        mutator.run_with(heap, hook);
        return;
    };
    // The figure/table drivers run the legacy single-mutator stream.
    let path = trace_path(dir, profile.name, heap_config, config, 1);
    match trace::load_trace(&path).map_err(Some).and_then(|recorded| {
        if !trace_site_map_current(&recorded) {
            eprintln!(
                "warning: {}: site map drifted since recording; re-recording",
                path.display()
            );
            Err(None)
        } else if !trace_fault_schedule_current(&recorded, config) {
            eprintln!(
                "warning: {}: fault schedule changed since recording \
                 (recorded seed {:#x}); re-recording",
                path.display(),
                recorded.header.fault_seed
            );
            Err(None)
        } else {
            Ok(recorded)
        }
    }) {
        Ok(recorded) => {
            let started = std::time::Instant::now();
            let stats = TraceReplayer::new(&recorded)
                .replay_with(heap, |heap, progress| {
                    hook(
                        heap,
                        workloads::MutatorProgress {
                            allocated_bytes: progress.allocated_bytes,
                            total_bytes: progress.total_bytes,
                            elapsed_ms: progress.elapsed_ms,
                        },
                    )
                })
                .unwrap_or_else(|err| panic!("replaying {} failed: {err}", path.display()));
            record_replay_telemetry(heap, &recorded, stats, started.elapsed());
        }
        Err(err) => {
            // Missing file is the normal first-use path; a damaged trace is
            // worth mentioning before it is re-recorded (stale ones were
            // already reported above, arriving here as `None`).
            if let Some(err) = err {
                if !matches!(err, trace::TraceError::Io(_)) {
                    eprintln!("warning: {}: {err}; re-recording", path.display());
                }
            }
            let recorded = mutator.record_with(heap, hook);
            if let Err(err) = trace::save_trace(&recorded, &path) {
                eprintln!("warning: could not save trace {}: {err}", path.display());
            }
        }
    }
}

/// Records replay-progress metrics after a trace-backed run: how much of
/// the stream was applied, its throughput, and the divergence of the
/// replayed heap from the recorded schedule (collections the heap ran on
/// its own allocation pressure beyond the explicitly recorded ones — zero
/// divergence means the replay hit every recorded safepoint position).
fn record_replay_telemetry(
    heap: &mut KingsguardHeap,
    recorded: &trace::Trace,
    stats: trace::ReplayStats,
    elapsed: std::time::Duration,
) {
    let recorded_collects = recorded
        .events
        .iter()
        .filter(|event| matches!(event, trace::TraceEvent::Collect { .. }))
        .count() as u64;
    let recorded_safepoints = recorded
        .events
        .iter()
        .filter(|event| matches!(event, trace::TraceEvent::Safepoint))
        .count() as u64;
    let observed_collections = {
        let gc = heap.stats();
        gc.nursery.collections + gc.observer.collections + gc.major.collections
    };
    let telemetry = heap.telemetry_mut();
    if !telemetry.is_enabled() {
        return;
    }
    telemetry.counter_set("replay.events", stats.events);
    telemetry.counter_set("replay.allocations", stats.allocations);
    telemetry.counter_set("replay.hooks", stats.hooks);
    telemetry.counter_set("replay.recorded_collects", recorded_collects);
    telemetry.counter_set("replay.recorded_safepoints", recorded_safepoints);
    telemetry.counter_set(
        "replay.unscheduled_collections",
        observed_collections.saturating_sub(recorded_collects),
    );
    let elapsed_s = elapsed.as_secs_f64();
    if elapsed_s > 0.0 {
        telemetry.timing_gauge("replay.events_per_sec", stats.events as f64 / elapsed_s);
    }
}

/// One experiment cell that panicked under [`run_jobs_reporting`].
#[derive(Clone, Debug)]
pub struct JobFailure {
    /// Index of the failed item in the input slice.
    pub index: usize,
    /// The panic payload, rendered (`Box<dyn Any>` payloads that are not
    /// strings become a placeholder).
    pub message: String,
}

impl fmt::Display for JobFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cell #{}: {}", self.index, self.message)
    }
}

/// Renders a caught panic payload for failure reports.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(message) = payload.downcast_ref::<&str>() {
        (*message).to_string()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Crash-isolated variant of [`run_jobs`]: every cell runs under
/// `catch_unwind`, so one panicking (benchmark, collector) pair neither
/// aborts the process nor takes the sibling cells with it. Returns the
/// per-item results in input order (`None` where the cell panicked) plus
/// one [`JobFailure`] per panicked cell, in index order.
pub fn run_jobs_reporting<T, R, F>(items: &[T], jobs: usize, f: F) -> (Vec<Option<R>>, Vec<JobFailure>)
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let call = |index: usize, item: &T| -> Result<R, JobFailure> {
        // The closure only borrows `f` and the item; a panic cannot leave
        // them in a state any later cell observes (each cell builds its own
        // heap and memory system), so unwind safety is by construction.
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(item))).map_err(|payload| JobFailure {
            index,
            message: panic_message(payload.as_ref()),
        })
    };
    let mut slots: Vec<Option<Result<R, JobFailure>>>;
    if jobs <= 1 || items.len() <= 1 {
        slots = items
            .iter()
            .enumerate()
            .map(|(index, item)| Some(call(index, item)))
            .collect();
    } else {
        let next = std::sync::atomic::AtomicUsize::new(0);
        slots = Vec::new();
        slots.resize_with(items.len(), || None);
        let shared = std::sync::Mutex::new(slots);
        std::thread::scope(|scope| {
            for _ in 0..jobs.min(items.len()) {
                scope.spawn(|| loop {
                    let index = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let Some(item) = items.get(index) else {
                        break;
                    };
                    let result = call(index, item);
                    shared.lock().expect("worker poisoned the result set")[index] = Some(result);
                });
            }
        });
        slots = shared.into_inner().expect("worker poisoned the result set");
    }
    let mut results = Vec::with_capacity(items.len());
    let mut failures = Vec::new();
    for slot in slots {
        match slot.expect("every index was claimed by exactly one worker") {
            Ok(result) => results.push(Some(result)),
            Err(failure) => {
                results.push(None);
                failures.push(failure);
            }
        }
    }
    (results, failures)
}

/// Runs `f` over `items` on up to `jobs` worker threads, returning the
/// results in input order. Each (benchmark, collector) run is embarrassingly
/// parallel — every worker builds its own heap and memory system — so the
/// results are identical to a sequential run; only the wall-clock changes.
/// `jobs <= 1` runs inline.
///
/// A panicking cell no longer aborts its siblings: every cell runs to
/// completion (or failure) first, and only then does this function panic
/// with a summary naming each failed cell — which `repro` catches and turns
/// into a non-zero exit. Callers that want the partial results instead use
/// [`run_jobs_reporting`].
pub fn run_jobs<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let (results, failures) = run_jobs_reporting(items, jobs, f);
    if !failures.is_empty() {
        let lines: Vec<String> = failures.iter().map(JobFailure::to_string).collect();
        panic!(
            "{} of {} cells failed: {}",
            failures.len(),
            results.len(),
            lines.join("; ")
        );
    }
    results
        .into_iter()
        .map(|slot| slot.expect("no failures means every slot is filled"))
        .collect()
}

/// Convenience: the Table 1 collector configurations plus the two baselines,
/// as `(label, config)` pairs.
pub fn standard_configs() -> Vec<(String, HeapConfig)> {
    let configs = vec![
        HeapConfig::gen_immix_dram(),
        HeapConfig::gen_immix_pcm(),
        HeapConfig::kg_n(),
        HeapConfig::kg_w(),
        HeapConfig::kg_w_no_loo(),
        HeapConfig::kg_w_no_loo_no_mdo(),
        HeapConfig::kg_w_no_primitive_monitoring(),
    ];
    configs.into_iter().map(|c| (c.label(), c)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::benchmark;

    #[test]
    fn quick_run_produces_consistent_metrics() {
        let profile = benchmark("lu.fix").unwrap();
        let result = run_benchmark(&profile, HeapConfig::kg_n(), &ExperimentConfig::quick());
        assert_eq!(result.collector, "KG-N");
        assert_eq!(result.benchmark, "lu.fix");
        assert!(result.gc.bytes_allocated > 0);
        assert!(result.pcm_writes() > 0, "KG-N promotes survivors to PCM");
        assert!(result.execution_time_s() > 0.0);
        assert!(result.edp > 0.0);
        assert!(result.pcm_write_rate_4core() > 0.0);
        assert!(result.pcm_lifetime_years(30_000_000).is_finite());
        assert!(result.pcm_write_rate_32core() >= result.pcm_write_rate_4core());
    }

    #[test]
    fn kg_n_writes_less_pcm_than_pcm_only() {
        let profile = benchmark("lusearch").unwrap();
        let config = ExperimentConfig::quick();
        let pcm_only = run_benchmark(&profile, HeapConfig::gen_immix_pcm(), &config);
        let kg_n = run_benchmark(&profile, HeapConfig::kg_n(), &config);
        assert!(
            kg_n.pcm_writes() < pcm_only.pcm_writes(),
            "KG-N must reduce PCM writes: {} vs {}",
            kg_n.pcm_writes(),
            pcm_only.pcm_writes()
        );
    }

    #[test]
    fn wp_runs_and_migrates_pages() {
        let profile = benchmark("pmd").unwrap();
        // WP is time-driven (10 ms quanta); use a scale at which the run
        // lasts long enough for several quanta to elapse.
        let config = ExperimentConfig::quick().with_scale(256);
        let result = run_benchmark_with_wp(&profile, &config);
        let wp = result.wp.expect("WP statistics present");
        assert!(wp.quanta > 0, "OS quanta must have elapsed");
        assert_eq!(result.collector, "WP");
    }

    #[test]
    fn trace_backed_runs_match_live_runs_exactly() {
        let dir = std::env::temp_dir().join(format!("kgtrace-runner-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let profile = benchmark("lu.fix").unwrap();
        let live_config = ExperimentConfig::quick();
        let traced_config = ExperimentConfig::quick().with_trace_dir(&dir);
        let fingerprint = |result: &ExperimentResult| {
            (
                result.pcm_writes(),
                result.dram_writes(),
                result.gc.remset_insertions,
                result.gc.nursery.collections,
            )
        };
        for heap_config in [
            HeapConfig::kg_n(),
            HeapConfig::kg_w(),
            HeapConfig::gen_immix_pcm(),
        ] {
            let live = run_benchmark(&profile, heap_config.clone(), &live_config);
            // First traced run records (passively), second replays; both
            // must equal the live run bit-for-bit.
            let recorded = run_benchmark(&profile, heap_config.clone(), &traced_config);
            let replayed = run_benchmark(&profile, heap_config.clone(), &traced_config);
            assert_eq!(
                fingerprint(&recorded),
                fingerprint(&live),
                "{}",
                heap_config.label()
            );
            assert_eq!(
                fingerprint(&replayed),
                fingerprint(&live),
                "{}",
                heap_config.label()
            );
        }
        // One trace file serves every collector of the same sizing.
        let traces: Vec<_> = std::fs::read_dir(&dir).unwrap().collect();
        assert_eq!(traces.len(), 1, "all collectors share one recorded trace");
        // The hook-driven OS Write Partitioning baseline replays its
        // mid-run migrations from the recorded hook markers.
        let wp_live = run_benchmark_with_wp(&profile, &live_config);
        let wp_replayed = run_benchmark_with_wp(&profile, &traced_config);
        assert_eq!(fingerprint(&wp_replayed), fingerprint(&wp_live));
        assert_eq!(
            wp_replayed.wp.as_ref().map(|wp| wp.quanta),
            wp_live.wp.as_ref().map(|wp| wp.quanta),
        );
        // Profiled (advise-pipeline) runs replay too, with the profile
        // reproduced from the replayed site-tagged stream.
        let profiled_live = run_benchmark_profiled(&profile, HeapConfig::kg_n(), &live_config);
        let profiled_replayed = run_benchmark_profiled(&profile, HeapConfig::kg_n(), &traced_config);
        assert_eq!(
            profiled_replayed.site_profile.as_ref().map(|p| p.sites.len()),
            profiled_live.site_profile.as_ref().map(|p| p.sites.len()),
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_site_map_traces_are_re_recorded_not_replayed() {
        let dir = std::env::temp_dir().join(format!("kgtrace-stale-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let profile = benchmark("pmd").unwrap();
        let config = ExperimentConfig::quick().with_trace_dir(&dir);
        let live = run_benchmark(&profile, HeapConfig::kg_n(), &ExperimentConfig::quick());
        // Plant a trace whose site-map hash no longer matches: well-formed,
        // but recorded "under an older program version". Its (empty) stream
        // must not be replayed.
        let heap_config = heap_config_for(&profile, HeapConfig::kg_n(), &config);
        let path = trace_path(&dir, profile.name, &heap_config, &config, 1);
        let stale = trace::Trace {
            header: trace::TraceHeader {
                workload: profile.name.to_string(),
                seed: config.seed,
                scale: config.scale,
                nursery_bytes: heap_config.nursery_bytes as u64,
                observer_bytes: heap_config.observer_bytes as u64,
                site_map_hash: workloads::site_map_hash() ^ 1,
                fault_seed: 0,
            },
            events: Vec::new(),
        };
        assert!(!trace_site_map_current(&stale));
        trace::save_trace(&stale, &path).unwrap();
        let result = run_benchmark(&profile, HeapConfig::kg_n(), &config);
        assert_eq!(
            result.pcm_writes(),
            live.pcm_writes(),
            "stale trace must be re-recorded"
        );
        // The re-recorded trace replaced the stale one and replays cleanly.
        let refreshed = trace::load_trace(&path).unwrap();
        assert!(trace_site_map_current(&refreshed));
        assert!(refreshed.allocations() > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn faulted_runs_record_and_replay_bit_identically() {
        let dir = std::env::temp_dir().join(format!("kgtrace-fault-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let profile = benchmark("lu.fix").unwrap();
        let fault = FaultConfig::accelerated(0xFA11, hybrid_mem::Endurance::Low10M);
        let live_config = ExperimentConfig::quick().with_faults(fault);
        let traced_config = live_config.clone().with_trace_dir(&dir);
        let fingerprint = |result: &ExperimentResult| {
            (
                result.pcm_writes(),
                result.dram_writes(),
                result.memory.failed_pcm_lines,
                result.memory.retired_pcm_pages,
                result.gc.fault_pages_retired,
            )
        };
        let live = run_benchmark(&profile, HeapConfig::kg_n(), &live_config);
        let recorded = run_benchmark(&profile, HeapConfig::kg_n(), &traced_config);
        let replayed = run_benchmark(&profile, HeapConfig::kg_n(), &traced_config);
        assert_eq!(fingerprint(&recorded), fingerprint(&live), "recording is passive");
        assert_eq!(
            fingerprint(&replayed),
            fingerprint(&live),
            "replay is bit-identical"
        );
        // The fault seed is stamped into the trace provenance, and the
        // faulted trace does not collide with the fault-free one.
        let heap_config = heap_config_for(&profile, HeapConfig::kg_n(), &traced_config);
        let path = trace_path(&dir, profile.name, &heap_config, &traced_config, 1);
        let trace = trace::load_trace(&path).unwrap();
        assert_eq!(trace.header.fault_seed, 0xFA11);
        assert!(trace_fault_schedule_current(&trace, &traced_config));
        let fault_free = ExperimentConfig::quick().with_trace_dir(&dir);
        assert_ne!(
            path,
            trace_path(&dir, profile.name, &heap_config, &fault_free, 1),
            "fault-injected traces get their own files"
        );
        // A configuration under a *different* schedule treats the trace as
        // stale and re-records rather than replaying the wrong failures.
        assert!(!trace_fault_schedule_current(&trace, &fault_free));
        let other_seed = live_config
            .clone()
            .with_faults(FaultConfig::accelerated(0xBEEF, hybrid_mem::Endurance::Low10M));
        assert!(!trace_fault_schedule_current(&trace, &other_seed));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_jobs_preserves_input_order_for_any_job_count() {
        let items: Vec<u64> = (0..17).collect();
        let expected: Vec<u64> = items.iter().map(|i| i * i).collect();
        for jobs in [0, 1, 2, 3, 8, 32] {
            assert_eq!(run_jobs(&items, jobs, |&i| i * i), expected, "jobs={jobs}");
        }
    }

    #[test]
    fn panicking_cells_are_isolated_and_reported() {
        let items: Vec<u64> = (0..9).collect();
        for jobs in [1, 3] {
            let (results, failures) = run_jobs_reporting(&items, jobs, |&i| {
                if i % 4 == 2 {
                    panic!("cell {i} exploded");
                }
                i * 10
            });
            // Every non-panicking cell completed despite the failures.
            assert_eq!(results.len(), items.len(), "jobs={jobs}");
            for (i, slot) in results.iter().enumerate() {
                if i % 4 == 2 {
                    assert!(slot.is_none(), "jobs={jobs}: cell {i} should have failed");
                } else {
                    assert_eq!(*slot, Some(i as u64 * 10), "jobs={jobs}");
                }
            }
            // Failures carry the index and the panic message, in order.
            assert_eq!(
                failures.iter().map(|f| f.index).collect::<Vec<_>>(),
                vec![2, 6],
                "jobs={jobs}"
            );
            assert!(failures[0].message.contains("cell 2 exploded"), "jobs={jobs}");
        }
        // The strict wrapper completes every cell first, then panics with a
        // summary naming each failed cell.
        let caught =
            std::panic::catch_unwind(|| run_jobs(&items, 2, |&i| if i == 5 { panic!("boom") } else { i }));
        let message = panic_message(caught.unwrap_err().as_ref());
        assert!(message.contains("1 of 9 cells failed"), "{message}");
        assert!(message.contains("cell #5: boom"), "{message}");
    }

    #[test]
    fn threaded_runs_match_sequential_runs_exactly() {
        let profile = benchmark("lu.fix").unwrap();
        let config = ExperimentConfig::quick();
        let pairs: Vec<HeapConfig> = vec![HeapConfig::kg_n(), HeapConfig::gen_immix_pcm()];
        let sequential = run_jobs(&pairs, 1, |c| {
            run_benchmark(&profile, c.clone(), &config).pcm_writes()
        });
        let threaded = run_jobs(&pairs, 2, |c| {
            run_benchmark(&profile, c.clone(), &config).pcm_writes()
        });
        assert_eq!(sequential, threaded);
    }

    #[test]
    fn figure_experiments_are_jobs_invariant() {
        // The figure/table experiments fan per-benchmark rows over
        // `config.jobs`; results and ordering must be identical to a
        // sequential run.
        let sequential = crate::writes::figure6(&ExperimentConfig::quick());
        let threaded = crate::writes::figure6(&ExperimentConfig::quick().with_jobs(3));
        assert_eq!(sequential.rows.len(), threaded.rows.len());
        for (a, b) in sequential.rows.iter().zip(&threaded.rows) {
            assert_eq!(a.benchmark, b.benchmark);
            assert_eq!(a.relative, b.relative);
        }
    }

    #[test]
    fn standard_configs_cover_table1() {
        let labels: Vec<String> = standard_configs().into_iter().map(|(l, _)| l).collect();
        for expected in [
            "DRAM-only",
            "PCM-only",
            "KG-N",
            "KG-W",
            "KG-W-LOO",
            "KG-W-LOO-MDO",
            "KG-W-PM",
        ] {
            assert!(labels.iter().any(|l| l == expected), "missing {expected}");
        }
    }
}
