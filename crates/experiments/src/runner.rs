//! Experiment runner: executes one (benchmark, collector) pair and derives
//! every metric the paper reports from the run.

use advice::SiteProfile;
use hybrid_mem::energy::{EnergyBreakdown, EnergyModel};
use hybrid_mem::lifetime::LifetimeModel;
use hybrid_mem::timing::{ExecutionModel, TimeBreakdown};
use hybrid_mem::{MemoryConfig, MemoryKind, MemoryStats, Phase};
use kingsguard::{GcStats, HeapConfig, KingsguardHeap};
use oswp::{WritePartitioning, WritePartitioningConfig, WritePartitioningStats};
use workloads::{BenchmarkProfile, SyntheticMutator, WorkloadConfig};

/// How the memory system is measured.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MeasurementMode {
    /// Cycle-level simulation mode: scaled cache hierarchy + memory
    /// controller (used for Figures 5–10, as in Section 6.1).
    Simulation,
    /// Architecture-independent mode: no caches, every heap store reaches
    /// the device counters (used for Figures 11–12 and Table 4, matching the
    /// paper's barrier-reported "real hardware" numbers of Section 6.2).
    ArchitectureIndependent,
}

/// Configuration shared by all experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExperimentConfig {
    /// Divisor applied to the paper's allocation volumes and heap sizes.
    pub scale: u64,
    /// RNG seed for the synthetic mutators.
    pub seed: u64,
    /// Divisor applied to the cache hierarchy in simulation mode so the
    /// scaled-down working sets see realistic miss rates.
    pub cache_scale: usize,
    /// Measurement mode.
    pub mode: MeasurementMode,
    /// Worker threads for fanning the embarrassingly parallel per-benchmark
    /// runs of an experiment over [`run_jobs`] (`1` runs inline; results and
    /// output ordering are identical either way).
    pub jobs: usize,
}

impl ExperimentConfig {
    /// The default experiment configuration (scale 256, simulation mode).
    pub fn simulation() -> Self {
        ExperimentConfig {
            scale: 256,
            seed: 0xC0FFEE,
            cache_scale: 16,
            mode: MeasurementMode::Simulation,
            jobs: 1,
        }
    }

    /// Architecture-independent mode at the default scale.
    pub fn architecture_independent() -> Self {
        ExperimentConfig {
            mode: MeasurementMode::ArchitectureIndependent,
            ..Self::simulation()
        }
    }

    /// A much smaller configuration for unit tests and smoke runs.
    pub fn quick() -> Self {
        ExperimentConfig {
            scale: 2048,
            seed: 7,
            cache_scale: 64,
            mode: MeasurementMode::ArchitectureIndependent,
            jobs: 1,
        }
    }

    /// Same configuration with a different scale.
    pub fn with_scale(mut self, scale: u64) -> Self {
        self.scale = scale;
        self
    }

    /// Same configuration with a different worker-thread count.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    fn memory_config(&self) -> MemoryConfig {
        match self.mode {
            MeasurementMode::Simulation => MemoryConfig::hybrid_scaled(self.cache_scale),
            MeasurementMode::ArchitectureIndependent => MemoryConfig::architecture_independent(),
        }
    }

    fn workload(&self) -> WorkloadConfig {
        WorkloadConfig {
            scale: self.scale,
            seed: self.seed,
        }
    }
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self::simulation()
    }
}

/// The outcome of running one benchmark under one collector.
#[derive(Clone, Debug)]
pub struct ExperimentResult {
    /// Benchmark name.
    pub benchmark: String,
    /// Collector label ("KG-N", "KG-W", "PCM-only", "WP", ...).
    pub collector: String,
    /// Collector statistics.
    pub gc: GcStats,
    /// Memory-system statistics (caches flushed).
    pub memory: MemoryStats,
    /// Execution-time breakdown from the mechanistic model.
    pub time: TimeBreakdown,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
    /// Energy-delay product in joule-seconds.
    pub edp: f64,
    /// OS Write Partitioning statistics when the WP baseline was active.
    pub wp: Option<WritePartitioningStats>,
    /// The profile's 4→32-core write-rate scaling factor (1.0 if the paper
    /// did not report one).
    pub scaling_factor: f64,
    /// The per-site profile gathered by the run, when it was a profiling run
    /// (see [`run_benchmark_profiled`]).
    pub site_profile: Option<SiteProfile>,
}

impl ExperimentResult {
    /// Device writes to PCM (cache lines).
    pub fn pcm_writes(&self) -> u64 {
        self.memory.writes(MemoryKind::Pcm)
    }

    /// Device writes to DRAM (cache lines).
    pub fn dram_writes(&self) -> u64 {
        self.memory.writes(MemoryKind::Dram)
    }

    /// Application (barrier-level) writes that reached PCM, i.e. mutator
    /// phase device writes.
    pub fn pcm_app_writes(&self) -> u64 {
        self.memory.phase_writes(MemoryKind::Pcm).get(Phase::Mutator)
    }

    /// Execution time in seconds from the mechanistic model.
    pub fn execution_time_s(&self) -> f64 {
        self.time.total_s()
    }

    /// Simulated 4-core PCM write rate in bytes per second.
    pub fn pcm_write_rate_4core(&self) -> f64 {
        let time = self.execution_time_s();
        if time <= 0.0 {
            return 0.0;
        }
        self.memory.bytes_written(MemoryKind::Pcm) as f64 / time
    }

    /// Estimated 32-core PCM write rate in bytes per second: the simulated
    /// 4-core rate multiplied by the measured scaling factor (Table 3
    /// methodology).
    pub fn pcm_write_rate_32core(&self) -> f64 {
        self.pcm_write_rate_4core() * self.scaling_factor
    }

    /// PCM lifetime in years for `endurance_writes` per cell under the
    /// estimated 32-core write rate (Equation 1 of the paper).
    pub fn pcm_lifetime_years(&self, endurance_writes: u64) -> f64 {
        let model = LifetimeModel {
            capacity_bytes: 32 << 30,
            endurance_writes,
        };
        model.years(self.pcm_write_rate_32core())
    }
}

/// Estimated 32-core PCM write rate of a raw [`kingsguard::RunReport`] in
/// bytes/s: the same derivation `finalize` bakes into
/// [`ExperimentResult::pcm_write_rate_32core`] (default execution model,
/// PCM bytes over modeled time, times the published scaling factor), for
/// callers holding a report instead of a finalized result.
pub fn report_pcm_write_rate_32core(report: &kingsguard::RunReport, scaling_factor: f64) -> f64 {
    let time = ExecutionModel::default()
        .breakdown(&report.gc.work, &report.memory)
        .total_s();
    if time <= 0.0 {
        return 0.0;
    }
    report.memory.bytes_written(MemoryKind::Pcm) as f64 / time * scaling_factor
}

fn heap_config_for(
    profile: &BenchmarkProfile,
    mut base: HeapConfig,
    config: &ExperimentConfig,
) -> HeapConfig {
    let budget = profile.scaled_heap_bytes(config.scale).max(2 << 20) as usize;
    base = base.with_heap_budget(budget);
    base
}

fn finalize(
    profile: &BenchmarkProfile,
    collector: String,
    heap: KingsguardHeap,
    wp: Option<WritePartitioningStats>,
    dram_fraction: f64,
    pcm_fraction: f64,
) -> ExperimentResult {
    let report = heap.finish();
    let model = ExecutionModel::default();
    let time = model.breakdown(&report.gc.work, &report.memory);
    let energy_model = EnergyModel::default();
    let energy = energy_model.breakdown(&report.memory, time.total_s(), dram_fraction, pcm_fraction);
    let edp = energy.total_j() * time.total_s();
    ExperimentResult {
        benchmark: profile.name.to_string(),
        collector,
        gc: report.gc,
        memory: report.memory,
        time,
        energy,
        edp,
        wp,
        scaling_factor: profile.scaling_factor.unwrap_or(1.0),
        site_profile: report.site_profile,
    }
}

/// Runs `profile` under the collector described by `heap_config`.
pub fn run_benchmark(
    profile: &BenchmarkProfile,
    heap_config: HeapConfig,
    config: &ExperimentConfig,
) -> ExperimentResult {
    run_benchmark_inner(profile, heap_config, config, false)
}

/// Runs `profile` under `heap_config` with per-site profiling enabled: the
/// returned result carries the [`SiteProfile`] in
/// [`ExperimentResult::site_profile`]. Profiling is host-side bookkeeping —
/// it adds no simulated memory traffic, so the run's metrics are identical
/// to an unprofiled run.
pub fn run_benchmark_profiled(
    profile: &BenchmarkProfile,
    heap_config: HeapConfig,
    config: &ExperimentConfig,
) -> ExperimentResult {
    run_benchmark_inner(profile, heap_config, config, true)
}

fn run_benchmark_inner(
    profile: &BenchmarkProfile,
    heap_config: HeapConfig,
    config: &ExperimentConfig,
    profiled: bool,
) -> ExperimentResult {
    let label = heap_config.label();
    let heap_config = heap_config_for(profile, heap_config, config);
    // Provisioned capacities of the paper's memory systems: 32 GB DRAM-only,
    // 32 GB PCM-only, or hybrid 1 GB DRAM + 32 GB PCM.
    let (dram_fraction, pcm_fraction) = if heap_config.is_hybrid() {
        (1.0 / 32.0, 1.0)
    } else if heap_config.nursery_kind() == MemoryKind::Dram {
        (1.0, 0.0)
    } else {
        (0.0, 1.0)
    };
    let mut heap = KingsguardHeap::new(heap_config, config.memory_config());
    if profiled {
        heap.enable_profiling(profile.name);
    }
    let mutator = SyntheticMutator::new(profile.clone(), config.workload());
    mutator.run(&mut heap);
    finalize(profile, label, heap, None, dram_fraction, pcm_fraction)
}

/// Runs `profile` on a PCM-only generational Immix heap managed by the OS
/// Write Partitioning baseline (Section 6.1.3).
pub fn run_benchmark_with_wp(profile: &BenchmarkProfile, config: &ExperimentConfig) -> ExperimentResult {
    let heap_config = heap_config_for(profile, HeapConfig::gen_immix_pcm(), config);
    let mut heap = KingsguardHeap::new(heap_config, config.memory_config());
    let mut wp = WritePartitioning::new(WritePartitioningConfig::default());
    let mutator = SyntheticMutator::new(profile.clone(), config.workload());
    mutator.run_with(&mut heap, |heap, progress| {
        heap.with_synced_memory(|mem| wp.advance(mem, progress.elapsed_ms));
    });
    finalize(profile, "WP".to_string(), heap, Some(wp.stats()), 1.0 / 32.0, 1.0)
}

/// Runs `f` over `items` on up to `jobs` worker threads, returning the
/// results in input order. Each (benchmark, collector) run is embarrassingly
/// parallel — every worker builds its own heap and memory system — so the
/// results are identical to a sequential run; only the wall-clock changes.
/// `jobs <= 1` runs inline.
pub fn run_jobs<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if jobs <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::new();
    slots.resize_with(items.len(), || None);
    let slots = std::sync::Mutex::new(slots);
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(items.len()) {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(item) = items.get(index) else {
                    break;
                };
                let result = f(item);
                slots.lock().expect("worker poisoned the result set")[index] = Some(result);
            });
        }
    });
    slots
        .into_inner()
        .expect("worker poisoned the result set")
        .into_iter()
        .map(|slot| slot.expect("every index was claimed by exactly one worker"))
        .collect()
}

/// Convenience: the Table 1 collector configurations plus the two baselines,
/// as `(label, config)` pairs.
pub fn standard_configs() -> Vec<(String, HeapConfig)> {
    let configs = vec![
        HeapConfig::gen_immix_dram(),
        HeapConfig::gen_immix_pcm(),
        HeapConfig::kg_n(),
        HeapConfig::kg_w(),
        HeapConfig::kg_w_no_loo(),
        HeapConfig::kg_w_no_loo_no_mdo(),
        HeapConfig::kg_w_no_primitive_monitoring(),
    ];
    configs.into_iter().map(|c| (c.label(), c)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::benchmark;

    #[test]
    fn quick_run_produces_consistent_metrics() {
        let profile = benchmark("lu.fix").unwrap();
        let result = run_benchmark(&profile, HeapConfig::kg_n(), &ExperimentConfig::quick());
        assert_eq!(result.collector, "KG-N");
        assert_eq!(result.benchmark, "lu.fix");
        assert!(result.gc.bytes_allocated > 0);
        assert!(result.pcm_writes() > 0, "KG-N promotes survivors to PCM");
        assert!(result.execution_time_s() > 0.0);
        assert!(result.edp > 0.0);
        assert!(result.pcm_write_rate_4core() > 0.0);
        assert!(result.pcm_lifetime_years(30_000_000).is_finite());
        assert!(result.pcm_write_rate_32core() >= result.pcm_write_rate_4core());
    }

    #[test]
    fn kg_n_writes_less_pcm_than_pcm_only() {
        let profile = benchmark("lusearch").unwrap();
        let config = ExperimentConfig::quick();
        let pcm_only = run_benchmark(&profile, HeapConfig::gen_immix_pcm(), &config);
        let kg_n = run_benchmark(&profile, HeapConfig::kg_n(), &config);
        assert!(
            kg_n.pcm_writes() < pcm_only.pcm_writes(),
            "KG-N must reduce PCM writes: {} vs {}",
            kg_n.pcm_writes(),
            pcm_only.pcm_writes()
        );
    }

    #[test]
    fn wp_runs_and_migrates_pages() {
        let profile = benchmark("pmd").unwrap();
        // WP is time-driven (10 ms quanta); use a scale at which the run
        // lasts long enough for several quanta to elapse.
        let config = ExperimentConfig::quick().with_scale(256);
        let result = run_benchmark_with_wp(&profile, &config);
        let wp = result.wp.expect("WP statistics present");
        assert!(wp.quanta > 0, "OS quanta must have elapsed");
        assert_eq!(result.collector, "WP");
    }

    #[test]
    fn run_jobs_preserves_input_order_for_any_job_count() {
        let items: Vec<u64> = (0..17).collect();
        let expected: Vec<u64> = items.iter().map(|i| i * i).collect();
        for jobs in [0, 1, 2, 3, 8, 32] {
            assert_eq!(run_jobs(&items, jobs, |&i| i * i), expected, "jobs={jobs}");
        }
    }

    #[test]
    fn threaded_runs_match_sequential_runs_exactly() {
        let profile = benchmark("lu.fix").unwrap();
        let config = ExperimentConfig::quick();
        let pairs: Vec<HeapConfig> = vec![HeapConfig::kg_n(), HeapConfig::gen_immix_pcm()];
        let sequential = run_jobs(&pairs, 1, |c| {
            run_benchmark(&profile, c.clone(), &config).pcm_writes()
        });
        let threaded = run_jobs(&pairs, 2, |c| {
            run_benchmark(&profile, c.clone(), &config).pcm_writes()
        });
        assert_eq!(sequential, threaded);
    }

    #[test]
    fn figure_experiments_are_jobs_invariant() {
        // The figure/table experiments fan per-benchmark rows over
        // `config.jobs`; results and ordering must be identical to a
        // sequential run.
        let sequential = crate::writes::figure6(&ExperimentConfig::quick());
        let threaded = crate::writes::figure6(&ExperimentConfig::quick().with_jobs(3));
        assert_eq!(sequential.rows.len(), threaded.rows.len());
        for (a, b) in sequential.rows.iter().zip(&threaded.rows) {
            assert_eq!(a.benchmark, b.benchmark);
            assert_eq!(a.relative, b.relative);
        }
    }

    #[test]
    fn standard_configs_cover_table1() {
        let labels: Vec<String> = standard_configs().into_iter().map(|(l, _)| l).collect();
        for expected in [
            "DRAM-only",
            "PCM-only",
            "KG-N",
            "KG-W",
            "KG-W-LOO",
            "KG-W-LOO-MDO",
            "KG-W-PM",
        ] {
            assert!(labels.iter().any(|l| l == expected), "missing {expected}");
        }
    }
}
