//! Figure 13: heap composition over time.

use kingsguard::{CompositionSample, HeapConfig};
use workloads::benchmark;

use crate::report::{collect_rows, TelemetryRollup, TextTable};
use crate::runner::{run_benchmark, ExperimentConfig};

/// Heap-composition time series for one benchmark under KG-W.
#[derive(Clone, Debug)]
pub struct CompositionSeries {
    /// Benchmark name.
    pub benchmark: String,
    /// One sample per collection: allocated bytes (time proxy), PCM bytes,
    /// DRAM bytes of the mature + large heap.
    pub samples: Vec<CompositionSample>,
}

impl CompositionSeries {
    /// Peak PCM bytes used by the mature heap.
    pub fn peak_pcm_bytes(&self) -> u64 {
        self.samples.iter().map(|s| s.pcm_bytes).max().unwrap_or(0)
    }

    /// Peak DRAM bytes used by the mature heap.
    pub fn peak_dram_bytes(&self) -> u64 {
        self.samples.iter().map(|s| s.dram_bytes).max().unwrap_or(0)
    }
}

/// Figure 13 results.
#[derive(Clone, Debug)]
pub struct CompositionResults {
    /// One series per requested benchmark.
    pub series: Vec<CompositionSeries>,
    /// Telemetry rollup of the runs behind the tables.
    pub telemetry: TelemetryRollup,
}

impl CompositionResults {
    /// Renders the Figure 13 table (sub-sampled to at most 20 points per
    /// benchmark so the report stays readable).
    pub fn report(&self) -> String {
        let mut out = String::new();
        for series in &self.series {
            let mut table = TextTable::new(
                &format!(
                    "Figure 13 ({}): mature heap in PCM vs DRAM over time (KG-W)",
                    series.benchmark
                ),
                &["Allocated MB", "PCM MB", "DRAM MB"],
            );
            let step = (series.samples.len() / 20).max(1);
            for sample in series.samples.iter().step_by(step) {
                table.row(vec![
                    format!("{:.1}", sample.allocated_bytes as f64 / (1 << 20) as f64),
                    format!("{:.2}", sample.pcm_bytes as f64 / (1 << 20) as f64),
                    format!("{:.2}", sample.dram_bytes as f64 / (1 << 20) as f64),
                ]);
            }
            out.push_str(&table.render());
            out.push_str(&format!(
                "peak PCM {:.1} MB, peak DRAM {:.1} MB\n\n",
                series.peak_pcm_bytes() as f64 / (1 << 20) as f64,
                series.peak_dram_bytes() as f64 / (1 << 20) as f64,
            ));
        }
        out.push_str(&self.telemetry.appendix());
        out
    }
}

/// Figure 13: heap composition over time for Page Rank and eclipse under
/// KG-W (the paper's two exemplars).
pub fn figure13(config: &ExperimentConfig) -> CompositionResults {
    figure13_for(config, &["pagerank", "eclipse"])
}

/// Heap composition over time for an arbitrary set of benchmarks.
pub fn figure13_for(config: &ExperimentConfig, names: &[&str]) -> CompositionResults {
    let (series, telemetry) = collect_rows(crate::runner::run_jobs(names, config.jobs, |name| {
        let profile = benchmark(name).unwrap_or_else(|| panic!("unknown benchmark {name}"));
        let result = run_benchmark(&profile, HeapConfig::kg_w(), config);
        let mut rollup = TelemetryRollup::default();
        rollup.absorb(&result);
        (
            CompositionSeries {
                benchmark: profile.name.to_string(),
                samples: result.gc.composition.clone(),
            },
            rollup,
        )
    }));
    CompositionResults { series, telemetry }
}
