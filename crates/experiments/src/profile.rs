//! The profile experiment: `repro profile`.
//!
//! Records one heap-event trace for the chosen benchmark (reusing the
//! trace subsystem, so a current recording is picked up instead of
//! re-recorded) and replays it under every [`REPLAY_COLLECTORS`] entry
//! with the sampled hot-path profiler enabled. The result is a per-stage
//! cost table per collector: exact event counts (cadence-independent and
//! bit-identical across reruns), extrapolated self-time, the share of the
//! replay wall-clock, and per-stage event throughput. An `other` row
//! closes the gap between the attributed stages and the measured
//! wall-clock (replayer decode, heap logic, GC tracing outside the memory
//! system), so every table sums to the full replay time. A second table
//! splits the touch time by execution phase (application vs the GC
//! phases), the profiler's answer to "who is paying for the simulator".

use std::path::Path;
use std::time::Instant;

use hybrid_mem::Phase;
use kingsguard::KingsguardHeap;
use telemetry::{TouchProfile, DEFAULT_SAMPLE_EVERY};
use trace::TraceReplayer;
use workloads::BenchmarkProfile;

use crate::report::TextTable;
use crate::runner::{trace_path, ExperimentConfig};
use crate::traces::{record_traces, sized_config, REPLAY_COLLECTORS};

/// The benchmark `repro profile` drives by default.
pub const DEFAULT_BENCHMARK: &str = "lusearch";

/// One attributed cost row of a collector's table.
#[derive(Clone, Debug)]
pub struct StageRow {
    /// Stage label (`page-map`, …, or `other` for the unattributed rest).
    pub label: String,
    /// Exact event count (0 for the `other` row, which has no events).
    pub events: u64,
    /// Estimated self-time in nanoseconds.
    pub self_ns: u64,
    /// Share of the replay wall-clock, in percent.
    pub percent: f64,
    /// Events per second of self-time (0 when untimed).
    pub events_per_sec: f64,
}

/// Touch time attributed to one execution phase.
#[derive(Clone, Debug)]
pub struct PhaseRow {
    /// Phase label (`application`, `nursery-GC`, …).
    pub label: String,
    /// Exact touch count in this phase.
    pub touches: u64,
    /// Estimated touch time in nanoseconds.
    pub est_ns: u64,
}

/// One collector's replay under the profiler.
#[derive(Clone, Debug)]
pub struct CollectorProfile {
    /// Collector label.
    pub collector: String,
    /// Replay wall-clock in nanoseconds.
    pub wall_ns: u64,
    /// Stage rows, the five simulator stages then `other`.
    pub stages: Vec<StageRow>,
    /// Phase rows (phases with zero touches are omitted).
    pub phases: Vec<PhaseRow>,
}

impl CollectorProfile {
    /// Nanoseconds attributed across all stage rows (including `other`).
    pub fn attributed_ns(&self) -> u64 {
        self.stages.iter().map(|row| row.self_ns).sum()
    }
}

/// Results of `repro profile`.
#[derive(Clone, Debug)]
pub struct ProfileResults {
    /// Benchmark whose trace was replayed.
    pub benchmark: String,
    /// Sampling cadence (every Nth touch is timed).
    pub sample_every: u64,
    /// One entry per replay collector, in [`REPLAY_COLLECTORS`] order.
    pub collectors: Vec<CollectorProfile>,
}

impl ProfileResults {
    /// The smallest ratio of attributed time to wall-clock across the
    /// collectors. ≥ 0.9 by construction: the `other` row absorbs the
    /// unattributed remainder, so only rounding can lose time.
    pub fn min_coverage(&self) -> f64 {
        self.collectors
            .iter()
            .filter(|c| c.wall_ns > 0)
            .map(|c| c.attributed_ns() as f64 / c.wall_ns as f64)
            .fold(f64::INFINITY, f64::min)
    }

    /// Formatted report: the per-stage cost table, then the per-phase
    /// attribution table.
    pub fn report(&self) -> String {
        let mut table = TextTable::new(
            &format!(
                "Hot-path profile: {} replayed under every collector (timed every {} touches)",
                self.benchmark, self.sample_every
            ),
            &["collector", "stage", "events", "self-ms", "%", "events/sec"],
        );
        for collector in &self.collectors {
            for row in &collector.stages {
                table.row(vec![
                    collector.collector.clone(),
                    row.label.clone(),
                    if row.label == "other" {
                        "-".to_string()
                    } else {
                        row.events.to_string()
                    },
                    format!("{:.3}", row.self_ns as f64 / 1e6),
                    format!("{:.1}", row.percent),
                    if row.events_per_sec > 0.0 {
                        format!("{:.0}", row.events_per_sec)
                    } else {
                        "-".to_string()
                    },
                ]);
            }
        }
        let mut out = table.render();
        let mut phases = TextTable::new(
            "Touch time by execution phase (extrapolated from the sampled touches)",
            &["collector", "phase", "touches", "est-ms"],
        );
        for collector in &self.collectors {
            for row in &collector.phases {
                phases.row(vec![
                    collector.collector.clone(),
                    row.label.clone(),
                    row.touches.to_string(),
                    format!("{:.3}", row.est_ns as f64 / 1e6),
                ]);
            }
        }
        out.push('\n');
        out.push_str(&phases.render());
        out.push_str(&format!(
            "\nattributed time covers ≥ {:.0}% of every replay's wall-clock\n",
            (self.min_coverage() * 100.0).floor().min(100.0)
        ));
        out
    }
}

/// Builds the stage and phase rows for one collector from its profile and
/// measured wall-clock.
fn collector_profile(collector: &str, wall_ns: u64, profile: &TouchProfile) -> CollectorProfile {
    let mut stages = Vec::new();
    let mut stage_total = 0u64;
    for stage in &profile.stages {
        let self_ns = stage.estimated_self_ns();
        stage_total += self_ns;
        stages.push(StageRow {
            label: stage.stage.label().to_string(),
            events: stage.events,
            self_ns,
            percent: 0.0,
            events_per_sec: if self_ns > 0 {
                stage.events as f64 / (self_ns as f64 / 1e9)
            } else {
                0.0
            },
        });
    }
    // Replayer decode, heap logic and everything else outside the memory
    // system's touch path; extrapolation jitter can push the stage total
    // past the wall-clock on tiny runs, hence the saturation.
    stages.push(StageRow {
        label: "other".to_string(),
        events: 0,
        self_ns: wall_ns.saturating_sub(stage_total),
        percent: 0.0,
        events_per_sec: 0.0,
    });
    let base = wall_ns.max(stage_total).max(1) as f64;
    for row in &mut stages {
        row.percent = row.self_ns as f64 * 100.0 / base;
    }
    let phases = profile
        .phases
        .iter()
        .filter(|p| p.touches > 0)
        .map(|p| PhaseRow {
            label: Phase::ALL
                .get(p.phase)
                .map(|phase| phase.label().to_string())
                .unwrap_or_else(|| format!("phase-{}", p.phase)),
            touches: p.touches,
            est_ns: p.estimated_ns(),
        })
        .collect();
    CollectorProfile {
        collector: collector.to_string(),
        wall_ns,
        stages,
        phases,
    }
}

/// Records (or reuses) `benchmark`'s trace in `dir`, then replays it under
/// every comparison collector with the hot-path profiler timing every
/// `sample_every`-th touch. Pass [`DEFAULT_SAMPLE_EVERY`] unless the run is
/// so short that the default cadence would sample too few touches.
pub fn hot_path_profile(
    config: &ExperimentConfig,
    profile: &BenchmarkProfile,
    dir: &Path,
    sample_every: u64,
) -> ProfileResults {
    let recording_config = sized_config("KG-N", profile, config);
    let path = trace_path(dir, profile.name, &recording_config, config, 1);
    let current = trace::load_trace(&path)
        .ok()
        .filter(crate::runner::trace_site_map_current)
        .filter(|recorded| crate::runner::trace_fault_schedule_current(recorded, config));
    let recorded = match current {
        Some(recorded) => recorded,
        None => {
            record_traces(config, std::slice::from_ref(profile), dir, 1, 1);
            trace::load_trace(&path).unwrap_or_else(|err| panic!("could not load {}: {err}", path.display()))
        }
    };
    let collectors = REPLAY_COLLECTORS
        .iter()
        .map(|label| {
            let heap_config = sized_config(label, profile, config);
            let start = Instant::now();
            let mut heap = KingsguardHeap::new(heap_config, config.memory_config());
            heap.enable_hot_path_profiler(sample_every.max(1));
            TraceReplayer::new(&recorded)
                .replay(&mut heap)
                .unwrap_or_else(|err| panic!("replaying {} under {label} failed: {err}", profile.name));
            let touch_profile = heap.hot_path_profile().expect("profiler enabled");
            drop(heap.finish());
            let wall_ns = start.elapsed().as_nanos() as u64;
            collector_profile(label, wall_ns, &touch_profile)
        })
        .collect();
    ProfileResults {
        benchmark: profile.name.to_string(),
        sample_every: sample_every.max(1),
        collectors,
    }
}

/// [`hot_path_profile`] with the default benchmark and cadence.
pub fn hot_path_profile_default(config: &ExperimentConfig, dir: &Path) -> ProfileResults {
    let profile = workloads::benchmark(DEFAULT_BENCHMARK)
        .unwrap_or_else(|| panic!("unknown default benchmark {DEFAULT_BENCHMARK}"));
    hot_path_profile(config, &profile, dir, DEFAULT_SAMPLE_EVERY)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use workloads::benchmark;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("kgprofile-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn profiles_every_collector_with_full_attribution() {
        let dir = temp_dir("full");
        let config = ExperimentConfig::quick();
        let profile = benchmark("lu.fix").unwrap();
        let results = hot_path_profile(&config, &profile, &dir, 4);
        assert_eq!(results.collectors.len(), REPLAY_COLLECTORS.len());
        for collector in &results.collectors {
            assert_eq!(collector.stages.len(), telemetry::STAGE_COUNT + 1);
            assert_eq!(collector.stages.last().unwrap().label, "other");
            assert!(collector
                .stages
                .iter()
                .take(telemetry::STAGE_COUNT)
                .any(|r| r.events > 0));
            assert!(!collector.phases.is_empty());
        }
        assert!(
            results.min_coverage() >= 0.9,
            "attribution must cover ≥ 90% of the replay wall-clock, got {:.2}",
            results.min_coverage()
        );
        let report = results.report();
        assert!(report.contains("events/sec") && report.contains("other"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn event_counts_are_deterministic_across_reruns_and_cadences() {
        let dir = temp_dir("det");
        let config = ExperimentConfig::quick();
        let profile = benchmark("lu.fix").unwrap();
        let counts = |results: &ProfileResults| -> Vec<(String, Vec<u64>)> {
            results
                .collectors
                .iter()
                .map(|c| (c.collector.clone(), c.stages.iter().map(|r| r.events).collect()))
                .collect()
        };
        let a = hot_path_profile(&config, &profile, &dir, 4);
        let b = hot_path_profile(&config, &profile, &dir, 97);
        assert_eq!(
            counts(&a),
            counts(&b),
            "per-stage event counts must not depend on the sampling cadence"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
