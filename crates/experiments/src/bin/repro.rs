//! `repro` — regenerates the paper's tables and figures.
//!
//! Run `repro --help` for the full experiment list and flags. Highlights:
//!
//! * `repro <fig*|table*|headline|advise|adaptive|mutators|all>` regenerates
//!   one (or every) figure/table; `--scale N` shrinks the workloads,
//!   `--quick` is the smoke-test configuration, `--jobs N` fans the
//!   embarrassingly parallel per-benchmark runs over worker threads with
//!   identical results and ordering.
//! * `repro trace record|replay|diff` exposes the heap-event trace
//!   subsystem: record one `.kgtrace` per benchmark, replay recorded traces
//!   under every collector (`--verify` checks each replay bit-identical to
//!   its live run and reports the live-vs-replay wall-clock), and diff two
//!   traces on aggregate PCM writes *and* wear uniformity.
//! * Passing `--trace-dir DIR` to any figure/table experiment makes its
//!   runs trace-backed: the first run of each benchmark records its heap-
//!   event stream, every later run — any collector, both measurement modes,
//!   any `--jobs` fan-out — replays it instead of re-running workload
//!   generation.
//! * Passing `--telemetry-dir DIR` writes one `.kgmetrics` JSON-lines
//!   telemetry file per run (GC-phase spans, pause histograms, cache and
//!   wear snapshots); `repro metrics show|diff` renders one file or
//!   compares two, failing when deterministic metrics drift.
//!   `repro metrics export <file> --chrome|--folded` converts any
//!   `.kgmetrics` file to a Chrome `trace_event` timeline (chrome://tracing,
//!   Perfetto) or collapsed stacks (flamegraph.pl, speedscope).
//! * `repro profile` replays one recorded trace under every collector with
//!   the sampled hot-path profiler on and prints the per-stage simulator
//!   cost table (events, self-time, share of wall-clock, events/sec);
//!   `repro bench diff A.json B.json` compares two `BENCH_*.json` reports
//!   and exits non-zero when any `*per_sec*` throughput falls more than
//!   the tolerance band (default 15%) below the baseline.
//! * `repro fleet [--tenants N]` runs the multi-tenant fleet comparison:
//!   the same N tenant heap sessions placed round-robin vs wear-levelled
//!   across the PCM device's regions, with the shared advice store
//!   warm-starting repeat KG-D tenants. Exits non-zero if any tenant
//!   session dies (each failure is a per-tenant report row, not a crash).
//!
//! Build with `--release`; full-scale runs of `all` take a few minutes.

use std::env;
use std::path::Path;
use std::process::ExitCode;

use experiments::cli::{self, ParsedArgs};
use experiments::runner::{panic_message, ExperimentConfig};
use experiments::{
    adaptive, advise, composition, energy_time, faults, lifetime, mutators, tables, traces, writes,
};

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let parsed = match cli::parse_args(&args) {
        Ok(parsed) => parsed,
        Err(err) => {
            eprintln!("error: {err}\n\n{}", cli::help_text());
            return ExitCode::FAILURE;
        }
    };
    if parsed.help {
        println!("{}", cli::help_text());
        return ExitCode::SUCCESS;
    }
    let Some(experiment) = parsed.experiment.clone() else {
        // `--mutators K` alone keeps its historical meaning of running the
        // mutators experiment.
        if parsed.mutators.is_some() {
            return run(&parsed, "mutators");
        }
        eprintln!("{}", cli::help_text());
        return ExitCode::FAILURE;
    };
    if experiment != "trace"
        && experiment != "metrics"
        && experiment != "check"
        && experiment != "bench"
        && !parsed.positional.is_empty()
    {
        eprintln!(
            "error: unexpected argument {:?} after experiment {experiment:?}\n\n{}",
            parsed.positional[0],
            cli::help_text()
        );
        return ExitCode::FAILURE;
    }
    if let Err(message) = validate_dirs(&parsed, &experiment) {
        eprintln!("error: {message}");
        return ExitCode::FAILURE;
    }
    run(&parsed, &experiment)
}

/// Validates the output directories up front: a missing directory is
/// created, an uncreatable or unwritable one is a descriptive error instead
/// of a panic deep inside a half-finished experiment.
fn validate_dirs(parsed: &ParsedArgs, experiment: &str) -> Result<(), String> {
    // `trace diff` and `metrics` only read explicit file paths.
    let trace_mode = (experiment == "trace")
        .then(|| parsed.positional.first().map(String::as_str))
        .flatten();
    let needs_trace_dir = parsed.trace_dir_set
        || experiment == "profile"
        || matches!(trace_mode, Some("record") | Some("replay"));
    if needs_trace_dir {
        ensure_writable_dir(&parsed.trace_dir, "--trace-dir")?;
    }
    if parsed.telemetry_dir_set {
        ensure_writable_dir(&parsed.telemetry_dir, "--telemetry-dir")?;
    }
    Ok(())
}

fn ensure_writable_dir(dir: &Path, flag: &str) -> Result<(), String> {
    std::fs::create_dir_all(dir)
        .map_err(|err| format!("{flag} {}: cannot create directory: {err}", dir.display()))?;
    let probe = dir.join(format!(".repro-probe-{}", std::process::id()));
    std::fs::write(&probe, b"probe")
        .map_err(|err| format!("{flag} {}: directory is not writable: {err}", dir.display()))?;
    std::fs::remove_file(&probe).ok();
    Ok(())
}

/// Builds the simulation- and architecture-independent-mode configurations
/// from the parsed flags.
fn configs(parsed: &ParsedArgs) -> (ExperimentConfig, ExperimentConfig) {
    let mut sim = ExperimentConfig::simulation();
    let mut hw = ExperimentConfig::architecture_independent();
    if parsed.quick {
        sim = ExperimentConfig {
            mode: experiments::MeasurementMode::Simulation,
            ..ExperimentConfig::quick()
        };
        hw = ExperimentConfig::quick();
    }
    if let Some(scale) = parsed.scale {
        sim = sim.with_scale(scale);
        hw = hw.with_scale(scale);
    }
    sim = sim.with_jobs(parsed.jobs);
    hw = hw.with_jobs(parsed.jobs);
    if parsed.trace_dir_set {
        sim = sim.with_trace_dir(&parsed.trace_dir);
        hw = hw.with_trace_dir(&parsed.trace_dir);
    }
    if parsed.telemetry_dir_set {
        sim = sim.with_telemetry_dir(&parsed.telemetry_dir);
        hw = hw.with_telemetry_dir(&parsed.telemetry_dir);
    }
    (sim, hw)
}

fn run(parsed: &ParsedArgs, experiment: &str) -> ExitCode {
    let (sim, hw) = configs(parsed);
    let profile_dir = parsed.profile_dir.clone();
    let jobs = parsed.jobs;
    let mutator_threads = parsed.mutators.unwrap_or(4);

    if experiment == "trace" {
        return run_trace(parsed, &hw);
    }
    if experiment == "metrics" {
        return run_metrics(parsed);
    }
    if experiment == "profile" {
        return run_profile(parsed, &hw);
    }
    if experiment == "bench" {
        return run_bench(parsed);
    }
    if experiment == "fleet" {
        return run_fleet(parsed, &hw);
    }
    if experiment == "check" {
        return run_check(parsed, &hw);
    }

    let run_one = |name: &str| -> Option<String> {
        match name {
            "fig1" => Some(lifetime::figure1(&sim).figure1_report()),
            "fig5" => Some(lifetime::figure5(&sim).figure5_report()),
            "fig2" => Some(writes::figure2(&hw).report()),
            "fig6" => Some(writes::figure6(&sim).report()),
            "fig7" => Some(writes::figure7(&sim).report()),
            "fig8" => Some(energy_time::figure8(&sim).report()),
            "fig9" => Some(energy_time::figure9(&sim).report()),
            "fig10" => Some(writes::figure10(&sim).report()),
            "fig11" => Some(writes::figure11(&hw).report()),
            "fig12" => Some(energy_time::figure12(&hw).report()),
            "fig13" => Some(composition::figure13(&hw).report()),
            "table1" => Some(tables::table1()),
            "table2" => Some(tables::table2()),
            "table3" => Some(tables::table3(&sim).report()),
            "table4" => Some(tables::table4(&hw, true).report()),
            "advise" => {
                let benchmarks = advise::default_benchmarks();
                Some(advise::profile_then_advise_jobs(&hw, &benchmarks, &profile_dir, jobs).report())
            }
            "adaptive" => {
                let benchmarks = adaptive::default_benchmarks();
                Some(adaptive::adaptive_comparison(&hw, &benchmarks, &profile_dir, jobs).report())
            }
            "mutators" => {
                let benchmarks = mutators::default_benchmarks();
                Some(mutators::mutator_scaling(&hw, &benchmarks, mutator_threads).report())
            }
            "faults" => Some(faults::fault_sweep(&hw, "lusearch").report()),
            "headline" => {
                let life = lifetime::run(&sim);
                let wp = writes::figure7(&sim);
                let hwv = writes::figure11(&hw);
                let edp = energy_time::figure8(&sim);
                Some(format!(
                    "Headline results (paper's claims in parentheses)\n\
                     KG-N lifetime improvement over PCM-only: {:.1}x (paper: ~5x)\n\
                     KG-W lifetime improvement over PCM-only: {:.1}x (paper: ~11x)\n\
                     KG-N PCM writes vs PCM-only: {:.2} (paper: ~0.19)\n\
                     KG-W PCM writes vs PCM-only: {:.2} (paper: ~0.09)\n\
                     WP PCM writes vs PCM-only: {:.2} (paper: ~0.31)\n\
                     KG-W application PCM writes vs KG-N: {:.2} (paper: ~0.20)\n\
                     KG-N EDP vs DRAM-only: {:.2} (paper: ~0.64)\n\
                     KG-W EDP vs DRAM-only: {:.2} (paper: ~0.68)\n",
                    life.average_kg_n_improvement(),
                    life.average_kg_w_improvement(),
                    wp.average_kg_n(),
                    wp.average_kg_w(),
                    wp.average_wp(),
                    hwv.average_kg_w(),
                    edp.average_kg_n(),
                    edp.average_kg_w(),
                ))
            }
            _ => None,
        }
    };

    let experiments: Vec<&str> = if experiment == "all" {
        cli::EXPERIMENTS
            .iter()
            .map(|(name, _)| *name)
            .filter(|name| {
                !matches!(
                    *name,
                    "all" | "trace" | "metrics" | "fleet" | "check" | "profile" | "bench"
                )
            })
            .collect()
    } else {
        vec![experiment]
    };

    // Crash isolation: one panicking experiment (e.g. a single cell that
    // `run_jobs` summarized after its siblings completed) is reported and
    // the remaining experiments of an `all` run still execute; the process
    // then exits non-zero with a summary of the failed experiments.
    let mut failed: Vec<String> = Vec::new();
    for name in experiments {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_one(name))) {
            Ok(Some(report)) => println!("{report}"),
            Ok(None) => {
                eprintln!("unknown experiment: {name}\n\n{}", cli::help_text());
                return ExitCode::FAILURE;
            }
            Err(payload) => {
                eprintln!(
                    "error: experiment {name} failed: {}",
                    panic_message(payload.as_ref())
                );
                failed.push(name.to_string());
            }
        }
    }
    if !failed.is_empty() {
        eprintln!(
            "error: {} experiment(s) failed: {}",
            failed.len(),
            failed.join(", ")
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn run_fleet(parsed: &ParsedArgs, hw: &ExperimentConfig) -> ExitCode {
    let tenants = parsed.tenants.unwrap_or(experiments::fleet::DEFAULT_TENANTS);
    let results = experiments::fleet::fleet_comparison(hw, tenants);
    println!("{}", results.report());
    let died = results.failures();
    if died > 0 {
        eprintln!("error: {died} tenant session(s) died; see the failure rows above");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn run_check(parsed: &ParsedArgs, hw: &ExperimentConfig) -> ExitCode {
    match parsed.positional.first().map(String::as_str) {
        None => {
            let results = experiments::check_sweep(hw);
            println!("{}", results.report());
            let violations = results.violations();
            if violations > 0 {
                eprintln!("error: the sanitizer found {violations} invariant violation(s)");
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        // Negative fixtures: exit 0 iff every fixture tripped exactly its
        // expected violation (CI inverts this to prove detection).
        Some("broken") => {
            if parsed.positional.len() > 1 {
                eprintln!("error: unexpected argument {:?}", parsed.positional[1]);
                return ExitCode::FAILURE;
            }
            let results = experiments::broken_sweep();
            println!("{}", results.report());
            if !results.all_detected() {
                eprintln!("error: some broken fixtures were not detected (or over-reported)");
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown check mode: {other}\n\n{}", cli::help_text());
            ExitCode::FAILURE
        }
    }
}

fn run_profile(parsed: &ParsedArgs, hw: &ExperimentConfig) -> ExitCode {
    // Like the trace experiment, the profiler replays traces recorded in
    // architecture-independent mode; strip the trace-backing flag so the
    // replays themselves are direct.
    let config = ExperimentConfig {
        trace_dir: None,
        ..hw.clone()
    };
    let dir = parsed.trace_dir.clone();
    let sample_every = parsed.sample_every.unwrap_or(telemetry::DEFAULT_SAMPLE_EVERY);
    let benchmark = workloads::benchmark(experiments::profile::DEFAULT_BENCHMARK)
        .expect("default profile benchmark exists");
    let results = experiments::hot_path_profile(&config, &benchmark, &dir, sample_every);
    println!("{}", results.report());
    if results.min_coverage() < 0.9 {
        eprintln!(
            "error: attributed time covers only {:.0}% of the replay wall-clock",
            results.min_coverage() * 100.0
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn run_bench(parsed: &ParsedArgs) -> ExitCode {
    match parsed.positional.first().map(String::as_str) {
        Some("diff") => {
            let (Some(path_a), Some(path_b)) = (parsed.positional.get(1), parsed.positional.get(2)) else {
                eprintln!("usage: repro bench diff <a.json> <b.json> [--tolerance PCT]");
                return ExitCode::FAILURE;
            };
            if parsed.positional.len() > 3 {
                eprintln!("error: unexpected argument {:?}", parsed.positional[3]);
                return ExitCode::FAILURE;
            }
            let tolerance = parsed.tolerance.unwrap_or(experiments::DEFAULT_TOLERANCE_PCT);
            match experiments::diff_bench_files(Path::new(path_a), Path::new(path_b), tolerance) {
                Ok(diff) => {
                    println!("{}", diff.report());
                    if diff.passes() {
                        ExitCode::SUCCESS
                    } else {
                        eprintln!(
                            "error: {} throughput regression(s) beyond {tolerance:.0}% \
                             ({} unmatched metric(s))",
                            diff.regressions(),
                            diff.unmatched.len()
                        );
                        ExitCode::FAILURE
                    }
                }
                Err(err) => {
                    eprintln!("error: {err}");
                    ExitCode::FAILURE
                }
            }
        }
        Some(other) => {
            eprintln!("unknown bench mode: {other}\n\n{}", cli::help_text());
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: repro bench diff <a.json> <b.json> [--tolerance PCT]");
            ExitCode::FAILURE
        }
    }
}

fn run_metrics(parsed: &ParsedArgs) -> ExitCode {
    let mode = parsed.positional.first().map(String::as_str);
    match mode {
        Some("show") => {
            let Some(path) = parsed.positional.get(1) else {
                eprintln!("usage: repro metrics show <file.kgmetrics> [--top N]");
                return ExitCode::FAILURE;
            };
            if parsed.positional.len() > 2 {
                eprintln!("error: unexpected argument {:?}", parsed.positional[2]);
                return ExitCode::FAILURE;
            }
            match telemetry::TelemetryDoc::load(Path::new(path)) {
                Ok(doc) => {
                    println!("{}", doc.summary_top(parsed.top));
                    ExitCode::SUCCESS
                }
                Err(err) => {
                    eprintln!("error: {err}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("export") => {
            let Some(path) = parsed.positional.get(1) else {
                eprintln!("usage: repro metrics export <file.kgmetrics> <--chrome|--folded> [--out PATH]");
                return ExitCode::FAILURE;
            };
            if parsed.positional.len() > 2 {
                eprintln!("error: unexpected argument {:?}", parsed.positional[2]);
                return ExitCode::FAILURE;
            }
            if parsed.chrome == parsed.folded {
                eprintln!("error: pass exactly one of --chrome or --folded");
                return ExitCode::FAILURE;
            }
            let doc = match telemetry::TelemetryDoc::load(Path::new(path)) {
                Ok(doc) => doc,
                Err(err) => {
                    eprintln!("error: {err}");
                    return ExitCode::FAILURE;
                }
            };
            let rendered = if parsed.chrome {
                telemetry::chrome_trace(&doc)
            } else {
                telemetry::folded_stacks(&doc)
            };
            match &parsed.out {
                Some(out) => {
                    if let Err(err) = std::fs::write(out, &rendered) {
                        eprintln!("error: {}: {err}", out.display());
                        return ExitCode::FAILURE;
                    }
                    println!("wrote {} bytes to {}", rendered.len(), out.display());
                }
                None => print!("{rendered}"),
            }
            ExitCode::SUCCESS
        }
        Some("diff") => {
            let (Some(path_a), Some(path_b)) = (parsed.positional.get(1), parsed.positional.get(2)) else {
                eprintln!("usage: repro metrics diff <a.kgmetrics> <b.kgmetrics>");
                return ExitCode::FAILURE;
            };
            if parsed.positional.len() > 3 {
                eprintln!("error: unexpected argument {:?}", parsed.positional[3]);
                return ExitCode::FAILURE;
            }
            let load = |path: &str| telemetry::TelemetryDoc::load(Path::new(path));
            match (load(path_a), load(path_b)) {
                (Ok(a), Ok(b)) => {
                    let diff = telemetry::diff_docs(&a, &b);
                    println!("{}", diff.report());
                    if diff.has_drift() {
                        eprintln!("error: deterministic metrics drifted between the two runs");
                        ExitCode::FAILURE
                    } else {
                        ExitCode::SUCCESS
                    }
                }
                (Err(err), _) | (_, Err(err)) => {
                    eprintln!("error: {err}");
                    ExitCode::FAILURE
                }
            }
        }
        Some(other) => {
            eprintln!("unknown metrics mode: {other}\n\n{}", cli::help_text());
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: repro metrics <show|diff> [flags]\n\n{}", cli::help_text());
            ExitCode::FAILURE
        }
    }
}

fn run_trace(parsed: &ParsedArgs, hw: &ExperimentConfig) -> ExitCode {
    // Trace record/replay work on the architecture-independent configuration
    // (the mode behind the paper's exact write counts); the trace directory
    // flag only selects where files live, so strip it from the config to
    // avoid recursive trace-backing.
    let config = ExperimentConfig {
        trace_dir: None,
        ..hw.clone()
    };
    let dir = parsed.trace_dir.clone();
    let mutators = parsed.mutators.unwrap_or(1).max(1);
    let benchmarks = traces::default_benchmarks();
    let mode = parsed.positional.first().map(String::as_str);
    match mode {
        Some("record") => {
            let results = traces::record_traces(&config, &benchmarks, &dir, mutators, parsed.jobs);
            println!("{}", results.report());
            ExitCode::SUCCESS
        }
        Some("replay") => {
            let collectors: Vec<&str> = match parsed.collector.as_deref() {
                None => traces::REPLAY_COLLECTORS.to_vec(),
                Some(one) => match traces::REPLAY_COLLECTORS.iter().find(|label| **label == one) {
                    Some(label) => vec![*label],
                    None => {
                        eprintln!(
                            "error: unknown collector {one:?} (expected one of {})",
                            traces::REPLAY_COLLECTORS.join(", ")
                        );
                        return ExitCode::FAILURE;
                    }
                },
            };
            let results = traces::replay_traces_filtered(
                &config,
                &benchmarks,
                &dir,
                mutators,
                parsed.jobs,
                parsed.verify,
                &collectors,
            );
            println!("{}", results.report());
            if results.mismatches() > 0 {
                eprintln!(
                    "error: {} replays diverged from their live runs",
                    results.mismatches()
                );
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        Some("diff") => {
            let (Some(path_a), Some(path_b)) = (parsed.positional.get(1), parsed.positional.get(2)) else {
                eprintln!("usage: repro trace diff <a.kgtrace> <b.kgtrace> [--collector NAME]");
                return ExitCode::FAILURE;
            };
            if parsed.positional.len() > 3 {
                eprintln!("error: unexpected argument {:?}", parsed.positional[3]);
                return ExitCode::FAILURE;
            }
            let collector = parsed.collector.as_deref().unwrap_or("KG-N");
            if !traces::REPLAY_COLLECTORS.contains(&collector) {
                eprintln!(
                    "error: unknown collector {collector:?} (expected one of {})",
                    traces::REPLAY_COLLECTORS.join(", ")
                );
                return ExitCode::FAILURE;
            }
            match traces::diff_traces(&config, Path::new(path_a), Path::new(path_b), collector) {
                Ok(diff) => {
                    println!("{}", diff.report());
                    ExitCode::SUCCESS
                }
                Err(err) => {
                    eprintln!("error: {err}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("check") => {
            let Some(path) = parsed.positional.get(1) else {
                eprintln!("usage: repro trace check <file.kgtrace>");
                return ExitCode::FAILURE;
            };
            if parsed.positional.len() > 2 {
                eprintln!("error: unexpected argument {:?}", parsed.positional[2]);
                return ExitCode::FAILURE;
            }
            let recorded = match trace::load_trace(Path::new(path)) {
                Ok(recorded) => recorded,
                Err(err) => {
                    eprintln!("error: {err}");
                    return ExitCode::FAILURE;
                }
            };
            let analysis = check::analyze_trace(&recorded);
            println!(
                "trace {path}: workload {:?}, {} event(s), {} allocation(s)",
                recorded.header.workload, analysis.events, analysis.allocations
            );
            print!("{}", check::render_race_report(&analysis));
            // Races between recorded contexts are advisory (the recording
            // heap interleaves contexts deterministically); grammar and
            // lifetime violations mean the trace itself is unsound.
            if !analysis.violations.is_empty() {
                for violation in &analysis.violations {
                    println!("{violation}");
                }
                eprintln!(
                    "error: {} grammar/lifetime violation(s) in {path}",
                    analysis.violations.len()
                );
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown trace mode: {other}\n\n{}", cli::help_text());
            ExitCode::FAILURE
        }
        None => {
            eprintln!(
                "usage: repro trace <record|replay|diff|check> [flags]\n\n{}",
                cli::help_text()
            );
            ExitCode::FAILURE
        }
    }
}
