//! `repro` — regenerates the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! repro <experiment> [--scale N] [--quick] [--jobs N] [--mutators K] [--profile-dir DIR]
//!
//! experiments: fig1 fig2 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13
//!              table1 table2 table3 table4 headline advise adaptive mutators all
//! ```
//!
//! `--scale N` divides the paper's allocation volumes and heap sizes by `N`
//! (default 256). `--quick` uses the small smoke-test configuration.
//! `--jobs N` fans the embarrassingly parallel per-benchmark runs of every
//! figure/table experiment — and the (benchmark, collector) pairs of the
//! advise/adaptive/mutators comparisons — over `N` worker threads (results
//! and output ordering are identical to a sequential run). Build with
//! `--release`; full-scale runs of `all` take a few minutes.
//!
//! The `mutators` experiment runs the simulation subset through the
//! multi-mutator `MutatorContext` API with `--mutators K` (default 4)
//! interleaved mutator threads and verifies that aggregate PCM/DRAM write
//! counts match the K=1 run exactly (sharded counters and batched write
//! barriers lose no events), that KG-D holds its KG-N bound under K
//! mutators, and that KG-D un-learns the GraphChi-style streaming
//! workload's mid-run phase change.
//!
//! The `advise` experiment (also reachable as `--profile-then-advise`) runs
//! the two-phase pipeline: a KG-N profiling run per benchmark persists a
//! per-site write profile under `--profile-dir` (default
//! `target/site-profiles`), the profile is reloaded from disk, and the
//! profile-guided KG-A collector replays it, compared against GenImmix
//! (PCM-only), KG-N and KG-W.
//!
//! The `adaptive` experiment (also reachable as `--adaptive`) compares the
//! online-adaptive KG-D collector — per-site advice learned *during* the
//! run, with no prior profiling run and no observer space — against
//! PCM-only, KG-N, KG-W and KG-A.

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

use experiments::runner::ExperimentConfig;
use experiments::{adaptive, advise, composition, energy_time, lifetime, mutators, tables, writes};

fn usage() -> &'static str {
    "usage: repro <fig1|fig2|fig5|fig6|fig7|fig8|fig9|fig10|fig11|fig12|fig13|table1|table2|table3|table4|headline|advise|adaptive|mutators|all> [--scale N] [--quick] [--jobs N] [--mutators K] [--profile-dir DIR]\n       repro --profile-then-advise [--scale N] [--quick] [--jobs N] [--profile-dir DIR]\n       repro --adaptive [--scale N] [--quick] [--jobs N] [--profile-dir DIR]"
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    }
    let mut experiment = String::new();
    let mut sim = ExperimentConfig::simulation();
    let mut hw = ExperimentConfig::architecture_independent();
    let mut profile_dir = PathBuf::from("target/site-profiles");
    let mut jobs = 1usize;
    let mut mutator_threads = 4usize;
    // `--mutators K` defaults the experiment to `mutators` only when the
    // whole command line names no other experiment (resolved after the
    // loop), so the flag composes with any experiment in any position.
    let mut mutators_flag_seen = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--profile-then-advise" if experiment.is_empty() => experiment = "advise".to_string(),
            "--adaptive" if experiment.is_empty() => experiment = "adaptive".to_string(),
            "--mutators" => {
                let Some(value) = iter.next() else {
                    eprintln!("--mutators requires a value");
                    return ExitCode::FAILURE;
                };
                match value.parse::<usize>() {
                    Ok(k) if k > 0 => {
                        mutator_threads = k;
                        mutators_flag_seen = true;
                    }
                    _ => {
                        eprintln!("invalid --mutators value: {value}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--jobs" => {
                let Some(value) = iter.next() else {
                    eprintln!("--jobs requires a value");
                    return ExitCode::FAILURE;
                };
                match value.parse::<usize>() {
                    Ok(n) if n > 0 => jobs = n,
                    _ => {
                        eprintln!("invalid --jobs value: {value}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--profile-dir" => {
                let Some(value) = iter.next() else {
                    eprintln!("--profile-dir requires a value");
                    return ExitCode::FAILURE;
                };
                profile_dir = PathBuf::from(value);
            }
            "--quick" => {
                sim = ExperimentConfig {
                    mode: experiments::MeasurementMode::Simulation,
                    ..ExperimentConfig::quick()
                };
                hw = ExperimentConfig::quick();
            }
            "--scale" => {
                let Some(value) = iter.next() else {
                    eprintln!("--scale requires a value");
                    return ExitCode::FAILURE;
                };
                match value.parse::<u64>() {
                    Ok(scale) if scale > 0 => {
                        sim = sim.with_scale(scale);
                        hw = hw.with_scale(scale);
                    }
                    _ => {
                        eprintln!("invalid --scale value: {value}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            name if experiment.is_empty() && !name.starts_with('-') => experiment = name.to_string(),
            other => {
                eprintln!("unknown argument: {other}\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
    }
    if experiment.is_empty() {
        if mutators_flag_seen {
            experiment = "mutators".to_string();
        } else {
            eprintln!("{}", usage());
            return ExitCode::FAILURE;
        }
    }
    sim = sim.with_jobs(jobs);
    hw = hw.with_jobs(jobs);

    let run_one = |name: &str| -> Option<String> {
        match name {
            "fig1" => Some(lifetime::figure1(&sim).figure1_report()),
            "fig5" => Some(lifetime::figure5(&sim).figure5_report()),
            "fig2" => Some(writes::figure2(&hw).report()),
            "fig6" => Some(writes::figure6(&sim).report()),
            "fig7" => Some(writes::figure7(&sim).report()),
            "fig8" => Some(energy_time::figure8(&sim).report()),
            "fig9" => Some(energy_time::figure9(&sim).report()),
            "fig10" => Some(writes::figure10(&sim).report()),
            "fig11" => Some(writes::figure11(&hw).report()),
            "fig12" => Some(energy_time::figure12(&hw).report()),
            "fig13" => Some(composition::figure13(&hw).report()),
            "table1" => Some(tables::table1()),
            "table2" => Some(tables::table2()),
            "table3" => Some(tables::table3(&sim).report()),
            "table4" => Some(tables::table4(&hw, true).report()),
            "advise" => {
                let benchmarks = advise::default_benchmarks();
                Some(advise::profile_then_advise_jobs(&hw, &benchmarks, &profile_dir, jobs).report())
            }
            "adaptive" => {
                let benchmarks = adaptive::default_benchmarks();
                Some(adaptive::adaptive_comparison(&hw, &benchmarks, &profile_dir, jobs).report())
            }
            "mutators" => {
                let benchmarks = mutators::default_benchmarks();
                Some(mutators::mutator_scaling(&hw, &benchmarks, mutator_threads).report())
            }
            "headline" => {
                let life = lifetime::run(&sim);
                let wp = writes::figure7(&sim);
                let hwv = writes::figure11(&hw);
                let edp = energy_time::figure8(&sim);
                Some(format!(
                    "Headline results (paper's claims in parentheses)\n\
                     KG-N lifetime improvement over PCM-only: {:.1}x (paper: ~5x)\n\
                     KG-W lifetime improvement over PCM-only: {:.1}x (paper: ~11x)\n\
                     KG-N PCM writes vs PCM-only: {:.2} (paper: ~0.19)\n\
                     KG-W PCM writes vs PCM-only: {:.2} (paper: ~0.09)\n\
                     WP PCM writes vs PCM-only: {:.2} (paper: ~0.31)\n\
                     KG-W application PCM writes vs KG-N: {:.2} (paper: ~0.20)\n\
                     KG-N EDP vs DRAM-only: {:.2} (paper: ~0.64)\n\
                     KG-W EDP vs DRAM-only: {:.2} (paper: ~0.68)\n",
                    life.average_kg_n_improvement(),
                    life.average_kg_w_improvement(),
                    wp.average_kg_n(),
                    wp.average_kg_w(),
                    wp.average_wp(),
                    hwv.average_kg_w(),
                    edp.average_kg_n(),
                    edp.average_kg_w(),
                ))
            }
            _ => None,
        }
    };

    let experiments: Vec<&str> = if experiment == "all" {
        vec![
            "table1", "table2", "fig1", "fig2", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
            "fig12", "fig13", "table3", "table4", "advise", "adaptive", "mutators", "headline",
        ]
    } else {
        vec![experiment.as_str()]
    };

    for name in experiments {
        match run_one(name) {
            Some(report) => {
                println!("{report}");
            }
            None => {
                eprintln!("unknown experiment: {name}\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
