//! The PCM fault-injection sweep (`repro faults`).
//!
//! Runs one benchmark under each collector with deterministic, accelerated
//! line wear-out injected at every [`hybrid_mem::Endurance`] level, and
//! reports how gracefully each collector degrades: how many lines failed,
//! how many pages became ECC-uncorrectable and were retired (their live
//! objects evacuated at a safepoint, the page remapped to DRAM spare
//! capacity), how much PCM capacity was lost, and the analytic *real-time*
//! years until the first uncorrectable page under the run's observed
//! per-line write rates (the acceleration knob divides back out of that
//! projection, so the column is comparable to Figure 1's lifetime model).
//! The years column is a *calendar* projection at each configuration's own
//! execution speed: a slow PCM-nursery run spreads the same wear over more
//! wall-clock, so compare it alongside the per-work columns (failed lines,
//! retired pages), which fall monotonically from PCM-only to KG-D.
//!
//! Every cell is crash-isolated: a collector that cannot survive its fault
//! schedule is reported as `died` in the survival column (with its panic
//! message) instead of taking the sweep down, and the sweep itself stays
//! deterministic — same seed, same schedule, same table.

use hybrid_mem::timing::ExecutionModel;
use hybrid_mem::{years_to_first_uncorrectable, Endurance, FaultConfig};
use kingsguard::{HeapConfig, KingsguardHeap};
use workloads::{benchmark, SyntheticMutator};

use crate::report::TextTable;
use crate::runner::{heap_config_for, run_jobs_reporting, ExperimentConfig};

/// Collector labels of the sweep, in row order: the unprotected baseline,
/// the paper's two static Kingsguard variants, and the online-adaptive
/// KG-D (which additionally treats every retirement as a demotion signal
/// for the page's allocation sites).
pub const FAULT_COLLECTORS: [&str; 4] = ["PCM-only", "KG-N", "KG-W", "KG-D"];

fn heap_config(label: &str) -> HeapConfig {
    match label {
        "PCM-only" => HeapConfig::gen_immix_pcm(),
        "KG-N" => HeapConfig::kg_n(),
        "KG-W" => HeapConfig::kg_w(),
        "KG-D" => HeapConfig::kg_d(),
        other => panic!("unknown fault-sweep collector {other:?}"),
    }
}

/// The fault schedule one sweep cell runs under: accelerated wear around
/// `endurance`, additionally boosted by the workload scale so the injected
/// wear per line is roughly scale-invariant (scaled-down workloads write
/// each line proportionally fewer times), plus a transient-flip cadence to
/// exercise the ECC-corrected (non-fatal) path.
pub fn sweep_fault_config(config: &ExperimentConfig, endurance: Endurance) -> FaultConfig {
    let accelerated = FaultConfig::accelerated(config.seed, endurance);
    accelerated
        .with_wear_multiplier(accelerated.wear_multiplier.saturating_mul(config.scale.max(1)))
        .with_transient_period(1 << 12)
}

/// One (collector, endurance) cell of the sweep.
#[derive(Clone, Debug)]
pub struct FaultCell {
    /// Collector label.
    pub collector: String,
    /// Endurance level the per-line budgets were drawn around.
    pub endurance: Endurance,
    /// Permanently failed PCM lines at the end of the run.
    pub failed_lines: u64,
    /// Pages that crossed the ECC-correctable threshold and were retired.
    pub retired_pages: u64,
    /// PCM capacity lost to retired pages, in bytes.
    pub degraded_bytes: u64,
    /// Transient (ECC-corrected) bit flips absorbed during the run.
    pub transient_faults: u64,
    /// Live objects evacuated off dying pages before they were fenced.
    pub evacuated_objects: u64,
    /// Analytic real-time years until the first uncorrectable page at the
    /// run's observed write rates (`None`: no page would ever fail).
    pub years_to_uncorrectable: Option<f64>,
    /// `None` when the run completed; `Some(panic message)` when it died.
    pub died: Option<String>,
}

impl FaultCell {
    /// `true` when the collector completed the run under its fault schedule.
    pub fn survived(&self) -> bool {
        self.died.is_none()
    }
}

/// Results of the endurance sweep over one benchmark.
#[derive(Clone, Debug)]
pub struct FaultResults {
    /// Benchmark the sweep ran.
    pub benchmark: String,
    /// One cell per (endurance, collector), endurance-major.
    pub cells: Vec<FaultCell>,
}

fn run_cell(config: &ExperimentConfig, benchmark_name: &str, label: &str, endurance: Endurance) -> FaultCell {
    let profile = benchmark(benchmark_name)
        .unwrap_or_else(|| panic!("unknown fault-sweep benchmark {benchmark_name:?}"));
    let fault = sweep_fault_config(config, endurance);
    let cell_config = config.clone().with_faults(fault);
    let heap_config = heap_config_for(&profile, heap_config(label), &cell_config);
    let mut heap = KingsguardHeap::new(heap_config, cell_config.memory_config());
    heap.enable_telemetry();
    let mutator = SyntheticMutator::new(profile.clone(), cell_config.workload());
    mutator.run_with(&mut heap, |_, _| {});
    // End-of-run maintenance collection: short quick-scale runs can finish
    // without a natural full GC, and only a full collection processes the
    // fault backlog at a safepoint (evacuating live objects off dying pages
    // before retiring them) — without it the wear accumulated late in the
    // run would be reported as failed lines but never reach retirement.
    heap.collect_full();
    // Per-line device write counts feed the real-time lifetime projection;
    // flush first so the tail of the run is on the device counters.
    let line_writes = heap.with_synced_memory(|mem| {
        mem.flush_caches();
        mem.pcm_line_writes()
    });
    let report = heap.finish();
    let elapsed_s = ExecutionModel::default()
        .breakdown(&report.gc.work, &report.memory)
        .total_s();
    FaultCell {
        collector: label.to_string(),
        endurance,
        failed_lines: report.memory.failed_pcm_lines,
        retired_pages: report.memory.retired_pcm_pages,
        degraded_bytes: report.memory.degraded_pcm_bytes,
        transient_faults: report.memory.transient_pcm_faults,
        evacuated_objects: report.gc.fault_evacuated_objects,
        years_to_uncorrectable: years_to_first_uncorrectable(&fault, &line_writes, elapsed_s),
        died: None,
    }
}

/// Runs the endurance sweep: [`FAULT_COLLECTORS`] × [`Endurance::ALL`] over
/// `benchmark_name`, fanned over `config.jobs` worker threads. Cells are
/// crash-isolated; a panicking collector becomes a `died` row.
pub fn fault_sweep(config: &ExperimentConfig, benchmark_name: &str) -> FaultResults {
    let pairs: Vec<(Endurance, &str)> = Endurance::ALL
        .iter()
        .flat_map(|&endurance| FAULT_COLLECTORS.iter().map(move |&label| (endurance, label)))
        .collect();
    let (results, failures) = run_jobs_reporting(&pairs, config.jobs, |&(endurance, label)| {
        run_cell(config, benchmark_name, label, endurance)
    });
    let cells = results
        .into_iter()
        .enumerate()
        .zip(&pairs)
        .map(|((index, slot), &(endurance, label))| match slot {
            Some(cell) => cell,
            None => {
                let message = failures
                    .iter()
                    .find(|failure| failure.index == index)
                    .map(|failure| failure.message.clone())
                    .unwrap_or_else(|| "unknown failure".to_string());
                FaultCell {
                    collector: label.to_string(),
                    endurance,
                    failed_lines: 0,
                    retired_pages: 0,
                    degraded_bytes: 0,
                    transient_faults: 0,
                    evacuated_objects: 0,
                    years_to_uncorrectable: None,
                    died: Some(message),
                }
            }
        })
        .collect();
    FaultResults {
        benchmark: benchmark_name.to_string(),
        cells,
    }
}

fn format_years(years: Option<f64>) -> String {
    match years {
        None => "never".to_string(),
        Some(years) if !(0.1..1_000.0).contains(&years) => format!("{years:.1e}"),
        Some(years) => format!("{years:.1}"),
    }
}

fn format_bytes(bytes: u64) -> String {
    if bytes >= 1 << 20 {
        format!("{:.1} MB", bytes as f64 / (1 << 20) as f64)
    } else if bytes >= 1 << 10 {
        format!("{:.1} KB", bytes as f64 / (1 << 10) as f64)
    } else {
        format!("{bytes} B")
    }
}

impl FaultResults {
    /// Number of cells whose collector survived its fault schedule.
    pub fn survivors(&self) -> usize {
        self.cells.iter().filter(|cell| cell.survived()).count()
    }

    /// Renders the sweep table.
    pub fn report(&self) -> String {
        let mut table = TextTable::new(
            &format!(
                "PCM fault injection on {}: accelerated line wear-out per endurance level\n\
                 ('Years to UE' = analytic real-time years until the first ECC-uncorrectable page\n\
                 at the run's observed write rates; 'Evacuated' = live objects moved off dying\n\
                 pages before retirement; survival 'ok' = the run completed without data loss)",
                self.benchmark
            ),
            &[
                "Collector",
                "Endurance",
                "Failed lines",
                "Retired pages",
                "Degraded",
                "Transients",
                "Evacuated",
                "Years to UE",
                "Survived",
            ],
        );
        for cell in &self.cells {
            table.row(vec![
                cell.collector.clone(),
                cell.endurance.label().to_string(),
                cell.failed_lines.to_string(),
                cell.retired_pages.to_string(),
                format_bytes(cell.degraded_bytes),
                cell.transient_faults.to_string(),
                cell.evacuated_objects.to_string(),
                format_years(cell.years_to_uncorrectable),
                match &cell.died {
                    None => "ok".to_string(),
                    Some(message) => format!("died: {message}"),
                },
            ]);
        }
        let mut out = table.render();
        out.push_str(&format!(
            "{}/{} cells survived their fault schedule\n",
            self.survivors(),
            self.cells.len()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use telemetry::{diff_docs, TelemetryDoc};

    #[test]
    fn fault_sweep_is_deterministic_and_every_collector_survives() {
        let config = ExperimentConfig::quick();
        let first = fault_sweep(&config, "lusearch");
        let second = fault_sweep(&config.clone().with_jobs(3), "lusearch");
        assert_eq!(first.cells.len(), FAULT_COLLECTORS.len() * Endurance::ALL.len());
        assert_eq!(first.survivors(), first.cells.len(), "no collector may die");
        for (a, b) in first.cells.iter().zip(&second.cells) {
            assert_eq!(a.collector, b.collector);
            assert_eq!(a.endurance, b.endurance);
            let tag = format!("{} @ {}", a.collector, a.endurance.label());
            assert_eq!(a.failed_lines, b.failed_lines, "{tag}");
            assert_eq!(a.retired_pages, b.retired_pages, "{tag}");
            assert_eq!(a.degraded_bytes, b.degraded_bytes, "{tag}");
            assert_eq!(a.transient_faults, b.transient_faults, "{tag}");
            assert_eq!(a.evacuated_objects, b.evacuated_objects, "{tag}");
            assert_eq!(
                a.years_to_uncorrectable.map(f64::to_bits),
                b.years_to_uncorrectable.map(f64::to_bits),
                "{tag}"
            );
        }
        // The accelerated schedule must actually exercise the wear-out
        // machinery: the unprotected baseline, whose nursery churns PCM
        // lines hardest, must fail lines at every endurance level. (The
        // acceleration knob normalizes endurance out of *in-run* failure
        // counts by construction; endurance differentiates the rows through
        // the real-time years-to-uncorrectable projection instead.)
        for endurance in Endurance::ALL {
            let baseline = first
                .cells
                .iter()
                .find(|cell| cell.collector == "PCM-only" && cell.endurance == endurance)
                .unwrap();
            assert!(
                baseline.failed_lines > 0,
                "accelerated wear never failed a line at {}",
                endurance.label()
            );
            assert!(
                baseline.retired_pages > 0,
                "the maintenance collection never retired a page at {}",
                endurance.label()
            );
            assert!(
                baseline.degraded_bytes > 0 && baseline.transient_faults > 0,
                "degradation accounting is dead at {}",
                endurance.label()
            );
        }
        // Retirement must flow through the safepoint evacuation protocol,
        // not just the non-heap fast path: at least one collector moves
        // live objects off dying mature pages.
        assert!(
            first.cells.iter().any(|cell| cell.evacuated_objects > 0),
            "no cell ever evacuated a live object off a dying page"
        );
        let report = first.report();
        assert!(report.contains("lusearch"));
        assert!(report.contains("ok"));
        assert!(!report.contains("died"));
    }

    #[test]
    fn a_dying_cell_is_reported_not_fatal() {
        let config = ExperimentConfig::quick();
        let results = fault_sweep(&config, "lusearch");
        // Simulate a died cell through the same rendering path.
        let mut cells = results.cells.clone();
        cells[0].died = Some("mature space exhausted".to_string());
        let doctored = FaultResults {
            benchmark: results.benchmark.clone(),
            cells,
        };
        assert_eq!(doctored.survivors(), doctored.cells.len() - 1);
        assert!(doctored.report().contains("died: mature space exhausted"));
        // And an unknown benchmark panics inside the cell, which the sweep
        // converts into a died row instead of propagating.
        let bad = fault_sweep(&config, "no-such-benchmark");
        assert_eq!(bad.survivors(), 0);
        assert!(bad.cells.iter().all(|cell| {
            cell.died
                .as_deref()
                .is_some_and(|message| message.contains("no-such-benchmark"))
        }));
    }

    #[test]
    fn faulted_telemetry_runs_have_zero_metric_drift() {
        // Same seed, same fault schedule -> bit-identical .kgmetrics
        // documents, pinning fault determinism end to end through the
        // telemetry pipeline (`repro metrics diff` gates on exactly this).
        let base = std::env::temp_dir().join(format!("kgfault-metrics-{}", std::process::id()));
        let profile = benchmark("lu.fix").unwrap();
        let fault = sweep_fault_config(&ExperimentConfig::quick(), Endurance::Low10M);
        let mut docs = Vec::new();
        for tag in ["a", "b"] {
            let dir = base.join(tag);
            let config = ExperimentConfig::quick()
                .with_faults(fault)
                .with_telemetry_dir(&dir);
            // The PCM-nursery baseline churns PCM lines hardest, so the
            // schedule is guaranteed to fire.
            let result = crate::runner::run_benchmark(&profile, HeapConfig::gen_immix_pcm(), &config);
            assert!(result.memory.failed_pcm_lines > 0, "faults must actually fire");
            let path = crate::runner::metrics_path(&dir, profile.name, "PCM-only");
            docs.push(TelemetryDoc::load(&path).unwrap());
        }
        let diff = diff_docs(&docs[0], &docs[1]);
        assert!(!diff.has_drift(), "fault metrics drifted: {:?}", diff.drift);
        // The fault counters are part of the compared document.
        assert!(docs[0].counters.contains_key("fault.lines_failed"));
        std::fs::remove_dir_all(&base).ok();
    }
}
