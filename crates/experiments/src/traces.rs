//! The trace experiment: `repro trace record|replay|diff`.
//!
//! * **record** — runs every simulated benchmark once (under KG-N, purely
//!   as the workload vehicle: the recorded op stream is collector-
//!   independent) and persists one `.kgtrace` per benchmark.
//! * **replay** — replays each recorded trace under every collector of the
//!   comparison set and reports the replayed PCM/DRAM writes and wall-clock
//!   time. With verification enabled, each replay is checked bit-identical
//!   against that collector's live run and the live wall-clock is reported
//!   next to the replay wall-clock — the record-once-replay-many speedup.
//! * **diff** — replays two traces under one collector with per-line write
//!   tracking enabled and compares them: aggregate PCM/DRAM writes *and*
//!   wear uniformity (lines written, max line writes, coefficient of
//!   variation from [`hybrid_mem::wear::WearTracker`]), so two workloads —
//!   or two recordings of an evolving workload — can be compared on how
//!   they would age a PCM device, not just on how much they write.

use std::path::{Path, PathBuf};
use std::time::Instant;

use advice::AdviceTable;
use hybrid_mem::wear::WearSummary;
use hybrid_mem::{MemoryConfig, MemoryKind, MemorySystem};
use kingsguard::{HeapConfig, KingsguardHeap};
use trace::{Trace, TraceError, TraceReplayer};
use workloads::{simulated_benchmarks, BenchmarkProfile, SyntheticMutator};

use crate::report::TextTable;
use crate::runner::{run_jobs, trace_path, ExperimentConfig};

/// Collector labels of the replay comparison, in row order per benchmark.
pub const REPLAY_COLLECTORS: [&str; 6] = ["DRAM-only", "PCM-only", "KG-N", "KG-W", "KG-A", "KG-D"];

/// The default benchmark set (the simulated subset, as in the other
/// comparisons).
pub fn default_benchmarks() -> Vec<BenchmarkProfile> {
    simulated_benchmarks()
}

/// Heap configuration for one replay-comparison collector label.
pub fn config_for(label: &str) -> HeapConfig {
    match label {
        "DRAM-only" => HeapConfig::gen_immix_dram(),
        "PCM-only" => HeapConfig::gen_immix_pcm(),
        "KG-N" => HeapConfig::kg_n(),
        "KG-W" => HeapConfig::kg_w(),
        // All-cold advice keeps KG-A self-contained (no profiling run); the
        // point here is trace replay, not advice quality.
        "KG-A" => HeapConfig::kg_a(AdviceTable::all_cold()),
        "KG-D" => HeapConfig::kg_d(),
        other => panic!("unknown collector label {other}"),
    }
}

pub(crate) fn sized_config(label: &str, profile: &BenchmarkProfile, config: &ExperimentConfig) -> HeapConfig {
    config_for(label).with_heap_budget(profile.scaled_heap_bytes(config.scale).max(2 << 20) as usize)
}

// ---------------------------------------------------------------------
// record
// ---------------------------------------------------------------------

/// Outcome of recording one benchmark.
#[derive(Clone, Debug)]
pub struct RecordRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Where the trace was written.
    pub path: PathBuf,
    /// Events in the trace.
    pub events: u64,
    /// Objects the trace allocates.
    pub allocations: u64,
    /// Encoded size in bytes.
    pub bytes: u64,
    /// Wall-clock of the recording run in milliseconds.
    pub record_ms: u64,
}

/// Results of `repro trace record`.
#[derive(Clone, Debug)]
pub struct RecordResults {
    /// Mutator threads the traces were recorded with.
    pub mutators: usize,
    /// Per-benchmark rows.
    pub rows: Vec<RecordRow>,
}

impl RecordResults {
    /// Formatted report.
    pub fn report(&self) -> String {
        let mut table = TextTable::new(
            &format!(
                "Trace record: one .kgtrace per benchmark (K={} mutators)",
                self.mutators
            ),
            &["benchmark", "events", "objects", "KB", "record-ms", "file"],
        );
        for row in &self.rows {
            table.row(vec![
                row.benchmark.clone(),
                row.events.to_string(),
                row.allocations.to_string(),
                format!("{:.1}", row.bytes as f64 / 1024.0),
                row.record_ms.to_string(),
                row.path.display().to_string(),
            ]);
        }
        table.render()
    }
}

/// Records one trace per benchmark into `dir` (overwriting stale files), in
/// parallel over `jobs` workers.
pub fn record_traces(
    config: &ExperimentConfig,
    benchmarks: &[BenchmarkProfile],
    dir: &Path,
    mutators: usize,
    jobs: usize,
) -> RecordResults {
    let rows = run_jobs(benchmarks, jobs, |profile| {
        let heap_config = sized_config("KG-N", profile, config);
        let path = trace_path(dir, profile.name, &heap_config, config, mutators);
        let mut heap = KingsguardHeap::new(heap_config, config.memory_config());
        let mutator = SyntheticMutator::new(profile.clone(), config.workload());
        let start = Instant::now();
        let recorded = if mutators > 1 {
            mutator.record_multi(&mut heap, mutators)
        } else {
            mutator.record(&mut heap)
        };
        let record_ms = start.elapsed().as_millis() as u64;
        drop(heap.finish());
        let bytes = trace::trace_to_bytes(&recorded).len() as u64;
        trace::save_trace(&recorded, &path)
            .unwrap_or_else(|err| panic!("could not save {}: {err}", path.display()));
        RecordRow {
            benchmark: profile.name.to_string(),
            path,
            events: recorded.events.len() as u64,
            allocations: recorded.allocations(),
            bytes,
            record_ms,
        }
    });
    RecordResults { mutators, rows }
}

// ---------------------------------------------------------------------
// replay
// ---------------------------------------------------------------------

/// One (benchmark, collector) replay.
#[derive(Clone, Debug)]
pub struct ReplayRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Collector label.
    pub collector: String,
    /// Replayed PCM device writes.
    pub pcm_writes: u64,
    /// Replayed DRAM device writes.
    pub dram_writes: u64,
    /// Replay wall-clock in milliseconds.
    pub replay_ms: u64,
    /// Live-run wall-clock in milliseconds (verification runs only).
    pub live_ms: Option<u64>,
    /// Whether the replay matched the live run bit-identically
    /// (verification runs only).
    pub exact: Option<bool>,
}

/// Results of `repro trace replay`.
#[derive(Clone, Debug)]
pub struct ReplayResults {
    /// Per-(benchmark, collector) rows.
    pub rows: Vec<ReplayRow>,
    /// Whether live verification ran.
    pub verified: bool,
}

impl ReplayResults {
    /// Total replay wall-clock in milliseconds.
    pub fn total_replay_ms(&self) -> u64 {
        self.rows.iter().map(|r| r.replay_ms).sum()
    }

    /// Total live wall-clock in milliseconds (0 without verification).
    pub fn total_live_ms(&self) -> u64 {
        self.rows.iter().filter_map(|r| r.live_ms).sum()
    }

    /// Rows whose replay diverged from the live run.
    pub fn mismatches(&self) -> usize {
        self.rows.iter().filter(|r| r.exact == Some(false)).count()
    }

    /// live / replay wall-clock ratio (verification runs only).
    pub fn speedup(&self) -> Option<f64> {
        if !self.verified || self.total_replay_ms() == 0 {
            return None;
        }
        Some(self.total_live_ms() as f64 / self.total_replay_ms() as f64)
    }

    /// Formatted report.
    pub fn report(&self) -> String {
        let title = if self.verified {
            "Trace replay: every collector from one recorded trace per benchmark (verified vs live)"
        } else {
            "Trace replay: every collector from one recorded trace per benchmark"
        };
        let mut table = TextTable::new(
            title,
            &[
                "benchmark",
                "collector",
                "PCM writes",
                "DRAM writes",
                "replay-ms",
                "live-ms",
                "exact",
            ],
        );
        for row in &self.rows {
            table.row(vec![
                row.benchmark.clone(),
                row.collector.clone(),
                row.pcm_writes.to_string(),
                row.dram_writes.to_string(),
                row.replay_ms.to_string(),
                row.live_ms.map(|ms| ms.to_string()).unwrap_or_else(|| "-".into()),
                match row.exact {
                    Some(true) => "yes".to_string(),
                    Some(false) => "NO".to_string(),
                    None => "-".to_string(),
                },
            ]);
        }
        let mut out = table.render();
        if self.verified {
            out.push_str(&format!(
                "\n{} replays exact, {} diverged; live {} ms vs replay {} ms ({}x)\n",
                self.rows.len() - self.mismatches(),
                self.mismatches(),
                self.total_live_ms(),
                self.total_replay_ms(),
                self.speedup()
                    .map(|s| format!("{s:.2}"))
                    .unwrap_or_else(|| "-".into()),
            ));
        } else {
            out.push_str(&format!(
                "\ntotal replay wall-clock: {} ms\n",
                self.total_replay_ms()
            ));
        }
        out
    }
}

fn run_fingerprint(report: &kingsguard::RunReport) -> (u64, u64, u64, u64, u64, u64, u64) {
    (
        report.memory.writes(MemoryKind::Pcm),
        report.memory.writes(MemoryKind::Dram),
        report.memory.reads(MemoryKind::Pcm),
        report.memory.reads(MemoryKind::Dram),
        report.gc.remset_insertions,
        report.gc.nursery.collections + report.gc.observer.collections + report.gc.major.collections,
        report.gc.primitive_writes + report.gc.reference_writes,
    )
}

/// Replays each benchmark's recorded trace (recording any that are missing)
/// under every [`REPLAY_COLLECTORS`] entry, fanning (benchmark, collector)
/// pairs over `jobs` workers. With `verify`, each replay is compared
/// bit-for-bit against that collector's live run.
pub fn replay_traces(
    config: &ExperimentConfig,
    benchmarks: &[BenchmarkProfile],
    dir: &Path,
    mutators: usize,
    jobs: usize,
    verify: bool,
) -> ReplayResults {
    replay_traces_filtered(
        config,
        benchmarks,
        dir,
        mutators,
        jobs,
        verify,
        &REPLAY_COLLECTORS,
    )
}

/// [`replay_traces`] restricted to an explicit collector subset.
pub fn replay_traces_filtered(
    config: &ExperimentConfig,
    benchmarks: &[BenchmarkProfile],
    dir: &Path,
    mutators: usize,
    jobs: usize,
    verify: bool,
    collectors: &[&str],
) -> ReplayResults {
    // Load every trace once up front — recording missing or stale ones
    // inline — and share the decoded events across the per-collector
    // replays, so the fan-out below neither re-parses multi-megabyte files
    // per collector nor charges parse time to the replay wall-clock.
    let loaded: Vec<(&BenchmarkProfile, trace::Trace)> = benchmarks
        .iter()
        .map(|profile| {
            let heap_config = sized_config("KG-N", profile, config);
            let path = trace_path(dir, profile.name, &heap_config, config, mutators);
            let current = trace::load_trace(&path)
                .ok()
                .filter(crate::runner::trace_site_map_current)
                .filter(|recorded| crate::runner::trace_fault_schedule_current(recorded, config));
            let recorded = match current {
                Some(recorded) => recorded,
                None => {
                    record_traces(config, std::slice::from_ref(profile), dir, mutators, 1);
                    trace::load_trace(&path)
                        .unwrap_or_else(|err| panic!("could not load {}: {err}", path.display()))
                }
            };
            (profile, recorded)
        })
        .collect();
    let pairs: Vec<(&BenchmarkProfile, &trace::Trace, &str)> = loaded
        .iter()
        .flat_map(|(profile, recorded)| collectors.iter().map(move |label| (*profile, recorded, *label)))
        .collect();
    let rows = run_jobs(&pairs, jobs, |(profile, recorded, label)| {
        let heap_config = sized_config(label, profile, config);
        let start = Instant::now();
        let mut heap = KingsguardHeap::new(heap_config.clone(), config.memory_config());
        TraceReplayer::new(recorded)
            .replay(&mut heap)
            .unwrap_or_else(|err| panic!("replaying {} under {label} failed: {err}", profile.name));
        let report = heap.finish();
        let replay_ms = start.elapsed().as_millis() as u64;
        let (live_ms, exact) = if verify {
            let start = Instant::now();
            let mut live_heap = KingsguardHeap::new(heap_config, config.memory_config());
            let mutator = SyntheticMutator::new((*profile).clone(), config.workload());
            // The live run must use the driver the trace was recorded with.
            if mutators > 1 {
                mutator.run_multi(&mut live_heap, mutators);
            } else {
                mutator.run(&mut live_heap);
            }
            let live = live_heap.finish();
            let live_ms = start.elapsed().as_millis() as u64;
            (
                Some(live_ms),
                Some(run_fingerprint(&live) == run_fingerprint(&report)),
            )
        } else {
            (None, None)
        };
        ReplayRow {
            benchmark: profile.name.to_string(),
            collector: label.to_string(),
            pcm_writes: report.memory.writes(MemoryKind::Pcm),
            dram_writes: report.memory.writes(MemoryKind::Dram),
            replay_ms,
            live_ms,
            exact,
        }
    });
    ReplayResults {
        rows,
        verified: verify,
    }
}

// ---------------------------------------------------------------------
// diff
// ---------------------------------------------------------------------

/// One side of a trace diff.
#[derive(Clone, Debug)]
pub struct DiffSide {
    /// The trace file.
    pub path: PathBuf,
    /// The trace's recorded workload name.
    pub workload: String,
    /// Events in the trace.
    pub events: u64,
    /// PCM device writes of the replay.
    pub pcm_writes: u64,
    /// DRAM device writes of the replay.
    pub dram_writes: u64,
    /// Wear distribution over PCM lines.
    pub pcm_wear: WearSummary,
}

/// Results of `repro trace diff`: both traces replayed under one collector
/// with per-line write tracking.
#[derive(Clone, Debug)]
pub struct DiffResults {
    /// Collector both traces were replayed under.
    pub collector: String,
    /// The first trace's replay.
    pub a: DiffSide,
    /// The second trace's replay.
    pub b: DiffSide,
}

impl DiffResults {
    /// Formatted report.
    pub fn report(&self) -> String {
        let mut table = TextTable::new(
            &format!(
                "Trace diff under {}: aggregate PCM writes and wear uniformity",
                self.collector
            ),
            &[
                "trace",
                "workload",
                "events",
                "PCM writes",
                "DRAM writes",
                "PCM lines",
                "max line",
                "wear CV",
            ],
        );
        for side in [&self.a, &self.b] {
            table.row(vec![
                side.path.display().to_string(),
                side.workload.clone(),
                side.events.to_string(),
                side.pcm_writes.to_string(),
                side.dram_writes.to_string(),
                side.pcm_wear.lines_written.to_string(),
                side.pcm_wear.max_line_writes.to_string(),
                format!("{:.3}", side.pcm_wear.coefficient_of_variation),
            ]);
        }
        let mut out = table.render();
        let ratio = if self.a.pcm_writes > 0 {
            self.b.pcm_writes as f64 / self.a.pcm_writes as f64
        } else {
            f64::INFINITY
        };
        out.push_str(&format!(
            "\nPCM writes: B/A = {ratio:.3}; wear CV delta = {:+.3} \
             (negative = B spreads writes more uniformly)\n",
            self.b.pcm_wear.coefficient_of_variation - self.a.pcm_wear.coefficient_of_variation,
        ));
        out
    }
}

/// Summarises the wear of every *PCM-mapped* line with recorded writes.
/// Diff replays force line tracking on, so the summary is always available.
fn pcm_wear_summary(mem: &MemorySystem) -> WearSummary {
    mem.wear_summary(MemoryKind::Pcm)
        .expect("diff replays run with track_line_writes enabled")
}

fn replay_side(trace: &Trace, collector: &str, config: &ExperimentConfig, path: &Path) -> DiffSide {
    // Per-line wear needs line tracking; base the memory system on the
    // experiment's mode with tracking forced on.
    let memory_config = MemoryConfig {
        track_line_writes: true,
        ..config.memory_config()
    };
    // Size the heap budget like the recording runs: from the trace header's
    // workload, if it is a known benchmark; otherwise a generous default.
    let budget = workloads::benchmark(&trace.header.workload)
        .map(|p| p.scaled_heap_bytes(config.scale).max(2 << 20) as usize)
        .unwrap_or(8 << 20);
    let heap_config = config_for(collector).with_heap_budget(budget);
    let mut heap = KingsguardHeap::new(heap_config, memory_config);
    TraceReplayer::new(trace)
        .replay(&mut heap)
        .unwrap_or_else(|err| panic!("replaying {} failed: {err}", path.display()));
    let pcm_wear = heap.with_synced_memory(|mem| pcm_wear_summary(mem));
    let report = heap.finish();
    DiffSide {
        path: path.to_path_buf(),
        workload: trace.header.workload.clone(),
        events: trace.events.len() as u64,
        pcm_writes: report.memory.writes(MemoryKind::Pcm),
        dram_writes: report.memory.writes(MemoryKind::Dram),
        pcm_wear,
    }
}

/// Replays the traces at `path_a` and `path_b` under `collector` and
/// compares aggregate writes and wear uniformity.
pub fn diff_traces(
    config: &ExperimentConfig,
    path_a: &Path,
    path_b: &Path,
    collector: &str,
) -> Result<DiffResults, TraceError> {
    let trace_a = trace::load_trace(path_a)?;
    let trace_b = trace::load_trace(path_b)?;
    Ok(DiffResults {
        collector: collector.to_string(),
        a: replay_side(&trace_a, collector, config, path_a),
        b: replay_side(&trace_b, collector, config, path_b),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::benchmark;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("kgtrace-exp-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn record_then_replay_is_exact_and_reuses_the_trace() {
        let dir = temp_dir("replay");
        let config = ExperimentConfig::quick();
        let benchmarks = vec![benchmark("lu.fix").unwrap()];
        let recorded = record_traces(&config, &benchmarks, &dir, 1, 1);
        assert_eq!(recorded.rows.len(), 1);
        assert!(recorded.rows[0].path.exists());
        assert!(recorded.rows[0].events > 0);
        let results = replay_traces(&config, &benchmarks, &dir, 1, 2, true);
        assert_eq!(results.rows.len(), REPLAY_COLLECTORS.len());
        assert_eq!(results.mismatches(), 0, "{}", results.report());
        assert!(results.report().contains("exact"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_records_missing_traces_on_demand() {
        let dir = temp_dir("on-demand");
        let config = ExperimentConfig::quick();
        let benchmarks = vec![benchmark("pmd").unwrap()];
        let results = replay_traces(&config, &benchmarks, &dir, 1, 1, false);
        assert_eq!(results.rows.len(), REPLAY_COLLECTORS.len());
        assert!(results.rows.iter().all(|r| r.exact.is_none()));
        assert!(results.total_replay_ms() < u64::MAX);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn diff_compares_wear_uniformity() {
        let dir = temp_dir("diff");
        let config = ExperimentConfig::quick();
        let lusearch = vec![benchmark("lusearch").unwrap()];
        let bloat = vec![benchmark("bloat").unwrap()];
        let a = record_traces(&config, &lusearch, &dir, 1, 1);
        let b = record_traces(&config, &bloat, &dir, 1, 1);
        let diff = diff_traces(&config, &a.rows[0].path, &b.rows[0].path, "KG-N").unwrap();
        assert_eq!(diff.a.workload, "lusearch");
        assert_eq!(diff.b.workload, "bloat");
        assert!(diff.a.pcm_writes > 0 && diff.b.pcm_writes > 0);
        assert!(diff.a.pcm_wear.lines_written > 0);
        assert!(diff.a.pcm_wear.coefficient_of_variation.is_finite());
        let report = diff.report();
        assert!(report.contains("wear CV"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
