//! The two-phase profile→advise pipeline.
//!
//! Phase 1 (**profile**) runs each benchmark once under KG-N with per-site
//! profiling enabled and persists the resulting [`SiteProfile`] to a
//! versioned on-disk file. Phase 2 (**advise**) reloads the profile from
//! disk — exercising the same path a separate production process would use —
//! derives an [`AdviceTable`] from it, and runs the benchmark under the
//! profile-guided KG-A collector. The comparison table reports PCM write
//! rate, PCM lifetime and energy-delay product for GenImmix (PCM-only),
//! KG-N, KG-W and KG-A side by side: KG-A should approach KG-W's write
//! rationing without paying KG-W's observer-space tax.

use std::path::{Path, PathBuf};

use advice::{
    load_profile, save_profile, site_map_drift, AdviceTable, ClassifyParams, SiteMapDrift, SiteProfile,
};
use hybrid_mem::lifetime::Endurance;
use kingsguard::HeapConfig;
use workloads::{benchmark, simulated_benchmarks, site_map_hash, BenchmarkProfile};

use crate::report::{self, ratio, TextTable};
use crate::runner::{run_benchmark, run_benchmark_profiled, run_jobs, ExperimentConfig, ExperimentResult};

/// The collector labels of the comparison, in column order.
pub const ADVISE_CONFIGS: [&str; 4] = ["PCM-only", "KG-N", "KG-W", "KG-A"];

/// Endurance level used for the lifetime column (the paper's headline
/// 30 M writes-per-cell point).
pub const LIFETIME_ENDURANCE: Endurance = report::LIFETIME_ENDURANCE;

/// One benchmark's end-to-end comparison.
#[derive(Clone, Debug)]
pub struct AdviseRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Path of the persisted profile file.
    pub profile_path: PathBuf,
    /// Sites observed by the profiling run.
    pub sites: usize,
    /// Sites advised into DRAM.
    pub hot_sites: usize,
    /// Results in [`ADVISE_CONFIGS`] order.
    pub results: Vec<ExperimentResult>,
}

impl AdviseRow {
    fn result(&self, collector: &str) -> &ExperimentResult {
        report::result_for(&self.results, &self.benchmark, collector)
    }

    /// Estimated 32-core PCM write rate of `collector` in GB/s.
    pub fn write_rate_gbps(&self, collector: &str) -> f64 {
        report::write_rate_gbps(self.result(collector))
    }

    /// PCM lifetime of `collector` in years at [`LIFETIME_ENDURANCE`].
    pub fn lifetime_years(&self, collector: &str) -> f64 {
        report::lifetime_years(self.result(collector))
    }

    /// Energy-delay product of `collector` relative to KG-N.
    pub fn edp_vs_kg_n(&self, collector: &str) -> f64 {
        report::edp_relative(&self.results, &self.benchmark, collector, "KG-N")
    }

    /// Returns `true` if KG-A's PCM write rate is no worse than KG-N's.
    pub fn kg_a_beats_kg_n(&self) -> bool {
        self.result("KG-A").pcm_write_rate_32core() <= self.result("KG-N").pcm_write_rate_32core()
    }
}

/// Results of the full profile→advise pipeline.
#[derive(Clone, Debug)]
pub struct AdviseResults {
    /// Per-benchmark rows.
    pub rows: Vec<AdviseRow>,
}

impl AdviseResults {
    /// Number of benchmarks where KG-A's PCM write rate is ≤ KG-N's.
    pub fn kg_a_wins(&self) -> usize {
        self.rows.iter().filter(|r| r.kg_a_beats_kg_n()).count()
    }

    /// Renders the comparison table.
    pub fn report(&self) -> String {
        let mut table = TextTable::new(
            "Profile-guided placement: profile (KG-N) -> advise (KG-A), vs the paper's collectors\n\
             (PCM write rate in GB/s at 32 cores; lifetime in years at 30M writes/cell; EDP relative to KG-N)",
            &[
                "Benchmark",
                "Sites",
                "Hot",
                "Rate PCM-only",
                "Rate KG-N",
                "Rate KG-W",
                "Rate KG-A",
                "Life KG-N",
                "Life KG-W",
                "Life KG-A",
                "EDP KG-W",
                "EDP KG-A",
            ],
        );
        for row in &self.rows {
            table.row(vec![
                row.benchmark.clone(),
                row.sites.to_string(),
                row.hot_sites.to_string(),
                format!("{:.2}", row.write_rate_gbps("PCM-only")),
                format!("{:.2}", row.write_rate_gbps("KG-N")),
                format!("{:.2}", row.write_rate_gbps("KG-W")),
                format!("{:.2}", row.write_rate_gbps("KG-A")),
                format!("{:.1}", row.lifetime_years("KG-N")),
                format!("{:.1}", row.lifetime_years("KG-W")),
                format!("{:.1}", row.lifetime_years("KG-A")),
                ratio(row.edp_vs_kg_n("KG-W")),
                ratio(row.edp_vs_kg_n("KG-A")),
            ]);
        }
        let mut out = table.render();
        out.push_str(&format!(
            "KG-A PCM write rate <= KG-N on {}/{} benchmarks\n",
            self.kg_a_wins(),
            self.rows.len()
        ));
        if let Some(summary) = report::telemetry_summary(self.rows.iter().flat_map(|row| row.results.iter()))
        {
            out.push_str(&summary);
            out.push('\n');
        }
        out
    }
}

/// Phase 1: runs `profile` under KG-N with site profiling and persists the
/// profile to `<dir>/<benchmark>.kgprof`. Returns the profiling-run result
/// (reusable as the KG-N row — profiling adds no simulated traffic) and the
/// path written.
pub fn profile_workload(
    profile: &BenchmarkProfile,
    config: &ExperimentConfig,
    dir: &Path,
) -> (ExperimentResult, PathBuf) {
    let mut result = run_benchmark_profiled(profile, HeapConfig::kg_n(), config);
    // Stamp the workload's site-map hash so a later program version whose
    // site map drifted can detect the mismatch (and still apply the advice
    // per-site instead of rejecting the file).
    if let Some(site_profile) = result.site_profile.as_mut() {
        site_profile.site_map_hash = Some(site_map_hash());
    }
    let site_profile = result
        .site_profile
        .as_ref()
        .expect("profiled run returns a site profile");
    let path = dir.join(format!("{}.kgprof", profile.name));
    save_profile(site_profile, &path)
        .unwrap_or_else(|err| panic!("cannot persist site profile to {}: {err}", path.display()));
    (result, path)
}

/// Phase 2: reloads the persisted profile and derives the KG-A advice table
/// from it with profile-adaptive classification thresholds.
pub fn advice_from_disk(path: &Path) -> (SiteProfile, AdviceTable) {
    let (site_profile, table, _) = advice_from_disk_checked(path, site_map_hash());
    (site_profile, table)
}

/// Like [`advice_from_disk`], but checks the profile's recorded site-map
/// hash against `current_hash`. A drifted profile is *not* rejected: the
/// drift is logged and the advice is applied per-site — sites whose ids
/// survived the drift keep their advice, everything else falls back to the
/// table's default (PCM) placement, where the rescue fallback corrects
/// mispredictions.
pub fn advice_from_disk_checked(path: &Path, current_hash: u64) -> (SiteProfile, AdviceTable, SiteMapDrift) {
    let site_profile = load_profile(path)
        .unwrap_or_else(|err| panic!("cannot reload site profile {}: {err}", path.display()));
    let drift = site_map_drift(&site_profile, current_hash);
    if let SiteMapDrift::Drifted { stored, current } = drift {
        eprintln!(
            "warning: site profile {} was collected under site map {stored:016x}, but this run's \
             site map hashes to {current:016x}; applying its advice per-site (unmatched sites use \
             the default PCM placement and rely on the rescue fallback)",
            path.display()
        );
    }
    let params = ClassifyParams::for_profile(&site_profile);
    let table = AdviceTable::from_profile(&site_profile, &params);
    (site_profile, table, drift)
}

/// Runs the full pipeline for one benchmark: profile, persist, reload,
/// advise, and compare against the PCM-only and KG-W baselines.
pub fn profile_then_advise_one(
    profile: &BenchmarkProfile,
    config: &ExperimentConfig,
    dir: &Path,
) -> AdviseRow {
    let (kg_n, path) = profile_workload(profile, config, dir);
    let (site_profile, table, _) = advice_from_disk_checked(&path, site_map_hash());
    let kg_a = run_benchmark(profile, HeapConfig::kg_a(table.clone()), config);
    let pcm_only = run_benchmark(profile, HeapConfig::gen_immix_pcm(), config);
    let kg_w = run_benchmark(profile, HeapConfig::kg_w(), config);
    AdviseRow {
        benchmark: profile.name.to_string(),
        profile_path: path,
        sites: site_profile.sites.len(),
        hot_sites: table.hot_sites(),
        results: vec![pcm_only, kg_n, kg_w, kg_a],
    }
}

/// Runs the pipeline over `benchmarks` (names resolved against the paper's
/// profiles), writing profile files into `dir`.
pub fn profile_then_advise(config: &ExperimentConfig, benchmarks: &[&str], dir: &Path) -> AdviseResults {
    profile_then_advise_jobs(config, benchmarks, dir, 1)
}

/// One benchmark's output from [`run_profiled_waves`]: the profiling run
/// (reusable as the KG-N row), the persisted profile and its derived advice,
/// and the wave-2 results in the order the caller's `configs_for` listed
/// their configurations.
pub(crate) struct ProfiledWave {
    pub(crate) profile: BenchmarkProfile,
    pub(crate) kg_n: ExperimentResult,
    pub(crate) path: PathBuf,
    pub(crate) site_profile: SiteProfile,
    pub(crate) table: AdviceTable,
    pub(crate) results: Vec<ExperimentResult>,
}

/// Shared two-wave orchestration of the advise and adaptive experiments,
/// with the (benchmark, collector) pairs fanned out over up to `jobs`
/// worker threads. Wave 1 profiles every benchmark under KG-N (each
/// benchmark's advice must exist before its advised runs) and derives the
/// advice table from disk; wave 2 runs every `configs_for(table)`
/// configuration per benchmark. Each run owns its heap and memory system,
/// so the results — and their order — are identical for any job count;
/// only the wall-clock changes.
pub(crate) fn run_profiled_waves(
    config: &ExperimentConfig,
    benchmarks: &[&str],
    dir: &Path,
    jobs: usize,
    configs_for: impl Fn(&AdviceTable) -> Vec<HeapConfig>,
) -> Vec<ProfiledWave> {
    let profiles: Vec<BenchmarkProfile> = benchmarks
        .iter()
        .map(|name| benchmark(name).unwrap_or_else(|| panic!("unknown benchmark {name}")))
        .collect();
    // Wave 1: the profiling runs (reused as the KG-N rows).
    let profiled = run_jobs(&profiles, jobs, |profile| profile_workload(profile, config, dir));
    let advice: Vec<(SiteProfile, AdviceTable)> = profiled
        .iter()
        .map(|(_, path)| {
            let (site_profile, table, _) = advice_from_disk_checked(path, site_map_hash());
            (site_profile, table)
        })
        .collect();
    // Wave 2: every remaining (benchmark, collector) pair.
    let wave2: Vec<Vec<HeapConfig>> = advice.iter().map(|(_, table)| configs_for(table)).collect();
    let counts: Vec<usize> = wave2.iter().map(Vec::len).collect();
    let pairs: Vec<(usize, &HeapConfig)> = wave2
        .iter()
        .enumerate()
        .flat_map(|(index, configs)| configs.iter().map(move |c| (index, c)))
        .collect();
    let mut ran: Vec<ExperimentResult> = run_jobs(&pairs, jobs, |(index, heap_config)| {
        run_benchmark(&profiles[*index], (*heap_config).clone(), config)
    });
    profiles
        .into_iter()
        .zip(profiled)
        .zip(advice)
        .zip(counts)
        .map(
            |(((profile, (kg_n, path)), (site_profile, table)), count)| ProfiledWave {
                profile,
                kg_n,
                path,
                site_profile,
                table,
                results: ran.drain(..count).collect(),
            },
        )
        .collect()
}

/// [`profile_then_advise`] with the (benchmark, collector) pairs fanned out
/// over up to `jobs` worker threads (see `run_profiled_waves`).
pub fn profile_then_advise_jobs(
    config: &ExperimentConfig,
    benchmarks: &[&str],
    dir: &Path,
    jobs: usize,
) -> AdviseResults {
    let waves = run_profiled_waves(config, benchmarks, dir, jobs, |table| {
        vec![
            HeapConfig::gen_immix_pcm(),
            HeapConfig::kg_w(),
            HeapConfig::kg_a(table.clone()),
        ]
    });
    let rows = waves
        .into_iter()
        .map(|wave| {
            let [pcm_only, kg_w, kg_a]: [ExperimentResult; 3] =
                wave.results.try_into().expect("three wave-2 runs per benchmark");
            AdviseRow {
                benchmark: wave.profile.name.to_string(),
                profile_path: wave.path,
                sites: wave.site_profile.sites.len(),
                hot_sites: wave.table.hot_sites(),
                results: vec![pcm_only, wave.kg_n, kg_w, kg_a],
            }
        })
        .collect();
    AdviseResults { rows }
}

/// The default benchmark set of the advise experiment: the paper's
/// simulation subset (Figures 5–10).
pub fn default_benchmarks() -> Vec<&'static str> {
    simulated_benchmarks().iter().map(|p| p.name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("kingsguard-advise-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn pipeline_round_trips_through_disk_and_runs_kg_a() {
        let dir = temp_dir("pipeline");
        let config = ExperimentConfig::quick();
        let profile = benchmark("lusearch").unwrap();
        let row = profile_then_advise_one(&profile, &config, &dir);
        assert!(row.profile_path.exists(), "profile file must be written");
        assert!(row.sites > 5, "profiling run must observe the site map");
        assert!(row.hot_sites > 0, "lusearch has write-hot sites");
        assert_eq!(row.results.len(), 4);
        let kg_a = row.result("KG-A");
        assert!(
            kg_a.gc.advised_to_dram_objects > 0,
            "KG-A must pretenure hot-site objects into DRAM"
        );
        assert!(
            kg_a.gc.advised_to_pcm_objects > 0,
            "KG-A must pretenure cold-site objects into PCM"
        );
        assert_eq!(kg_a.gc.observer.collections, 0, "KG-A pays no observer-space tax");
        // The headline: advice keeps PCM writes at or below KG-N.
        assert!(
            row.kg_a_beats_kg_n(),
            "KG-A write rate {} must not exceed KG-N {}",
            row.write_rate_gbps("KG-A"),
            row.write_rate_gbps("KG-N")
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn threaded_pipeline_matches_the_sequential_pipeline() {
        let dir = temp_dir("jobs");
        let config = ExperimentConfig::quick();
        let sequential = profile_then_advise(&config, &["lu.fix", "pmd"], &dir);
        let threaded = profile_then_advise_jobs(&config, &["lu.fix", "pmd"], &dir, 2);
        assert_eq!(sequential.rows.len(), threaded.rows.len());
        for (a, b) in sequential.rows.iter().zip(&threaded.rows) {
            assert_eq!(a.benchmark, b.benchmark);
            assert_eq!(a.sites, b.sites);
            assert_eq!(a.hot_sites, b.hot_sites);
            for (ra, rb) in a.results.iter().zip(&b.results) {
                assert_eq!(ra.collector, rb.collector);
                assert_eq!(
                    ra.pcm_writes(),
                    rb.pcm_writes(),
                    "{}: {}",
                    a.benchmark,
                    ra.collector
                );
                assert_eq!(ra.dram_writes(), rb.dram_writes());
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn persisted_profiles_carry_the_site_map_hash_and_survive_drift() {
        use advice::SiteMapDrift;
        let dir = temp_dir("drift");
        let config = ExperimentConfig::quick();
        let profile = benchmark("pmd").unwrap();
        let (_, path) = profile_workload(&profile, &config, &dir);
        let current = workloads::site_map_hash();
        let (site_profile, _, drift) = advice_from_disk_checked(&path, current);
        assert_eq!(site_profile.site_map_hash, Some(current));
        assert_eq!(drift, SiteMapDrift::Match);
        // A run whose site map hashes differently sees the drift but still
        // gets a usable per-site table.
        let (_, table, drift) = advice_from_disk_checked(&path, current ^ 1);
        assert!(drift.is_drifted());
        assert!(!table.is_empty(), "drifted advice still applies per-site");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn advise_report_renders_all_rows() {
        let dir = temp_dir("report");
        let config = ExperimentConfig::quick();
        let results = profile_then_advise(&config, &["lu.fix", "pmd"], &dir);
        assert_eq!(results.rows.len(), 2);
        let report = results.report();
        assert!(report.contains("lu.fix"));
        assert!(report.contains("pmd"));
        assert!(report.contains("KG-A"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
