//! The two-phase profile→advise pipeline.
//!
//! Phase 1 (**profile**) runs each benchmark once under KG-N with per-site
//! profiling enabled and persists the resulting [`SiteProfile`] to a
//! versioned on-disk file. Phase 2 (**advise**) reloads the profile from
//! disk — exercising the same path a separate production process would use —
//! derives an [`AdviceTable`] from it, and runs the benchmark under the
//! profile-guided KG-A collector. The comparison table reports PCM write
//! rate, PCM lifetime and energy-delay product for GenImmix (PCM-only),
//! KG-N, KG-W and KG-A side by side: KG-A should approach KG-W's write
//! rationing without paying KG-W's observer-space tax.

use std::path::{Path, PathBuf};

use advice::{load_profile, save_profile, AdviceTable, ClassifyParams, SiteProfile};
use hybrid_mem::lifetime::Endurance;
use kingsguard::HeapConfig;
use workloads::{benchmark, simulated_benchmarks, BenchmarkProfile};

use crate::report::{ratio, TextTable};
use crate::runner::{run_benchmark, run_benchmark_profiled, ExperimentConfig, ExperimentResult};

/// The collector labels of the comparison, in column order.
pub const ADVISE_CONFIGS: [&str; 4] = ["PCM-only", "KG-N", "KG-W", "KG-A"];

/// Endurance level used for the lifetime column (the paper's headline
/// 30 M writes-per-cell point).
pub const LIFETIME_ENDURANCE: Endurance = Endurance::Mid30M;

/// One benchmark's end-to-end comparison.
#[derive(Clone, Debug)]
pub struct AdviseRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Path of the persisted profile file.
    pub profile_path: PathBuf,
    /// Sites observed by the profiling run.
    pub sites: usize,
    /// Sites advised into DRAM.
    pub hot_sites: usize,
    /// Results in [`ADVISE_CONFIGS`] order.
    pub results: Vec<ExperimentResult>,
}

impl AdviseRow {
    fn result(&self, collector: &str) -> &ExperimentResult {
        self.results
            .iter()
            .find(|r| r.collector == collector)
            .unwrap_or_else(|| panic!("missing {collector} result for {}", self.benchmark))
    }

    /// Estimated 32-core PCM write rate of `collector` in GB/s.
    pub fn write_rate_gbps(&self, collector: &str) -> f64 {
        self.result(collector).pcm_write_rate_32core() / 1e9
    }

    /// PCM lifetime of `collector` in years at [`LIFETIME_ENDURANCE`].
    pub fn lifetime_years(&self, collector: &str) -> f64 {
        self.result(collector)
            .pcm_lifetime_years(LIFETIME_ENDURANCE.writes_per_cell())
    }

    /// Energy-delay product of `collector` relative to KG-N.
    pub fn edp_vs_kg_n(&self, collector: &str) -> f64 {
        let base = self.result("KG-N").edp;
        if base == 0.0 {
            return 0.0;
        }
        self.result(collector).edp / base
    }

    /// Returns `true` if KG-A's PCM write rate is no worse than KG-N's.
    pub fn kg_a_beats_kg_n(&self) -> bool {
        self.result("KG-A").pcm_write_rate_32core() <= self.result("KG-N").pcm_write_rate_32core()
    }
}

/// Results of the full profile→advise pipeline.
#[derive(Clone, Debug)]
pub struct AdviseResults {
    /// Per-benchmark rows.
    pub rows: Vec<AdviseRow>,
}

impl AdviseResults {
    /// Number of benchmarks where KG-A's PCM write rate is ≤ KG-N's.
    pub fn kg_a_wins(&self) -> usize {
        self.rows.iter().filter(|r| r.kg_a_beats_kg_n()).count()
    }

    /// Renders the comparison table.
    pub fn report(&self) -> String {
        let mut table = TextTable::new(
            "Profile-guided placement: profile (KG-N) -> advise (KG-A), vs the paper's collectors\n\
             (PCM write rate in GB/s at 32 cores; lifetime in years at 30M writes/cell; EDP relative to KG-N)",
            &[
                "Benchmark",
                "Sites",
                "Hot",
                "Rate PCM-only",
                "Rate KG-N",
                "Rate KG-W",
                "Rate KG-A",
                "Life KG-N",
                "Life KG-W",
                "Life KG-A",
                "EDP KG-W",
                "EDP KG-A",
            ],
        );
        for row in &self.rows {
            table.row(vec![
                row.benchmark.clone(),
                row.sites.to_string(),
                row.hot_sites.to_string(),
                format!("{:.2}", row.write_rate_gbps("PCM-only")),
                format!("{:.2}", row.write_rate_gbps("KG-N")),
                format!("{:.2}", row.write_rate_gbps("KG-W")),
                format!("{:.2}", row.write_rate_gbps("KG-A")),
                format!("{:.1}", row.lifetime_years("KG-N")),
                format!("{:.1}", row.lifetime_years("KG-W")),
                format!("{:.1}", row.lifetime_years("KG-A")),
                ratio(row.edp_vs_kg_n("KG-W")),
                ratio(row.edp_vs_kg_n("KG-A")),
            ]);
        }
        let mut out = table.render();
        out.push_str(&format!(
            "KG-A PCM write rate <= KG-N on {}/{} benchmarks\n",
            self.kg_a_wins(),
            self.rows.len()
        ));
        out
    }
}

/// Phase 1: runs `profile` under KG-N with site profiling and persists the
/// profile to `<dir>/<benchmark>.kgprof`. Returns the profiling-run result
/// (reusable as the KG-N row — profiling adds no simulated traffic) and the
/// path written.
pub fn profile_workload(
    profile: &BenchmarkProfile,
    config: &ExperimentConfig,
    dir: &Path,
) -> (ExperimentResult, PathBuf) {
    let result = run_benchmark_profiled(profile, HeapConfig::kg_n(), config);
    let site_profile = result
        .site_profile
        .as_ref()
        .expect("profiled run returns a site profile");
    let path = dir.join(format!("{}.kgprof", profile.name));
    save_profile(site_profile, &path)
        .unwrap_or_else(|err| panic!("cannot persist site profile to {}: {err}", path.display()));
    (result, path)
}

/// Phase 2: reloads the persisted profile and derives the KG-A advice table
/// from it with profile-adaptive classification thresholds.
pub fn advice_from_disk(path: &Path) -> (SiteProfile, AdviceTable) {
    let site_profile = load_profile(path)
        .unwrap_or_else(|err| panic!("cannot reload site profile {}: {err}", path.display()));
    let params = ClassifyParams::for_profile(&site_profile);
    let table = AdviceTable::from_profile(&site_profile, &params);
    (site_profile, table)
}

/// Runs the full pipeline for one benchmark: profile, persist, reload,
/// advise, and compare against the PCM-only and KG-W baselines.
pub fn profile_then_advise_one(
    profile: &BenchmarkProfile,
    config: &ExperimentConfig,
    dir: &Path,
) -> AdviseRow {
    let (kg_n, path) = profile_workload(profile, config, dir);
    let (site_profile, table) = advice_from_disk(&path);
    let kg_a = run_benchmark(profile, HeapConfig::kg_a(table.clone()), config);
    let pcm_only = run_benchmark(profile, HeapConfig::gen_immix_pcm(), config);
    let kg_w = run_benchmark(profile, HeapConfig::kg_w(), config);
    AdviseRow {
        benchmark: profile.name.to_string(),
        profile_path: path,
        sites: site_profile.sites.len(),
        hot_sites: table.hot_sites(),
        results: vec![pcm_only, kg_n, kg_w, kg_a],
    }
}

/// Runs the pipeline over `benchmarks` (names resolved against the paper's
/// profiles), writing profile files into `dir`.
pub fn profile_then_advise(config: &ExperimentConfig, benchmarks: &[&str], dir: &Path) -> AdviseResults {
    let rows = benchmarks
        .iter()
        .map(|name| {
            let profile = benchmark(name).unwrap_or_else(|| panic!("unknown benchmark {name}"));
            profile_then_advise_one(&profile, config, dir)
        })
        .collect();
    AdviseResults { rows }
}

/// The default benchmark set of the advise experiment: the paper's
/// simulation subset (Figures 5–10).
pub fn default_benchmarks() -> Vec<&'static str> {
    simulated_benchmarks().iter().map(|p| p.name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("kingsguard-advise-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn pipeline_round_trips_through_disk_and_runs_kg_a() {
        let dir = temp_dir("pipeline");
        let config = ExperimentConfig::quick();
        let profile = benchmark("lusearch").unwrap();
        let row = profile_then_advise_one(&profile, &config, &dir);
        assert!(row.profile_path.exists(), "profile file must be written");
        assert!(row.sites > 5, "profiling run must observe the site map");
        assert!(row.hot_sites > 0, "lusearch has write-hot sites");
        assert_eq!(row.results.len(), 4);
        let kg_a = row.result("KG-A");
        assert!(
            kg_a.gc.advised_to_dram_objects > 0,
            "KG-A must pretenure hot-site objects into DRAM"
        );
        assert!(
            kg_a.gc.advised_to_pcm_objects > 0,
            "KG-A must pretenure cold-site objects into PCM"
        );
        assert_eq!(kg_a.gc.observer.collections, 0, "KG-A pays no observer-space tax");
        // The headline: advice keeps PCM writes at or below KG-N.
        assert!(
            row.kg_a_beats_kg_n(),
            "KG-A write rate {} must not exceed KG-N {}",
            row.write_rate_gbps("KG-A"),
            row.write_rate_gbps("KG-N")
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn advise_report_renders_all_rows() {
        let dir = temp_dir("report");
        let config = ExperimentConfig::quick();
        let results = profile_then_advise(&config, &["lu.fix", "pmd"], &dir);
        assert_eq!(results.rows.len(), 2);
        let report = results.report();
        assert!(report.contains("lu.fix"));
        assert!(report.contains("pmd"));
        assert!(report.contains("KG-A"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
