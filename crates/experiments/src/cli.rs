//! Shared command-line parsing for the `repro` binary.
//!
//! One small hand-rolled parser (the workspace is dependency-free) replaces
//! the ad-hoc flag loop `repro` grew over time: every experiment is listed
//! in [`EXPERIMENTS`] with a one-line description (rendered by
//! [`help_text`]), flags are recognised in any position relative to the
//! experiment name, unknown flags and stray positionals are **rejected**
//! with a descriptive error instead of being silently ignored, and every
//! flag that takes a value validates it.

use std::fmt;
use std::path::PathBuf;

/// Every experiment `repro` knows, with the one-liner shown by `--help`.
pub const EXPERIMENTS: &[(&str, &str)] = &[
    ("fig1", "PCM lifetime in years vs cell endurance"),
    ("fig2", "write demographics (nursery vs mature)"),
    ("fig5", "PCM lifetime relative to PCM-only"),
    ("fig6", "PCM writes relative to PCM-only"),
    ("fig7", "comparison with OS Write Partitioning"),
    ("fig8", "energy-delay product"),
    ("fig9", "KG-W overhead breakdown"),
    ("fig10", "origin of PCM writes (mutator/GC phases)"),
    ("fig11", "application PCM writes, architecture-independent"),
    ("fig12", "execution time relative to KG-N"),
    ("fig13", "heap composition over time"),
    ("table1", "collector configurations"),
    ("table2", "simulated system parameters"),
    ("table3", "write-rate scaling"),
    ("table4", "object demographics"),
    ("headline", "the paper's headline claims, side by side"),
    ("advise", "profile -> advise pipeline (KG-A vs baselines)"),
    ("adaptive", "online-adaptive KG-D vs baselines"),
    ("mutators", "multi-mutator exactness and attribution (K threads)"),
    (
        "faults",
        "PCM fault injection: endurance sweep, page retirement, survival",
    ),
    (
        "fleet",
        "multi-tenant heap fleet: wear-levelled placement + advice warm starts",
    ),
    ("trace", "heap-event traces: record | replay | diff | check"),
    ("metrics", ".kgmetrics telemetry files: show | diff | export"),
    (
        "profile",
        "hot-path profiler: per-stage simulator cost under every collector (replayed)",
    ),
    (
        "bench",
        "BENCH_*.json perf baselines: diff <a> <b> flags >15% throughput regressions",
    ),
    (
        "check",
        "shadow-heap sanitizer sweep (add `broken` to run the negative fixtures)",
    ),
    ("all", "every figure and table above"),
];

/// Modes of the `trace` experiment.
pub const TRACE_MODES: &[(&str, &str)] = &[
    ("record", "record one .kgtrace per benchmark into --trace-dir"),
    (
        "replay",
        "replay recorded traces under every collector (--verify compares vs live)",
    ),
    (
        "diff",
        "replay two trace files under one collector and compare writes + wear",
    ),
    (
        "check",
        "statically verify a .kgtrace: grammar, handle lifetimes, data races",
    ),
];

/// Modes of the `metrics` experiment.
pub const METRICS_MODES: &[(&str, &str)] = &[
    (
        "show",
        "render one .kgmetrics telemetry file as a human summary (--top N ranks)",
    ),
    (
        "diff",
        "compare two .kgmetrics files; exits non-zero on deterministic drift",
    ),
    (
        "export",
        "export a .kgmetrics file as a Chrome trace (--chrome) or collapsed stacks (--folded)",
    ),
];

/// A parse failure, with the message `repro` prints.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

/// Parsed command line.
#[derive(Clone, Debug, PartialEq)]
pub struct ParsedArgs {
    /// The experiment name (first positional), if any.
    pub experiment: Option<String>,
    /// Remaining positionals (the `trace` subcommand's mode and file paths).
    pub positional: Vec<String>,
    /// `--scale N`.
    pub scale: Option<u64>,
    /// `--quick`.
    pub quick: bool,
    /// `--jobs N` (defaults to 1).
    pub jobs: usize,
    /// `--mutators K`, and whether the flag appeared at all.
    pub mutators: Option<usize>,
    /// `--tenants N` (fleet experiment; defaults to 256 when absent).
    pub tenants: Option<usize>,
    /// `--profile-dir DIR`.
    pub profile_dir: PathBuf,
    /// `--trace-dir DIR`.
    pub trace_dir: PathBuf,
    /// Whether `--trace-dir` was given explicitly.
    pub trace_dir_set: bool,
    /// `--telemetry-dir DIR`.
    pub telemetry_dir: PathBuf,
    /// Whether `--telemetry-dir` was given explicitly.
    pub telemetry_dir_set: bool,
    /// `--verify` (trace replay: compare against live runs).
    pub verify: bool,
    /// `--collector NAME` (trace replay/diff).
    pub collector: Option<String>,
    /// `--sample-every N` (profile experiment: time every Nth touch).
    pub sample_every: Option<u64>,
    /// `--tolerance PCT` (bench diff: allowed throughput drop in percent).
    pub tolerance: Option<f64>,
    /// `--top N` (metrics show: rows per section).
    pub top: Option<usize>,
    /// `--chrome` (metrics export: Chrome trace_event JSON).
    pub chrome: bool,
    /// `--folded` (metrics export: collapsed-stack lines).
    pub folded: bool,
    /// `--out PATH` (metrics export: write here instead of stdout).
    pub out: Option<PathBuf>,
    /// `--help` / `-h`.
    pub help: bool,
}

impl Default for ParsedArgs {
    fn default() -> Self {
        ParsedArgs {
            experiment: None,
            positional: Vec::new(),
            scale: None,
            quick: false,
            jobs: 1,
            mutators: None,
            tenants: None,
            profile_dir: PathBuf::from("target/site-profiles"),
            trace_dir: PathBuf::from("target/traces"),
            trace_dir_set: false,
            telemetry_dir: PathBuf::from("target/telemetry"),
            telemetry_dir_set: false,
            verify: false,
            collector: None,
            sample_every: None,
            tolerance: None,
            top: None,
            chrome: false,
            folded: false,
            out: None,
            help: false,
        }
    }
}

/// Returns `true` if `name` is a known experiment.
pub fn is_experiment(name: &str) -> bool {
    EXPERIMENTS.iter().any(|(known, _)| *known == name)
}

fn value_of<'a>(flag: &str, iter: &mut impl Iterator<Item = &'a String>) -> Result<&'a String, CliError> {
    iter.next()
        .ok_or_else(|| CliError(format!("{flag} requires a value")))
}

fn parsed_value_of<'a, T: std::str::FromStr>(
    flag: &str,
    iter: &mut impl Iterator<Item = &'a String>,
    valid: impl Fn(&T) -> bool,
) -> Result<T, CliError> {
    let raw = value_of(flag, iter)?;
    raw.parse::<T>()
        .ok()
        .filter(|v| valid(v))
        .ok_or_else(|| CliError(format!("invalid {flag} value: {raw}")))
}

/// Parses `args` (without the program name). Unknown flags are an error;
/// positionals are collected in order, the first becoming the experiment
/// when it names one.
pub fn parse_args(args: &[String]) -> Result<ParsedArgs, CliError> {
    let mut parsed = ParsedArgs::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--help" | "-h" => parsed.help = true,
            "--quick" => parsed.quick = true,
            "--verify" => parsed.verify = true,
            "--scale" => {
                parsed.scale = Some(parsed_value_of("--scale", &mut iter, |&scale: &u64| scale > 0)?)
            }
            "--jobs" => parsed.jobs = parsed_value_of("--jobs", &mut iter, |&jobs: &usize| jobs > 0)?,
            "--mutators" => {
                parsed.mutators = Some(parsed_value_of("--mutators", &mut iter, |&k: &usize| k > 0)?)
            }
            "--tenants" => {
                parsed.tenants = Some(parsed_value_of("--tenants", &mut iter, |&n: &usize| n > 0)?)
            }
            "--profile-dir" => parsed.profile_dir = PathBuf::from(value_of("--profile-dir", &mut iter)?),
            "--trace-dir" => {
                parsed.trace_dir = PathBuf::from(value_of("--trace-dir", &mut iter)?);
                parsed.trace_dir_set = true;
            }
            "--telemetry-dir" => {
                parsed.telemetry_dir = PathBuf::from(value_of("--telemetry-dir", &mut iter)?);
                parsed.telemetry_dir_set = true;
            }
            "--collector" => parsed.collector = Some(value_of("--collector", &mut iter)?.clone()),
            "--sample-every" => {
                parsed.sample_every = Some(parsed_value_of("--sample-every", &mut iter, |&n: &u64| n > 0)?)
            }
            "--tolerance" => {
                parsed.tolerance = Some(parsed_value_of("--tolerance", &mut iter, |&t: &f64| {
                    t.is_finite() && t >= 0.0
                })?)
            }
            "--top" => parsed.top = Some(parsed_value_of("--top", &mut iter, |&n: &usize| n > 0)?),
            "--chrome" => parsed.chrome = true,
            "--folded" => parsed.folded = true,
            "--out" => parsed.out = Some(PathBuf::from(value_of("--out", &mut iter)?)),
            // Legacy experiment aliases, kept working.
            "--profile-then-advise" if parsed.experiment.is_none() => {
                parsed.experiment = Some("advise".to_string())
            }
            "--adaptive" if parsed.experiment.is_none() => parsed.experiment = Some("adaptive".to_string()),
            flag if flag.starts_with('-') => {
                return Err(CliError(format!("unknown flag: {flag}")));
            }
            name if parsed.experiment.is_none() => {
                if !is_experiment(name) {
                    return Err(CliError(format!("unknown experiment: {name}")));
                }
                parsed.experiment = Some(name.to_string());
            }
            positional => parsed.positional.push(positional.to_string()),
        }
    }
    Ok(parsed)
}

/// The full `--help` text: usage, flags, and one line per experiment.
pub fn help_text() -> String {
    let mut out = String::from(
        "usage: repro <experiment> [flags]\n\
         \n\
         flags:\n\
         \x20 --scale N         divide the paper's allocation volumes and heap sizes by N (default 256)\n\
         \x20 --quick           small smoke-test configuration (scale 2048)\n\
         \x20 --jobs N          fan per-benchmark runs over N worker threads (same results, same order)\n\
         \x20 --mutators K      drive workloads through K interleaved MutatorContexts (default 4)\n\
         \x20 --tenants N       fleet experiment: tenant sessions per fleet (default 256)\n\
         \x20 --profile-dir DIR .kgprof site profiles for advise/adaptive (default target/site-profiles)\n\
         \x20 --trace-dir DIR   .kgtrace heap-event traces; with a figure/table experiment, makes the\n\
         \x20                   runs trace-backed: record on first use, replay after (default target/traces)\n\
         \x20 --telemetry-dir DIR write one .kgmetrics telemetry file per run (JSON lines; read them\n\
         \x20                   back with `repro metrics show|diff`)\n\
         \x20 --verify          trace replay: also run live and check bit-identity + speedup\n\
         \x20 --collector NAME  trace replay/diff: restrict to one collector (e.g. KG-N)\n\
         \x20 --sample-every N  profile: time every Nth touch (default 64; counts are always exact)\n\
         \x20 --tolerance PCT   bench diff: allowed throughput drop in percent (default 15)\n\
         \x20 --top N           metrics show: rows per section, ranked by self-time/value\n\
         \x20 --chrome          metrics export: Chrome trace_event JSON (chrome://tracing, Perfetto)\n\
         \x20 --folded          metrics export: collapsed stacks (flamegraph.pl / speedscope)\n\
         \x20 --out PATH        metrics export: write to PATH instead of stdout\n\
         \x20 --help, -h        this text\n\
         \n\
         experiments:\n",
    );
    for (name, description) in EXPERIMENTS {
        out.push_str(&format!("  {name:<10} {description}\n"));
    }
    out.push_str("\ntrace modes (repro trace <mode>):\n");
    for (name, description) in TRACE_MODES {
        out.push_str(&format!("  {name:<10} {description}\n"));
    }
    out.push_str("\nmetrics modes (repro metrics <mode>):\n");
    for (name, description) in METRICS_MODES {
        out.push_str(&format!("  {name:<10} {description}\n"));
    }
    out.push_str(
        "\nexamples:\n\
         \x20 repro fig6 --jobs 4\n\
         \x20 repro advise --quick\n\
         \x20 repro fig6 --trace-dir target/traces   # trace-backed figure\n\
         \x20 repro trace record --quick\n\
         \x20 repro trace replay --quick --verify --jobs 4\n\
         \x20 repro trace diff A.kgtrace B.kgtrace --collector KG-N\n\
         \x20 repro faults --quick --jobs 4\n\
         \x20 repro fleet --quick --tenants 128 --jobs 4\n\
         \x20 repro fig11 --quick --telemetry-dir target/telemetry\n\
         \x20 repro metrics show target/telemetry/lusearch-KG-W.kgmetrics --top 10\n\
         \x20 repro metrics diff A.kgmetrics B.kgmetrics\n\
         \x20 repro metrics export run.kgmetrics --chrome --out run.trace.json\n\
         \x20 repro profile --quick --sample-every 16\n\
         \x20 repro bench diff BENCH_profile.json BENCH_profile.new.json --tolerance 15\n\
         \x20 repro check --quick --jobs 4\n\
         \x20 repro check broken --quick          # negative fixtures: exit 0 iff all detected\n\
         \x20 repro trace check run.kgtrace\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<ParsedArgs, CliError> {
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        parse_args(&owned)
    }

    #[test]
    fn parses_experiment_and_flags_in_any_order() {
        let parsed = parse(&["--jobs", "3", "fig6", "--scale", "512"]).unwrap();
        assert_eq!(parsed.experiment.as_deref(), Some("fig6"));
        assert_eq!(parsed.jobs, 3);
        assert_eq!(parsed.scale, Some(512));
        let parsed = parse(&["fig6", "--jobs", "3"]).unwrap();
        assert_eq!(parsed.jobs, 3);
    }

    #[test]
    fn rejects_unknown_flags_and_experiments() {
        assert!(parse(&["fig6", "--frobnicate"])
            .unwrap_err()
            .to_string()
            .contains("--frobnicate"));
        assert!(parse(&["fig99"]).unwrap_err().to_string().contains("fig99"));
    }

    #[test]
    fn rejects_missing_and_malformed_values() {
        assert!(parse(&["fig6", "--jobs"]).is_err());
        assert!(parse(&["fig6", "--jobs", "0"]).is_err());
        assert!(parse(&["fig6", "--scale", "banana"]).is_err());
        assert!(parse(&["fig6", "--mutators", "-1"]).is_err());
        assert!(parse(&["fleet", "--tenants", "0"]).is_err());
        assert!(parse(&["fleet", "--tenants"]).is_err());
    }

    #[test]
    fn tenants_flag_parses() {
        let parsed = parse(&["fleet", "--tenants", "128", "--jobs", "2"]).unwrap();
        assert_eq!(parsed.experiment.as_deref(), Some("fleet"));
        assert_eq!(parsed.tenants, Some(128));
        assert_eq!(parse(&["fleet"]).unwrap().tenants, None);
    }

    #[test]
    fn trace_subcommand_collects_positionals() {
        let parsed = parse(&["trace", "diff", "a.kgtrace", "b.kgtrace", "--collector", "KG-W"]).unwrap();
        assert_eq!(parsed.experiment.as_deref(), Some("trace"));
        assert_eq!(parsed.positional, vec!["diff", "a.kgtrace", "b.kgtrace"]);
        assert_eq!(parsed.collector.as_deref(), Some("KG-W"));
    }

    #[test]
    fn metrics_subcommand_collects_positionals() {
        let parsed = parse(&["metrics", "diff", "a.kgmetrics", "b.kgmetrics"]).unwrap();
        assert_eq!(parsed.experiment.as_deref(), Some("metrics"));
        assert_eq!(parsed.positional, vec!["diff", "a.kgmetrics", "b.kgmetrics"]);
    }

    #[test]
    fn profiler_and_bench_flags_parse() {
        let parsed = parse(&["profile", "--quick", "--sample-every", "16"]).unwrap();
        assert_eq!(parsed.experiment.as_deref(), Some("profile"));
        assert_eq!(parsed.sample_every, Some(16));
        assert!(parse(&["profile", "--sample-every", "0"]).is_err());
        let parsed = parse(&["bench", "diff", "a.json", "b.json", "--tolerance", "12.5"]).unwrap();
        assert_eq!(parsed.experiment.as_deref(), Some("bench"));
        assert_eq!(parsed.positional, vec!["diff", "a.json", "b.json"]);
        assert_eq!(parsed.tolerance, Some(12.5));
        assert!(parse(&["bench", "diff", "a", "b", "--tolerance", "nan"]).is_err());
        assert!(parse(&["bench", "diff", "a", "b", "--tolerance", "-3"]).is_err());
    }

    #[test]
    fn metrics_export_flags_parse() {
        let parsed = parse(&[
            "metrics",
            "export",
            "run.kgmetrics",
            "--chrome",
            "--out",
            "t.json",
        ])
        .unwrap();
        assert_eq!(parsed.positional, vec!["export", "run.kgmetrics"]);
        assert!(parsed.chrome && !parsed.folded);
        assert_eq!(parsed.out, Some(PathBuf::from("t.json")));
        let parsed = parse(&["metrics", "show", "run.kgmetrics", "--top", "5"]).unwrap();
        assert_eq!(parsed.top, Some(5));
        assert!(parse(&["metrics", "show", "x", "--top", "0"]).is_err());
    }

    #[test]
    fn telemetry_dir_flag_parses() {
        let parsed = parse(&["fig11", "--telemetry-dir", "out/tm"]).unwrap();
        assert!(parsed.telemetry_dir_set);
        assert_eq!(parsed.telemetry_dir, PathBuf::from("out/tm"));
        assert!(parse(&["fig11", "--telemetry-dir"]).is_err());
    }

    #[test]
    fn legacy_aliases_keep_working() {
        assert_eq!(
            parse(&["--profile-then-advise"]).unwrap().experiment.as_deref(),
            Some("advise")
        );
        assert_eq!(
            parse(&["--adaptive", "--quick"]).unwrap().experiment.as_deref(),
            Some("adaptive")
        );
    }

    #[test]
    fn help_lists_every_experiment() {
        let help = help_text();
        for (name, _) in EXPERIMENTS {
            assert!(help.contains(name), "help is missing {name}");
        }
        assert!(parse(&["--help"]).unwrap().help);
        assert!(parse(&["-h"]).unwrap().help);
    }

    #[test]
    fn defaults_are_stable() {
        let parsed = parse(&["fig1"]).unwrap();
        assert_eq!(parsed.jobs, 1);
        assert!(!parsed.quick && !parsed.verify && !parsed.trace_dir_set && !parsed.telemetry_dir_set);
        assert_eq!(parsed.profile_dir, PathBuf::from("target/site-profiles"));
        assert_eq!(parsed.trace_dir, PathBuf::from("target/traces"));
        assert_eq!(parsed.telemetry_dir, PathBuf::from("target/telemetry"));
    }
}
