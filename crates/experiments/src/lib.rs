//! Evaluation harness: regenerates every table and figure of the paper.
//!
//! Each experiment module produces plain data rows plus a formatted text
//! report so that results can be consumed programmatically (tests, Criterion
//! benches) or read directly from the `repro` binary's output. The mapping
//! from paper figure/table to module is listed in `DESIGN.md`.
//!
//! | Experiment | Function |
//! |---|---|
//! | Figure 1 (PCM lifetime in years vs endurance) | [`lifetime::figure1`] |
//! | Figure 2 (write demographics) | [`writes::figure2`] |
//! | Figure 5 (lifetime relative to PCM-only) | [`lifetime::figure5`] |
//! | Figure 6 (PCM writes relative to PCM-only) | [`writes::figure6`] |
//! | Figure 7 (comparison with OS Write Partitioning) | [`writes::figure7`] |
//! | Figure 8 (energy-delay product) | [`energy_time::figure8`] |
//! | Figure 9 (KG-W overhead breakdown) | [`energy_time::figure9`] |
//! | Figure 10 (origin of PCM writes) | [`writes::figure10`] |
//! | Figure 11 (application PCM writes, architecture-independent) | [`writes::figure11`] |
//! | Figure 12 (execution time relative to KG-N) | [`energy_time::figure12`] |
//! | Figure 13 (heap composition over time) | [`composition::figure13`] |
//! | Table 1 (collector configurations) | [`tables::table1`] |
//! | Table 2 (simulated system parameters) | [`tables::table2`] |
//! | Table 3 (write-rate scaling) | [`tables::table3`] |
//! | Table 4 (object demographics) | [`tables::table4`] |
//!
//! Beyond the paper, [`advise`] implements the two-phase profile→advise
//! pipeline — a profiling run records per-site write profiles to disk and a
//! second run replays them through the profile-guided KG-A collector — and
//! [`adaptive`] compares the online-adaptive KG-D collector (no profiling
//! run, no observer space) against the paper's collectors. Both fan their
//! embarrassingly parallel (benchmark, collector) pairs over worker threads
//! via [`runner::run_jobs`] (`repro --jobs N`).
//!
//! The [`traces`] module exposes the heap-event trace subsystem
//! (`repro trace record|replay|diff`): record each benchmark's mutator
//! stream once as a `.kgtrace`, replay it bit-identically under every
//! collector, and diff two traces on aggregate PCM writes and wear
//! uniformity. Setting [`ExperimentConfig::trace_dir`] (`repro --trace-dir`)
//! makes every figure/table experiment trace-backed: record on first use,
//! replay afterwards. [`cli`] is the shared `repro` argument parser
//! (`repro --help` lists every experiment).
//!
//! [`faults`] sweeps deterministic PCM fault injection (`repro faults`):
//! accelerated line wear-out at every endurance level under every
//! collector, reporting failed lines, ECC-uncorrectable page retirements,
//! capacity degradation, years-to-first-uncorrectable and per-collector
//! survival. Experiment cells are crash-isolated ([`run_jobs_reporting`]):
//! one panicking (benchmark, collector) pair becomes a per-cell failure
//! report instead of aborting its siblings.
//!
//! [`fleet`] scales all of the above from one heap to a server's worth
//! (`repro fleet`): hundreds of tenant heap sessions over worker threads,
//! compared under naive round-robin vs wear-levelled device placement,
//! with the shared advice store warm-starting repeat KG-D tenants.
//!
//! [`check`] wires the `kingsguard-check` sanitizer into the harness
//! (`repro check`): the shadow-heap checker runs across every collector on
//! synthetic and streaming workloads, and the deliberately broken mutators
//! from [`workloads::broken`] prove each violation class is detected.
//! `repro trace check` statically verifies a recorded `.kgtrace` (grammar,
//! handle lifetimes, vector-clock race detection).

#![forbid(unsafe_code)]

pub mod adaptive;
pub mod advise;
pub mod benchdiff;
pub mod check;
pub mod cli;
pub mod composition;
pub mod energy_time;
pub mod faults;
pub mod fleet;
pub mod lifetime;
pub mod mutators;
pub mod profile;
pub mod report;
pub mod runner;
pub mod tables;
pub mod traces;
pub mod writes;

pub use self::benchdiff::{diff_bench_files, BenchDiff, DEFAULT_TOLERANCE_PCT};
pub use self::check::{broken_sweep, check_sweep, run_benchmark_checked, BrokenResults, CheckResults};
pub use self::fleet::{fleet_comparison, FleetResults};
pub use self::profile::{hot_path_profile, hot_path_profile_default, ProfileResults};
pub use adaptive::{adaptive_comparison, AdaptiveResults};
pub use advise::{profile_then_advise, profile_then_advise_jobs, AdviseResults};
pub use faults::{fault_sweep, FaultResults};
pub use mutators::{mutator_scaling, MutatorResults};
pub use runner::{
    run_jobs, run_jobs_reporting, ExperimentConfig, ExperimentResult, JobFailure, MeasurementMode,
};
pub use traces::{diff_traces, record_traces, replay_traces};
