//! `repro check`: the runtime-sanitizer sweep.
//!
//! Installs the `kingsguard-check` shadow-heap sanitizer on every collector
//! and drives it through a synthetic DaCapo mutator and the streaming
//! graph-analytics workload, proving the collector invariants hold on the
//! exact code paths the paper's figures exercise. The companion
//! [`broken_sweep`] runs the deliberately broken mutators from
//! [`workloads::broken`] and asserts each one trips exactly its intended
//! violation class — the sanitizer's own negative test, wired into CI with
//! an inverted exit code.

use check::{CheckReport, SanitizerHandle};
use hybrid_mem::MemoryKind;
use kingsguard::{HeapConfig, KingsguardHeap};
use workloads::{
    benchmark, BenchmarkProfile, BrokenFixture, StreamingConfig, StreamingWorkload, ALL_FIXTURES,
};

use crate::report::TextTable;
use crate::runner::{
    drive_workload, finalize, heap_config_for, run_jobs, ExperimentConfig, ExperimentResult,
};
use crate::traces::{config_for, REPLAY_COLLECTORS};

/// The synthetic benchmark the sweep drives on every collector: lusearch is
/// the paper's highest-allocation-rate workload and exercises the
/// large-object path.
pub const SWEEP_BENCHMARK: &str = "lusearch";

/// Runs `profile` under `heap_config` with the shadow-heap sanitizer
/// installed, returning both the usual experiment result and the
/// sanitizer's report. The sanitizer only observes (event tap + passive
/// inspection), so the result is bit-identical to
/// [`run_benchmark`](crate::runner::run_benchmark)
/// on the same inputs.
pub fn run_benchmark_checked(
    profile: &BenchmarkProfile,
    heap_config: HeapConfig,
    config: &ExperimentConfig,
) -> (ExperimentResult, CheckReport) {
    let label = heap_config.label();
    let heap_config = heap_config_for(profile, heap_config, config);
    let (dram_fraction, pcm_fraction) = if heap_config.is_hybrid() {
        (1.0 / 32.0, 1.0)
    } else if heap_config.nursery_kind() == MemoryKind::Dram {
        (1.0, 0.0)
    } else {
        (0.0, 1.0)
    };
    let mut heap = KingsguardHeap::new(heap_config.clone(), config.memory_config());
    heap.enable_telemetry();
    let handle = SanitizerHandle::install(&mut heap);
    drive_workload(profile, &mut heap, &heap_config, config, |_, _| {});
    // `finalize` consumes the heap via `finish`, which runs the finish
    // checkpoint and drops the installed forwarder with the heap.
    let result = finalize(profile, label, heap, None, dram_fraction, pcm_fraction, config);
    (result, handle.report())
}

/// Runs the streaming graph-analytics workload under `heap_config` with the
/// sanitizer installed (K mutator contexts, chunked store buffers — the
/// multi-context checkpoint paths the synthetic driver doesn't reach).
pub fn run_streaming_checked(heap_config: HeapConfig, config: &ExperimentConfig) -> CheckReport {
    let mut heap = KingsguardHeap::new(
        heap_config.with_heap_budget(512 * 1024),
        hybrid_mem::MemoryConfig::architecture_independent(),
    );
    heap.enable_telemetry();
    let handle = SanitizerHandle::install(&mut heap);
    let workload = StreamingWorkload::new(StreamingConfig {
        seed: config.seed,
        scale: config.scale,
        ..Default::default()
    });
    workload.run(&mut heap);
    heap.finish();
    handle.report()
}

/// One (workload, collector) cell of the sanitizer sweep.
#[derive(Clone, Debug)]
pub struct CheckRow {
    /// Workload name (`lusearch` or `streaming`).
    pub workload: String,
    /// Collector label.
    pub collector: String,
    /// The sanitizer's report for the run.
    pub report: CheckReport,
}

/// Results of [`check_sweep`].
#[derive(Clone, Debug)]
pub struct CheckResults {
    /// One row per (workload, collector) pair, collectors in
    /// [`REPLAY_COLLECTORS`] order.
    pub rows: Vec<CheckRow>,
}

impl CheckResults {
    /// Total violations across the sweep.
    pub fn violations(&self) -> usize {
        self.rows.iter().map(|row| row.report.violations.len()).sum()
    }

    /// Renders the sweep as a text table, followed by one line per
    /// violation when any invariant was falsified.
    pub fn report(&self) -> String {
        let mut table = TextTable::new(
            "Sanitizer sweep: shadow-heap verification per collector",
            &[
                "benchmark",
                "collector",
                "checkpoints",
                "events",
                "objects verified",
                "violations",
            ],
        );
        for row in &self.rows {
            table.row(vec![
                row.workload.clone(),
                row.collector.clone(),
                row.report.checkpoints.to_string(),
                row.report.events.to_string(),
                row.report.objects_verified.to_string(),
                if row.report.is_clean() {
                    "none".to_string()
                } else {
                    format!(
                        "{} ({})",
                        row.report.violations.len(),
                        row.report.kinds().join(", ")
                    )
                },
            ]);
        }
        let mut out = table.render();
        for row in &self.rows {
            for violation in &row.report.violations {
                out.push_str(&format!("{}/{}: {violation}\n", row.workload, row.collector));
            }
        }
        out
    }
}

/// Runs the shadow-heap sanitizer across every collector label in
/// [`REPLAY_COLLECTORS`], each driving the [`SWEEP_BENCHMARK`] synthetic
/// mutator and the streaming workload, fanned over `config.jobs` threads.
pub fn check_sweep(config: &ExperimentConfig) -> CheckResults {
    let profile = benchmark(SWEEP_BENCHMARK).unwrap_or_else(|| panic!("unknown benchmark {SWEEP_BENCHMARK}"));
    let jobs: Vec<(&str, &str)> = REPLAY_COLLECTORS
        .iter()
        .flat_map(|&label| [(SWEEP_BENCHMARK, label), ("streaming", label)])
        .collect();
    let rows = run_jobs(&jobs, config.jobs, |&(workload, label)| {
        let report = if workload == "streaming" {
            run_streaming_checked(config_for(label), config)
        } else {
            run_benchmark_checked(&profile, config_for(label), config).1
        };
        CheckRow {
            workload: workload.to_string(),
            collector: label.to_string(),
            report,
        }
    });
    CheckResults { rows }
}

/// One broken fixture's outcome.
#[derive(Clone, Debug)]
pub struct BrokenRow {
    /// The fixture that ran.
    pub fixture: BrokenFixture,
    /// The distinct violation kinds the sanitizer reported.
    pub kinds: Vec<&'static str>,
    /// The sanitizer's full report.
    pub report: CheckReport,
}

impl BrokenRow {
    /// `true` when the sanitizer reported exactly the fixture's expected
    /// violation kinds — no misses, no collateral noise.
    pub fn detected(&self) -> bool {
        self.kinds == self.fixture.expected_kinds()
    }
}

/// Results of [`broken_sweep`].
#[derive(Clone, Debug)]
pub struct BrokenResults {
    /// One row per fixture, in [`ALL_FIXTURES`] order.
    pub rows: Vec<BrokenRow>,
}

impl BrokenResults {
    /// `true` when every fixture tripped exactly its expected violations.
    pub fn all_detected(&self) -> bool {
        self.rows.iter().all(BrokenRow::detected)
    }

    /// Renders the fixture outcomes as a text table.
    pub fn report(&self) -> String {
        let mut table = TextTable::new(
            "Broken fixtures: each must trip exactly its expected violation",
            &["fixture", "expected", "reported", "verdict"],
        );
        for row in &self.rows {
            table.row(vec![
                row.fixture.name().to_string(),
                row.fixture.expected_kinds().join(", "),
                if row.kinds.is_empty() {
                    "none".to_string()
                } else {
                    row.kinds.join(", ")
                },
                if row.detected() {
                    "detected".to_string()
                } else {
                    "MISSED".to_string()
                },
            ]);
        }
        table.render()
    }
}

/// Runs one broken fixture on a fresh sanitized heap and returns the
/// sanitizer's report.
pub fn run_broken_fixture(fixture: BrokenFixture) -> CheckReport {
    let mut heap = KingsguardHeap::new(
        fixture.config(),
        hybrid_mem::MemoryConfig::architecture_independent(),
    );
    let handle = SanitizerHandle::install(&mut heap);
    fixture.run(&mut heap);
    handle.finish(&mut heap)
}

/// Runs every [`BrokenFixture`] under the sanitizer. A fixture whose
/// violation goes unreported (or over-reported) is a sanitizer bug.
pub fn broken_sweep() -> BrokenResults {
    let rows = ALL_FIXTURES
        .iter()
        .map(|&fixture| {
            let report = run_broken_fixture(fixture);
            BrokenRow {
                fixture,
                kinds: report.kinds(),
                report,
            }
        })
        .collect();
    BrokenResults { rows }
}
