//! The online-adaptive comparison (`repro --adaptive`).
//!
//! Runs every simulated benchmark under the online-adaptive KG-D collector
//! — which starts from KG-N-like all-PCM placement and learns per-site
//! advice *during* the run, with no prior profiling run and no observer
//! space — next to the collectors it interpolates between: PCM-only and
//! KG-N below it, KG-W (online per-object learning) and KG-A (offline
//! profile replay) above it. The headline check is that KG-D's PCM write
//! rate never exceeds KG-N's: the rescue fallback alone guarantees the
//! bound, and the learned pretenuring closes most of the remaining gap to
//! KG-W.

use std::path::Path;

use kingsguard::HeapConfig;
use workloads::simulated_benchmarks;

use crate::advise::run_profiled_waves;
use crate::report::{self, ratio, TextTable};
use crate::runner::{ExperimentConfig, ExperimentResult};

/// The collector labels of the comparison, in column order.
pub const ADAPTIVE_CONFIGS: [&str; 5] = ["PCM-only", "KG-N", "KG-W", "KG-A", "KG-D"];

/// Endurance level used for the lifetime column.
pub use crate::report::LIFETIME_ENDURANCE;

/// One benchmark's adaptive comparison.
#[derive(Clone, Debug)]
pub struct AdaptiveRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Results in [`ADAPTIVE_CONFIGS`] order.
    pub results: Vec<ExperimentResult>,
}

impl AdaptiveRow {
    fn result(&self, collector: &str) -> &ExperimentResult {
        report::result_for(&self.results, &self.benchmark, collector)
    }

    /// Estimated 32-core PCM write rate of `collector` in GB/s.
    pub fn write_rate_gbps(&self, collector: &str) -> f64 {
        report::write_rate_gbps(self.result(collector))
    }

    /// PCM lifetime of `collector` in years at [`LIFETIME_ENDURANCE`].
    pub fn lifetime_years(&self, collector: &str) -> f64 {
        report::lifetime_years(self.result(collector))
    }

    /// Energy-delay product of `collector` relative to KG-N.
    pub fn edp_vs_kg_n(&self, collector: &str) -> f64 {
        report::edp_relative(&self.results, &self.benchmark, collector, "KG-N")
    }

    /// Objects KG-D pretenured into DRAM by its *learned* advice — direct
    /// evidence the policy adapted during the run.
    pub fn kg_d_learned_dram_objects(&self) -> u64 {
        self.result("KG-D").gc.advised_to_dram_objects
    }

    /// Returns `true` if KG-D's PCM write rate is no worse than KG-N's.
    pub fn kg_d_beats_kg_n(&self) -> bool {
        self.result("KG-D").pcm_write_rate_32core() <= self.result("KG-N").pcm_write_rate_32core()
    }
}

/// Results of the adaptive comparison.
#[derive(Clone, Debug)]
pub struct AdaptiveResults {
    /// Per-benchmark rows.
    pub rows: Vec<AdaptiveRow>,
}

impl AdaptiveResults {
    /// Number of benchmarks where KG-D's PCM write rate is ≤ KG-N's.
    pub fn kg_d_wins(&self) -> usize {
        self.rows.iter().filter(|r| r.kg_d_beats_kg_n()).count()
    }

    /// Renders the comparison table.
    pub fn report(&self) -> String {
        let mut table = TextTable::new(
            "Online-adaptive placement: KG-D (no profiling run, no observer space) vs the paper's collectors\n\
             (PCM write rate in GB/s at 32 cores; lifetime in years at 30M writes/cell; EDP relative to KG-N;\n\
             'Learned' = objects KG-D pretenured into DRAM by advice it learned during the run)",
            &[
                "Benchmark",
                "Rate PCM-only",
                "Rate KG-N",
                "Rate KG-W",
                "Rate KG-A",
                "Rate KG-D",
                "Life KG-D",
                "EDP KG-D",
                "Learned",
                "GCs KG-D",
                "Max pause",
            ],
        );
        for row in &self.rows {
            table.row(vec![
                row.benchmark.clone(),
                format!("{:.2}", row.write_rate_gbps("PCM-only")),
                format!("{:.2}", row.write_rate_gbps("KG-N")),
                format!("{:.2}", row.write_rate_gbps("KG-W")),
                format!("{:.2}", row.write_rate_gbps("KG-A")),
                format!("{:.2}", row.write_rate_gbps("KG-D")),
                format!("{:.1}", row.lifetime_years("KG-D")),
                ratio(row.edp_vs_kg_n("KG-D")),
                row.kg_d_learned_dram_objects().to_string(),
                report::pause_count_cell(row.result("KG-D")),
                report::max_pause_cell(row.result("KG-D")),
            ]);
        }
        let mut out = table.render();
        out.push_str(&format!(
            "KG-D PCM write rate <= KG-N on {}/{} benchmarks (no prior profiling run)\n",
            self.kg_d_wins(),
            self.rows.len()
        ));
        if let Some(summary) = report::telemetry_summary(self.rows.iter().flat_map(|row| row.results.iter()))
        {
            out.push_str(&summary);
            out.push('\n');
        }
        out
    }
}

/// Runs the adaptive comparison over `benchmarks`, fanning the
/// (benchmark, collector) pairs over up to `jobs` worker threads. KG-D runs
/// with no prior profile; the KG-A reference column reuses the
/// profile→advise pipeline (its profiling runs double as the KG-N rows),
/// writing the `.kgprof` files into `dir`.
pub fn adaptive_comparison(
    config: &ExperimentConfig,
    benchmarks: &[&str],
    dir: &Path,
    jobs: usize,
) -> AdaptiveResults {
    // KG-D joins wave 2 with no advice seed: unlike KG-A, it learns its
    // table during the run.
    let waves = run_profiled_waves(config, benchmarks, dir, jobs, |table| {
        vec![
            HeapConfig::gen_immix_pcm(),
            HeapConfig::kg_w(),
            HeapConfig::kg_a(table.clone()),
            HeapConfig::kg_d(),
        ]
    });
    let rows = waves
        .into_iter()
        .map(|wave| {
            let [pcm_only, kg_w, kg_a, kg_d]: [ExperimentResult; 4] =
                wave.results.try_into().expect("four wave-2 runs per benchmark");
            AdaptiveRow {
                benchmark: wave.profile.name.to_string(),
                results: vec![pcm_only, wave.kg_n, kg_w, kg_a, kg_d],
            }
        })
        .collect();
    AdaptiveResults { rows }
}

/// The default benchmark set: the paper's simulation subset.
pub fn default_benchmarks() -> Vec<&'static str> {
    simulated_benchmarks().iter().map(|p| p.name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("kingsguard-adaptive-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn kg_d_adapts_online_and_stays_at_or_below_kg_n() {
        let dir = temp_dir("one");
        let config = ExperimentConfig::quick();
        let results = adaptive_comparison(&config, &["lusearch"], &dir, 1);
        assert_eq!(results.rows.len(), 1);
        let row = &results.rows[0];
        assert_eq!(row.results.len(), ADAPTIVE_CONFIGS.len());
        let kg_d = row.result("KG-D");
        assert_eq!(kg_d.gc.observer.collections, 0, "KG-D has no observer space");
        assert!(
            row.kg_d_learned_dram_objects() > 0,
            "KG-D must learn hot sites during the run"
        );
        assert!(
            row.kg_d_beats_kg_n(),
            "KG-D rate {} must not exceed KG-N {}",
            row.write_rate_gbps("KG-D"),
            row.write_rate_gbps("KG-N")
        );
        let report = results.report();
        assert!(report.contains("KG-D"));
        assert!(report.contains("lusearch"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn threaded_adaptive_comparison_matches_sequential() {
        let dir = temp_dir("jobs");
        let config = ExperimentConfig::quick();
        let sequential = adaptive_comparison(&config, &["lu.fix", "pmd"], &dir, 1);
        let threaded = adaptive_comparison(&config, &["lu.fix", "pmd"], &dir, 2);
        for (a, b) in sequential.rows.iter().zip(&threaded.rows) {
            assert_eq!(a.benchmark, b.benchmark);
            for (ra, rb) in a.results.iter().zip(&b.results) {
                assert_eq!(ra.collector, rb.collector);
                assert_eq!(
                    ra.pcm_writes(),
                    rb.pcm_writes(),
                    "{}: {}",
                    a.benchmark,
                    ra.collector
                );
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
