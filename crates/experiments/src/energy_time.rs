//! Energy and execution-time experiments: Figures 8, 9 and 12.

use hybrid_mem::timing::ExecutionModel;
use hybrid_mem::{MemoryKind, MemoryStats};
use kingsguard::HeapConfig;
use workloads::{all_benchmarks, simulated_benchmarks};

use crate::report::{collect_rows, mean, ratio, TelemetryRollup, TextTable};
use crate::runner::{run_benchmark, run_jobs, ExperimentConfig, ExperimentResult};

// ---------------------------------------------------------------------------
// Figure 8: energy-delay product
// ---------------------------------------------------------------------------

/// Per-benchmark energy-delay product relative to DRAM-only (Figure 8).
#[derive(Clone, Debug)]
pub struct EdpRow {
    /// Benchmark name.
    pub benchmark: String,
    /// PCM-only EDP relative to DRAM-only.
    pub pcm_only: f64,
    /// KG-N EDP relative to DRAM-only.
    pub kg_n: f64,
    /// KG-W EDP relative to DRAM-only.
    pub kg_w: f64,
}

/// Figure 8 results.
#[derive(Clone, Debug)]
pub struct EdpResults {
    /// Per-benchmark rows (simulation subset).
    pub rows: Vec<EdpRow>,
    /// Telemetry rollup of the runs behind the table.
    pub telemetry: TelemetryRollup,
}

impl EdpResults {
    /// Average KG-N EDP relative to DRAM-only (the paper reports 0.64,
    /// i.e. a 36 % reduction).
    pub fn average_kg_n(&self) -> f64 {
        mean(&self.rows.iter().map(|r| r.kg_n).collect::<Vec<_>>())
    }

    /// Average KG-W EDP relative to DRAM-only (the paper reports 0.68).
    pub fn average_kg_w(&self) -> f64 {
        mean(&self.rows.iter().map(|r| r.kg_w).collect::<Vec<_>>())
    }

    /// Average PCM-only EDP relative to DRAM-only.
    pub fn average_pcm_only(&self) -> f64 {
        mean(&self.rows.iter().map(|r| r.pcm_only).collect::<Vec<_>>())
    }

    /// Renders the Figure 8 table.
    pub fn report(&self) -> String {
        let mut table = TextTable::new(
            "Figure 8: energy-delay product relative to DRAM-only (lower is better)",
            &["Benchmark", "DRAM-only", "PCM-only", "KG-N", "KG-W"],
        );
        for row in &self.rows {
            table.row(vec![
                row.benchmark.clone(),
                "1.00".to_string(),
                ratio(row.pcm_only),
                ratio(row.kg_n),
                ratio(row.kg_w),
            ]);
        }
        table.row(vec![
            "Average".to_string(),
            "1.00".to_string(),
            ratio(self.average_pcm_only()),
            ratio(self.average_kg_n()),
            ratio(self.average_kg_w()),
        ]);
        table.render() + &self.telemetry.appendix()
    }
}

/// Figure 8: EDP of PCM-only, KG-N and KG-W relative to DRAM-only on the
/// simulation subset.
pub fn figure8(config: &ExperimentConfig) -> EdpResults {
    let benchmarks = simulated_benchmarks();
    let rows = run_jobs(&benchmarks, config.jobs, |profile| {
        let dram = run_benchmark(profile, HeapConfig::gen_immix_dram(), config);
        let pcm = run_benchmark(profile, HeapConfig::gen_immix_pcm(), config);
        let kg_n = run_benchmark(profile, HeapConfig::kg_n(), config);
        let kg_w = run_benchmark(profile, HeapConfig::kg_w(), config);
        let base = dram.edp.max(f64::MIN_POSITIVE);
        let mut rollup = TelemetryRollup::default();
        for result in [&dram, &pcm, &kg_n, &kg_w] {
            rollup.absorb(result);
        }
        (
            EdpRow {
                benchmark: profile.name.to_string(),
                pcm_only: pcm.edp / base,
                kg_n: kg_n.edp / base,
                kg_w: kg_w.edp / base,
            },
            rollup,
        )
    });
    let (rows, telemetry) = collect_rows(rows);
    EdpResults { rows, telemetry }
}

// ---------------------------------------------------------------------------
// Figure 9: KG-W overhead breakdown
// ---------------------------------------------------------------------------

/// Per-benchmark breakdown of KG-W's execution-time overhead over DRAM-only
/// (Figure 9), each component expressed as a percentage of the DRAM-only
/// execution time.
#[derive(Clone, Debug)]
pub struct OverheadRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Overhead due to PCM's longer access latencies.
    pub pcm_pct: f64,
    /// Overhead of the observer-space remembered sets.
    pub remsets_pct: f64,
    /// Overhead of additional (observer) collections.
    pub gc_pct: f64,
    /// Overhead of monitoring writes to non-nursery objects.
    pub monitoring_pct: f64,
    /// Everything else (cache effects, copying, model residue).
    pub other_pct: f64,
}

impl OverheadRow {
    /// Total overhead percentage over DRAM-only.
    pub fn total_pct(&self) -> f64 {
        self.pcm_pct + self.remsets_pct + self.gc_pct + self.monitoring_pct + self.other_pct
    }
}

/// Figure 9 results.
#[derive(Clone, Debug)]
pub struct OverheadResults {
    /// Per-benchmark rows (simulation subset).
    pub rows: Vec<OverheadRow>,
    /// Telemetry rollup of the runs behind the table.
    pub telemetry: TelemetryRollup,
}

impl OverheadResults {
    /// Average total KG-W overhead over DRAM-only (the paper reports ~40 %).
    pub fn average_total(&self) -> f64 {
        mean(&self.rows.iter().map(|r| r.total_pct()).collect::<Vec<_>>())
    }

    /// Average PCM-latency component (the paper reports ~25 %).
    pub fn average_pcm(&self) -> f64 {
        mean(&self.rows.iter().map(|r| r.pcm_pct).collect::<Vec<_>>())
    }

    /// Renders the Figure 9 table.
    pub fn report(&self) -> String {
        let mut table = TextTable::new(
            "Figure 9: breakdown of KG-W execution-time overhead over DRAM-only (% of DRAM-only time)",
            &[
                "Benchmark",
                "PCM",
                "Remsets",
                "GC",
                "Monitoring",
                "Other",
                "Total",
            ],
        );
        for row in &self.rows {
            table.row(vec![
                row.benchmark.clone(),
                format!("{:.1}", row.pcm_pct),
                format!("{:.1}", row.remsets_pct),
                format!("{:.1}", row.gc_pct),
                format!("{:.1}", row.monitoring_pct),
                format!("{:.1}", row.other_pct),
                format!("{:.1}", row.total_pct()),
            ]);
        }
        table.render() + &self.telemetry.appendix()
    }
}

/// Figure 9: decomposes KG-W's overhead over DRAM-only into PCM latency,
/// remembered sets, collection work, write monitoring and other.
pub fn figure9(config: &ExperimentConfig) -> OverheadResults {
    let benchmarks = simulated_benchmarks();
    let rows = run_jobs(&benchmarks, config.jobs, |profile| {
        let dram = run_benchmark(profile, HeapConfig::gen_immix_dram(), config);
        let kg_w = run_benchmark(profile, HeapConfig::kg_w(), config);
        let base = dram.execution_time_s().max(f64::MIN_POSITIVE);
        let total_pct = (kg_w.execution_time_s() - dram.execution_time_s()) / base * 100.0;
        let pcm_pct = kg_w.time.pcm_s / base * 100.0;
        let remsets_pct = (kg_w.time.remset_s - dram.time.remset_s).max(0.0) / base * 100.0;
        let gc_pct = (kg_w.time.gc_s - dram.time.gc_s).max(0.0) / base * 100.0;
        let monitoring_pct = kg_w.time.monitoring_s / base * 100.0;
        let other_pct = (total_pct - pcm_pct - remsets_pct - gc_pct - monitoring_pct).max(0.0);
        let mut rollup = TelemetryRollup::default();
        rollup.absorb(&dram);
        rollup.absorb(&kg_w);
        (
            OverheadRow {
                benchmark: profile.name.to_string(),
                pcm_pct,
                remsets_pct,
                gc_pct,
                monitoring_pct,
                other_pct,
            },
            rollup,
        )
    });
    let (rows, telemetry) = collect_rows(rows);
    OverheadResults { rows, telemetry }
}

// ---------------------------------------------------------------------------
// Figure 12: execution time relative to KG-N on DRAM hardware
// ---------------------------------------------------------------------------

/// Per-benchmark execution time relative to KG-N (Figure 12).
#[derive(Clone, Debug)]
pub struct PerformanceRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Execution time of each configuration relative to KG-N, in the order
    /// KG-W, KG-W–LOO, KG-W–LOO–MDO, KG-W–PM.
    pub relative: [f64; 4],
}

/// Figure 12 results.
#[derive(Clone, Debug)]
pub struct PerformanceResults {
    /// One row per benchmark (all 18).
    pub rows: Vec<PerformanceRow>,
    /// Telemetry rollup of the runs behind the table.
    pub telemetry: TelemetryRollup,
}

/// Configuration labels of Figure 12 in order.
pub const FIGURE12_CONFIGS: [&str; 4] = ["KG-W", "KG-W-LOO", "KG-W-LOO-MDO", "KG-W-PM"];

impl PerformanceResults {
    /// Average slowdown of configuration `index` relative to KG-N
    /// (the paper reports ~1.07 for KG-W).
    pub fn average(&self, index: usize) -> f64 {
        mean(&self.rows.iter().map(|r| r.relative[index]).collect::<Vec<_>>())
    }

    /// Renders the Figure 12 table.
    pub fn report(&self) -> String {
        let mut table = TextTable::new(
            "Figure 12: execution time relative to KG-N on DRAM hardware (lower is better)",
            &["Benchmark", "KG-N", "KG-W", "KG-W-LOO", "KG-W-LOO-MDO", "KG-W-PM"],
        );
        for row in &self.rows {
            let mut cells = vec![row.benchmark.clone(), "1.00".to_string()];
            cells.extend(row.relative.iter().map(|&v| ratio(v)));
            table.row(cells);
        }
        let mut avg = vec!["Average".to_string(), "1.00".to_string()];
        avg.extend((0..4).map(|i| ratio(self.average(i))));
        table.row(avg);
        table.render() + &self.telemetry.appendix()
    }
}

/// Computes execution time as if every memory access were served by DRAM —
/// the paper's real-hardware runs have no PCM, so all latencies are DRAM
/// latencies (Section 6.2).
fn dram_hardware_time(result: &ExperimentResult) -> f64 {
    let mut stats = MemoryStats::default();
    stats.reads[MemoryKind::Dram as usize] = result.memory.total_reads();
    stats.writes[MemoryKind::Dram as usize] = result.memory.total_writes();
    ExecutionModel::default().execution_time_s(&result.gc.work, &stats)
}

/// Figure 12: execution time of the KG-W variants relative to KG-N on DRAM
/// hardware, for all 18 benchmarks.
pub fn figure12(config: &ExperimentConfig) -> PerformanceResults {
    let config = ExperimentConfig {
        mode: crate::MeasurementMode::ArchitectureIndependent,
        ..config.clone()
    };
    let benchmarks = all_benchmarks();
    let rows = run_jobs(&benchmarks, config.jobs, |profile| {
        let kg_n = run_benchmark(profile, HeapConfig::kg_n(), &config);
        let base = dram_hardware_time(&kg_n).max(f64::MIN_POSITIVE);
        let configs = [
            HeapConfig::kg_w(),
            HeapConfig::kg_w_no_loo(),
            HeapConfig::kg_w_no_loo_no_mdo(),
            HeapConfig::kg_w_no_primitive_monitoring(),
        ];
        let mut relative = [0.0f64; 4];
        let mut rollup = TelemetryRollup::default();
        rollup.absorb(&kg_n);
        for (i, heap_config) in configs.into_iter().enumerate() {
            let result = run_benchmark(profile, heap_config, &config);
            rollup.absorb(&result);
            relative[i] = dram_hardware_time(&result) / base;
        }
        (
            PerformanceRow {
                benchmark: profile.name.to_string(),
                relative,
            },
            rollup,
        )
    });
    let (rows, telemetry) = collect_rows(rows);
    PerformanceResults { rows, telemetry }
}
