//! Write-centric experiments: Figures 2, 6, 7, 10 and 11.

use hybrid_mem::{MemoryKind, Phase};
use kingsguard::HeapConfig;
use workloads::{all_benchmarks, simulated_benchmarks};

use crate::report::{collect_rows, mean, percent, ratio, TelemetryRollup, TextTable};
use crate::runner::{run_benchmark, run_benchmark_with_wp, run_jobs, ExperimentConfig, ExperimentResult};

// ---------------------------------------------------------------------------
// Figure 2: write demographics
// ---------------------------------------------------------------------------

/// Per-benchmark write demographics (Figure 2).
#[derive(Clone, Debug)]
pub struct DemographicsRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Fraction of application writes to nursery objects.
    pub nursery_fraction: f64,
    /// Fraction of mature-object writes captured by the top 10 % of mature
    /// objects.
    pub top10_share: f64,
    /// Fraction of mature-object writes captured by the top 2 % of mature
    /// objects.
    pub top2_share: f64,
}

/// Figure 2 results.
#[derive(Clone, Debug)]
pub struct DemographicsResults {
    /// Per-benchmark rows for all 18 benchmarks.
    pub rows: Vec<DemographicsRow>,
    /// Telemetry rollup of the runs behind the table.
    pub telemetry: TelemetryRollup,
}

impl DemographicsResults {
    /// Average nursery write fraction (the paper reports 70 %).
    pub fn average_nursery_fraction(&self) -> f64 {
        mean(&self.rows.iter().map(|r| r.nursery_fraction).collect::<Vec<_>>())
    }

    /// Average top-2 % share of mature writes (the paper reports 81 %).
    pub fn average_top2_share(&self) -> f64 {
        mean(&self.rows.iter().map(|r| r.top2_share).collect::<Vec<_>>())
    }

    /// Average top-10 % share of mature writes (the paper reports 93 %).
    pub fn average_top10_share(&self) -> f64 {
        mean(&self.rows.iter().map(|r| r.top10_share).collect::<Vec<_>>())
    }

    /// Renders the Figure 2 table.
    pub fn report(&self) -> String {
        let mut table = TextTable::new(
            "Figure 2: distribution of application writes (nursery vs mature, hot-object concentration)",
            &[
                "Benchmark",
                "Nursery",
                "Mature",
                "Top 10% of mature",
                "Top 2% of mature",
            ],
        );
        for row in &self.rows {
            table.row(vec![
                row.benchmark.clone(),
                percent(row.nursery_fraction),
                percent(1.0 - row.nursery_fraction),
                percent(row.top10_share),
                percent(row.top2_share),
            ]);
        }
        table.row(vec![
            "Average".to_string(),
            percent(self.average_nursery_fraction()),
            percent(1.0 - self.average_nursery_fraction()),
            percent(self.average_top10_share()),
            percent(self.average_top2_share()),
        ]);
        table.render() + &self.telemetry.appendix()
    }
}

/// Figure 2: measures write demographics with the instrumented baseline
/// generational collector on all 18 benchmarks.
pub fn figure2(config: &ExperimentConfig) -> DemographicsResults {
    let config = ExperimentConfig {
        mode: crate::MeasurementMode::ArchitectureIndependent,
        ..config.clone()
    };
    let benchmarks = all_benchmarks();
    let (rows, telemetry) = collect_rows(run_jobs(&benchmarks, config.jobs, |profile| {
        let result = run_benchmark(profile, HeapConfig::gen_immix_dram(), &config);
        let mut rollup = TelemetryRollup::default();
        rollup.absorb(&result);
        (
            DemographicsRow {
                benchmark: profile.name.to_string(),
                nursery_fraction: result.gc.nursery_write_fraction(),
                top10_share: result.gc.top_mature_writer_share(0.10),
                top2_share: result.gc.top_mature_writer_share(0.02),
            },
            rollup,
        )
    }));
    DemographicsResults { rows, telemetry }
}

// ---------------------------------------------------------------------------
// Figure 6: PCM writes relative to PCM-only
// ---------------------------------------------------------------------------

/// Per-benchmark PCM-write reduction (Figure 6).
#[derive(Clone, Debug)]
pub struct WriteReductionRow {
    /// Benchmark name.
    pub benchmark: String,
    /// PCM writes of each Kingsguard configuration relative to PCM-only, in
    /// the order KG-N, KG-W, KG-W–LOO, KG-W–LOO–MDO.
    pub relative: [f64; 4],
}

/// Figure 6 results.
#[derive(Clone, Debug)]
pub struct WriteReductionResults {
    /// Per-benchmark rows (simulation subset).
    pub rows: Vec<WriteReductionRow>,
    /// Telemetry rollup of the runs behind the table.
    pub telemetry: TelemetryRollup,
}

/// Configuration labels of Figure 6 in order.
pub const FIGURE6_CONFIGS: [&str; 4] = ["KG-N", "KG-W", "KG-W-LOO", "KG-W-LOO-MDO"];

impl WriteReductionResults {
    /// Average relative PCM writes of configuration `index` (0 = KG-N, ...).
    pub fn average(&self, index: usize) -> f64 {
        mean(&self.rows.iter().map(|r| r.relative[index]).collect::<Vec<_>>())
    }

    /// Renders the Figure 6 table.
    pub fn report(&self) -> String {
        let mut table = TextTable::new(
            "Figure 6: PCM writes relative to PCM-only (lower is better)",
            &["Benchmark", "KG-N", "KG-W", "KG-W-LOO", "KG-W-LOO-MDO"],
        );
        for row in &self.rows {
            let mut cells = vec![row.benchmark.clone()];
            cells.extend(row.relative.iter().map(|&v| ratio(v)));
            table.row(cells);
        }
        let mut avg = vec!["Average".to_string()];
        avg.extend((0..4).map(|i| ratio(self.average(i))));
        table.row(avg);
        table.render() + &self.telemetry.appendix()
    }
}

/// Figure 6: PCM writes of the four Kingsguard configurations relative to
/// PCM-only, on the simulation subset.
pub fn figure6(config: &ExperimentConfig) -> WriteReductionResults {
    let benchmarks = simulated_benchmarks();
    let (rows, telemetry) = collect_rows(run_jobs(&benchmarks, config.jobs, |profile| {
        let baseline = run_benchmark(profile, HeapConfig::gen_immix_pcm(), config);
        let base_writes = baseline.pcm_writes().max(1) as f64;
        let mut rollup = TelemetryRollup::default();
        rollup.absorb(&baseline);
        let configs = [
            HeapConfig::kg_n(),
            HeapConfig::kg_w(),
            HeapConfig::kg_w_no_loo(),
            HeapConfig::kg_w_no_loo_no_mdo(),
        ];
        let mut relative = [0.0f64; 4];
        for (i, heap_config) in configs.into_iter().enumerate() {
            let result = run_benchmark(profile, heap_config, config);
            rollup.absorb(&result);
            relative[i] = result.pcm_writes() as f64 / base_writes;
        }
        (
            WriteReductionRow {
                benchmark: profile.name.to_string(),
                relative,
            },
            rollup,
        )
    }));
    WriteReductionResults { rows, telemetry }
}

// ---------------------------------------------------------------------------
// Figure 7: comparison with OS Write Partitioning
// ---------------------------------------------------------------------------

/// Per-benchmark comparison with Write Partitioning (Figure 7).
#[derive(Clone, Debug)]
pub struct WpComparisonRow {
    /// Benchmark name.
    pub benchmark: String,
    /// KG-N PCM writes relative to PCM-only.
    pub kg_n: f64,
    /// KG-W PCM writes relative to PCM-only.
    pub kg_w: f64,
    /// WP write-back PCM writes relative to PCM-only.
    pub wp_writebacks: f64,
    /// WP migration PCM writes relative to PCM-only.
    pub wp_migrations: f64,
    /// DRAM bytes used by the WP DRAM partition at its peak.
    pub wp_dram_bytes: u64,
}

/// Figure 7 results.
#[derive(Clone, Debug)]
pub struct WpComparisonResults {
    /// Per-benchmark rows (simulation subset).
    pub rows: Vec<WpComparisonRow>,
    /// Telemetry rollup of the runs behind the table.
    pub telemetry: TelemetryRollup,
}

impl WpComparisonResults {
    /// Average relative PCM writes of WP (write-backs + migrations).
    pub fn average_wp(&self) -> f64 {
        mean(
            &self
                .rows
                .iter()
                .map(|r| r.wp_writebacks + r.wp_migrations)
                .collect::<Vec<_>>(),
        )
    }

    /// Average relative PCM writes of KG-W.
    pub fn average_kg_w(&self) -> f64 {
        mean(&self.rows.iter().map(|r| r.kg_w).collect::<Vec<_>>())
    }

    /// Average relative PCM writes of KG-N.
    pub fn average_kg_n(&self) -> f64 {
        mean(&self.rows.iter().map(|r| r.kg_n).collect::<Vec<_>>())
    }

    /// Renders the Figure 7 table.
    pub fn report(&self) -> String {
        let mut table = TextTable::new(
            "Figure 7: PCM writes relative to PCM-only — Kingsguard vs OS Write Partitioning",
            &[
                "Benchmark",
                "KG-N",
                "KG-W",
                "WP writebacks",
                "WP migrations",
                "WP total",
            ],
        );
        for row in &self.rows {
            table.row(vec![
                row.benchmark.clone(),
                ratio(row.kg_n),
                ratio(row.kg_w),
                ratio(row.wp_writebacks),
                ratio(row.wp_migrations),
                ratio(row.wp_writebacks + row.wp_migrations),
            ]);
        }
        table.row(vec![
            "Average".to_string(),
            ratio(self.average_kg_n()),
            ratio(self.average_kg_w()),
            String::new(),
            String::new(),
            ratio(self.average_wp()),
        ]);
        table.render() + &self.telemetry.appendix()
    }
}

/// Figure 7: KG-N, KG-W and OS Write Partitioning PCM writes relative to
/// PCM-only on the simulation subset.
pub fn figure7(config: &ExperimentConfig) -> WpComparisonResults {
    let benchmarks = simulated_benchmarks();
    let (rows, telemetry) = collect_rows(run_jobs(&benchmarks, config.jobs, |profile| {
        let baseline = run_benchmark(profile, HeapConfig::gen_immix_pcm(), config);
        let base_writes = baseline.pcm_writes().max(1) as f64;
        let kg_n = run_benchmark(profile, HeapConfig::kg_n(), config);
        let kg_w = run_benchmark(profile, HeapConfig::kg_w(), config);
        let wp = run_benchmark_with_wp(profile, config);
        let mut rollup = TelemetryRollup::default();
        for result in [&baseline, &kg_n, &kg_w, &wp] {
            rollup.absorb(result);
        }
        (
            WpComparisonRow {
                benchmark: profile.name.to_string(),
                kg_n: kg_n.pcm_writes() as f64 / base_writes,
                kg_w: kg_w.pcm_writes() as f64 / base_writes,
                wp_writebacks: wp.memory.writeback_writes(MemoryKind::Pcm) as f64 / base_writes,
                wp_migrations: wp.memory.migration_writes(MemoryKind::Pcm) as f64 / base_writes,
                wp_dram_bytes: wp
                    .wp
                    .map(|s| (s.peak_dram_pages * hybrid_mem::PAGE_SIZE) as u64)
                    .unwrap_or(0),
            },
            rollup,
        )
    }));
    WpComparisonResults { rows, telemetry }
}

// ---------------------------------------------------------------------------
// Figure 10: the origin of PCM writes
// ---------------------------------------------------------------------------

/// Per-benchmark, per-collector breakdown of where PCM writes originate
/// (Figure 10).
#[derive(Clone, Debug)]
pub struct WriteOriginRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Collector label (KG-N or KG-W).
    pub collector: String,
    /// PCM writes attributed to the application, relative to the
    /// benchmark's KG-N total.
    pub application: f64,
    /// PCM writes attributed to nursery collections (same normalisation).
    pub nursery_gc: f64,
    /// PCM writes attributed to observer collections.
    pub observer_gc: f64,
    /// PCM writes attributed to major collections.
    pub major_gc: f64,
    /// PCM writes attributed to runtime metadata.
    pub runtime: f64,
}

/// Figure 10 results.
#[derive(Clone, Debug)]
pub struct WriteOriginResults {
    /// Two rows (KG-N, KG-W) per benchmark of the simulation subset.
    pub rows: Vec<WriteOriginRow>,
    /// Telemetry rollup of the runs behind the table.
    pub telemetry: TelemetryRollup,
}

impl WriteOriginResults {
    /// Renders the Figure 10 table.
    pub fn report(&self) -> String {
        let mut table = TextTable::new(
            "Figure 10: origin of PCM writes (relative to each benchmark's KG-N total)",
            &[
                "Benchmark",
                "Config",
                "application",
                "nursery-GC",
                "observer-GC",
                "major-GC",
                "runtime",
            ],
        );
        for row in &self.rows {
            table.row(vec![
                row.benchmark.clone(),
                row.collector.clone(),
                ratio(row.application),
                ratio(row.nursery_gc),
                ratio(row.observer_gc),
                ratio(row.major_gc),
                ratio(row.runtime),
            ]);
        }
        table.render() + &self.telemetry.appendix()
    }
}

fn origin_row(result: &ExperimentResult, normaliser: f64) -> WriteOriginRow {
    let phase_writes = result.memory.phase_writes(MemoryKind::Pcm);
    WriteOriginRow {
        benchmark: result.benchmark.clone(),
        collector: result.collector.clone(),
        application: phase_writes.get(Phase::Mutator) as f64 / normaliser,
        nursery_gc: phase_writes.get(Phase::NurseryGc) as f64 / normaliser,
        observer_gc: phase_writes.get(Phase::ObserverGc) as f64 / normaliser,
        major_gc: phase_writes.get(Phase::MajorGc) as f64 / normaliser,
        runtime: phase_writes.get(Phase::Runtime) as f64 / normaliser,
    }
}

/// Figure 10: attributes PCM writes to the phase that last wrote each cache
/// line, for KG-N and KG-W on the simulation subset.
pub fn figure10(config: &ExperimentConfig) -> WriteOriginResults {
    let benchmarks = simulated_benchmarks();
    let (pairs, telemetry) = collect_rows(run_jobs(&benchmarks, config.jobs, |profile| {
        let kg_n = run_benchmark(profile, HeapConfig::kg_n(), config);
        let kg_w = run_benchmark(profile, HeapConfig::kg_w(), config);
        let normaliser = kg_n.pcm_writes().max(1) as f64;
        let mut rollup = TelemetryRollup::default();
        rollup.absorb(&kg_n);
        rollup.absorb(&kg_w);
        (
            [origin_row(&kg_n, normaliser), origin_row(&kg_w, normaliser)],
            rollup,
        )
    }));
    let rows = pairs.into_iter().flatten().collect();
    WriteOriginResults { rows, telemetry }
}

// ---------------------------------------------------------------------------
// Figure 11: architecture-independent application writes to PCM
// ---------------------------------------------------------------------------

/// Per-benchmark application PCM writes relative to KG-N (Figure 11).
#[derive(Clone, Debug)]
pub struct HardwareWritesRow {
    /// Benchmark name.
    pub benchmark: String,
    /// KG-N with a 3× (12 MB-equivalent) nursery, relative to KG-N.
    pub kg_n_12: f64,
    /// KG-W relative to KG-N.
    pub kg_w: f64,
    /// KG-W without primitive monitoring, relative to KG-N.
    pub kg_w_pm: f64,
}

/// Figure 11 results.
#[derive(Clone, Debug)]
pub struct HardwareWritesResults {
    /// One row per benchmark (all 18).
    pub rows: Vec<HardwareWritesRow>,
    /// Telemetry rollup of the runs behind the table.
    pub telemetry: TelemetryRollup,
}

impl HardwareWritesResults {
    /// Average KG-W application PCM writes relative to KG-N (the paper
    /// reports an 80 % reduction, i.e. ~0.20).
    pub fn average_kg_w(&self) -> f64 {
        mean(&self.rows.iter().map(|r| r.kg_w).collect::<Vec<_>>())
    }

    /// Average KG-W–PM relative writes (the paper reports a 65 % reduction).
    pub fn average_kg_w_pm(&self) -> f64 {
        mean(&self.rows.iter().map(|r| r.kg_w_pm).collect::<Vec<_>>())
    }

    /// Average KG-N-12 relative writes (the paper reports a 24 % reduction).
    pub fn average_kg_n_12(&self) -> f64 {
        mean(&self.rows.iter().map(|r| r.kg_n_12).collect::<Vec<_>>())
    }

    /// Renders the Figure 11 table.
    pub fn report(&self) -> String {
        let mut table = TextTable::new(
            "Figure 11: application writes to PCM relative to KG-N (architecture-independent)",
            &["Benchmark", "KG-N-12", "KG-W", "KG-W-PM"],
        );
        for row in &self.rows {
            table.row(vec![
                row.benchmark.clone(),
                ratio(row.kg_n_12),
                ratio(row.kg_w),
                ratio(row.kg_w_pm),
            ]);
        }
        table.row(vec![
            "Average".to_string(),
            ratio(self.average_kg_n_12()),
            ratio(self.average_kg_w()),
            ratio(self.average_kg_w_pm()),
        ]);
        table.render() + &self.telemetry.appendix()
    }
}

/// Figure 11: barrier-level application PCM writes of KG-N-12, KG-W and
/// KG-W–PM relative to KG-N, on all 18 benchmarks.
pub fn figure11(config: &ExperimentConfig) -> HardwareWritesResults {
    let config = ExperimentConfig {
        mode: crate::MeasurementMode::ArchitectureIndependent,
        ..config.clone()
    };
    let benchmarks = all_benchmarks();
    let (rows, telemetry) = collect_rows(run_jobs(&benchmarks, config.jobs, |profile| {
        let kg_n = run_benchmark(profile, HeapConfig::kg_n(), &config);
        let baseline = kg_n.pcm_app_writes().max(1) as f64;
        let kg_n_12 = run_benchmark(profile, HeapConfig::kg_n_large_nursery(), &config);
        let kg_w = run_benchmark(profile, HeapConfig::kg_w(), &config);
        let kg_w_pm = run_benchmark(profile, HeapConfig::kg_w_no_primitive_monitoring(), &config);
        let mut rollup = TelemetryRollup::default();
        for result in [&kg_n, &kg_n_12, &kg_w, &kg_w_pm] {
            rollup.absorb(result);
        }
        (
            HardwareWritesRow {
                benchmark: profile.name.to_string(),
                kg_n_12: kg_n_12.pcm_app_writes() as f64 / baseline,
                kg_w: kg_w.pcm_app_writes() as f64 / baseline,
                kg_w_pm: kg_w_pm.pcm_app_writes() as f64 / baseline,
            },
            rollup,
        )
    }));
    HardwareWritesResults { rows, telemetry }
}
