//! The perf-regression gate: `repro bench diff`.
//!
//! Compares two `BENCH_*.json` reports (the files `cargo bench` writes at
//! the workspace root) on their throughput metrics. Every numeric leaf
//! whose dotted path contains `per_sec` is treated as a
//! higher-is-better throughput: the candidate regresses when it falls more
//! than the tolerance band below the baseline. Other shared numeric
//! leaves are reported for context but never gate. Metrics present on one
//! side only are flagged so a silently dropped benchmark cannot pass.

use std::path::Path;

use telemetry::Json;

use crate::report::TextTable;

/// Default tolerance band, in percent: a throughput metric may fall this
/// far below the baseline before it counts as a regression.
pub const DEFAULT_TOLERANCE_PCT: f64 = 15.0;

/// One compared metric.
#[derive(Clone, Debug)]
pub struct MetricRow {
    /// Dotted path of the numeric leaf (e.g. `stages.page-map.events_per_sec`).
    pub metric: String,
    /// Baseline value.
    pub a: f64,
    /// Candidate value.
    pub b: f64,
    /// Whether this metric gates (its path contains `per_sec`).
    pub gating: bool,
    /// Whether the candidate regressed beyond the tolerance band.
    pub regressed: bool,
}

/// Results of comparing two bench reports.
#[derive(Clone, Debug)]
pub struct BenchDiff {
    /// Tolerance band in percent.
    pub tolerance_pct: f64,
    /// Compared metrics, in baseline path order.
    pub rows: Vec<MetricRow>,
    /// Metric paths present in exactly one file.
    pub unmatched: Vec<String>,
}

impl BenchDiff {
    /// Gating metrics that regressed beyond the tolerance band.
    pub fn regressions(&self) -> usize {
        self.rows.iter().filter(|r| r.regressed).count()
    }

    /// `true` when the candidate passes: no regressions and no unmatched
    /// metrics.
    pub fn passes(&self) -> bool {
        self.regressions() == 0 && self.unmatched.is_empty()
    }

    /// Formatted report.
    pub fn report(&self) -> String {
        let mut table = TextTable::new(
            &format!(
                "Bench diff: candidate vs baseline (tolerance {:.0}% on *per_sec* metrics)",
                self.tolerance_pct
            ),
            &["metric", "baseline", "candidate", "delta-%", "verdict"],
        );
        for row in &self.rows {
            let delta = if row.a != 0.0 {
                (row.b - row.a) / row.a * 100.0
            } else {
                0.0
            };
            table.row(vec![
                row.metric.clone(),
                format!("{:.2}", row.a),
                format!("{:.2}", row.b),
                format!("{delta:+.1}"),
                if row.regressed {
                    "REGRESSED".to_string()
                } else if row.gating {
                    "ok".to_string()
                } else {
                    "info".to_string()
                },
            ]);
        }
        let mut out = table.render();
        for path in &self.unmatched {
            out.push_str(&format!("metric {path} is present in only one file\n"));
        }
        out.push_str(&format!(
            "\n{} gating metric(s), {} regression(s)\n",
            self.rows.iter().filter(|r| r.gating).count(),
            self.regressions()
        ));
        out
    }
}

/// Collects every numeric leaf of `json` as `(dotted path, value)`, in
/// document order. Array elements are addressed by index.
fn numeric_leaves(json: &Json, prefix: &str, out: &mut Vec<(String, f64)>) {
    match json {
        Json::Num(value) => out.push((prefix.to_string(), *value)),
        Json::Obj(fields) => {
            for (key, value) in fields {
                let path = if prefix.is_empty() {
                    key.clone()
                } else {
                    format!("{prefix}.{key}")
                };
                numeric_leaves(value, &path, out);
            }
        }
        Json::Arr(items) => {
            for (index, value) in items.iter().enumerate() {
                numeric_leaves(value, &format!("{prefix}[{index}]"), out);
            }
        }
        _ => {}
    }
}

/// Compares two parsed bench reports.
pub fn diff_bench_json(a: &Json, b: &Json, tolerance_pct: f64) -> BenchDiff {
    let mut leaves_a = Vec::new();
    let mut leaves_b = Vec::new();
    numeric_leaves(a, "", &mut leaves_a);
    numeric_leaves(b, "", &mut leaves_b);
    let lookup_b: std::collections::BTreeMap<&str, f64> = leaves_b
        .iter()
        .map(|(path, value)| (path.as_str(), *value))
        .collect();
    let mut rows = Vec::new();
    let mut unmatched = Vec::new();
    for (path, value_a) in &leaves_a {
        let Some(&value_b) = lookup_b.get(path.as_str()) else {
            unmatched.push(path.clone());
            continue;
        };
        let gating = path.contains("per_sec");
        let regressed = gating && value_b < value_a * (1.0 - tolerance_pct / 100.0);
        rows.push(MetricRow {
            metric: path.clone(),
            a: *value_a,
            b: value_b,
            gating,
            regressed,
        });
    }
    let matched: std::collections::BTreeSet<&str> = rows.iter().map(|r| r.metric.as_str()).collect();
    for (path, _) in &leaves_b {
        if !matched.contains(path.as_str()) {
            unmatched.push(path.clone());
        }
    }
    BenchDiff {
        tolerance_pct,
        rows,
        unmatched,
    }
}

/// Loads and compares two `BENCH_*.json` files.
pub fn diff_bench_files(path_a: &Path, path_b: &Path, tolerance_pct: f64) -> Result<BenchDiff, String> {
    let load = |path: &Path| -> Result<Json, String> {
        let text = std::fs::read_to_string(path).map_err(|err| format!("{}: {err}", path.display()))?;
        Json::parse(&text).map_err(|err| format!("{}: {err}", path.display()))
    };
    Ok(diff_bench_json(&load(path_a)?, &load(path_b)?, tolerance_pct))
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASELINE: &str = r#"{
        "schema": "kingsguard-bench-profile",
        "stages": {
            "page-map": {"events": 1000, "events_per_sec": 50000.0},
            "cache-model": {"events": 1000, "events_per_sec": 80000.0}
        },
        "replay": {"events_per_sec": 12000.0}
    }"#;

    #[test]
    fn self_compare_has_zero_drift() {
        let json = Json::parse(BASELINE).unwrap();
        let diff = diff_bench_json(&json, &json, DEFAULT_TOLERANCE_PCT);
        assert!(diff.passes(), "{}", diff.report());
        assert_eq!(diff.regressions(), 0);
        assert!(diff.rows.iter().filter(|r| r.gating).count() >= 3);
    }

    #[test]
    fn detects_a_twenty_percent_slowdown() {
        let baseline = Json::parse(BASELINE).unwrap();
        let slowed = Json::parse(&BASELINE.replace("50000.0", "40000.0")).unwrap();
        let diff = diff_bench_json(&baseline, &slowed, DEFAULT_TOLERANCE_PCT);
        assert_eq!(diff.regressions(), 1, "{}", diff.report());
        assert!(!diff.passes());
        let row = diff.rows.iter().find(|r| r.regressed).unwrap();
        assert_eq!(row.metric, "stages.page-map.events_per_sec");
        // The same slowdown passes with a looser band.
        assert!(diff_bench_json(&baseline, &slowed, 25.0).passes());
    }

    #[test]
    fn event_counts_do_not_gate_but_missing_metrics_fail() {
        let baseline = Json::parse(BASELINE).unwrap();
        // Halved event count: informational only.
        let fewer = Json::parse(&BASELINE.replace("\"events\": 1000", "\"events\": 500")).unwrap();
        assert!(diff_bench_json(&baseline, &fewer, DEFAULT_TOLERANCE_PCT).passes());
        // A dropped metric fails even though nothing regressed.
        let dropped =
            Json::parse(&BASELINE.replace("\"replay\": {\"events_per_sec\": 12000.0}", "\"replay\": {}"))
                .unwrap();
        let diff = diff_bench_json(&baseline, &dropped, DEFAULT_TOLERANCE_PCT);
        assert!(!diff.passes());
        assert_eq!(diff.unmatched, vec!["replay.events_per_sec".to_string()]);
    }

    #[test]
    fn file_roundtrip_works() {
        let dir = std::env::temp_dir().join(format!("kgbenchdiff-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path_a = dir.join("a.json");
        let path_b = dir.join("b.json");
        std::fs::write(&path_a, BASELINE).unwrap();
        std::fs::write(&path_b, BASELINE.replace("12000.0", "9000.0")).unwrap();
        let diff = diff_bench_files(&path_a, &path_b, DEFAULT_TOLERANCE_PCT).unwrap();
        assert_eq!(diff.regressions(), 1);
        assert!(diff_bench_files(&path_a, &dir.join("missing.json"), 15.0).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
