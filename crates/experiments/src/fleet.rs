//! The multi-tenant fleet experiment (`repro fleet`).
//!
//! Runs the same fleet of tenant sessions twice — once with naive
//! round-robin tenant placement, once with the wear broker's levelling —
//! and reports what only fleet scope can show: cumulative device damage
//! (failed lines, retired pages, lost capacity), the real-time
//! years-to-first-uncorrectable projection, tail GC pauses across every
//! session, aggregate modeled throughput, and the warm-vs-cold KG-D
//! comparison enabled by the shared advice store. Both runs are
//! deterministic for a fixed seed regardless of `--jobs`; with
//! `--telemetry-dir` each writes a fleet-level `.kgmetrics` document
//! (`fleet-round-robin.kgmetrics`, `fleet-wear-levelled.kgmetrics`) whose
//! deterministic half is drift-free across same-seed runs.

use std::path::Path;

use ::fleet::{run_fleet, FleetConfig, FleetOutcome, PlacementStrategy};
use telemetry::{fmt_ns, write_jsonl, RunMeta};

use crate::report::TextTable;
use crate::runner::{metrics_path, ExperimentConfig};

/// Fleet size when `--tenants` is not given.
pub const DEFAULT_TENANTS: usize = 256;

/// Results of the two-strategy fleet comparison.
#[derive(Clone, Debug)]
pub struct FleetResults {
    /// Tenant sessions per fleet.
    pub tenants: usize,
    /// One outcome per strategy: round-robin first, wear-levelled second.
    pub runs: Vec<FleetOutcome>,
}

/// The fleet configuration `repro fleet` derives from the experiment
/// flags: the experiment's seed, scale and worker threads over the fleet
/// crate's default geometry (8 regions, waves of 16, warm starts on).
pub fn fleet_config(config: &ExperimentConfig, tenants: usize) -> FleetConfig {
    FleetConfig::new(tenants)
        .with_seed(config.seed)
        .with_scale(config.scale)
        .with_jobs(config.jobs)
}

/// Runs the round-robin and wear-levelled fleets and (when
/// `config.telemetry_dir` is set) writes one fleet-level `.kgmetrics`
/// document per strategy.
pub fn fleet_comparison(config: &ExperimentConfig, tenants: usize) -> FleetResults {
    let runs = [PlacementStrategy::RoundRobin, PlacementStrategy::WearLevelled]
        .iter()
        .map(|&strategy| {
            let outcome = run_fleet(&fleet_config(config, tenants).with_strategy(strategy));
            if let Some(dir) = &config.telemetry_dir {
                write_fleet_metrics(dir, &outcome);
            }
            outcome
        })
        .collect();
    FleetResults { tenants, runs }
}

fn write_fleet_metrics(dir: &Path, outcome: &FleetOutcome) {
    let path = metrics_path(dir, "fleet", outcome.strategy.label());
    let meta = RunMeta {
        benchmark: "fleet".to_string(),
        collector: outcome.strategy.label().to_string(),
        seed: outcome.seed,
        scale: outcome.scale,
    };
    write_jsonl(&path, &meta, &outcome.fleet_report())
        .unwrap_or_else(|err| panic!("cannot write {}: {err}", path.display()));
}

fn format_years(years: Option<f64>) -> String {
    match years {
        None => "never".to_string(),
        Some(years) if !(0.1..1_000.0).contains(&years) => format!("{years:.1e}"),
        Some(years) => format!("{years:.1}"),
    }
}

fn format_bytes(bytes: u64) -> String {
    if bytes >= 1 << 20 {
        format!("{:.1} MB", bytes as f64 / (1 << 20) as f64)
    } else if bytes >= 1 << 10 {
        format!("{:.1} KB", bytes as f64 / (1 << 10) as f64)
    } else {
        format!("{bytes} B")
    }
}

fn format_rate(rate: f64) -> String {
    if rate >= 1e6 {
        format!("{:.2}M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.1}k", rate / 1e3)
    } else {
        format!("{rate:.0}")
    }
}

fn pause_cell(outcome: &FleetOutcome, value: u64) -> String {
    if outcome.pauses.count > 0 {
        fmt_ns(value)
    } else {
        "-".to_string()
    }
}

impl FleetResults {
    /// Tenant sessions that died (panicked) across both fleets.
    pub fn failures(&self) -> usize {
        self.runs.iter().map(|run| run.failures.len()).sum()
    }

    /// The outcome of one strategy's fleet.
    pub fn run(&self, strategy: PlacementStrategy) -> &FleetOutcome {
        self.runs
            .iter()
            .find(|run| run.strategy == strategy)
            .expect("both strategies ran")
    }

    /// Renders the comparison: one device/throughput row per strategy, the
    /// wear-levelled fleet's warm-vs-cold KG-D table, and a row per died
    /// tenant (if any).
    pub fn report(&self) -> String {
        let mut table = TextTable::new(
            &format!(
                "Multi-tenant fleet: {} sessions over {} device regions, round-robin vs\n\
                 wear-levelled placement ('Years to UE' = real-time years until the device's\n\
                 first ECC-uncorrectable page at the fleet's cumulative write rates; pauses\n\
                 are wall-clock timing over every session; events/s is modeled)",
                self.tenants,
                self.runs.first().map_or(0, |run| run.regions),
            ),
            &[
                "Placement",
                "Done",
                "Died",
                "Warm/drift/cold",
                "Failed lines",
                "Retired pages",
                "Degraded",
                "Years to UE",
                "p99 pause",
                "Max pause",
                "Events/s",
            ],
        );
        for run in &self.runs {
            table.row(vec![
                run.strategy.label().to_string(),
                run.completed().to_string(),
                run.failures.len().to_string(),
                format!(
                    "{}/{}/{}",
                    run.warm_starts, run.drifted_warm_starts, run.cold_starts
                ),
                run.failed_lines.to_string(),
                run.retired_pages.to_string(),
                format_bytes(run.degraded_bytes),
                format_years(run.years_to_first_ue),
                pause_cell(run, run.pauses.p99),
                pause_cell(run, run.pauses.max),
                format_rate(run.events_per_sec()),
            ]);
        }
        let mut out = table.render();
        let levelled = self.run(PlacementStrategy::WearLevelled);
        let rows = levelled.warm_cold_comparison();
        if !rows.is_empty() {
            let mut warm = TextTable::new(
                "Advice-store warm starts vs cold starts (wear-levelled fleet, KG-D tenants,\n\
                 like-for-like (benchmark, scale) groups; rates are modeled PCM bytes/s)",
                &[
                    "Benchmark",
                    "Scale",
                    "Cold n",
                    "Warm n",
                    "Cold PCM B/s",
                    "Warm PCM B/s",
                    "Warm/cold",
                ],
            );
            for row in &rows {
                warm.row(vec![
                    row.benchmark.clone(),
                    row.scale.to_string(),
                    row.cold_sessions.to_string(),
                    row.warm_sessions.to_string(),
                    format_rate(row.cold_rate),
                    format_rate(row.warm_rate),
                    if row.cold_rate > 0.0 {
                        format!("{:.2}", row.warm_rate / row.cold_rate)
                    } else {
                        "-".to_string()
                    },
                ]);
            }
            out.push('\n');
            out.push_str(&warm.render());
        }
        if let Some(ratio) = levelled.warm_cold_ratio() {
            out.push_str(&format!(
                "warm-started KG-D tenants wrote {:.0}% of the cold tenants' PCM rate\n",
                ratio * 100.0
            ));
        }
        for run in &self.runs {
            for failure in &run.failures {
                out.push_str(&format!(
                    "tenant #{} ({}, {}) died: {}\n",
                    failure.index,
                    failure.benchmark,
                    run.strategy.label(),
                    failure.message
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ::fleet::{AdviceLookup, AdviceStore};
    use advice::SiteMapDrift;
    use hybrid_mem::{MemoryConfig, MemoryKind};
    use kingsguard::{HeapConfig, KingsguardHeap};
    use telemetry::{diff_docs, TelemetryDoc};
    use workloads::{benchmark, site_map_hash, SyntheticMutator, WorkloadConfig};

    #[test]
    fn fleet_metrics_have_zero_drift_across_jobs_and_reruns() {
        // Two same-seed fleet comparisons — one serial, one fanned over
        // worker threads — must emit bit-identical deterministic halves in
        // their .kgmetrics documents (`repro metrics diff` gates on this),
        // and the wear-levelled fleet must visibly out-live the naive one.
        let base = std::env::temp_dir().join(format!("kgfleet-metrics-{}", std::process::id()));
        let mut results = Vec::new();
        for (tag, jobs) in [("a", 1), ("b", 3)] {
            let dir = base.join(tag);
            std::fs::create_dir_all(&dir).unwrap();
            let config = ExperimentConfig::quick().with_jobs(jobs).with_telemetry_dir(&dir);
            results.push((dir, fleet_comparison(&config, 64)));
        }
        let (dir_a, first) = &results[0];
        let (dir_b, second) = &results[1];
        assert_eq!(
            first.failures(),
            0,
            "no tenant may die: {:?}",
            first.runs[0].failures
        );
        for strategy in [PlacementStrategy::RoundRobin, PlacementStrategy::WearLevelled] {
            let load =
                |dir: &Path| TelemetryDoc::load(&metrics_path(dir, "fleet", strategy.label())).unwrap();
            let diff = diff_docs(&load(dir_a), &load(dir_b));
            assert!(
                !diff.has_drift(),
                "{} fleet metrics drifted across --jobs: {:?}",
                strategy.label(),
                diff.drift
            );
        }
        let naive = first.run(PlacementStrategy::RoundRobin);
        let levelled = first.run(PlacementStrategy::WearLevelled);
        assert!(naive.retired_pages > 0, "the naive fleet must damage the device");
        assert!(
            levelled.retired_pages < naive.retired_pages,
            "wear levelling must retire fewer pages ({} vs {})",
            levelled.retired_pages,
            naive.retired_pages
        );
        let report = first.report();
        assert!(report.contains("wear-levelled") && report.contains("round-robin"));
        assert!(report.contains("Years to UE"));
        let reports_match = second.run(PlacementStrategy::RoundRobin).retired_pages == naive.retired_pages;
        assert!(reports_match, "fleet damage must be jobs-invariant");
        std::fs::remove_dir_all(&base).ok();
    }

    fn session(heap_config: HeapConfig, name: &str, scale: u64) -> (u64, Option<advice::AdviceTable>) {
        let profile = benchmark(name).expect("known benchmark");
        let mut heap = KingsguardHeap::new(
            heap_config.with_heap_budget((profile.scaled_heap_bytes(scale)).max(2 << 20) as usize),
            MemoryConfig::architecture_independent(),
        );
        SyntheticMutator::new(profile, WorkloadConfig { scale, seed: 7 }).run(&mut heap);
        let snapshot = heap.policy().advice_snapshot();
        let report = heap.finish();
        (report.memory.bytes_written(MemoryKind::Pcm), snapshot)
    }

    #[test]
    fn stale_drifted_advice_falls_back_per_site_and_never_loses_to_kg_n() {
        let scale = 2048;
        // Advice learned by KG-D on one workload...
        let (_, snapshot) = session(HeapConfig::kg_d(), "lusearch", scale);
        let stale = snapshot.expect("KG-D learns DRAM sites on lusearch");
        // ...deposited under a site-map hash that no longer matches: the
        // store reports it *drifted*, not rejected.
        let mut store = AdviceStore::new();
        store.deposit("xalan", 0xDEAD_BEEF, stale, 0);
        let lookup = store.lookup("xalan", site_map_hash());
        let AdviceLookup::Warm { snapshot, drift } = lookup else {
            panic!("stale advice must still warm-start");
        };
        assert!(matches!(drift, SiteMapDrift::Drifted { .. }));
        // Warm-starting a *different* workload from the stale table applies
        // it per-site: sites it wrongly sends to DRAM cost DRAM (harmless
        // here), sites it sends to PCM are KG-D's cold default, and online
        // adaptation still moves write-heavy sites off PCM — so the stale
        // warm start can never write more PCM than the static KG-N baseline.
        let (stale_pcm, _) = session(HeapConfig::kg_d_with(snapshot.table), "xalan", scale);
        let (kg_n_pcm, _) = session(HeapConfig::kg_n(), "xalan", scale);
        assert!(
            stale_pcm <= kg_n_pcm,
            "stale warm start must stay at or below KG-N PCM bytes ({stale_pcm} vs {kg_n_pcm})"
        );
    }
}
