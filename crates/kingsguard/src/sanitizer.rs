//! Sanitizer hook points: a second passive observer beside the record tap.
//!
//! A *sanitizer* is an invariant checker installed on a heap (see the
//! `kingsguard-check` crate for the implementation). It observes the same
//! mutator-visible event stream as the [`crate::tap`] — so it can maintain a
//! shadow copy of the object graph — plus two things the tap never sees:
//! TLAB carves (for the overlap check) and *checkpoints*, the safepoint/GC
//! boundaries at which heap invariants must hold and at which the sanitizer
//! gets read access to the heap to verify them.
//!
//! Hooks MUST be passive: a checkpoint receives `&KingsguardHeap` and the
//! heap's inspection API ([`crate::KingsguardHeap::peek_u64`] and friends)
//! never issues simulated memory traffic, so a sanitized run is bit-identical
//! to an unsanitized one. Unlike the tap, the sanitizer and the tap can be
//! installed simultaneously — the heap fans each event out to both.

use crate::runtime::KingsguardHeap;
use crate::tap::{CollectKind, HeapEvent};

/// Where in the run a sanitizer checkpoint fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckPoint {
    /// An explicit mutator safepoint ([`KingsguardHeap::safepoint`]), after
    /// every store buffer has drained and every counter shard has merged.
    Safepoint,
    /// Entry of a collection, after the safepoint drain and **before** any
    /// tracing — the point at which the remembered sets must already cover
    /// every old-to-young edge the trace is about to rely on.
    PreCollect(CollectKind),
    /// Exit of a collection, after survivors were evacuated and spaces
    /// reset/swept — the point at which no live reference may dangle and no
    /// live object may remain on a retired page.
    PostCollect(CollectKind),
    /// [`KingsguardHeap::finish`], after the final safepoint.
    Finish,
}

impl CheckPoint {
    /// Short label for reports ("safepoint", "pre-nursery", ...).
    pub fn label(self) -> &'static str {
        match self {
            CheckPoint::Safepoint => "safepoint",
            CheckPoint::PreCollect(CollectKind::Young) => "pre-young",
            CheckPoint::PreCollect(CollectKind::Nursery) => "pre-nursery",
            CheckPoint::PreCollect(CollectKind::Observer) => "pre-observer",
            CheckPoint::PreCollect(CollectKind::Full) => "pre-full",
            CheckPoint::PostCollect(CollectKind::Young) => "post-young",
            CheckPoint::PostCollect(CollectKind::Nursery) => "post-nursery",
            CheckPoint::PostCollect(CollectKind::Observer) => "post-observer",
            CheckPoint::PostCollect(CollectKind::Full) => "post-full",
            CheckPoint::Finish => "finish",
        }
    }
}

/// A violation notice returned from a checkpoint, in the heap's vocabulary.
/// The heap surfaces each note as a deterministic `check.violation`
/// telemetry event; the `kingsguard-check` crate keeps the fully typed
/// [`CheckViolation`](https://docs.rs/kingsguard-check) alongside.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SanitizerNote {
    /// Short machine-readable kind, e.g. `"remset-incomplete"`.
    pub kind: &'static str,
    /// Human-readable description carrying the provenance.
    pub detail: String,
}

/// A passive invariant checker installable on a [`KingsguardHeap`] (at most
/// one at a time, like the tap). See the module docs for the passivity
/// contract. `Debug` is required because the heap (which owns the installed
/// box) derives it.
pub trait HeapSanitizer: std::fmt::Debug {
    /// Observes one mutator-visible heap event (the same stream, in the same
    /// program order, as the record tap).
    fn on_event(&mut self, event: &HeapEvent);

    /// Observes a TLAB window of `len` bytes carved at address `start` for
    /// mutator context `ctx`.
    fn on_tlab_carve(&mut self, ctx: usize, start: u64, len: usize);

    /// Runs invariant checks at `point` with passive read access to the
    /// heap, returning a note per newly found violation.
    fn at_checkpoint(&mut self, point: CheckPoint, heap: &KingsguardHeap) -> Vec<SanitizerNote>;
}

/// Passive snapshot of one live mutator context's drain-discipline state,
/// taken by [`KingsguardHeap::mutator_snapshots`]. At a checkpoint the store
/// buffer must be empty and the counter shard merged (zero).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MutatorSnapshot {
    /// The context's slot index.
    pub ctx: usize,
    /// Buffered, not-yet-replayed store-barrier events.
    pub pending_events: usize,
    /// Unmerged device reads in the context's counter shard (DRAM, PCM).
    pub shard_reads: [u64; 2],
    /// Unmerged device writes in the context's counter shard (DRAM, PCM).
    pub shard_writes: [u64; 2],
}

/// The monolithic device totals next to the heap's own shard accounting
/// (base shard plus every mutator shard), from
/// [`KingsguardHeap::shard_conservation`]. The two sides are computed along
/// independent paths through the memory controller; any difference means a
/// counter shard leaked out of the heap's bookkeeping.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardConservation {
    /// Folded controller totals: device reads (DRAM, PCM).
    pub total_reads: [u64; 2],
    /// Folded controller totals: device writes (DRAM, PCM).
    pub total_writes: [u64; 2],
    /// Base shard + per-mutator shards: device reads (DRAM, PCM).
    pub shard_reads: [u64; 2],
    /// Base shard + per-mutator shards: device writes (DRAM, PCM).
    pub shard_writes: [u64; 2],
}

impl ShardConservation {
    /// Returns `true` when both sides agree exactly.
    pub fn holds(&self) -> bool {
        self.total_reads == self.shard_reads && self.total_writes == self.shard_writes
    }
}
