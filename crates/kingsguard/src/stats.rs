//! Collector statistics.
//!
//! Everything the paper's evaluation section reports that is not already a
//! memory-controller counter is gathered here: collection counts, copied
//! bytes, nursery / observer survival rates, barrier-level (architecture
//! independent) write counts per target generation, per-object mature write
//! distribution (Figure 2), heap-composition samples over time (Figure 13)
//! and abstract work counts that feed the execution-time model.

use std::collections::HashMap;

use advice::SiteId;
use hybrid_mem::timing::WorkCounts;
use hybrid_mem::Address;

/// Which generation a barrier-observed application write targeted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteTarget {
    /// The write hit an object still in the nursery.
    Nursery,
    /// The write hit an object outside the nursery (observer or mature or
    /// large).
    Mature,
}

/// One point of the heap-composition time series (Figure 13).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CompositionSample {
    /// Cumulative bytes allocated by the application when the sample was
    /// taken (the x-axis proxy for execution time).
    pub allocated_bytes: u64,
    /// Bytes of mature + large heap residing in PCM.
    pub pcm_bytes: u64,
    /// Bytes of mature + large heap residing in DRAM (excluding nursery and
    /// observer space, as in the paper's Figure 13).
    pub dram_bytes: u64,
}

/// Counters describing one collection type.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CollectionCounters {
    /// Number of collections of this type.
    pub collections: u64,
    /// Bytes of live objects copied (evacuated or promoted).
    pub bytes_copied: u64,
    /// Objects copied.
    pub objects_copied: u64,
}

/// Aggregated collector statistics for one run.
#[derive(Clone, Debug, Default)]
pub struct GcStats {
    /// Nursery collections.
    pub nursery: CollectionCounters,
    /// Observer-space collections (KG-W only).
    pub observer: CollectionCounters,
    /// Full-heap collections.
    pub major: CollectionCounters,

    /// Total bytes allocated by the application (all spaces).
    pub bytes_allocated: u64,
    /// Objects allocated by the application.
    pub objects_allocated: u64,
    /// Bytes allocated directly into a large object space.
    pub large_bytes_allocated: u64,
    /// Large objects allocated into the nursery by the LOO optimization.
    pub large_objects_in_nursery: u64,

    /// Bytes that survived a nursery collection (promoted out of the nursery).
    pub nursery_survived_bytes: u64,
    /// Bytes collected out of the nursery (denominator for survival).
    pub nursery_collected_bytes: u64,
    /// Bytes that survived an observer collection.
    pub observer_survived_bytes: u64,
    /// Bytes collected out of the observer space.
    pub observer_collected_bytes: u64,
    /// Observer survivors placed in the DRAM mature space (bytes).
    pub observer_to_dram_bytes: u64,
    /// Observer survivors placed in the PCM mature space (bytes).
    pub observer_to_pcm_bytes: u64,
    /// Observer survivors placed in DRAM (objects).
    pub observer_to_dram_objects: u64,
    /// Observer survivors placed in PCM (objects).
    pub observer_to_pcm_objects: u64,
    /// Written objects rescued from mature PCM back to mature DRAM.
    pub pcm_to_dram_rescues: u64,
    /// Unwritten objects demoted from mature DRAM to mature PCM.
    pub dram_to_pcm_demotions: u64,
    /// Written large objects moved from the PCM to the DRAM large space.
    pub large_pcm_to_dram_moves: u64,
    /// Live objects force-evacuated off dying PCM pages before retirement.
    pub fault_evacuated_objects: u64,
    /// Bytes force-evacuated off dying PCM pages before retirement.
    pub fault_evacuated_bytes: u64,
    /// PCM pages retired (fenced and remapped) after uncorrectable wear.
    pub fault_pages_retired: u64,
    /// Nursery survivors pretenured into mature DRAM by site advice (KG-A).
    pub advised_to_dram_objects: u64,
    /// Bytes pretenured into mature DRAM by site advice (KG-A).
    pub advised_to_dram_bytes: u64,
    /// Nursery survivors placed in PCM by site advice or its default (KG-A).
    pub advised_to_pcm_objects: u64,
    /// Bytes placed in PCM by site advice or its default (KG-A).
    pub advised_to_pcm_bytes: u64,

    /// Barrier-observed application reference writes.
    pub reference_writes: u64,
    /// Barrier-observed application primitive writes.
    pub primitive_writes: u64,
    /// Barrier-observed writes per target generation.
    pub writes_to_nursery_objects: u64,
    /// Barrier-observed writes to non-nursery objects.
    pub writes_to_mature_objects: u64,
    /// Remembered-set insertions performed by the barrier.
    pub remset_insertions: u64,

    /// Per-object write counts for non-nursery objects, keyed by the
    /// object's *current* address (entries are re-keyed when the collector
    /// moves an object). Drives the Figure 2 "top N %" analysis.
    pub mature_object_writes: HashMap<u64, u64>,

    /// Allocation site of each tagged live object, keyed by the object's
    /// *current* address (re-keyed on every move, like
    /// [`GcStats::mature_object_writes`]). Feeds the site profiler and the
    /// KG-A placement decisions; objects allocated through the untagged
    /// [`crate::KingsguardHeap::alloc`] entry point have no entry.
    pub object_sites: HashMap<u64, u32>,

    /// Rescued objects per allocation site (cumulative; only populated for
    /// site-tracking policies). Adaptive policies consume this in
    /// `PlacementPolicy::on_gc_feedback`.
    pub site_rescues: HashMap<u32, u64>,
    /// Demoted objects per allocation site (cumulative; only populated for
    /// site-tracking policies).
    pub site_demotions: HashMap<u32, u64>,

    /// Heap composition samples, one per collection (Figure 13).
    pub composition: Vec<CompositionSample>,

    /// Abstract work counts feeding the execution-time model.
    pub work: WorkCounts,

    /// Peak bytes of PCM mapped for heap spaces.
    pub peak_pcm_mapped: u64,
    /// Peak bytes of DRAM mapped for heap spaces.
    pub peak_dram_mapped: u64,
    /// Peak bytes used by the DRAM mature space.
    pub peak_mature_dram_used: u64,
    /// Peak bytes used by metadata tables.
    pub peak_metadata_used: u64,
}

impl GcStats {
    /// Nursery survival rate in `[0, 1]` (bytes surviving / bytes collected).
    pub fn nursery_survival(&self) -> f64 {
        ratio(self.nursery_survived_bytes, self.nursery_collected_bytes)
    }

    /// Observer-space survival rate in `[0, 1]`.
    pub fn observer_survival(&self) -> f64 {
        ratio(self.observer_survived_bytes, self.observer_collected_bytes)
    }

    /// Fraction of observer survivors (by bytes) retained in mature DRAM.
    pub fn observer_dram_fraction(&self) -> f64 {
        ratio(
            self.observer_to_dram_bytes,
            self.observer_to_dram_bytes + self.observer_to_pcm_bytes,
        )
    }

    /// Fraction of observer survivors (by objects) retained in mature DRAM.
    pub fn observer_dram_object_fraction(&self) -> f64 {
        ratio(
            self.observer_to_dram_objects,
            self.observer_to_dram_objects + self.observer_to_pcm_objects,
        )
    }

    /// Fraction of barrier-observed application writes that hit nursery
    /// objects (the per-benchmark bars of Figure 2).
    pub fn nursery_write_fraction(&self) -> f64 {
        ratio(
            self.writes_to_nursery_objects,
            self.writes_to_nursery_objects + self.writes_to_mature_objects,
        )
    }

    /// Records a barrier-observed application write.
    pub fn record_app_write(&mut self, target: WriteTarget, obj_addr: Address) {
        match target {
            WriteTarget::Nursery => self.writes_to_nursery_objects += 1,
            WriteTarget::Mature => {
                self.writes_to_mature_objects += 1;
                *self.mature_object_writes.entry(obj_addr.raw()).or_insert(0) += 1;
            }
        }
    }

    /// Re-keys the per-object write count and site tag of a moved object.
    pub fn object_moved(&mut self, from: Address, to: Address) {
        if let Some(count) = self.mature_object_writes.remove(&from.raw()) {
            *self.mature_object_writes.entry(to.raw()).or_insert(0) += count;
        }
        if !self.object_sites.is_empty() {
            match self.object_sites.remove(&from.raw()) {
                Some(site) => {
                    self.object_sites.insert(to.raw(), site);
                }
                // The destination address may be recycled space previously
                // occupied by a dead tagged object; an untagged arrival must
                // clear that stale tag, not inherit it.
                None => {
                    self.object_sites.remove(&to.raw());
                }
            }
        }
    }

    /// Tags the object at `addr` with its allocation site.
    pub fn record_site(&mut self, addr: Address, site: SiteId) {
        if !site.is_unknown() {
            self.object_sites.insert(addr.raw(), site.raw());
        } else {
            // The address may be recycled from a released site-tagged object;
            // drop the stale tag rather than misattribute the newcomer.
            self.object_sites.remove(&addr.raw());
        }
    }

    /// The allocation site of the object at `addr` ([`SiteId::UNKNOWN`] for
    /// untagged objects).
    pub fn site_of(&self, addr: Address) -> SiteId {
        self.object_sites
            .get(&addr.raw())
            .copied()
            .map(SiteId)
            .unwrap_or(SiteId::UNKNOWN)
    }

    /// Records a rescue of a known-site object (PCM → DRAM).
    pub fn record_site_rescue(&mut self, site: SiteId) {
        if !site.is_unknown() {
            *self.site_rescues.entry(site.raw()).or_insert(0) += 1;
        }
    }

    /// Records a demotion of a known-site object (DRAM → PCM).
    pub fn record_site_demotion(&mut self, site: SiteId) {
        if !site.is_unknown() {
            *self.site_demotions.entry(site.raw()).or_insert(0) += 1;
        }
    }

    /// Fraction of advised placements (by objects) that chose mature DRAM.
    pub fn advised_dram_object_fraction(&self) -> f64 {
        ratio(
            self.advised_to_dram_objects,
            self.advised_to_dram_objects + self.advised_to_pcm_objects,
        )
    }

    /// Fraction of writes to mature objects captured by the most-written
    /// `fraction` of mature objects (e.g. `0.02` reproduces the paper's
    /// "top 2 % of objects capture 81 % of mature writes").
    pub fn top_mature_writer_share(&self, fraction: f64) -> f64 {
        if self.mature_object_writes.is_empty() {
            return 0.0;
        }
        let mut counts: Vec<u64> = self.mature_object_writes.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let top_n = ((counts.len() as f64 * fraction).ceil() as usize).max(1);
        let top: u64 = counts.iter().take(top_n).sum();
        top as f64 / total as f64
    }

    /// Appends a heap-composition sample.
    pub fn sample_composition(&mut self, sample: CompositionSample) {
        self.composition.push(sample);
    }

    /// Total collections of all types.
    pub fn total_collections(&self) -> u64 {
        self.nursery.collections + self.observer.collections + self.major.collections
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn survival_rates() {
        let stats = GcStats {
            nursery_survived_bytes: 20,
            nursery_collected_bytes: 100,
            observer_survived_bytes: 30,
            observer_collected_bytes: 60,
            ..Default::default()
        };
        assert!((stats.nursery_survival() - 0.2).abs() < 1e-12);
        assert!((stats.observer_survival() - 0.5).abs() < 1e-12);
        assert_eq!(GcStats::default().nursery_survival(), 0.0);
    }

    #[test]
    fn write_demographics() {
        let mut stats = GcStats::default();
        for _ in 0..70 {
            stats.record_app_write(WriteTarget::Nursery, Address::new(0x10));
        }
        for i in 0..30 {
            stats.record_app_write(WriteTarget::Mature, Address::new(0x1000 + (i % 3) * 64));
        }
        assert!((stats.nursery_write_fraction() - 0.7).abs() < 1e-12);
        assert_eq!(stats.mature_object_writes.len(), 3);
    }

    #[test]
    fn top_writer_share_is_concentrated_for_skewed_writes() {
        let mut stats = GcStats::default();
        // One hot object gets 90 writes, 99 cold objects get one write each.
        for _ in 0..90 {
            stats.record_app_write(WriteTarget::Mature, Address::new(0xdead));
        }
        for i in 0..99u64 {
            stats.record_app_write(WriteTarget::Mature, Address::new(0x1_0000 + i * 64));
        }
        let share = stats.top_mature_writer_share(0.01);
        assert!(
            share > 0.45,
            "top 1% should capture the hot object's writes: {share}"
        );
        assert!(stats.top_mature_writer_share(1.0) > 0.999);
    }

    #[test]
    fn object_moved_rekeys_counts() {
        let mut stats = GcStats::default();
        stats.record_app_write(WriteTarget::Mature, Address::new(0x100));
        stats.record_app_write(WriteTarget::Mature, Address::new(0x100));
        stats.object_moved(Address::new(0x100), Address::new(0x200));
        assert_eq!(stats.mature_object_writes.get(&0x200), Some(&2));
        assert!(!stats.mature_object_writes.contains_key(&0x100));
        // Moving an object with no recorded writes is harmless.
        stats.object_moved(Address::new(0x300), Address::new(0x400));
    }

    #[test]
    fn site_tags_follow_moved_objects() {
        let mut stats = GcStats::default();
        stats.record_site(Address::new(0x100), SiteId(7));
        assert_eq!(stats.site_of(Address::new(0x100)), SiteId(7));
        stats.object_moved(Address::new(0x100), Address::new(0x200));
        assert_eq!(stats.site_of(Address::new(0x200)), SiteId(7));
        assert_eq!(stats.site_of(Address::new(0x100)), SiteId::UNKNOWN);
        // An untagged allocation at a recycled address clears the stale tag.
        stats.record_site(Address::new(0x200), SiteId::UNKNOWN);
        assert_eq!(stats.site_of(Address::new(0x200)), SiteId::UNKNOWN);
    }

    #[test]
    fn untagged_object_copied_onto_a_dead_tagged_objects_address_clears_the_tag() {
        let mut stats = GcStats::default();
        // A tagged object lived (and died) at 0x500; its entry lingers.
        stats.record_site(Address::new(0x500), SiteId(9));
        // An untagged object is copied onto the recycled address: it must
        // not inherit the dead object's site.
        stats.object_moved(Address::new(0x900), Address::new(0x500));
        assert_eq!(stats.site_of(Address::new(0x500)), SiteId::UNKNOWN);
    }

    #[test]
    fn site_rescue_and_demotion_counters_skip_unknown_sites() {
        let mut stats = GcStats::default();
        stats.record_site_rescue(SiteId(3));
        stats.record_site_rescue(SiteId(3));
        stats.record_site_rescue(SiteId::UNKNOWN);
        stats.record_site_demotion(SiteId(4));
        stats.record_site_demotion(SiteId::UNKNOWN);
        assert_eq!(stats.site_rescues.get(&3), Some(&2));
        assert_eq!(stats.site_demotions.get(&4), Some(&1));
        assert!(!stats.site_rescues.contains_key(&0));
        assert!(!stats.site_demotions.contains_key(&0));
    }

    #[test]
    fn advised_fraction() {
        let mut stats = GcStats::default();
        assert_eq!(stats.advised_dram_object_fraction(), 0.0);
        stats.advised_to_dram_objects = 1;
        stats.advised_to_pcm_objects = 3;
        assert!((stats.advised_dram_object_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn dram_fraction_of_observer_survivors() {
        let stats = GcStats {
            observer_to_dram_bytes: 10,
            observer_to_pcm_bytes: 90,
            observer_to_dram_objects: 1,
            observer_to_pcm_objects: 9,
            ..Default::default()
        };
        assert!((stats.observer_dram_fraction() - 0.1).abs() < 1e-12);
        assert!((stats.observer_dram_object_fraction() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn composition_samples_accumulate() {
        let mut stats = GcStats::default();
        stats.sample_composition(CompositionSample {
            allocated_bytes: 1,
            pcm_bytes: 2,
            dram_bytes: 3,
        });
        stats.sample_composition(CompositionSample {
            allocated_bytes: 4,
            pcm_bytes: 5,
            dram_bytes: 6,
        });
        assert_eq!(stats.composition.len(), 2);
        assert_eq!(stats.composition[1].pcm_bytes, 5);
    }

    #[test]
    fn total_collections_sums_types() {
        let mut stats = GcStats::default();
        stats.nursery.collections = 3;
        stats.observer.collections = 2;
        stats.major.collections = 1;
        assert_eq!(stats.total_collections(), 6);
    }
}
