//! Collector and heap configuration.
//!
//! Reproduces Table 1 of the paper plus the baseline memory systems of
//! Section 4: the generational Immix baseline running on DRAM-only or
//! PCM-only memory, Kingsguard-nursery (KG-N) and Kingsguard-writers (KG-W)
//! with its Large Object Optimization (LOO), Metadata Optimization (MDO) and
//! primitive-write-monitoring toggles — and the profile-guided
//! Kingsguard-advice (KG-A), which replays a per-site write profile instead
//! of paying KG-W's online observer-space tax.

use advice::AdviceTable;
use hybrid_mem::MemoryKind;

/// Which collector algorithm manages the heap.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CollectorKind {
    /// The default generational Immix collector with every space on a single
    /// memory technology (the DRAM-only / PCM-only baselines).
    GenImmix {
        /// The single memory technology backing the whole heap.
        memory: MemoryKind,
    },
    /// Kingsguard-nursery: DRAM nursery, everything else in PCM.
    KingsguardNursery,
    /// Kingsguard-writers: DRAM nursery + observer space, per-object
    /// placement of mature objects by observed write behaviour.
    KingsguardWriters,
    /// Kingsguard-advice: DRAM nursery, no observer space; nursery survivors
    /// are pretenured into DRAM or PCM mature space according to the
    /// per-allocation-site advice table of [`HeapConfig::advice`], with
    /// KG-W-style rescue of written PCM objects as the misprediction
    /// fallback.
    KgAdvice,
    /// Kingsguard-dynamic: online-adaptive per-site placement. Starts from
    /// KG-N-like all-PCM placement (or the stale advice table in
    /// [`HeapConfig::advice`], if any) and refreshes per-site advice during
    /// the run from rescue/demotion feedback and barrier-observed PCM
    /// writes — no prior profiling run, no observer space.
    KgDynamic,
}

/// Feature toggles of Kingsguard-writers (Table 1 and Section 6.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct KgwOptions {
    /// Large Object Optimization: give large objects a chance to die in the
    /// nursery, and move written large PCM objects to a DRAM large space.
    pub large_object_optimization: bool,
    /// Metadata Optimization: keep the mark state of PCM objects in DRAM
    /// side tables.
    pub metadata_optimization: bool,
    /// Monitor primitive (non-reference) writes in the write barrier. When
    /// disabled this is the paper's "KG-W–PM" configuration.
    pub monitor_primitives: bool,
}

impl Default for KgwOptions {
    fn default() -> Self {
        KgwOptions {
            large_object_optimization: true,
            metadata_optimization: true,
            monitor_primitives: true,
        }
    }
}

/// Full heap configuration: collector, space sizes and heap budget.
///
/// Sizes default to the paper's values divided by [`HeapConfig::DEFAULT_SCALE`]
/// so that scaled-down synthetic workloads finish quickly while every ratio
/// (nursery : observer : heap) matches the paper.
#[derive(Clone, Debug, PartialEq)]
pub struct HeapConfig {
    /// The collector algorithm.
    pub collector: CollectorKind,
    /// Nursery size in bytes (4 MB in the paper).
    pub nursery_bytes: usize,
    /// Observer space size in bytes (8 MB in the paper — twice the nursery).
    pub observer_bytes: usize,
    /// Mature-heap budget in bytes; exceeding it triggers a full collection
    /// (2× the minimum live size in the paper).
    pub heap_budget_bytes: usize,
    /// Capacity of each large object space in bytes.
    pub los_capacity_bytes: usize,
    /// Capacity of the metadata space in bytes.
    pub metadata_capacity_bytes: usize,
    /// KG-W feature toggles (ignored by the other collectors).
    pub kgw: KgwOptions,
    /// Per-site placement advice (required by [`CollectorKind::KgAdvice`],
    /// ignored by the other collectors).
    pub advice: Option<AdviceTable>,
}

impl HeapConfig {
    /// Divisor applied to the paper's space sizes for scaled-down runs.
    pub const DEFAULT_SCALE: usize = 16;

    /// The paper's nursery size (4 MB).
    pub const PAPER_NURSERY_BYTES: usize = 4 << 20;

    /// The paper's observer-space size (8 MB).
    pub const PAPER_OBSERVER_BYTES: usize = 8 << 20;

    fn base(collector: CollectorKind) -> Self {
        let scale = Self::DEFAULT_SCALE;
        HeapConfig {
            collector,
            nursery_bytes: Self::PAPER_NURSERY_BYTES / scale,
            observer_bytes: Self::PAPER_OBSERVER_BYTES / scale,
            heap_budget_bytes: (96 << 20) / scale,
            los_capacity_bytes: (256 << 20) / scale,
            metadata_capacity_bytes: (32 << 20) / scale,
            kgw: KgwOptions::default(),
            advice: None,
        }
    }

    /// Generational Immix on a DRAM-only memory system.
    pub fn gen_immix_dram() -> Self {
        Self::base(CollectorKind::GenImmix {
            memory: MemoryKind::Dram,
        })
    }

    /// Generational Immix on a PCM-only memory system (with hardware line
    /// wear-leveling assumed by the memory model).
    pub fn gen_immix_pcm() -> Self {
        Self::base(CollectorKind::GenImmix {
            memory: MemoryKind::Pcm,
        })
    }

    /// Kingsguard-nursery (Table 1, row KG-N).
    pub fn kg_n() -> Self {
        Self::base(CollectorKind::KingsguardNursery)
    }

    /// Kingsguard-nursery with a 12 MB-equivalent (3×) nursery — the
    /// "KG-N-12" configuration of Figure 11.
    pub fn kg_n_large_nursery() -> Self {
        let mut config = Self::kg_n();
        config.nursery_bytes *= 3;
        config
    }

    /// Kingsguard-writers with all optimizations (Table 1, row KG-W).
    pub fn kg_w() -> Self {
        Self::base(CollectorKind::KingsguardWriters)
    }

    /// KG-W without the Large Object Optimization (Table 1, "KG-W–LOO").
    pub fn kg_w_no_loo() -> Self {
        let mut config = Self::kg_w();
        config.kgw.large_object_optimization = false;
        config
    }

    /// KG-W without LOO and without MDO (Table 1, "KG-W–LOO–MDO").
    pub fn kg_w_no_loo_no_mdo() -> Self {
        let mut config = Self::kg_w_no_loo();
        config.kgw.metadata_optimization = false;
        config
    }

    /// KG-W without primitive-write monitoring (Figure 11/12, "KG-W–PM").
    pub fn kg_w_no_primitive_monitoring() -> Self {
        let mut config = Self::kg_w();
        config.kgw.monitor_primitives = false;
        config
    }

    /// Kingsguard-advice: profile-guided placement driven by `advice`.
    pub fn kg_a(advice: AdviceTable) -> Self {
        let mut config = Self::base(CollectorKind::KgAdvice);
        config.advice = Some(advice);
        config
    }

    /// Kingsguard-dynamic: online-adaptive placement starting from KG-N-like
    /// all-PCM placement, with no prior profiling run.
    pub fn kg_d() -> Self {
        Self::base(CollectorKind::KgDynamic)
    }

    /// Kingsguard-dynamic seeded from a (possibly stale) advice table whose
    /// DRAM placements form the starting advice, refined online.
    pub fn kg_d_with(advice: AdviceTable) -> Self {
        let mut config = Self::base(CollectorKind::KgDynamic);
        config.advice = Some(advice);
        config
    }

    /// Sets the mature-heap budget (2× minimum live size in the paper's
    /// methodology) and scales the large-object space with it. The
    /// large-object spaces get four times the budget of virtual room: their
    /// pages are only mapped on demand, and the slack guarantees that a
    /// full-heap collection can always evacuate surviving large objects
    /// before the dead ones are swept.
    pub fn with_heap_budget(mut self, bytes: usize) -> Self {
        self.heap_budget_bytes = bytes;
        self.los_capacity_bytes = self.los_capacity_bytes.max(bytes * 4);
        self
    }

    /// Overrides the nursery size (and keeps the observer at twice the
    /// nursery, the paper's sizing rule).
    pub fn with_nursery(mut self, bytes: usize) -> Self {
        self.nursery_bytes = bytes;
        self.observer_bytes = bytes * 2;
        self
    }

    /// Returns `true` if this configuration uses an observer space.
    pub fn has_observer(&self) -> bool {
        matches!(self.collector, CollectorKind::KingsguardWriters)
    }

    /// Returns `true` if this configuration maintains DRAM mature and DRAM
    /// large spaces alongside the PCM ones (KG-W via the observer space,
    /// KG-A via profile-guided pretenuring).
    pub fn has_dram_mature(&self) -> bool {
        matches!(
            self.collector,
            CollectorKind::KingsguardWriters | CollectorKind::KgAdvice | CollectorKind::KgDynamic
        )
    }

    /// Returns `true` if this configuration has both DRAM and PCM spaces.
    pub fn is_hybrid(&self) -> bool {
        !matches!(self.collector, CollectorKind::GenImmix { .. })
    }

    /// Memory technology of the nursery.
    pub fn nursery_kind(&self) -> MemoryKind {
        match self.collector {
            CollectorKind::GenImmix { memory } => memory,
            _ => MemoryKind::Dram,
        }
    }

    /// Memory technology of the (primary) mature space.
    pub fn mature_kind(&self) -> MemoryKind {
        match self.collector {
            CollectorKind::GenImmix { memory } => memory,
            _ => MemoryKind::Pcm,
        }
    }

    /// Memory technology of metadata (mark tables, remset buffers).
    pub fn metadata_kind(&self) -> MemoryKind {
        match self.collector {
            CollectorKind::GenImmix { memory } => memory,
            CollectorKind::KingsguardNursery => MemoryKind::Pcm,
            CollectorKind::KingsguardWriters | CollectorKind::KgAdvice | CollectorKind::KgDynamic => {
                MemoryKind::Dram
            }
        }
    }

    /// Short name used in reports ("DRAM-only", "PCM-only", "KG-N", "KG-W",
    /// "KG-W-LOO", ...).
    pub fn label(&self) -> String {
        match self.collector {
            CollectorKind::GenImmix {
                memory: MemoryKind::Dram,
            } => "DRAM-only".to_string(),
            CollectorKind::GenImmix {
                memory: MemoryKind::Pcm,
            } => "PCM-only".to_string(),
            CollectorKind::KingsguardNursery => {
                if self.nursery_bytes > Self::PAPER_NURSERY_BYTES / Self::DEFAULT_SCALE {
                    "KG-N-12".to_string()
                } else {
                    "KG-N".to_string()
                }
            }
            CollectorKind::KingsguardWriters => {
                let mut label = "KG-W".to_string();
                if !self.kgw.large_object_optimization {
                    label.push_str("-LOO");
                }
                if !self.kgw.metadata_optimization {
                    label.push_str("-MDO");
                }
                if !self.kgw.monitor_primitives {
                    label.push_str("-PM");
                }
                label
            }
            CollectorKind::KgAdvice => "KG-A".to_string(),
            CollectorKind::KgDynamic => "KG-D".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_configurations() {
        assert_eq!(HeapConfig::kg_n().label(), "KG-N");
        assert_eq!(HeapConfig::kg_w().label(), "KG-W");
        assert_eq!(HeapConfig::kg_w_no_loo().label(), "KG-W-LOO");
        assert_eq!(HeapConfig::kg_w_no_loo_no_mdo().label(), "KG-W-LOO-MDO");
        assert_eq!(HeapConfig::kg_w_no_primitive_monitoring().label(), "KG-W-PM");
        assert_eq!(HeapConfig::gen_immix_dram().label(), "DRAM-only");
        assert_eq!(HeapConfig::gen_immix_pcm().label(), "PCM-only");
        assert_eq!(HeapConfig::kg_n_large_nursery().label(), "KG-N-12");
    }

    #[test]
    fn observer_is_twice_the_nursery() {
        let config = HeapConfig::kg_w();
        assert_eq!(config.observer_bytes, 2 * config.nursery_bytes);
        let larger = HeapConfig::kg_w().with_nursery(1 << 20);
        assert_eq!(larger.observer_bytes, 2 << 20);
    }

    #[test]
    fn placement_per_collector() {
        assert_eq!(HeapConfig::gen_immix_pcm().nursery_kind(), MemoryKind::Pcm);
        assert_eq!(HeapConfig::gen_immix_dram().mature_kind(), MemoryKind::Dram);
        assert_eq!(HeapConfig::kg_n().nursery_kind(), MemoryKind::Dram);
        assert_eq!(HeapConfig::kg_n().mature_kind(), MemoryKind::Pcm);
        assert_eq!(HeapConfig::kg_n().metadata_kind(), MemoryKind::Pcm);
        assert_eq!(HeapConfig::kg_w().metadata_kind(), MemoryKind::Dram);
        assert!(HeapConfig::kg_w().has_observer());
        assert!(!HeapConfig::kg_n().has_observer());
        assert!(HeapConfig::kg_n().is_hybrid());
        assert!(!HeapConfig::gen_immix_pcm().is_hybrid());
    }

    #[test]
    fn kg_a_configuration() {
        let config = HeapConfig::kg_a(AdviceTable::all_cold());
        assert_eq!(config.label(), "KG-A");
        assert!(!config.has_observer(), "KG-A bypasses the observer space");
        assert!(config.has_dram_mature());
        assert!(config.is_hybrid());
        assert_eq!(config.nursery_kind(), MemoryKind::Dram);
        assert_eq!(config.mature_kind(), MemoryKind::Pcm);
        assert_eq!(config.metadata_kind(), MemoryKind::Dram);
        assert!(config.advice.is_some());
        assert!(HeapConfig::kg_w().has_dram_mature());
        assert!(!HeapConfig::kg_n().has_dram_mature());
    }

    #[test]
    fn kg_n_12_has_triple_nursery() {
        assert_eq!(
            HeapConfig::kg_n_large_nursery().nursery_bytes,
            3 * HeapConfig::kg_n().nursery_bytes
        );
    }

    #[test]
    fn budget_override_grows_los() {
        let config = HeapConfig::kg_w().with_heap_budget(512 << 20);
        assert_eq!(config.heap_budget_bytes, 512 << 20);
        assert!(config.los_capacity_bytes >= 512 << 20);
    }

    #[test]
    fn ablation_toggles() {
        assert!(!HeapConfig::kg_w_no_loo().kgw.large_object_optimization);
        assert!(HeapConfig::kg_w_no_loo().kgw.metadata_optimization);
        assert!(!HeapConfig::kg_w_no_loo_no_mdo().kgw.metadata_optimization);
        assert!(!HeapConfig::kg_w_no_primitive_monitoring().kgw.monitor_primitives);
        assert!(HeapConfig::kg_w().kgw.monitor_primitives);
    }
}
