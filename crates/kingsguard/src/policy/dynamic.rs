//! KG-D: online-adaptive per-site placement.
//!
//! KG-A needs a prior profiling run; KG-W needs an observer space and pays
//! its copying tax on every run. KG-D needs neither: it starts from
//! KG-N-like all-PCM placement (or a stale advice table) and *learns* the
//! per-site advice during the run, from signals the heap already produces:
//!
//! * **PCM write events** — the barrier reports every mutator write to a
//!   post-nursery object; once a site accumulates
//!   [`KgDynamicParams::promote_after_pcm_writes`] writes on PCM-resident
//!   objects, the site is advised into DRAM immediately (no need to wait
//!   for the next full collection).
//! * **Rescues** — a rescued object proves its site produced a written PCM
//!   object; the site is advised into DRAM at the next
//!   [`PlacementPolicy::on_gc_feedback`].
//! * **Demotions** — unlike KG-A, KG-D does *not* pin advised-hot sites:
//!   unwritten DRAM objects demote exactly as under KG-W, and a site that
//!   keeps demoting without an intervening rescue has its DRAM advice
//!   revoked — this is what un-learns stale or drifted advice.
//!
//! On a stationary workload the advice converges: write-hot sites are
//! promoted after their first write burst (and then stay, because their
//! objects are written in DRAM and never demote), write-cold sites never
//! leave PCM, and the PCM write rate settles at or below KG-N's — the
//! rescue fallback alone guarantees that bound — and approaches KG-W's.

use std::collections::{HashMap, HashSet};

use advice::{AdviceTable, Placement, SiteId};
use hybrid_mem::MemoryKind;

use crate::policy::{
    AdaptationEvent, AdaptationTrigger, BarrierMode, LargePlacement, PlacementPolicy, SurvivorPlacement,
    Topology,
};
use crate::stats::GcStats;

/// Tuning knobs of the adaptive policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KgDynamicParams {
    /// Mutator writes observed on a site's PCM-resident objects before the
    /// site is advised into DRAM (without waiting for a rescue).
    pub promote_after_pcm_writes: u64,
    /// Demotions of a site's objects, without an intervening rescue, before
    /// the site's DRAM advice is revoked.
    pub revert_after_demotions: u64,
}

impl Default for KgDynamicParams {
    fn default() -> Self {
        // One rescue moves one object and resets one write bit; sixteen
        // barrier-level writes to a site's PCM objects already cost more PCM
        // traffic than pretenuring the site's survivors ever could, so
        // promote early. Reverting tolerates one stray demotion (a single
        // quiet object) but not a pattern.
        KgDynamicParams {
            promote_after_pcm_writes: 16,
            revert_after_demotions: 2,
        }
    }
}

/// The online-adaptive Kingsguard-dynamic (KG-D) policy.
#[derive(Clone, Debug, Default)]
pub struct KgDynamicPolicy {
    params: KgDynamicParams,
    /// Sites currently advised into DRAM (everything else defaults to PCM).
    dram_sites: HashSet<u32>,
    /// Mutator writes seen on PCM-resident objects, per site.
    pcm_writes: HashMap<u32, u64>,
    /// Cumulative [`GcStats::site_rescues`] totals already consumed.
    seen_rescues: HashMap<u32, u64>,
    /// Cumulative [`GcStats::site_demotions`] totals already consumed.
    seen_demotions: HashMap<u32, u64>,
    /// Demotions per site since that site's last rescue.
    demotions_since_rescue: HashMap<u32, u64>,
    promotions: u64,
    reversions: u64,
    /// Learn/un-learn decisions buffered for
    /// [`PlacementPolicy::drain_adaptation_events`]. Bounded: one entry per
    /// actual promotion or reversion, drained after every collection.
    events: Vec<AdaptationEvent>,
}

impl KgDynamicPolicy {
    /// An adaptive policy starting from all-PCM placement (KG-N-like).
    pub fn new() -> Self {
        Self::default()
    }

    /// An adaptive policy with explicit tuning knobs.
    pub fn with_params(params: KgDynamicParams) -> Self {
        KgDynamicPolicy {
            params,
            ..Self::default()
        }
    }

    /// An adaptive policy seeded from a (possibly stale) advice table: its
    /// DRAM placements become the starting advice and are refined online.
    pub fn from_table(table: &AdviceTable) -> Self {
        let mut policy = Self::new();
        for (site, placement) in table.iter() {
            if placement == Placement::DramMature {
                policy.dram_sites.insert(site.raw());
            }
        }
        policy
    }

    /// Number of sites currently advised into DRAM.
    pub fn hot_sites(&self) -> usize {
        self.dram_sites.len()
    }

    /// Sites promoted to DRAM advice during the run so far.
    pub fn promotions(&self) -> u64 {
        self.promotions
    }

    /// DRAM advisories revoked during the run so far.
    pub fn reversions(&self) -> u64 {
        self.reversions
    }

    fn advises_dram(&self, site: SiteId) -> bool {
        self.dram_sites.contains(&site.raw())
    }

    fn promote(&mut self, site: u32, trigger: AdaptationTrigger) {
        if self.dram_sites.insert(site) {
            self.promotions += 1;
            self.demotions_since_rescue.insert(site, 0);
            self.events.push(AdaptationEvent {
                site,
                learned: true,
                trigger,
            });
        }
    }
}

impl PlacementPolicy for KgDynamicPolicy {
    fn name(&self) -> String {
        "KG-D".to_string()
    }

    fn topology(&self) -> Topology {
        Topology::hybrid_rationing()
    }

    fn survivor_placement(&mut self, site: SiteId, _written: bool) -> SurvivorPlacement {
        if self.advises_dram(site) {
            SurvivorPlacement::AdvisedDram
        } else {
            SurvivorPlacement::AdvisedPcm
        }
    }

    fn large_placement(&mut self, site: SiteId) -> LargePlacement {
        if self.advises_dram(site) {
            LargePlacement::AdvisedDram
        } else {
            LargePlacement::AdvisedPcm
        }
    }

    // demote_unwritten_dram stays at the default `true`: demotion is the
    // feedback channel that un-learns stale advice, so KG-D never pins.

    fn barrier(&self) -> BarrierMode {
        BarrierMode::FirstWriteOnly
    }

    fn needs_sites(&self) -> bool {
        true
    }

    fn adaptation_counters(&self) -> Option<(u64, u64)> {
        Some((self.promotions, self.reversions))
    }

    fn drain_adaptation_events(&mut self) -> Vec<AdaptationEvent> {
        std::mem::take(&mut self.events)
    }

    fn advice_snapshot(&self) -> Option<AdviceTable> {
        if self.dram_sites.is_empty() {
            return None;
        }
        let mut sites: Vec<u32> = self.dram_sites.iter().copied().collect();
        sites.sort_unstable();
        Some(AdviceTable::from_entries(
            sites
                .into_iter()
                .map(|site| (SiteId(site), Placement::DramMature)),
            Placement::PcmMature,
        ))
    }

    fn on_mature_write(&mut self, site: SiteId, kind: MemoryKind) {
        if kind != MemoryKind::Pcm {
            return;
        }
        let count = self.pcm_writes.entry(site.raw()).or_insert(0);
        *count += 1;
        if *count >= self.params.promote_after_pcm_writes {
            self.promote(site.raw(), AdaptationTrigger::PcmWriteBurst);
        }
    }

    fn on_page_retired(&mut self, _page: u64, evacuated_sites: &[SiteId]) {
        // Retirement feedback is a demotion signal: the evacuation parked
        // the site's objects in DRAM without any placement decision, so it
        // must not be mistaken for organic write evidence — instead it
        // counts against the site's DRAM advice exactly like a demotion,
        // un-learning advice whose objects keep wearing PCM pages out of
        // reach of the normal rescue/demote cycle.
        let mut sites: Vec<u32> = evacuated_sites
            .iter()
            .filter(|s| !s.is_unknown())
            .map(|s| s.raw())
            .collect();
        sites.sort_unstable();
        sites.dedup();
        for site in sites {
            let since = self.demotions_since_rescue.entry(site).or_insert(0);
            *since += 1;
            if *since >= self.params.revert_after_demotions && self.dram_sites.remove(&site) {
                self.pcm_writes.insert(site, 0);
                *since = 0;
                self.reversions += 1;
                self.events.push(AdaptationEvent {
                    site,
                    learned: false,
                    trigger: AdaptationTrigger::PageRetirement,
                });
            }
        }
    }

    fn on_gc_feedback(&mut self, stats: &GcStats) {
        // A rescue proves the site produced a written PCM object: advise it
        // into DRAM and forgive its demotion history.
        let mut rescued_now: HashSet<u32> = HashSet::new();
        for (&site, &total) in &stats.site_rescues {
            let seen = self.seen_rescues.entry(site).or_insert(0);
            if total > *seen {
                *seen = total;
                rescued_now.insert(site);
                self.demotions_since_rescue.insert(site, 0);
                self.promote(site, AdaptationTrigger::Rescue);
            }
        }
        // Repeated demotions *without an intervening rescue* prove the
        // advice stale: revoke it and restart the site's write count from
        // zero. Demotions from a collection that also rescued the site are
        // forgiven — the rescue proves the site still produces written PCM
        // objects, and counting its quiet siblings would oscillate the
        // advice.
        for (&site, &total) in &stats.site_demotions {
            let seen = self.seen_demotions.entry(site).or_insert(0);
            if total > *seen {
                let delta = total - *seen;
                *seen = total;
                if rescued_now.contains(&site) {
                    continue;
                }
                let since = self.demotions_since_rescue.entry(site).or_insert(0);
                *since += delta;
                if *since >= self.params.revert_after_demotions && self.dram_sites.remove(&site) {
                    self.pcm_writes.insert(site, 0);
                    *since = 0;
                    self.reversions += 1;
                    self.events.push(AdaptationEvent {
                        site,
                        learned: false,
                        trigger: AdaptationTrigger::Demotions,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feedback_with(rescues: &[(u32, u64)], demotions: &[(u32, u64)]) -> GcStats {
        let mut stats = GcStats::default();
        for &(site, n) in rescues {
            stats.site_rescues.insert(site, n);
        }
        for &(site, n) in demotions {
            stats.site_demotions.insert(site, n);
        }
        stats
    }

    #[test]
    fn starts_all_cold_like_kg_n() {
        let mut policy = KgDynamicPolicy::new();
        assert_eq!(policy.hot_sites(), 0);
        assert_eq!(
            policy.survivor_placement(SiteId(5), true),
            SurvivorPlacement::AdvisedPcm
        );
        assert_eq!(policy.large_placement(SiteId(5)), LargePlacement::AdvisedPcm);
        assert!(policy.demote_unwritten_dram(SiteId(5)), "KG-D never pins");
    }

    #[test]
    fn pcm_write_burst_promotes_a_site() {
        let mut policy = KgDynamicPolicy::with_params(KgDynamicParams {
            promote_after_pcm_writes: 3,
            revert_after_demotions: 2,
        });
        for _ in 0..2 {
            policy.on_mature_write(SiteId(7), MemoryKind::Pcm);
        }
        assert_eq!(
            policy.survivor_placement(SiteId(7), false),
            SurvivorPlacement::AdvisedPcm,
            "below the threshold"
        );
        policy.on_mature_write(SiteId(7), MemoryKind::Pcm);
        assert_eq!(
            policy.survivor_placement(SiteId(7), false),
            SurvivorPlacement::AdvisedDram
        );
        assert_eq!(policy.promotions(), 1);
        // DRAM writes never promote.
        for _ in 0..100 {
            policy.on_mature_write(SiteId(8), MemoryKind::Dram);
        }
        assert_eq!(
            policy.survivor_placement(SiteId(8), false),
            SurvivorPlacement::AdvisedPcm
        );
    }

    #[test]
    fn advice_snapshot_exports_learned_dram_sites() {
        let mut policy = KgDynamicPolicy::new();
        assert!(
            policy.advice_snapshot().is_none(),
            "a policy that learned nothing has nothing to warm-start with"
        );
        policy.on_gc_feedback(&feedback_with(&[(9, 1), (4, 1)], &[]));
        let table = policy.advice_snapshot().expect("promoted sites export");
        assert_eq!(table.placement(SiteId(9)), Placement::DramMature);
        assert_eq!(table.placement(SiteId(4)), Placement::DramMature);
        assert_eq!(
            table.placement(SiteId(1)),
            Placement::PcmMature,
            "unadvised sites keep KG-D's all-PCM default"
        );
        // A reverted site drops back out of the snapshot.
        policy.on_gc_feedback(&feedback_with(&[], &[(9, 2)]));
        let table = policy.advice_snapshot().expect("site 4 is still advised");
        assert_eq!(table.placement(SiteId(9)), Placement::PcmMature);
        assert_eq!(table.placement(SiteId(4)), Placement::DramMature);
    }

    #[test]
    fn rescue_feedback_promotes_and_demotion_feedback_reverts() {
        let mut policy = KgDynamicPolicy::new();
        policy.on_gc_feedback(&feedback_with(&[(3, 1)], &[]));
        assert_eq!(
            policy.survivor_placement(SiteId(3), false),
            SurvivorPlacement::AdvisedDram
        );
        // One demotion is forgiven...
        policy.on_gc_feedback(&feedback_with(&[(3, 1)], &[(3, 1)]));
        assert_eq!(
            policy.survivor_placement(SiteId(3), false),
            SurvivorPlacement::AdvisedDram
        );
        // ...a second one without a new rescue revokes the advice.
        policy.on_gc_feedback(&feedback_with(&[(3, 1)], &[(3, 2)]));
        assert_eq!(
            policy.survivor_placement(SiteId(3), false),
            SurvivorPlacement::AdvisedPcm
        );
        assert_eq!(policy.reversions(), 1);
        // A fresh rescue re-promotes with a clean demotion slate.
        policy.on_gc_feedback(&feedback_with(&[(3, 2)], &[(3, 2)]));
        assert_eq!(
            policy.survivor_placement(SiteId(3), false),
            SurvivorPlacement::AdvisedDram
        );
    }

    #[test]
    fn a_same_gc_rescue_forgives_that_gcs_demotions() {
        let mut policy = KgDynamicPolicy::new();
        policy.on_gc_feedback(&feedback_with(&[(3, 1)], &[]));
        // One full GC demotes two quiet siblings AND rescues a written
        // object of the same site: the rescue wins, the advice stays.
        policy.on_gc_feedback(&feedback_with(&[(3, 2)], &[(3, 2)]));
        assert_eq!(
            policy.survivor_placement(SiteId(3), false),
            SurvivorPlacement::AdvisedDram
        );
        assert_eq!(policy.reversions(), 0);
    }

    #[test]
    fn feedback_is_idempotent_per_counter_value() {
        let mut policy = KgDynamicPolicy::new();
        let stats = feedback_with(&[(1, 4)], &[(2, 4)]);
        policy.on_gc_feedback(&stats);
        policy.on_gc_feedback(&stats);
        policy.on_gc_feedback(&stats);
        assert_eq!(policy.promotions(), 1);
        assert_eq!(policy.reversions(), 0, "site 2 was never DRAM-advised");
    }

    #[test]
    fn adaptation_events_carry_site_and_trigger_and_drain_once() {
        let mut policy = KgDynamicPolicy::with_params(KgDynamicParams {
            promote_after_pcm_writes: 1,
            revert_after_demotions: 1,
        });
        policy.on_mature_write(SiteId(7), MemoryKind::Pcm);
        policy.on_gc_feedback(&feedback_with(&[(9, 1)], &[(7, 2)]));
        let events = policy.drain_adaptation_events();
        assert_eq!(
            events,
            vec![
                AdaptationEvent {
                    site: 7,
                    learned: true,
                    trigger: AdaptationTrigger::PcmWriteBurst,
                },
                AdaptationEvent {
                    site: 9,
                    learned: true,
                    trigger: AdaptationTrigger::Rescue,
                },
                AdaptationEvent {
                    site: 7,
                    learned: false,
                    trigger: AdaptationTrigger::Demotions,
                },
            ]
        );
        assert!(policy.drain_adaptation_events().is_empty(), "drained");
        assert_eq!(AdaptationTrigger::PcmWriteBurst.label(), "pcm-write-burst");
    }

    #[test]
    fn page_retirement_acts_as_demotion_pressure() {
        let mut policy = KgDynamicPolicy::with_params(KgDynamicParams {
            promote_after_pcm_writes: 1,
            revert_after_demotions: 2,
        });
        policy.on_gc_feedback(&feedback_with(&[(5, 1)], &[]));
        assert_eq!(policy.hot_sites(), 1);
        // First retirement touching the site: pressure, but advice holds
        // (duplicate sites on one page count once).
        policy.on_page_retired(100, &[SiteId(5), SiteId(5), SiteId(9)]);
        assert_eq!(
            policy.survivor_placement(SiteId(5), false),
            SurvivorPlacement::AdvisedDram
        );
        // A second retirement crosses the threshold and revokes the advice.
        policy.on_page_retired(101, &[SiteId(5)]);
        assert_eq!(
            policy.survivor_placement(SiteId(5), false),
            SurvivorPlacement::AdvisedPcm
        );
        assert_eq!(policy.reversions(), 1);
        let events = policy.drain_adaptation_events();
        assert!(events.contains(&AdaptationEvent {
            site: 5,
            learned: false,
            trigger: AdaptationTrigger::PageRetirement,
        }));
        assert_eq!(AdaptationTrigger::PageRetirement.label(), "page-retirement");
        // Unadvised sites accumulate pressure but nothing is revoked.
        policy.on_page_retired(102, &[SiteId(9)]);
        assert_eq!(policy.reversions(), 1);
    }

    #[test]
    fn stale_table_seeds_the_starting_advice() {
        let table = AdviceTable::from_entries(
            [
                (SiteId(1), Placement::DramMature),
                (SiteId(2), Placement::PcmMature),
            ],
            Placement::PcmMature,
        );
        let mut policy = KgDynamicPolicy::from_table(&table);
        assert_eq!(policy.hot_sites(), 1);
        assert_eq!(
            policy.survivor_placement(SiteId(1), false),
            SurvivorPlacement::AdvisedDram
        );
        // Stale advice is revocable like any learned advice.
        policy.on_gc_feedback(&feedback_with(&[], &[(1, 2)]));
        assert_eq!(
            policy.survivor_placement(SiteId(1), false),
            SurvivorPlacement::AdvisedPcm
        );
    }
}
