//! Pluggable placement policies: the variation points of write-rationing
//! collection as a first-class API.
//!
//! The paper's collectors all share one mechanical skeleton — a copying
//! nursery, Immix mature spaces, optional large-object and observer spaces,
//! remembered sets and a two-part write barrier — and differ only in a small
//! set of *placement decisions*: where nursery survivors go, where large
//! objects are allocated, how observer survivors are tenured, whether written
//! PCM objects are rescued and unwritten DRAM objects demoted, and what the
//! monitoring half of the write barrier records. [`PlacementPolicy`] names
//! exactly those decisions, so a new rationing strategy is a small trait
//! implementation instead of another arm in every `match` of the collector
//! core.
//!
//! The built-in policies reproduce the paper's collectors:
//!
//! | Policy | Collector | Strategy |
//! |---|---|---|
//! | [`GenImmixPolicy`] | DRAM-only / PCM-only | single technology, no rationing |
//! | [`KgNurseryPolicy`] | KG-N | DRAM nursery, everything else PCM |
//! | [`KgWritersPolicy`] | KG-W | online observation, per-object placement |
//! | [`KgAdvicePolicy`] | KG-A | offline profile replay, per-site placement |
//! | [`KgDynamicPolicy`] | KG-D | online-adaptive per-site placement |
//!
//! KG-D is the first policy the old `CollectorKind` dispatch could not
//! express: it starts from KG-N-like all-PCM placement (or a stale advice
//! table) and refreshes per-site advice *during* the run from the
//! rescue/demotion counters in [`GcStats`] and the write events the barrier
//! reports — converging toward KG-W's PCM write rate with no prior profiling
//! run and no observer space.
//!
//! Policies are consulted through plain-data hooks (sites, write bits,
//! shapes in; placement decisions out) and never touch the heap directly;
//! the runtime applies each decision, falling back to the primary PCM space
//! when a requested space is full.

mod builtin;
mod dynamic;

pub use builtin::{GenImmixPolicy, KgAdvicePolicy, KgNurseryPolicy, KgWritersPolicy};
pub use dynamic::{KgDynamicParams, KgDynamicPolicy};

use advice::{AdviceTable, SiteId};
use hybrid_mem::MemoryKind;

use crate::config::{CollectorKind, HeapConfig};
use crate::stats::GcStats;

/// The space layout a policy requires; [`crate::KingsguardHeap::new`] builds
/// the heap's spaces from this descriptor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Topology {
    /// Memory technology of the nursery.
    pub nursery: MemoryKind,
    /// Memory technology of the primary mature and large spaces.
    pub mature: MemoryKind,
    /// Memory technology of metadata (mark tables, remset buffers).
    pub metadata: MemoryKind,
    /// Whether a DRAM observer space routes nursery survivors.
    pub observer: bool,
    /// Whether DRAM mature and DRAM large spaces exist alongside the
    /// primary ones.
    pub dram_mature: bool,
}

impl Topology {
    /// Every space on a single memory technology (the GenImmix baselines).
    pub fn single(memory: MemoryKind) -> Self {
        Topology {
            nursery: memory,
            mature: memory,
            metadata: memory,
            observer: false,
            dram_mature: false,
        }
    }

    /// DRAM nursery over a PCM mature heap, no DRAM mature spaces (KG-N).
    pub fn dram_nursery() -> Self {
        Topology {
            nursery: MemoryKind::Dram,
            mature: MemoryKind::Pcm,
            metadata: MemoryKind::Pcm,
            observer: false,
            dram_mature: false,
        }
    }

    /// DRAM nursery + DRAM mature/large spaces over a PCM mature heap, DRAM
    /// metadata (KG-A, KG-D; KG-W adds the observer space on top).
    pub fn hybrid_rationing() -> Self {
        Topology {
            nursery: MemoryKind::Dram,
            mature: MemoryKind::Pcm,
            metadata: MemoryKind::Dram,
            observer: false,
            dram_mature: true,
        }
    }
}

/// Where a policy places a small nursery survivor that did not go to the
/// observer space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SurvivorPlacement {
    /// The primary mature space, no advice accounting (GenImmix, KG-N, and
    /// KG-W survivors that overflowed the observer space).
    Mature,
    /// Pretenure into the DRAM mature space, counted as an advised
    /// placement; falls back to the primary space when DRAM is full.
    AdvisedDram,
    /// The primary (PCM) mature space, counted as an advised placement.
    AdvisedPcm,
}

/// Where a policy places a directly allocated large object.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LargePlacement {
    /// The primary large object space, no advice accounting.
    Default,
    /// The DRAM large space, counted as an advised placement; falls back to
    /// the primary large space (counted as advised-to-PCM) when full.
    AdvisedDram,
    /// The primary large space, counted as an advised placement.
    AdvisedPcm,
}

/// What the monitoring half of the write barrier does for post-nursery
/// objects (Figure 4, lines 13–17).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BarrierMode {
    /// No write monitoring (GenImmix, KG-N).
    None,
    /// Unconditionally store the write word (KG-W: placement *is* the
    /// observed write behaviour, so every write refreshes it).
    SetWritten,
    /// Store the write word only on the first write (KG-A, KG-D: the
    /// barrier is a misprediction detector, and an unconditional store
    /// would re-dirty the write word of every advised-cold PCM object on
    /// every write — exactly the per-write PCM tax being rationed away).
    FirstWriteOnly,
}

/// A placement policy: the decisions a write-rationing collector is made of.
///
/// Every hook has a conservative default, so a minimal policy only overrides
/// [`PlacementPolicy::name`], [`PlacementPolicy::topology`] and the
/// decisions it actually cares about — see the crate README for a worked
/// example under 50 lines.
pub trait PlacementPolicy: std::fmt::Debug + Send {
    /// Short collector label ("KG-W", "KG-D", ...).
    fn name(&self) -> String;

    /// The space layout this policy requires.
    fn topology(&self) -> Topology;

    /// Placement of a small nursery survivor (after observer routing and
    /// large-object handling). `written` is the survivor's write bit.
    fn survivor_placement(&mut self, _site: SiteId, _written: bool) -> SurvivorPlacement {
        SurvivorPlacement::Mature
    }

    /// Placement of a directly allocated large object.
    fn large_placement(&mut self, _site: SiteId) -> LargePlacement {
        LargePlacement::Default
    }

    /// Whether a live observer-space object is tenured into the DRAM mature
    /// space (`true`) or the primary mature space (`false`).
    fn observer_tenure_to_dram(&mut self, written: bool) -> bool {
        written
    }

    /// Whether full collections rescue written PCM mature objects back to
    /// DRAM and move written large PCM objects to the DRAM large space.
    fn rescue_written_objects(&self) -> bool {
        self.topology().dram_mature
    }

    /// Whether a full collection may demote this unwritten DRAM mature
    /// object to PCM. KG-A pins advised-hot sites in DRAM so quiet periods
    /// do not churn the next rescue; KG-D deliberately lets them demote —
    /// demotion is the signal that un-learns stale advice.
    fn demote_unwritten_dram(&mut self, _site: SiteId) -> bool {
        self.rescue_written_objects()
    }

    /// The monitoring mode of the write barrier.
    fn barrier(&self) -> BarrierMode {
        BarrierMode::None
    }

    /// Whether primitive (non-reference) writes reach the monitoring half
    /// of the barrier (KG-W vs KG-W–PM).
    fn monitor_primitive_writes(&self) -> bool {
        true
    }

    /// Metadata Optimization: keep the mark state of PCM objects in DRAM
    /// side tables.
    fn metadata_marks_in_dram(&self) -> bool {
        false
    }

    /// Large Object Optimization: give large objects a chance to die in the
    /// nursery while the large-object allocation rate outpaces the nursery's.
    fn large_object_optimization(&self) -> bool {
        false
    }

    /// Whether the heap must maintain the address→site side table for this
    /// policy (per-site policies only; the others skip the hot-path
    /// bookkeeping).
    fn needs_sites(&self) -> bool {
        false
    }

    /// Write-barrier event notification: the mutator wrote a post-nursery
    /// object of `site` residing on `kind` memory. Only delivered for
    /// policies with [`PlacementPolicy::needs_sites`], and only for known
    /// sites.
    fn on_mature_write(&mut self, _site: SiteId, _kind: MemoryKind) {}

    /// End-of-collection refresh point: called after every young and
    /// full-heap collection with the run's cumulative statistics. Adaptive
    /// policies re-derive per-site advice here from the rescue/demotion
    /// counters ([`GcStats::site_rescues`], [`GcStats::site_demotions`]).
    /// The runtime drains every mutator context's store buffer before each
    /// collection, so the counters seen here include every barrier event
    /// regardless of batching or mutator count.
    fn on_gc_feedback(&mut self, _stats: &GcStats) {}

    /// Graceful-degradation notification: a PCM heap page wore out, its live
    /// objects were evacuated (`evacuated_sites` lists their allocation
    /// sites, known sites only) and the page was fenced and remapped to
    /// spare capacity. KG-D treats this as a demotion-like signal: forced
    /// evacuation is not organic write evidence, and a site that wears PCM
    /// pages out should not have its placement re-learned from the
    /// evacuation traffic. The default ignores retirement.
    fn on_page_retired(&mut self, _page: u64, _evacuated_sites: &[SiteId]) {}

    /// Online-adaptation counters of the policy, when it has any:
    /// `(promotions, reversions)` of learned per-site advice. Lets drivers
    /// and experiments observe adaptation (e.g. un-learning after a workload
    /// phase change) through the trait object without downcasting.
    fn adaptation_counters(&self) -> Option<(u64, u64)> {
        None
    }

    /// Drains the adaptation events buffered since the last drain. The
    /// runtime calls this after every [`PlacementPolicy::on_gc_feedback`],
    /// so adaptive policies can buffer each learn/un-learn decision with its
    /// trigger and have the telemetry layer pick them up without the policy
    /// knowing anything about telemetry. Non-adaptive policies keep the
    /// default empty drain.
    fn drain_adaptation_events(&mut self) -> Vec<AdaptationEvent> {
        Vec::new()
    }

    /// Exports the policy's current per-site placement advice as a table
    /// that can warm-start a later run ([`HeapConfig::kg_d_with`] /
    /// [`HeapConfig::kg_a`]). Adaptive policies snapshot what they have
    /// learned so far; policies with nothing transferable return `None`
    /// (the default). Fleet drivers harvest this before
    /// [`crate::KingsguardHeap::finish`] recycles a tenant and deposit it in
    /// a shared advice store keyed by the workload's site-map hash.
    fn advice_snapshot(&self) -> Option<AdviceTable> {
        None
    }
}

/// What caused one KG-D learn/un-learn decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdaptationTrigger {
    /// A site crossed the mutator PCM-write threshold through the write
    /// barrier.
    PcmWriteBurst,
    /// A site's objects were rescued from PCM during tracing.
    Rescue,
    /// A learned site's objects kept getting demoted as unwritten — the
    /// advice was un-learned.
    Demotions,
    /// A PCM page holding a learned site's objects was retired; the forced
    /// evacuation counts as demotion pressure against the advice.
    PageRetirement,
}

impl AdaptationTrigger {
    /// Stable label used in telemetry events.
    pub fn label(self) -> &'static str {
        match self {
            AdaptationTrigger::PcmWriteBurst => "pcm-write-burst",
            AdaptationTrigger::Rescue => "rescue",
            AdaptationTrigger::Demotions => "demotions",
            AdaptationTrigger::PageRetirement => "page-retirement",
        }
    }
}

/// One online adaptation decision: a site was learned into (or un-learned
/// from) the policy's DRAM set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdaptationEvent {
    /// The allocation site the decision is about.
    pub site: u32,
    /// `true` for learn (promote to DRAM), `false` for un-learn (revert).
    pub learned: bool,
    /// What triggered the decision.
    pub trigger: AdaptationTrigger,
}

/// Builds the built-in policy for `config.collector`. `CollectorKind`
/// remains the thin constructor/CLI alias; everything behavioural lives in
/// the returned policy.
pub fn from_config(config: &HeapConfig) -> Box<dyn PlacementPolicy> {
    match config.collector {
        CollectorKind::GenImmix { memory } => Box::new(GenImmixPolicy::new(memory)),
        CollectorKind::KingsguardNursery => Box::new(KgNurseryPolicy),
        CollectorKind::KingsguardWriters => Box::new(KgWritersPolicy::new(config.kgw)),
        CollectorKind::KgAdvice => Box::new(KgAdvicePolicy::new(
            config
                .advice
                .clone()
                .expect("CollectorKind::KgAdvice requires HeapConfig::advice"),
        )),
        CollectorKind::KgDynamic => Box::new(match config.advice.clone() {
            Some(table) => KgDynamicPolicy::from_table(&table),
            None => KgDynamicPolicy::new(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_policies_match_their_collector_kinds() {
        for (config, name) in [
            (HeapConfig::gen_immix_dram(), "DRAM-only"),
            (HeapConfig::gen_immix_pcm(), "PCM-only"),
            (HeapConfig::kg_n(), "KG-N"),
            (HeapConfig::kg_w(), "KG-W"),
            (HeapConfig::kg_a(advice::AdviceTable::all_cold()), "KG-A"),
            (HeapConfig::kg_d(), "KG-D"),
        ] {
            let policy = from_config(&config);
            assert_eq!(policy.name(), name);
            let topo = policy.topology();
            assert_eq!(topo.nursery, config.nursery_kind());
            assert_eq!(topo.mature, config.mature_kind());
            assert_eq!(topo.metadata, config.metadata_kind());
            assert_eq!(topo.observer, config.has_observer());
            assert_eq!(topo.dram_mature, config.has_dram_mature());
        }
    }

    #[test]
    fn barrier_modes_per_policy() {
        assert_eq!(from_config(&HeapConfig::kg_n()).barrier(), BarrierMode::None);
        assert_eq!(
            from_config(&HeapConfig::gen_immix_dram()).barrier(),
            BarrierMode::None
        );
        assert_eq!(
            from_config(&HeapConfig::kg_w()).barrier(),
            BarrierMode::SetWritten
        );
        assert_eq!(
            from_config(&HeapConfig::kg_a(advice::AdviceTable::all_cold())).barrier(),
            BarrierMode::FirstWriteOnly
        );
        assert_eq!(
            from_config(&HeapConfig::kg_d()).barrier(),
            BarrierMode::FirstWriteOnly
        );
    }

    #[test]
    fn kgw_option_toggles_flow_into_the_policy() {
        let full = from_config(&HeapConfig::kg_w());
        assert!(full.large_object_optimization());
        assert!(full.metadata_marks_in_dram());
        assert!(full.monitor_primitive_writes());
        let stripped = from_config(&HeapConfig::kg_w_no_loo_no_mdo());
        assert!(!stripped.large_object_optimization());
        assert!(!stripped.metadata_marks_in_dram());
        let no_pm = from_config(&HeapConfig::kg_w_no_primitive_monitoring());
        assert!(!no_pm.monitor_primitive_writes());
    }

    #[test]
    fn only_site_policies_track_sites() {
        assert!(!from_config(&HeapConfig::kg_n()).needs_sites());
        assert!(!from_config(&HeapConfig::kg_w()).needs_sites());
        assert!(from_config(&HeapConfig::kg_a(advice::AdviceTable::all_cold())).needs_sites());
        assert!(from_config(&HeapConfig::kg_d()).needs_sites());
    }
}
