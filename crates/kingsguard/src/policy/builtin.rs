//! The paper's collectors as [`PlacementPolicy`] implementations.

use advice::{AdviceTable, SiteId};
use hybrid_mem::MemoryKind;

use crate::config::KgwOptions;
use crate::policy::{BarrierMode, LargePlacement, PlacementPolicy, SurvivorPlacement, Topology};

/// The generational Immix baseline: every space on one memory technology,
/// no write rationing at all.
#[derive(Clone, Copy, Debug)]
pub struct GenImmixPolicy {
    memory: MemoryKind,
}

impl GenImmixPolicy {
    /// A baseline on `memory` (the DRAM-only / PCM-only configurations).
    pub fn new(memory: MemoryKind) -> Self {
        GenImmixPolicy { memory }
    }
}

impl PlacementPolicy for GenImmixPolicy {
    fn name(&self) -> String {
        match self.memory {
            MemoryKind::Dram => "DRAM-only".to_string(),
            MemoryKind::Pcm => "PCM-only".to_string(),
        }
    }

    fn topology(&self) -> Topology {
        Topology::single(self.memory)
    }
}

/// Kingsguard-nursery: a DRAM nursery filters the write-hottest generation;
/// everything that survives it lives in PCM.
#[derive(Clone, Copy, Debug)]
pub struct KgNurseryPolicy;

impl PlacementPolicy for KgNurseryPolicy {
    fn name(&self) -> String {
        "KG-N".to_string()
    }

    fn topology(&self) -> Topology {
        Topology::dram_nursery()
    }
}

/// Kingsguard-writers: nursery survivors pass through a DRAM observer space
/// where the write barrier watches them; observer survivors are tenured by
/// their observed write bit, and full collections rescue written PCM objects
/// and demote unwritten DRAM objects.
#[derive(Clone, Copy, Debug)]
pub struct KgWritersPolicy {
    opts: KgwOptions,
}

impl KgWritersPolicy {
    /// KG-W with the given feature toggles (Table 1 / Section 6.2).
    pub fn new(opts: KgwOptions) -> Self {
        KgWritersPolicy { opts }
    }
}

impl PlacementPolicy for KgWritersPolicy {
    fn name(&self) -> String {
        let mut label = "KG-W".to_string();
        if !self.opts.large_object_optimization {
            label.push_str("-LOO");
        }
        if !self.opts.metadata_optimization {
            label.push_str("-MDO");
        }
        if !self.opts.monitor_primitives {
            label.push_str("-PM");
        }
        label
    }

    fn topology(&self) -> Topology {
        Topology {
            observer: true,
            ..Topology::hybrid_rationing()
        }
    }

    fn barrier(&self) -> BarrierMode {
        BarrierMode::SetWritten
    }

    fn monitor_primitive_writes(&self) -> bool {
        self.opts.monitor_primitives
    }

    fn metadata_marks_in_dram(&self) -> bool {
        self.opts.metadata_optimization
    }

    fn large_object_optimization(&self) -> bool {
        self.opts.large_object_optimization
    }
}

/// Kingsguard-advice: replays an offline per-site write profile, pretenuring
/// each site's survivors straight into DRAM or PCM and keeping the KG-W
/// rescue as the misprediction fallback — no observer space, no per-run
/// learning tax.
#[derive(Clone, Debug)]
pub struct KgAdvicePolicy {
    table: AdviceTable,
}

impl KgAdvicePolicy {
    /// A policy replaying `table`.
    pub fn new(table: AdviceTable) -> Self {
        KgAdvicePolicy { table }
    }

    /// The advice table this policy replays.
    pub fn table(&self) -> &AdviceTable {
        &self.table
    }
}

impl PlacementPolicy for KgAdvicePolicy {
    fn name(&self) -> String {
        "KG-A".to_string()
    }

    fn topology(&self) -> Topology {
        Topology::hybrid_rationing()
    }

    fn survivor_placement(&mut self, site: SiteId, _written: bool) -> SurvivorPlacement {
        if self.table.pretenure_to_dram(site) {
            SurvivorPlacement::AdvisedDram
        } else {
            SurvivorPlacement::AdvisedPcm
        }
    }

    fn large_placement(&mut self, site: SiteId) -> LargePlacement {
        if self.table.pretenure_to_dram(site) {
            LargePlacement::AdvisedDram
        } else {
            LargePlacement::AdvisedPcm
        }
    }

    fn demote_unwritten_dram(&mut self, site: SiteId) -> bool {
        // Advised-hot sites stay in DRAM across quiet periods — demoting
        // them would only churn the next rescue.
        !self.table.pretenure_to_dram(site)
    }

    fn barrier(&self) -> BarrierMode {
        BarrierMode::FirstWriteOnly
    }

    fn needs_sites(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use advice::Placement;

    #[test]
    fn kg_advice_routes_by_table() {
        let table = AdviceTable::from_entries(
            [
                (SiteId(1), Placement::DramMature),
                (SiteId(2), Placement::PcmMature),
            ],
            Placement::PcmMature,
        );
        let mut policy = KgAdvicePolicy::new(table);
        assert_eq!(
            policy.survivor_placement(SiteId(1), false),
            SurvivorPlacement::AdvisedDram
        );
        assert_eq!(
            policy.survivor_placement(SiteId(2), false),
            SurvivorPlacement::AdvisedPcm
        );
        assert_eq!(policy.large_placement(SiteId(1)), LargePlacement::AdvisedDram);
        assert_eq!(policy.large_placement(SiteId(9)), LargePlacement::AdvisedPcm);
        assert!(!policy.demote_unwritten_dram(SiteId(1)), "hot sites are pinned");
        assert!(policy.demote_unwritten_dram(SiteId(2)));
        assert_eq!(policy.table().hot_sites(), 1);
    }

    #[test]
    fn kg_writers_labels_mirror_the_option_toggles() {
        assert_eq!(KgWritersPolicy::new(KgwOptions::default()).name(), "KG-W");
        let stripped = KgwOptions {
            large_object_optimization: false,
            metadata_optimization: false,
            monitor_primitives: true,
        };
        assert_eq!(KgWritersPolicy::new(stripped).name(), "KG-W-LOO-MDO");
    }

    #[test]
    fn baseline_policies_never_ration() {
        let mut dram = GenImmixPolicy::new(MemoryKind::Dram);
        assert!(!dram.rescue_written_objects());
        assert_eq!(dram.barrier(), BarrierMode::None);
        assert_eq!(
            dram.survivor_placement(SiteId(3), true),
            SurvivorPlacement::Mature
        );
        assert_eq!(dram.large_placement(SiteId(3)), LargePlacement::Default);
        let mut kg_n = KgNurseryPolicy;
        assert!(!kg_n.rescue_written_objects());
        assert!(!kg_n.demote_unwritten_dram(SiteId(1)));
        assert!(!kg_n.needs_sites());
    }
}
